#!/usr/bin/env python3
"""Validate and regression-gate the committed BENCH_*.json artifacts.

Stdlib-only on purpose: CI images carry no pip packages, so this module
implements the small JSON-Schema subset bench/bench_schema.json is written
in (type / required / properties / items / enum / minimum / maximum) by
hand. Each input file is matched to a schema by its top-level "bench"
field.

Modes (composable):
  validate_bench.py --schema bench/bench_schema.json FILE...
      Schema validation only.
  ... --strict-overhead
      Additionally fail any trace_overhead file whose
      disabled_overhead_pct exceeds 2.0 — the "tracing compiled in but
      off costs nothing" claim, gated on the committed artifact.
  ... --baseline BENCH_fig12.json [--tolerance-pct 20]
      Additionally diff each fig12_open_loop file against the committed
      baseline: configs must match exactly and every sim-domain metric
      must stay within the tolerance. All compared numbers live in the
      simulated clock domain, so on an unchanged tree the diff is exactly
      zero and any drift is a behavior change, not host noise.

Every fig12_open_loop file additionally carries three intra-file gates:

  * its micro set must contain the dense_frontier_push /
    dense_frontier_hybrid pair, and the hybrid engine may never be more
    than 5% slower than forced push on that sweep — the "the direction
    heuristic does no harm" claim, checked on the committed artifact and
    on every regeneration;
  * its micro set must contain the index_hit / index_traversal pair, and
    an index-answered point query must cost at most 5% of the traversal
    that answers the same question (>= 20x speedup) — the "the index tier
    makes hot queries O(1)" claim of DESIGN.md §13;
  * its micro set must contain the mutation_frozen / mutation_stream
    pair, and running the same seeded batch through the uncompacted
    delta overlay may cost at most 50% more than the compacted
    equivalent — the "streaming mutations don't wreck query throughput"
    claim of DESIGN.md §15;
  * it must carry a failover arm (steady vs under-replica-kill service
    percentiles), and the under-kill p99 may be at most 3x the
    steady-state p99 — the "replica loss is a bounded latency hit, never
    a correctness event" claim of DESIGN.md §14.

Exit status: 0 = all files pass, 1 = any failure (every failure printed).
"""

import argparse
import json
import sys

STRICT_OVERHEAD_MAX_PCT = 2.0
HYBRID_SLOWDOWN_MAX_PCT = 5.0
INDEX_HIT_MAX_FRACTION = 0.05  # index probe <= 5% of the traversal (20x)
FAILOVER_P99_MAX_RATIO = 3.0  # replica-kill p99 <= 3x steady-state p99
MUTATION_OVERHEAD_MAX_PCT = 50.0  # delta-overlay scan <= 1.5x frozen scan

# Sim-domain row metrics gated against the committed baseline. Counts are
# integers and percentiles doubles, but both are pure functions of the
# (seeded) workload, so the comparison is exact-in-practice.
ROW_METRICS = [
    "shed", "expired", "completed", "batches",
    "p50_sim_seconds", "p95_sim_seconds", "p99_sim_seconds",
    "makespan_sim_seconds",
]
MICRO_METRICS = ["sim_seconds", "edges_scanned"]
FAILOVER_METRICS = [
    "completed", "batches",
    "p50_sim_seconds", "p95_sim_seconds", "p99_sim_seconds",
    "makespan_sim_seconds",
]


def _type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    if expected == "integer":
        # bool is an int subclass in Python; a JSON true is not an integer.
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    raise ValueError(f"schema uses unsupported type {expected!r}")


def validate(value, schema, path, errors):
    """Recursively check `value` against the mini-schema at `path`."""
    expected = schema.get("type")
    if expected is not None and not _type_ok(value, expected):
        errors.append(f"{path}: expected {expected}, got "
                      f"{type(value).__name__} ({value!r})")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in allowed set "
                      f"{schema['enum']!r}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value!r} below minimum {schema['minimum']}")
    if "maximum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value > schema["maximum"]:
        errors.append(f"{path}: {value!r} above maximum {schema['maximum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def _within(fresh, committed, tolerance_pct):
    if committed == 0:
        # A metric that was zero must stay zero (shed/expired on an
        # uncontended sweep): 20% of nothing is nothing.
        return fresh == 0
    return abs(fresh - committed) <= abs(committed) * tolerance_pct / 100.0


def compare_fig12(fresh, committed, tolerance_pct, errors, notes):
    """Diff candidate vs committed baseline.

    The committed baseline is read as-is (it is never schema-validated
    here), and artifacts legitimately gain/lose arms across versions when
    bench/baseline_runner grows a new sweep. So every keyed lookup is
    defensive: an entry missing its key, or an arm present on only one
    side, is a *reported skip* (a note, exit 0) rather than a KeyError
    traceback or a hard failure — the drift gate compares the
    intersection it can actually pair up.
    """
    if fresh.get("config") != committed.get("config"):
        errors.append(
            "config mismatch vs committed baseline — the sweep parameters "
            "changed; regenerate BENCH_fig12.json with bench/baseline_runner "
            "and commit it alongside the change")
        return

    def keyed(entries, key, side, section):
        out = {}
        for i, entry in enumerate(entries):
            k = entry.get(key) if isinstance(entry, dict) else None
            if k is None:
                notes.append(f"{section}[{i}] in the {side} lacks {key!r}; "
                             f"skipped from the drift compare")
                continue
            out[k] = entry
        return out

    def compare_maps(fresh_map, committed_map, metrics, label):
        for k in sorted(set(fresh_map) ^ set(committed_map), key=repr):
            side = ("committed baseline" if k in fresh_map
                    else "candidate")
            notes.append(
                f"{label}[{k!r}] missing from the {side}; pair skipped — "
                f"regenerate and commit BENCH_fig12.json to gate it")
        for k in sorted(set(fresh_map) & set(committed_map), key=repr):
            fresh_entry = fresh_map[k]
            committed_entry = committed_map[k]
            for metric in metrics:
                if metric not in fresh_entry or metric not in committed_entry:
                    side = ("candidate" if metric not in fresh_entry
                            else "committed baseline")
                    notes.append(f"{label}[{k!r}].{metric} missing from the "
                                 f"{side}; skipped")
                    continue
                if not _within(fresh_entry[metric], committed_entry[metric],
                               tolerance_pct):
                    errors.append(
                        f"{label}[{k!r}].{metric}: {fresh_entry[metric]!r} "
                        f"drifted >{tolerance_pct:g}% from committed "
                        f"{committed_entry[metric]!r}")

    compare_maps(
        keyed(fresh.get("rows", []), "rate_qps", "candidate", "rows"),
        keyed(committed.get("rows", []), "rate_qps", "committed baseline",
              "rows"),
        ROW_METRICS, "rows")
    fresh_failover = fresh.get("failover", {})
    committed_failover = committed.get("failover", {})
    if isinstance(fresh_failover, dict) and isinstance(committed_failover,
                                                       dict):
        compare_maps(
            {k: v for k, v in fresh_failover.items() if isinstance(v, dict)},
            {k: v for k, v in committed_failover.items()
             if isinstance(v, dict)},
            FAILOVER_METRICS, "failover")
    compare_maps(
        keyed(fresh.get("micro", []), "name", "candidate", "micro"),
        keyed(committed.get("micro", []), "name", "committed baseline",
              "micro"),
        MICRO_METRICS, "micro")


def check_hybrid_gate(data, errors):
    """dense_frontier_hybrid must stay within 5% of dense_frontier_push.

    Both rows are sim-domain numbers from the same seeded workload, so
    this is a property of the engine, not the host. The pair is required:
    an artifact without it predates the direction-optimizing engine and
    must be regenerated with bench/baseline_runner.
    """
    micro = {m["name"]: m for m in data.get("micro", [])}
    push = micro.get("dense_frontier_push")
    hybrid = micro.get("dense_frontier_hybrid")
    if push is None or hybrid is None:
        errors.append(
            "micro set lacks the dense_frontier_push/dense_frontier_hybrid "
            "pair — regenerate with bench/baseline_runner")
        return
    limit = push["sim_seconds"] * (1.0 + HYBRID_SLOWDOWN_MAX_PCT / 100.0)
    if hybrid["sim_seconds"] > limit:
        errors.append(
            f"dense_frontier_hybrid sim_seconds {hybrid['sim_seconds']!r} "
            f"is more than {HYBRID_SLOWDOWN_MAX_PCT:g}% slower than "
            f"dense_frontier_push {push['sim_seconds']!r}: the direction "
            f"heuristic is mis-switching — fix the scout thresholds before "
            f"recommitting")


def check_index_gate(data, errors):
    """index_hit must cost at most 5% of index_traversal (>= 20x speedup).

    Both rows answer the same seeded point query in the simulated clock
    domain: index_hit is the modeled cost of one conclusive index probe,
    index_traversal the distributed MS-BFS run that proves the same
    answer. The pair is required: an artifact without it predates the
    index tier and must be regenerated with bench/baseline_runner.
    """
    micro = {m["name"]: m for m in data.get("micro", [])}
    hit = micro.get("index_hit")
    traversal = micro.get("index_traversal")
    if hit is None or traversal is None:
        errors.append(
            "micro set lacks the index_hit/index_traversal pair — "
            "regenerate with bench/baseline_runner")
        return
    limit = traversal["sim_seconds"] * INDEX_HIT_MAX_FRACTION
    if hit["sim_seconds"] > limit:
        errors.append(
            f"index_hit sim_seconds {hit['sim_seconds']!r} exceeds "
            f"{INDEX_HIT_MAX_FRACTION:g}x of index_traversal "
            f"{traversal['sim_seconds']!r}: an index-answered query is no "
            f"longer ~free — check ReachIndex::probe_sim_seconds and the "
            f"gate/label sizing before recommitting")


def check_mutation_gate(data, errors):
    """mutation_stream must stay within 1.5x of mutation_frozen.

    Both rows run the identical seeded k-hop batch in the simulated clock
    domain: mutation_frozen against compacted shards, mutation_stream
    against shards carrying the same graph as uncompacted delta events
    (a replayed mutation trace at its snapshot epoch). The answers are
    CHECKed bit-exact inside bench/baseline_runner; this gate bounds the
    cost of scanning through the delta overlay — if it blows past 50%,
    compaction scheduling or the merged-scan fast path regressed. The
    pair is required: an artifact without it predates the streaming
    mutation layer and must be regenerated with bench/baseline_runner.
    """
    micro = {m["name"]: m for m in data.get("micro", [])}
    frozen = micro.get("mutation_frozen")
    stream = micro.get("mutation_stream")
    if frozen is None or stream is None:
        errors.append(
            "micro set lacks the mutation_frozen/mutation_stream pair — "
            "regenerate with bench/baseline_runner")
        return
    limit = frozen["sim_seconds"] * (1.0 + MUTATION_OVERHEAD_MAX_PCT / 100.0)
    if stream["sim_seconds"] > limit:
        errors.append(
            f"mutation_stream sim_seconds {stream['sim_seconds']!r} is more "
            f"than {MUTATION_OVERHEAD_MAX_PCT:g}% slower than "
            f"mutation_frozen {frozen['sim_seconds']!r}: the delta-overlay "
            f"scan is no longer cheap — check SubgraphShard::compact "
            f"scheduling and the merged-scan fast path before recommitting")


def check_failover_gate(data, errors):
    """under_kill p99 must stay within 3x of steady p99.

    Both arms serve the identical seeded arrival stream through a
    2-replica router in the simulated clock domain; the under_kill arm
    additionally absorbs one replica death mid-batch. The bound is the
    "replica loss degrades latency boundedly, never correctness" claim of
    DESIGN.md §14 (correctness — every query completing bit-exact — is
    CHECKed inside bench/baseline_runner itself). The arm is required: an
    artifact without it predates the replication layer and must be
    regenerated with bench/baseline_runner.
    """
    failover = data.get("failover")
    if not isinstance(failover, dict):
        errors.append(
            "artifact lacks the failover arm — regenerate with "
            "bench/baseline_runner")
        return
    steady = failover.get("steady", {}).get("p99_sim_seconds", 0)
    under_kill = failover.get("under_kill", {}).get("p99_sim_seconds", 0)
    if steady <= 0:
        errors.append("failover.steady.p99_sim_seconds is not positive")
        return
    if under_kill > steady * FAILOVER_P99_MAX_RATIO:
        errors.append(
            f"failover.under_kill.p99_sim_seconds {under_kill!r} exceeds "
            f"{FAILOVER_P99_MAX_RATIO:g}x steady-state p99 {steady!r}: "
            f"replica failover is no longer a bounded latency hit — check "
            f"the checkpoint-adoption path (ReplicaRouter::adopt and the "
            f"cut-step selection) before recommitting")


def check_file(path, schemas, args):
    errors = []
    notes = []
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: cannot parse: {exc}"], notes
    bench = data.get("bench")
    schema = schemas.get(bench)
    if schema is None:
        return [f"{path}: unknown bench kind {bench!r} "
                f"(schemas: "
                f"{sorted(k for k in schemas if not k.startswith('_'))})"], \
               notes
    validate(data, schema, bench, errors)
    if errors:
        return [f"{path}: {e}" for e in errors], notes

    if bench == "trace_overhead" and args.strict_overhead:
        pct = data["disabled_overhead_pct"]
        if pct > STRICT_OVERHEAD_MAX_PCT:
            errors.append(
                f"disabled_overhead_pct {pct:.3f} exceeds the "
                f"{STRICT_OVERHEAD_MAX_PCT:g}% gate: the tracer-off path is "
                f"no longer free — rerun bench/baseline_runner on a quiet "
                f"host, and if it reproduces, fix the hot path before "
                f"recommitting")
    if bench == "fig12_open_loop":
        check_hybrid_gate(data, errors)
        check_index_gate(data, errors)
        check_mutation_gate(data, errors)
        check_failover_gate(data, errors)
    if bench == "fig12_open_loop" and args.baseline:
        try:
            with open(args.baseline, encoding="utf-8") as f:
                committed = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"cannot parse baseline {args.baseline}: {exc}")
        else:
            compare_fig12(data, committed, args.tolerance_pct, errors, notes)
    return [f"{path}: {e}" for e in errors], [f"{path}: {n}" for n in notes]


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="BENCH_*.json files")
    parser.add_argument("--schema", required=True,
                        help="path to bench/bench_schema.json")
    parser.add_argument("--baseline",
                        help="committed BENCH_fig12.json to diff against")
    parser.add_argument("--tolerance-pct", type=float, default=20.0,
                        help="allowed drift vs baseline (default 20)")
    parser.add_argument("--strict-overhead", action="store_true",
                        help=f"fail trace_overhead files whose disabled "
                             f"overhead exceeds {STRICT_OVERHEAD_MAX_PCT}%%")
    args = parser.parse_args(argv)

    with open(args.schema, encoding="utf-8") as f:
        schemas = json.load(f)

    failures = []
    for path in args.files:
        file_failures, file_notes = check_file(path, schemas, args)
        failures.extend(file_failures)
        for note in file_notes:
            print(f"validate_bench: SKIP {note}")
    for failure in failures:
        print(f"validate_bench: FAIL {failure}", file=sys.stderr)
    if not failures:
        print(f"validate_bench: OK ({len(args.files)} file(s))")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
