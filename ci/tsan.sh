#!/usr/bin/env sh
# ThreadSanitizer variant of the test suite: builds everything with
# -fsanitize=thread and runs the unit, chaos, recovery, and service
# suites with intra-machine compute pools forced on (CGRAPH_THREADS=4).
# Machines are threads, and with pools each machine fans its per-level
# scans out to four more — the relaxed-atomic OR discovery, deferred
# visited commits, per-query scatter ownership, fault-injected delivery
# paths, the crash/rollback/replay machinery (checkpoint saves at
# barriers, the cluster-wide crash flag, restore while every machine
# unwinds), and the service layer's pipelined admission/executor handoff
# (test_service runs its batches on a worker thread overlapped with
# admission) all run under TSan here. The bench label adds the committed-
# baseline smoke run, whose enabled arm drives the per-thread tracer rings
# while four compute threads record concurrently. test_hybrid (labels
# unit+chaos+recovery) puts the bottom-up scan's single-writer pull rows
# next to the cross-partition push's atomic ORs under the same pools.
# test_index (same labels) shares the immutable ReachIndex across the
# admission thread's bypass probes and the executor's fallback resolution
# while the service pipeline overlaps them. The replica label runs the
# replicated-serving suite: router failovers resume the dead replica's
# checkpoint cut on a survivor while that survivor's own compute pools
# and the service pipeline are live. The mutation label runs the
# streaming-mutation differential suite: the merged base+delta scans and
# the serial extras pass execute under the same four-thread pools that
# race the relaxed-atomic discovery ORs, and the epoch handshake
# (ReachIndex::observe_epoch's relaxed CAS) runs against concurrent
# probes.
#
# Usage: ci/tsan.sh [build-dir]   (default: build-tsan)
set -eu

BUILD_DIR="${1:-build-tsan}"
SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DCGRAPH_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)"
CGRAPH_THREADS=4 ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -L 'unit|chaos|recovery|service|replica|bench|mutation'
