#!/usr/bin/env sh
# ThreadSanitizer variant of the test suite: builds the concurrency-heavy
# targets with -fsanitize=thread and runs them under ctest. The obs
# registry, cluster barrier telemetry, and scheduler all bump shared state
# from worker threads; this catches data races the regular suite cannot.
#
# Usage: ci/tsan.sh [build-dir]   (default: build-tsan)
set -eu

BUILD_DIR="${1:-build-tsan}"
SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DCGRAPH_SANITIZE=thread
cmake --build "$BUILD_DIR" --target test_obs test_scheduler test_chaos \
  -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R '^(test_obs|test_scheduler|test_chaos)$'
