#!/usr/bin/env sh
# UndefinedBehaviorSanitizer variant of the test suite: builds with
# -fsanitize=undefined -fno-sanitize-recover so any UB aborts the test.
# The recovery paths are the motivating load: checkpoint blobs are raw
# byte serializations read back through PacketReader casts, the crash
# schedule mixes 64-bit keys with shifts, and the ingestion hardening
# rejects inputs whose arithmetic would otherwise overflow — UBSan proves
# the "rejected loudly, not wrapped silently" claim.
#
# Usage: ci/ubsan.sh [build-dir]   (default: build-ubsan)
set -eu

BUILD_DIR="${1:-build-ubsan}"
SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DCGRAPH_SANITIZE=undefined
cmake --build "$BUILD_DIR" --target test_io test_net test_cluster \
  test_recovery test_chaos -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R '^(test_io|test_net|test_cluster|test_recovery|test_chaos)$'
