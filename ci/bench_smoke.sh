#!/usr/bin/env sh
# Perf-baseline gate: proves the committed BENCH_*.json artifacts are
# honest. Three steps:
#
#   1. Schema-validate the committed artifacts (ci/validate_bench.py,
#      stdlib-only), including the <=2% tracer-off overhead gate on the
#      committed BENCH_trace_overhead.json.
#   2. Rebuild bench/baseline_runner and regenerate the fig12 sweep with
#      the identical (full) configuration.
#   3. Diff the fresh sweep against the committed one with a 20% drift
#      gate. Every compared metric is simulated-clock, so the diff is
#      exactly zero on an unchanged tree — drift means engine behavior
#      changed and the baseline must be regenerated deliberately.
#
# The fresh trace-overhead artifact is schema-validated but not gated:
# wall-clock spreads on a loaded CI host are not evidence about the code.
#
# Usage: ci/bench_smoke.sh [build-dir]   (default: build-bench)
set -eu

BUILD_DIR="${1:-build-bench}"
SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
SCHEMA="$SRC_DIR/bench/bench_schema.json"

python3 "$SRC_DIR/ci/validate_bench.py" --schema "$SCHEMA" \
  "$SRC_DIR/BENCH_fig12.json"
python3 "$SRC_DIR/ci/validate_bench.py" --schema "$SCHEMA" \
  --strict-overhead "$SRC_DIR/BENCH_trace_overhead.json"

# Unit check: a committed baseline that lacks an arm the candidate has
# (the normal state right after baseline_runner grows a new sweep) must be
# a reported skip with exit 0, never a KeyError traceback. Exercise it by
# diffing the committed artifact against a copy with one micro arm and one
# rate row removed.
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT INT TERM
python3 - "$SRC_DIR/BENCH_fig12.json" "$TMP_DIR/baseline_missing_arm.json" <<'EOF'
import json, sys
with open(sys.argv[1], encoding="utf-8") as f:
    data = json.load(f)
data["micro"] = [m for m in data.get("micro", [])
                 if m.get("name") != "index_hit"]
data["rows"] = data.get("rows", [])[1:]
with open(sys.argv[2], "w", encoding="utf-8") as f:
    json.dump(data, f)
EOF
MISSING_OUT="$TMP_DIR/missing_arm.out"
python3 "$SRC_DIR/ci/validate_bench.py" --schema "$SCHEMA" \
  --baseline "$TMP_DIR/baseline_missing_arm.json" \
  "$SRC_DIR/BENCH_fig12.json" >"$MISSING_OUT" 2>&1 || {
    echo "bench smoke: FAIL missing-arm baseline must not fail the gate" >&2
    cat "$MISSING_OUT" >&2
    exit 1
  }
grep -q "validate_bench: SKIP" "$MISSING_OUT" || {
    echo "bench smoke: FAIL missing-arm baseline must report a skip" >&2
    cat "$MISSING_OUT" >&2
    exit 1
  }
echo "bench smoke: missing-arm skip check OK"

cmake -B "$BUILD_DIR" -S "$SRC_DIR"
cmake --build "$BUILD_DIR" --target baseline_runner -j "$(nproc)"

OUT_DIR="$BUILD_DIR/bench-baseline"
"$BUILD_DIR/bench/baseline_runner" --out-dir "$OUT_DIR"

python3 "$SRC_DIR/ci/validate_bench.py" --schema "$SCHEMA" \
  --baseline "$SRC_DIR/BENCH_fig12.json" --tolerance-pct 20 \
  "$OUT_DIR/BENCH_fig12.json"
python3 "$SRC_DIR/ci/validate_bench.py" --schema "$SCHEMA" \
  "$OUT_DIR/BENCH_trace_overhead.json"

echo "bench smoke: OK"
