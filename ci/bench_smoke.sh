#!/usr/bin/env sh
# Perf-baseline gate: proves the committed BENCH_*.json artifacts are
# honest. Three steps:
#
#   1. Schema-validate the committed artifacts (ci/validate_bench.py,
#      stdlib-only), including the <=2% tracer-off overhead gate on the
#      committed BENCH_trace_overhead.json.
#   2. Rebuild bench/baseline_runner and regenerate the fig12 sweep with
#      the identical (full) configuration.
#   3. Diff the fresh sweep against the committed one with a 20% drift
#      gate. Every compared metric is simulated-clock, so the diff is
#      exactly zero on an unchanged tree — drift means engine behavior
#      changed and the baseline must be regenerated deliberately.
#
# The fresh trace-overhead artifact is schema-validated but not gated:
# wall-clock spreads on a loaded CI host are not evidence about the code.
#
# Usage: ci/bench_smoke.sh [build-dir]   (default: build-bench)
set -eu

BUILD_DIR="${1:-build-bench}"
SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
SCHEMA="$SRC_DIR/bench/bench_schema.json"

python3 "$SRC_DIR/ci/validate_bench.py" --schema "$SCHEMA" \
  "$SRC_DIR/BENCH_fig12.json"
python3 "$SRC_DIR/ci/validate_bench.py" --schema "$SCHEMA" \
  --strict-overhead "$SRC_DIR/BENCH_trace_overhead.json"

cmake -B "$BUILD_DIR" -S "$SRC_DIR"
cmake --build "$BUILD_DIR" --target baseline_runner -j "$(nproc)"

OUT_DIR="$BUILD_DIR/bench-baseline"
"$BUILD_DIR/bench/baseline_runner" --out-dir "$OUT_DIR"

python3 "$SRC_DIR/ci/validate_bench.py" --schema "$SCHEMA" \
  --baseline "$SRC_DIR/BENCH_fig12.json" --tolerance-pct 20 \
  "$OUT_DIR/BENCH_fig12.json"
python3 "$SRC_DIR/ci/validate_bench.py" --schema "$SCHEMA" \
  "$OUT_DIR/BENCH_trace_overhead.json"

echo "bench smoke: OK"
