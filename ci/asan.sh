#!/usr/bin/env sh
# AddressSanitizer variant of the test suite: builds the memory-heavy
# targets with -fsanitize=address and runs them under ctest. The fault
# layer moves packets through retry/dedup/limbo paths that reuse and free
# payload buffers aggressively; this catches lifetime bugs the regular
# suite cannot.
#
# Usage: ci/asan.sh [build-dir]   (default: build-asan)
set -eu

BUILD_DIR="${1:-build-asan}"
SRC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DCGRAPH_SANITIZE=address
cmake --build "$BUILD_DIR" --target test_obs test_scheduler test_chaos \
  test_hybrid test_index test_replica test_mutation baseline_runner \
  -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R '^(test_obs|test_scheduler|test_chaos|test_hybrid|test_index|test_replica|test_mutation|bench_baseline_smoke)$'
