// C-Graph public umbrella header.
//
// Typical usage (see examples/quickstart.cpp):
//
//   Graph g = Graph::build(std::move(edges));
//   auto part = RangePartition::balanced_by_edges(g, 4);
//   auto shards = build_shards(g, part);
//   Cluster cluster(4);
//   auto queries = make_random_queries(g, 100, /*k=*/3);
//   auto run = run_concurrent_queries(cluster, shards, part, queries);
#pragma once

#include "algo/constrained_reach.hpp"
#include "algo/sssp.hpp"
#include "algo/triangles.hpp"
#include "algo/wcc.hpp"
#include "baseline/geminilike.hpp"
#include "baseline/kvstore.hpp"
#include "baseline/titanlike.hpp"
#include "engine/bsp_engine.hpp"
#include "engine/gas.hpp"
#include "engine/pagerank.hpp"
#include "engine/partition_context.hpp"
#include "engine/vertex_program.hpp"
#include "gen/arrivals.hpp"
#include "gen/datasets.hpp"
#include "gen/random_graphs.hpp"
#include "gen/rmat.hpp"
#include "graph/csr.hpp"
#include "graph/degree_stats.hpp"
#include "graph/edge_list.hpp"
#include "graph/edge_set.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "graph/shard.hpp"
#include "graph/types.hpp"
#include "metrics/reporter.hpp"
#include "metrics/response.hpp"
#include "net/cluster.hpp"
#include "net/cost_model.hpp"
#include "net/fabric.hpp"
#include "net/serialize.hpp"
#include "obs/event_tracer.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "query/async_khop.hpp"
#include "query/bfs.hpp"
#include "query/distributed_khop.hpp"
#include "query/frontier.hpp"
#include "query/khop_program.hpp"
#include "query/msbfs.hpp"
#include "query/paths.hpp"
#include "query/query.hpp"
#include "query/scheduler.hpp"
#include "query/service.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
