// Edge-set based graph representation (paper §3.2).
//
// A partition's out-edges are tiled into a blocked adjacency matrix: rows
// are contiguous ranges of *local source* vertices, columns are contiguous
// ranges of *global destination* vertices. Each non-empty block is an
// EdgeSet — a mini-CSR whose working set (vertex values + edges) is sized
// to fit the last-level cache. Traversing out-edges scans a row of blocks
// left-to-right, so destination writes land in one column stripe at a time.
//
// Real graphs are sparse, so many blocks are tiny; adjacent small blocks
// are *consolidated* (merged) horizontally along a row — and, because the
// in-edge grid is built over reversed edges, the same mechanism provides
// the paper's vertical consolidation for parent gathering.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "graph/edge.hpp"
#include "graph/types.hpp"
#include "util/assert.hpp"

namespace cgraph {

/// One block of the blocked adjacency matrix: edges whose source lies in
/// `src_range` and destination in `dst_range`, stored as CSR over the local
/// row offset (src - src_range.begin).
class EdgeSet {
 public:
  EdgeSet() = default;

  [[nodiscard]] const VertexRange& src_range() const { return src_range_; }
  [[nodiscard]] const VertexRange& dst_range() const { return dst_range_; }
  [[nodiscard]] EdgeIndex num_edges() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }

  /// Out-neighbors (global destination ids) of global source vertex s.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId s) const {
    CGRAPH_DCHECK(src_range_.contains(s));
    const VertexId r = s - src_range_.begin;
    return {dsts_.data() + offsets_[r],
            static_cast<std::size_t>(offsets_[r + 1] - offsets_[r])};
  }

  [[nodiscard]] std::span<const Weight> weights_of(VertexId s) const {
    CGRAPH_DCHECK(!weights_.empty());
    const VertexId r = s - src_range_.begin;
    return {weights_.data() + offsets_[r],
            static_cast<std::size_t>(offsets_[r + 1] - offsets_[r])};
  }

  [[nodiscard]] bool has_weights() const { return !weights_.empty(); }

  [[nodiscard]] std::size_t memory_bytes() const {
    return offsets_.size() * sizeof(EdgeIndex) +
           dsts_.size() * sizeof(VertexId) + weights_.size() * sizeof(Weight);
  }

 private:
  friend class EdgeSetGrid;
  VertexRange src_range_;
  VertexRange dst_range_;
  std::vector<EdgeIndex> offsets_;  // size src_range.size()+1
  std::vector<VertexId> dsts_;      // global destination ids
  std::vector<Weight> weights_;     // optional, parallel to dsts_
};

/// The full tiled representation of one partition's out- (or reversed
/// in-) edges, organized row-major for left-to-right scans.
struct EdgeSetOptions {
  /// Per-block working set target; blocks are sized so vertex values plus
  /// edge targets stay within this many bytes (the paper sizes to LLC).
  std::size_t target_bytes = 2u << 20;
  /// Blocks with fewer edges than this are merged into their horizontal
  /// neighbor during consolidation.
  EdgeIndex min_edges_per_set = 256;
  bool consolidate = true;
  bool with_weights = false;
};

class EdgeSetGrid {
 public:
  using Options = EdgeSetOptions;

  EdgeSetGrid() = default;

  /// Build from edges with sources inside `src_range` and destinations in
  /// the global space [0, num_global_vertices). `edges` need not be sorted.
  static EdgeSetGrid build(VertexRange src_range,
                           VertexId num_global_vertices,
                           std::span<const Edge> edges,
                           const Options& opts = {});

  [[nodiscard]] const VertexRange& src_range() const { return src_range_; }
  [[nodiscard]] std::size_t num_rows() const {
    return row_begin_.empty() ? 0 : row_begin_.size() - 1;
  }
  [[nodiscard]] std::size_t num_sets() const { return sets_.size(); }
  [[nodiscard]] EdgeIndex num_edges() const { return num_edges_; }

  /// Row r's source vertex range (all its blocks share it).
  [[nodiscard]] const VertexRange& row_range(std::size_t r) const {
    CGRAPH_DCHECK(r < row_ranges_.size());
    return row_ranges_[r];
  }

  /// Blocks of row r, ordered by ascending destination range.
  [[nodiscard]] std::span<const EdgeSet> row_sets(std::size_t r) const {
    CGRAPH_DCHECK(r + 1 < row_begin_.size());
    return {sets_.data() + row_begin_[r], row_begin_[r + 1] - row_begin_[r]};
  }

  [[nodiscard]] const std::vector<EdgeSet>& sets() const { return sets_; }

  /// Flat-index block access for parallel range scans: blocks are numbered
  /// row-major in [0, num_sets()), so a parallel_for over flat indices
  /// partitions the whole grid into cache-sized units of work.
  [[nodiscard]] const EdgeSet& set_at(std::size_t i) const {
    CGRAPH_DCHECK(i < sets_.size());
    return sets_[i];
  }

  /// Row index of flat block i (gives the block's source vertex range via
  /// row_range()). O(log rows).
  [[nodiscard]] std::size_t row_of_set(std::size_t i) const;

  /// Row index containing global source vertex s.
  [[nodiscard]] std::size_t row_of(VertexId s) const;

  /// Scan all out-neighbors of global source s (may span several blocks in
  /// one row). fn(dst).
  template <typename Fn>
  void for_each_neighbor(VertexId s, Fn&& fn) const {
    const std::size_t r = row_of(s);
    for (const EdgeSet& es : row_sets(r)) {
      for (VertexId t : es.neighbors(s)) fn(t);
    }
  }

  /// Weighted scan: fn(dst, weight). Unweighted grids report weight 1.
  template <typename Fn>
  void for_each_edge(VertexId s, Fn&& fn) const {
    const std::size_t r = row_of(s);
    for (const EdgeSet& es : row_sets(r)) {
      const auto nbrs = es.neighbors(s);
      if (es.has_weights()) {
        const auto ws = es.weights_of(s);
        for (std::size_t i = 0; i < nbrs.size(); ++i) fn(nbrs[i], ws[i]);
      } else {
        for (VertexId t : nbrs) fn(t, Weight{1});
      }
    }
  }

  [[nodiscard]] std::size_t memory_bytes() const;

  struct Stats {
    std::size_t sets = 0;
    std::size_t rows = 0;
    EdgeIndex edges = 0;
    double avg_edges_per_set = 0;
    EdgeIndex min_set_edges = 0;
    EdgeIndex max_set_edges = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  VertexRange src_range_;
  EdgeIndex num_edges_ = 0;
  std::vector<EdgeSet> sets_;            // row-major
  std::vector<std::size_t> row_begin_;   // size rows+1, index into sets_
  std::vector<VertexRange> row_ranges_;  // size rows
};

}  // namespace cgraph
