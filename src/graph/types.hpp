// Fundamental graph identifier and property types.
//
// Vertex ids are dense 32-bit indices after ingestion re-indexing (paper
// §3.1); 4 G vertices is far beyond what this reproduction hosts. Edge
// counts use 64 bits since edge arrays routinely exceed 4 G entries in the
// paper's setting.
#pragma once

#include <cstdint>
#include <limits>

namespace cgraph {

using VertexId = std::uint32_t;
using EdgeIndex = std::uint64_t;
using Weight = float;
using PartitionId = std::uint32_t;
using QueryId = std::uint32_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr PartitionId kInvalidPartition =
    std::numeric_limits<PartitionId>::max();

/// Depth/level in a traversal. 255 = unvisited sentinel in compact stores.
using Depth = std::uint8_t;
inline constexpr Depth kUnvisitedDepth = std::numeric_limits<Depth>::max();

/// Half-open contiguous vertex range [begin, end) — the unit of range-based
/// partitioning and of edge-set tiling.
struct VertexRange {
  VertexId begin = 0;
  VertexId end = 0;

  [[nodiscard]] constexpr VertexId size() const { return end - begin; }
  [[nodiscard]] constexpr bool contains(VertexId v) const {
    return v >= begin && v < end;
  }
  [[nodiscard]] constexpr bool empty() const { return begin >= end; }

  friend constexpr bool operator==(const VertexRange&,
                                   const VertexRange&) = default;
};

}  // namespace cgraph
