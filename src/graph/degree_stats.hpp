// Degree-distribution statistics: the summary numbers graph papers (this
// one included) quote about their datasets — average degree, maximum,
// percentiles, and a log-binned histogram for eyeballing the power law.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace cgraph {

struct DegreeStats {
  EdgeIndex min = 0;
  EdgeIndex max = 0;
  double mean = 0;
  double p50 = 0, p90 = 0, p99 = 0;
  std::uint64_t zero_degree_vertices = 0;
  /// log2-binned counts: bin i holds vertices with degree in [2^i, 2^(i+1)).
  std::vector<std::uint64_t> log2_histogram;
};

/// Out-degree stats (pass the in_csr for in-degree stats).
DegreeStats compute_degree_stats(const Csr& csr);

/// Render as "deg: mean 27.5 p50 11 p90 71 p99 402 max 4123 (zeros 12%)"
/// plus one histogram row per populated bin.
std::string degree_stats_to_string(const DegreeStats& stats);

}  // namespace cgraph
