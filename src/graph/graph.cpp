#include "graph/graph.hpp"

#include <cstdio>

#include "util/table.hpp"

namespace cgraph {

Graph Graph::build(EdgeList edges, const BuildOptions& opts) {
  const VertexId n = edges.max_vertex_plus_one();
  return build(std::move(edges), n, opts);
}

Graph Graph::build(EdgeList edges, VertexId num_vertices,
                   const BuildOptions& opts) {
  if (opts.remove_self_loops) edges.remove_self_loops();
  if (opts.symmetrize) edges.add_reverse_edges();
  edges.sort_and_dedup();

  Graph g;
  g.num_vertices_ = num_vertices;
  g.out_ = Csr::from_edges(num_vertices, edges.edges(), opts.with_weights);
  if (opts.build_in_edges) {
    g.in_ = Csr::from_edges_reversed(num_vertices, edges.edges(),
                                     opts.with_weights);
  }
  return g;
}

std::string Graph::summary() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "V=%s E=%s avg_deg=%.1f",
                AsciiTable::humanize(num_vertices_).c_str(),
                AsciiTable::humanize(num_edges()).c_str(), average_degree());
  return buf;
}

}  // namespace cgraph
