#include "graph/csr.hpp"

#include <algorithm>

namespace cgraph {

// Counting-sort construction: one pass to count degrees, one to place.
// O(V + E), no comparison sort of the full edge array required.
Csr Csr::build(VertexId num_rows, VertexId num_cols,
               std::span<const Edge> edges, bool with_weights,
               bool reversed) {
  struct Access {
    bool rev;
    VertexId src(const Edge& e) const { return rev ? e.dst : e.src; }
    VertexId dst(const Edge& e) const { return rev ? e.src : e.dst; }
  } ax{reversed};

  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(num_rows) + 1, 0);
  for (const Edge& e : edges) {
    CGRAPH_CHECK_MSG(ax.src(e) < num_rows && ax.dst(e) < num_cols,
                     "edge endpoint out of vertex range");
    ++offsets[ax.src(e) + 1];
  }
  for (std::size_t v = 0; v < num_rows; ++v) offsets[v + 1] += offsets[v];

  std::vector<VertexId> targets(edges.size());
  std::vector<Weight> weights;
  if (with_weights) weights.resize(edges.size());

  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    const EdgeIndex pos = cursor[ax.src(e)]++;
    targets[pos] = ax.dst(e);
    if (with_weights) weights[pos] = e.weight;
  }

  // Sort each row so neighbors() is ordered and has_edge() can bisect.
  for (VertexId v = 0; v < num_rows; ++v) {
    const auto b = static_cast<std::ptrdiff_t>(offsets[v]);
    const auto e = static_cast<std::ptrdiff_t>(offsets[v + 1]);
    if (with_weights) {
      // Keep weights parallel: sort an index permutation of the row.
      const auto len = static_cast<std::size_t>(e - b);
      if (len > 1) {
        std::vector<std::pair<VertexId, Weight>> row(len);
        for (std::size_t i = 0; i < len; ++i)
          row[i] = {targets[b + static_cast<std::ptrdiff_t>(i)],
                    weights[b + static_cast<std::ptrdiff_t>(i)]};
        std::sort(row.begin(), row.end());
        for (std::size_t i = 0; i < len; ++i) {
          targets[b + static_cast<std::ptrdiff_t>(i)] = row[i].first;
          weights[b + static_cast<std::ptrdiff_t>(i)] = row[i].second;
        }
      }
    } else {
      std::sort(targets.begin() + b, targets.begin() + e);
    }
  }

  Csr csr;
  csr.offsets_ = std::move(offsets);
  csr.targets_ = std::move(targets);
  csr.weights_ = std::move(weights);
  return csr;
}

Csr Csr::from_edges(VertexId num_vertices, std::span<const Edge> edges,
                    bool with_weights) {
  return build(num_vertices, num_vertices, edges, with_weights,
               /*reversed=*/false);
}

Csr Csr::from_edges_reversed(VertexId num_vertices,
                             std::span<const Edge> edges, bool with_weights) {
  return build(num_vertices, num_vertices, edges, with_weights,
               /*reversed=*/true);
}

Csr Csr::from_edges_rect(VertexId num_rows, VertexId num_cols,
                         std::span<const Edge> edges, bool with_weights) {
  return build(num_rows, num_cols, edges, with_weights, /*reversed=*/false);
}

bool Csr::has_edge(VertexId v, VertexId t) const {
  const auto nbrs = neighbors(v);
  return std::binary_search(nbrs.begin(), nbrs.end(), t);
}

}  // namespace cgraph
