// Raw directed edge record as produced by generators and file loaders,
// before conversion to CSR/CSC/edge-set forms.
#pragma once

#include "graph/types.hpp"

namespace cgraph {

struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = 1.0f;

  friend constexpr bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst;  // weight excluded: dedup key
  }
};

/// Source-major, destination-minor ordering used before CSR construction.
struct EdgeLess {
  constexpr bool operator()(const Edge& a, const Edge& b) const {
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  }
};

}  // namespace cgraph
