#include "graph/io.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace cgraph {
namespace {

constexpr char kBinaryMagic[8] = {'C', 'G', 'R', 'A', 'P', 'H', '0', '1'};

LoadResult parse_stream(std::istream& in, bool reindex) {
  LoadResult result;
  std::size_t lineno = 0;
  auto intern = [&](std::uint64_t raw) -> VertexId {
    if (!reindex) {
      // Without re-indexing the raw id IS the VertexId; a raw id that
      // doesn't fit would silently truncate and alias another vertex.
      if (raw >= std::numeric_limits<VertexId>::max()) {
        throw std::runtime_error("vertex id " + std::to_string(raw) +
                                 " does not fit VertexId (line " +
                                 std::to_string(lineno) + ")");
      }
      result.num_vertices =
          std::max<VertexId>(result.num_vertices, static_cast<VertexId>(raw) + 1);
      return static_cast<VertexId>(raw);
    }
    auto [it, inserted] =
        result.id_map.try_emplace(raw, static_cast<VertexId>(result.id_map.size()));
    if (inserted) result.num_vertices = static_cast<VertexId>(result.id_map.size());
    return it->second;
  };

  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::uint64_t s = 0, t = 0;
    double w = 1.0;
    std::istringstream ls(line);
    std::string ts, tt;
    if (!(ls >> ts >> tt)) continue;  // tolerate malformed lines
    // A negative id would wrap through the unsigned parse into a bogus
    // (usually enormous) vertex — reject it loudly instead.
    if (ts[0] == '-' || tt[0] == '-') {
      throw std::runtime_error("negative vertex id (line " +
                               std::to_string(lineno) + ")");
    }
    {
      std::istringstream is(ts), it(tt);
      if (!(is >> s) || !(it >> t)) continue;  // non-numeric: tolerated
    }
    ls >> w;  // optional weight
    // Intern in source-then-destination order (function argument
    // evaluation order is unspecified).
    const VertexId src = intern(s);
    const VertexId dst = intern(t);
    result.edges.add(src, dst, static_cast<Weight>(w));
  }
  return result;
}

}  // namespace

LoadResult load_edge_list_text(const std::string& path, bool reindex) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  return parse_stream(in, reindex);
}

LoadResult parse_edge_list(const std::string& text, bool reindex) {
  std::istringstream in(text);
  return parse_stream(in, reindex);
}

void save_edge_list_text(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write: " + path);
  bool uniform_weights = true;
  for (const Edge& e : edges) {
    if (e.weight != 1.0f) {
      uniform_weights = false;
      break;
    }
  }
  out << "# cgraph edge list, " << edges.size() << " edges\n";
  for (const Edge& e : edges) {
    out << e.src << ' ' << e.dst;
    if (!uniform_weights) out << ' ' << e.weight;
    out << '\n';
  }
  if (!out) throw std::runtime_error("short write: " + path);
}

void save_edge_list_binary(const std::string& path, const EdgeList& edges,
                           VertexId num_vertices) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write: " + path);
  out.write(kBinaryMagic, sizeof kBinaryMagic);
  const std::uint64_t v = num_vertices;
  const std::uint64_t e = edges.size();
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
  out.write(reinterpret_cast<const char*>(&e), sizeof e);
  out.write(reinterpret_cast<const char*>(edges.edges().data()),
            static_cast<std::streamsize>(e * sizeof(Edge)));
  if (!out) throw std::runtime_error("short write: " + path);
}

LoadResult load_edge_list_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open: " + path);
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof magic) != 0)
    throw std::runtime_error("bad magic in: " + path);
  std::uint64_t v = 0, e = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  in.read(reinterpret_cast<char*>(&e), sizeof e);
  if (!in) throw std::runtime_error("truncated header in: " + path);

  if (v > std::numeric_limits<VertexId>::max()) {
    throw std::runtime_error("vertex count " + std::to_string(v) +
                             " does not fit VertexId in: " + path);
  }
  // Validate the edge count against the actual file size before resizing:
  // a corrupt header would otherwise drive a huge allocation (or overflow
  // e * sizeof(Edge) entirely).
  const std::istream::pos_type body_pos = in.tellg();
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end_pos = in.tellg();
  if (body_pos == std::istream::pos_type(-1) ||
      end_pos == std::istream::pos_type(-1)) {
    throw std::runtime_error("cannot determine size of: " + path);
  }
  const auto body_bytes = static_cast<std::uint64_t>(end_pos - body_pos);
  if (e > std::numeric_limits<std::uint64_t>::max() / sizeof(Edge) ||
      e * sizeof(Edge) > body_bytes) {
    throw std::runtime_error("edge count " + std::to_string(e) +
                             " exceeds file size in: " + path);
  }
  in.seekg(body_pos);

  LoadResult result;
  result.num_vertices = static_cast<VertexId>(v);
  result.edges.edges().resize(e);
  in.read(reinterpret_cast<char*>(result.edges.edges().data()),
          static_cast<std::streamsize>(e * sizeof(Edge)));
  if (!in) throw std::runtime_error("truncated edge data in: " + path);
  for (const Edge& edge : result.edges) {
    if (edge.src >= v || edge.dst >= v) {
      throw std::runtime_error("edge endpoint out of range (V=" +
                               std::to_string(v) + ") in: " + path);
    }
  }
  return result;
}

}  // namespace cgraph
