#include "graph/edge_set.hpp"

#include <algorithm>

namespace cgraph {
namespace {

// Estimated bytes a block's working set occupies per edge (target id) and
// per source vertex (offset + value).
constexpr std::size_t kBytesPerEdge = sizeof(VertexId);
constexpr std::size_t kBytesPerVertex = sizeof(EdgeIndex) + sizeof(float);

// Split [range) into chunks whose accumulated degree keeps the estimated
// working set under `target_bytes` (paper: "divide the vertices ... by
// evenly distributing the degrees").
std::vector<VertexRange> split_by_degree(VertexRange range,
                                         std::span<const EdgeIndex> degrees,
                                         std::size_t target_bytes) {
  std::vector<VertexRange> out;
  VertexId begin = range.begin;
  std::size_t acc_bytes = 0;
  for (VertexId v = range.begin; v < range.end; ++v) {
    const std::size_t vertex_bytes =
        kBytesPerVertex +
        static_cast<std::size_t>(degrees[v - range.begin]) * kBytesPerEdge;
    if (acc_bytes > 0 && acc_bytes + vertex_bytes > target_bytes) {
      out.push_back({begin, v});
      begin = v;
      acc_bytes = 0;
    }
    acc_bytes += vertex_bytes;
  }
  if (begin < range.end || out.empty()) out.push_back({begin, range.end});
  return out;
}

}  // namespace

EdgeSetGrid EdgeSetGrid::build(VertexRange src_range,
                               VertexId num_global_vertices,
                               std::span<const Edge> edges,
                               const Options& opts) {
  EdgeSetGrid grid;
  grid.src_range_ = src_range;
  grid.num_edges_ = edges.size();

  // --- Pass 1: local source degrees, then derive the row ranges. ---
  std::vector<EdgeIndex> local_deg(src_range.size(), 0);
  for (const Edge& e : edges) {
    CGRAPH_CHECK_MSG(src_range.contains(e.src),
                     "edge source outside grid source range");
    CGRAPH_CHECK_MSG(e.dst < num_global_vertices,
                     "edge destination outside global range");
    ++local_deg[e.src - src_range.begin];
  }
  grid.row_ranges_ = split_by_degree(src_range, local_deg, opts.target_bytes);

  // Destination stripes: uniform division of the global space into roughly
  // sqrt(#rows-worth) stripes sized against the same byte target. A stripe
  // bounds the span of destination writes while scanning one block.
  const std::size_t want_stripes = std::max<std::size_t>(
      1, (static_cast<std::size_t>(num_global_vertices) * kBytesPerVertex +
          opts.target_bytes - 1) /
             opts.target_bytes);
  const VertexId stripe_width = static_cast<VertexId>(std::max<std::size_t>(
      1, (num_global_vertices + want_stripes - 1) / want_stripes));
  const std::size_t num_stripes =
      (static_cast<std::size_t>(num_global_vertices) + stripe_width - 1) /
      std::max<VertexId>(stripe_width, 1);

  auto stripe_of = [&](VertexId dst) -> std::size_t {
    return dst / stripe_width;
  };
  auto row_of_src = [&](VertexId src) -> std::size_t {
    auto it = std::upper_bound(
        grid.row_ranges_.begin(), grid.row_ranges_.end(), src,
        [](VertexId x, const VertexRange& r) { return x < r.begin; });
    return static_cast<std::size_t>(it - grid.row_ranges_.begin() - 1);
  };

  // --- Pass 2: bucket edges into (row, stripe) cells. ---
  const std::size_t nrows = grid.row_ranges_.size();
  std::vector<std::vector<Edge>> cells(nrows * std::max<std::size_t>(
                                                   num_stripes, 1));
  for (const Edge& e : edges) {
    const std::size_t r = row_of_src(e.src);
    const std::size_t c = stripe_of(e.dst);
    cells[r * num_stripes + c].push_back(e);
  }

  // --- Pass 3: per row, consolidate small adjacent cells, emit EdgeSets.---
  grid.row_begin_.assign(nrows + 1, 0);
  for (std::size_t r = 0; r < nrows; ++r) {
    grid.row_begin_[r] = grid.sets_.size();
    const VertexRange row_range = grid.row_ranges_[r];

    std::size_t c = 0;
    while (c < num_stripes) {
      // Gather a run of stripes: at least one, extended while consolidation
      // is on and the accumulated block stays tiny.
      std::size_t run_end = c + 1;
      EdgeIndex run_edges = cells[r * num_stripes + c].size();
      if (opts.consolidate) {
        while (run_end < num_stripes &&
               run_edges < opts.min_edges_per_set) {
          run_edges += cells[r * num_stripes + run_end].size();
          ++run_end;
        }
      }
      if (run_edges == 0) {  // skip fully empty cell runs
        c = run_end;
        continue;
      }

      EdgeSet es;
      es.src_range_ = row_range;
      es.dst_range_ = {
          static_cast<VertexId>(c * stripe_width),
          static_cast<VertexId>(std::min<std::size_t>(
              run_end * stripe_width, num_global_vertices))};
      es.offsets_.assign(row_range.size() + 1, 0);

      // Counting-sort the run's edges into the block CSR.
      for (std::size_t cc = c; cc < run_end; ++cc) {
        for (const Edge& e : cells[r * num_stripes + cc]) {
          ++es.offsets_[e.src - row_range.begin + 1];
        }
      }
      for (std::size_t v = 0; v < row_range.size(); ++v)
        es.offsets_[v + 1] += es.offsets_[v];
      es.dsts_.resize(run_edges);
      if (opts.with_weights) es.weights_.resize(run_edges);
      std::vector<EdgeIndex> cursor(es.offsets_.begin(),
                                    es.offsets_.end() - 1);
      for (std::size_t cc = c; cc < run_end; ++cc) {
        for (const Edge& e : cells[r * num_stripes + cc]) {
          const EdgeIndex pos = cursor[e.src - row_range.begin]++;
          es.dsts_[pos] = e.dst;
          if (opts.with_weights) es.weights_[pos] = e.weight;
        }
      }
      // Sort each source's slice by destination for deterministic scans.
      for (std::size_t v = 0; v < row_range.size(); ++v) {
        const auto b = static_cast<std::ptrdiff_t>(es.offsets_[v]);
        const auto e2 = static_cast<std::ptrdiff_t>(es.offsets_[v + 1]);
        if (opts.with_weights) {
          const auto len = static_cast<std::size_t>(e2 - b);
          if (len > 1) {
            std::vector<std::pair<VertexId, Weight>> row(len);
            for (std::size_t i = 0; i < len; ++i)
              row[i] = {es.dsts_[b + static_cast<std::ptrdiff_t>(i)],
                        es.weights_[b + static_cast<std::ptrdiff_t>(i)]};
            std::sort(row.begin(), row.end());
            for (std::size_t i = 0; i < len; ++i) {
              es.dsts_[b + static_cast<std::ptrdiff_t>(i)] = row[i].first;
              es.weights_[b + static_cast<std::ptrdiff_t>(i)] = row[i].second;
            }
          }
        } else {
          std::sort(es.dsts_.begin() + b, es.dsts_.begin() + e2);
        }
      }
      grid.sets_.push_back(std::move(es));
      c = run_end;
    }
  }
  grid.row_begin_[nrows] = grid.sets_.size();
  return grid;
}

std::size_t EdgeSetGrid::row_of_set(std::size_t i) const {
  CGRAPH_DCHECK(i < sets_.size());
  auto it = std::upper_bound(row_begin_.begin(), row_begin_.end(), i);
  return static_cast<std::size_t>(it - row_begin_.begin() - 1);
}

std::size_t EdgeSetGrid::row_of(VertexId s) const {
  CGRAPH_DCHECK(src_range_.contains(s));
  auto it = std::upper_bound(
      row_ranges_.begin(), row_ranges_.end(), s,
      [](VertexId x, const VertexRange& r) { return x < r.begin; });
  return static_cast<std::size_t>(it - row_ranges_.begin() - 1);
}

std::size_t EdgeSetGrid::memory_bytes() const {
  std::size_t total = sets_.capacity() * sizeof(EdgeSet);
  for (const EdgeSet& es : sets_) total += es.memory_bytes();
  return total;
}

EdgeSetGrid::Stats EdgeSetGrid::stats() const {
  Stats s;
  s.sets = sets_.size();
  s.rows = num_rows();
  s.edges = num_edges_;
  if (!sets_.empty()) {
    s.min_set_edges = sets_.front().num_edges();
    for (const EdgeSet& es : sets_) {
      s.min_set_edges = std::min(s.min_set_edges, es.num_edges());
      s.max_set_edges = std::max(s.max_set_edges, es.num_edges());
    }
    s.avg_edges_per_set =
        static_cast<double>(num_edges_) / static_cast<double>(sets_.size());
  }
  return s;
}

}  // namespace cgraph
