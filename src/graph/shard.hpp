// SubgraphShard: everything one machine holds for its partition (paper
// Fig. 2): the local vertex range, out-edges in edge-set form, in-edges in
// CSC, and the boundary vertex bookkeeping used by the runtime.
//
// Local vertices  — vertices whose id falls in the shard's range.
// Boundary vertices — vertices of *other* shards that share an edge with a
// local vertex; their values live remotely and are reached via messages.
#pragma once

#include <memory>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_set.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"

namespace cgraph {

struct ShardOptions {
  EdgeSetOptions edge_set;
  bool build_in_edges = true;  // CSC over edges arriving at local vertices
  /// Additionally tile the in-edges into an edge-set grid (rows = local
  /// vertices, columns = global parents). Because the grid is built over
  /// reversed edges, its horizontal consolidation realizes the paper's
  /// *vertical* consolidation: better locality when gathering from
  /// parents (§3.2). Used by the GAS engine when present.
  bool build_in_edge_sets = false;
};

class SubgraphShard {
 public:
  using Options = ShardOptions;

  /// Carve shard `pid` out of the global graph under `partition`.
  static SubgraphShard build(const Graph& graph,
                             const RangePartition& partition, PartitionId pid,
                             const Options& opts = {});

  [[nodiscard]] PartitionId id() const { return id_; }
  [[nodiscard]] const VertexRange& local_range() const { return local_range_; }
  [[nodiscard]] VertexId num_local_vertices() const {
    return local_range_.size();
  }
  [[nodiscard]] VertexId num_global_vertices() const {
    return num_global_vertices_;
  }
  [[nodiscard]] EdgeIndex num_out_edges() const { return out_sets_.num_edges(); }

  [[nodiscard]] bool is_local(VertexId v) const {
    return local_range_.contains(v);
  }

  /// Local dense index of a local vertex (v - range.begin).
  [[nodiscard]] VertexId local_index(VertexId v) const {
    CGRAPH_DCHECK(is_local(v));
    return v - local_range_.begin;
  }
  [[nodiscard]] VertexId global_id(VertexId local_index) const {
    return local_range_.begin + local_index;
  }

  /// Out-edges of local vertices, tiled into edge-sets.
  [[nodiscard]] const EdgeSetGrid& out_sets() const { return out_sets_; }

  /// In-edges of local vertices (CSC): in_csr().neighbors(local_index)
  /// yields the *global* ids of parents of the local vertex.
  [[nodiscard]] const Csr& in_csr() const { return in_csr_; }
  [[nodiscard]] bool has_in_edges() const {
    return in_csr_.num_vertices() > 0;
  }

  /// Tiled in-edges (vertical consolidation); rows are *global* local-
  /// vertex ids, neighbors are global parent ids.
  [[nodiscard]] const EdgeSetGrid& in_sets() const { return in_sets_; }
  [[nodiscard]] bool has_in_sets() const { return in_sets_.num_edges() > 0; }

  /// Global ids of boundary vertices: remote destinations of local
  /// out-edges, deduplicated and sorted.
  [[nodiscard]] const std::vector<VertexId>& boundary_out() const {
    return boundary_out_;
  }

  /// Out-degree of a local vertex (sum over its edge-set row).
  [[nodiscard]] EdgeIndex out_degree(VertexId v) const {
    CGRAPH_DCHECK(is_local(v));
    return out_degree_[local_index(v)];
  }

  [[nodiscard]] const std::vector<EdgeIndex>& out_degrees() const {
    return out_degree_;
  }

  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  PartitionId id_ = kInvalidPartition;
  VertexRange local_range_;
  VertexId num_global_vertices_ = 0;
  EdgeSetGrid out_sets_;
  Csr in_csr_;  // indexed by local vertex index; targets are global parent ids
  EdgeSetGrid in_sets_;  // optional tiled view of the in-edges
  std::vector<VertexId> boundary_out_;
  std::vector<EdgeIndex> out_degree_;  // per local vertex
};

/// Build all shards of a graph at once (the loader step of the simulated
/// cluster).
std::vector<SubgraphShard> build_shards(const Graph& graph,
                                        const RangePartition& partition,
                                        const SubgraphShard::Options& opts = {});

}  // namespace cgraph
