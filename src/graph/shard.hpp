// SubgraphShard: everything one machine holds for its partition (paper
// Fig. 2): the local vertex range, out-edges in edge-set form, in-edges in
// CSC, and the boundary vertex bookkeeping used by the runtime.
//
// Local vertices  — vertices whose id falls in the shard's range.
// Boundary vertices — vertices of *other* shards that share an edge with a
// local vertex; their values live remotely and are reached via messages.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/delta.hpp"
#include "graph/edge_set.hpp"
#include "graph/graph.hpp"
#include "graph/mutation.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"

namespace cgraph {

struct ShardOptions {
  EdgeSetOptions edge_set;
  bool build_in_edges = true;  // CSC over edges arriving at local vertices
  /// Additionally tile the in-edges into an edge-set grid (rows = local
  /// vertices, columns = global parents). Because the grid is built over
  /// reversed edges, its horizontal consolidation realizes the paper's
  /// *vertical* consolidation: better locality when gathering from
  /// parents (§3.2). Used by the GAS engine when present.
  bool build_in_edge_sets = false;
};

class SubgraphShard {
 public:
  using Options = ShardOptions;

  /// Carve shard `pid` out of the global graph under `partition`.
  static SubgraphShard build(const Graph& graph,
                             const RangePartition& partition, PartitionId pid,
                             const Options& opts = {});

  [[nodiscard]] PartitionId id() const { return id_; }
  [[nodiscard]] const VertexRange& local_range() const { return local_range_; }
  [[nodiscard]] VertexId num_local_vertices() const {
    return local_range_.size();
  }
  [[nodiscard]] VertexId num_global_vertices() const {
    return num_global_vertices_;
  }
  [[nodiscard]] EdgeIndex num_out_edges() const { return out_sets_.num_edges(); }

  [[nodiscard]] bool is_local(VertexId v) const {
    return local_range_.contains(v);
  }

  /// Local dense index of a local vertex (v - range.begin).
  [[nodiscard]] VertexId local_index(VertexId v) const {
    CGRAPH_DCHECK(is_local(v));
    return v - local_range_.begin;
  }
  [[nodiscard]] VertexId global_id(VertexId local_index) const {
    return local_range_.begin + local_index;
  }

  /// Out-edges of local vertices, tiled into edge-sets.
  [[nodiscard]] const EdgeSetGrid& out_sets() const { return out_sets_; }

  /// In-edges of local vertices (CSC): in_csr().neighbors(local_index)
  /// yields the *global* ids of parents of the local vertex.
  [[nodiscard]] const Csr& in_csr() const { return in_csr_; }
  [[nodiscard]] bool has_in_edges() const {
    return in_csr_.num_vertices() > 0;
  }

  /// Tiled in-edges (vertical consolidation); rows are *global* local-
  /// vertex ids, neighbors are global parent ids.
  [[nodiscard]] const EdgeSetGrid& in_sets() const { return in_sets_; }
  [[nodiscard]] bool has_in_sets() const { return in_sets_.num_edges() > 0; }

  /// Global ids of boundary vertices: remote destinations of local
  /// out-edges, deduplicated and sorted.
  [[nodiscard]] const std::vector<VertexId>& boundary_out() const {
    return boundary_out_;
  }

  /// Out-degree of a local vertex (sum over its edge-set row).
  [[nodiscard]] EdgeIndex out_degree(VertexId v) const {
    CGRAPH_DCHECK(is_local(v));
    return out_degree_[local_index(v)];
  }

  [[nodiscard]] const std::vector<EdgeIndex>& out_degrees() const {
    return out_degree_;
  }

  [[nodiscard]] std::size_t memory_bytes() const;

  // ---- streaming mutations (DESIGN.md §15) ----

  /// Newest mutation epoch applied to this shard (0 = frozen base graph).
  [[nodiscard]] Epoch epoch() const { return epoch_; }

  /// Pending (uncompacted) delta events on either edge direction. Frozen
  /// runs gate every delta branch on this.
  [[nodiscard]] bool has_mutations() const {
    return !delta_out_.empty() || !delta_in_.empty();
  }

  [[nodiscard]] const DeltaEdgeSet& delta_out() const { return delta_out_; }
  [[nodiscard]] const DeltaEdgeSet& delta_in() const { return delta_in_; }

  /// Record one edge mutation at `epoch` (>= the shard's current epoch).
  /// The out-side event lands on the shard owning `src`, the in-side event
  /// on the shard owning `dst`; a shard owning both records both.
  void apply_mutation(const MutationOp& op, Epoch epoch);

  /// Advance the epoch without recording events (this shard saw none of
  /// the batch's ops, but the graph-wide epoch still moved).
  void advance_epoch(Epoch epoch);

  /// Fold every delta event into rebuilt base structures (out-sets, CSC,
  /// boundary, degrees) and clear the deltas. The shard's edge view at
  /// `epoch()` is unchanged — only its representation compacts.
  void compact();

  /// Order-sensitive hash of the shard's delta state visible at `at`
  /// (epoch + both event logs). Written as the checkpoint delta tail and
  /// checked on restore/adoption so a resumed run can never silently read
  /// a different mutation state than the one checkpointed.
  [[nodiscard]] std::uint64_t mutation_fingerprint(Epoch at) const;

  /// Out-neighbors of local vertex s visible at epoch `at`, in globally
  /// ascending destination order (the same order a compacted rebuild
  /// would yield): base neighbors minus tombstones, merged with delta
  /// extras. fn(dst).
  template <typename Fn>
  void for_each_out_neighbor_at(VertexId s, Epoch at, Fn&& fn) const {
    merged_scan(out_sets_, delta_out_, s, at, fn);
  }

  /// In-parents (global ids) of local vertex v_global visible at `at`,
  /// globally ascending — the CSC row merged with in-side delta extras.
  template <typename Fn>
  void for_each_in_parent_at(VertexId v_global, Epoch at, Fn&& fn) const {
    const std::span<const VertexId> base =
        in_csr_.neighbors(local_index(v_global));
    merged_walk(base, delta_in_, v_global, at, fn);
  }

 private:
  template <typename Fn>
  void merged_scan(const EdgeSetGrid& grid, const DeltaEdgeSet& delta,
                   VertexId v, Epoch at, Fn&& fn) const {
    const bool has_base = grid.num_rows() > 0;
    if (!delta.has_events(v)) {
      if (has_base) grid.for_each_neighbor(v, fn);
      return;
    }
    // Blocks ascend by destination stripe and rows are dst-sorted within a
    // block, so the flattened base row is globally sorted: merge-walk it
    // against the (sorted, base-disjoint) extras.
    const std::vector<VertexId> extras = delta.extras_sorted(v, at);
    std::size_t e = 0;
    const bool deletes = delta.has_deletes(v);
    if (has_base) {
      grid.for_each_neighbor(v, [&](VertexId t) {
        while (e < extras.size() && extras[e] < t) fn(extras[e++]);
        if (deletes && delta.edge_deleted(v, t, at)) return;
        fn(t);
      });
    }
    while (e < extras.size()) fn(extras[e++]);
  }

  template <typename Fn>
  void merged_walk(std::span<const VertexId> base, const DeltaEdgeSet& delta,
                   VertexId v, Epoch at, Fn&& fn) const {
    if (!delta.has_events(v)) {
      for (VertexId t : base) fn(t);
      return;
    }
    const std::vector<VertexId> extras = delta.extras_sorted(v, at);
    std::size_t e = 0;
    const bool deletes = delta.has_deletes(v);
    for (VertexId t : base) {
      while (e < extras.size() && extras[e] < t) fn(extras[e++]);
      if (deletes && delta.edge_deleted(v, t, at)) continue;
      fn(t);
    }
    while (e < extras.size()) fn(extras[e++]);
  }

  PartitionId id_ = kInvalidPartition;
  VertexRange local_range_;
  VertexId num_global_vertices_ = 0;
  EdgeSetGrid out_sets_;
  Csr in_csr_;  // indexed by local vertex index; targets are global parent ids
  EdgeSetGrid in_sets_;  // optional tiled view of the in-edges
  std::vector<VertexId> boundary_out_;
  std::vector<EdgeIndex> out_degree_;  // per local vertex
  EdgeSetOptions edge_set_opts_;  // remembered for compaction rebuilds
  bool built_in_edges_ = false;
  bool built_in_sets_ = false;
  DeltaEdgeSet delta_out_;  // key = local src, neighbors = global dsts
  DeltaEdgeSet delta_in_;   // key = local dst, neighbors = global srcs
  Epoch epoch_ = 0;
};

/// Apply one mutation batch across every shard at `epoch` and advance all
/// shard epochs (shards untouched by the batch still move forward, so the
/// graph-wide snapshot epoch stays single-valued).
void apply_mutations(std::span<SubgraphShard> shards,
                     std::span<const MutationOp> ops, Epoch epoch);

/// The shards' shared current epoch (they advance in lockstep).
[[nodiscard]] Epoch current_epoch(std::span<const SubgraphShard> shards);

/// Combined mutation fingerprint over all shards at `at`.
[[nodiscard]] std::uint64_t mutation_fingerprint(
    std::span<const SubgraphShard> shards, Epoch at);

/// Build all shards of a graph at once (the loader step of the simulated
/// cluster).
std::vector<SubgraphShard> build_shards(const Graph& graph,
                                        const RangePartition& partition,
                                        const SubgraphShard::Options& opts = {});

}  // namespace cgraph
