// Compressed sparse row adjacency. The same structure serves as CSC by
// building it over reversed edges (paper §3.2 stores out-edges in CSR and
// in-edges in CSC).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/edge.hpp"
#include "graph/types.hpp"
#include "util/assert.hpp"

namespace cgraph {

class Csr {
 public:
  Csr() = default;

  /// Build from edges over the id space [0, num_vertices). If
  /// `with_weights` is false the weight array is left empty and
  /// weights() must not be called.
  static Csr from_edges(VertexId num_vertices, std::span<const Edge> edges,
                        bool with_weights = false);

  /// Build from edges with src/dst swapped (a CSC of the input).
  static Csr from_edges_reversed(VertexId num_vertices,
                                 std::span<const Edge> edges,
                                 bool with_weights = false);

  /// Rectangular adjacency: rows in [0, num_rows), targets in
  /// [0, num_cols). Used for shard-local CSCs whose rows are local vertex
  /// indices but whose targets are global parent ids.
  static Csr from_edges_rect(VertexId num_rows, VertexId num_cols,
                             std::span<const Edge> edges,
                             bool with_weights = false);

  [[nodiscard]] VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeIndex num_edges() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }
  [[nodiscard]] bool has_weights() const { return !weights_.empty(); }

  [[nodiscard]] EdgeIndex degree(VertexId v) const {
    CGRAPH_DCHECK(v < num_vertices());
    return offsets_[v + 1] - offsets_[v];
  }

  /// Adjacent vertex ids of v, sorted ascending.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    CGRAPH_DCHECK(v < num_vertices());
    return {targets_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }

  /// Edge weights of v, parallel to neighbors(v). Requires has_weights().
  [[nodiscard]] std::span<const Weight> weights(VertexId v) const {
    CGRAPH_DCHECK(has_weights());
    CGRAPH_DCHECK(v < num_vertices());
    return {weights_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }

  /// True if edge (v, t) exists; binary search over the sorted adjacency.
  [[nodiscard]] bool has_edge(VertexId v, VertexId t) const;

  [[nodiscard]] const std::vector<EdgeIndex>& offsets() const {
    return offsets_;
  }
  [[nodiscard]] const std::vector<VertexId>& targets() const {
    return targets_;
  }

  /// Approximate resident bytes, for the memory-footprint experiments.
  [[nodiscard]] std::size_t memory_bytes() const {
    return offsets_.size() * sizeof(EdgeIndex) +
           targets_.size() * sizeof(VertexId) +
           weights_.size() * sizeof(Weight);
  }

 private:
  static Csr build(VertexId num_rows, VertexId num_cols,
                   std::span<const Edge> edges, bool with_weights,
                   bool reversed);

  std::vector<EdgeIndex> offsets_;  // size V+1
  std::vector<VertexId> targets_;   // size E, sorted within each row
  std::vector<Weight> weights_;     // size E or 0
};

}  // namespace cgraph
