// Streaming mutation primitives (DESIGN.md §15, ROADMAP item 3).
//
// The graph is no longer frozen at ingestion: edges are inserted and
// deleted in *epochs*. An epoch is a monotonically increasing sequence
// number over batches of mutations; every query runs against a snapshot
// epoch E and sees exactly the edges visible at E — base edges not yet
// deleted at E plus delta inserts applied at or before E — while writers
// append events for later epochs. `kEpochHead` is the sentinel "whatever
// the shards' current epoch is", resolved by the engines at batch start.
#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace cgraph {

/// Mutation sequence number. Epoch 0 is the ingested base graph; the
/// first applied mutation batch is epoch 1.
using Epoch = std::uint64_t;

/// Snapshot sentinel: resolve to the shards' current epoch at batch start.
inline constexpr Epoch kEpochHead = ~0ULL;

enum class MutationKind : std::uint8_t {
  kInsertEdge,
  kDeleteEdge,
};

[[nodiscard]] inline const char* to_string(MutationKind kind) {
  return kind == MutationKind::kInsertEdge ? "insert" : "delete";
}

/// One directed-edge mutation. Vertex ids must already exist (the vertex
/// set is fixed at ingestion; only the edge set streams).
struct MutationOp {
  MutationKind kind = MutationKind::kInsertEdge;
  VertexId src = 0;
  VertexId dst = 0;
};

}  // namespace cgraph
