// Immutable in-memory graph: multi-modal representation holding out-edges
// in CSR and in-edges in CSC (paper §3.2), plus degree arrays.
//
// A Graph is the global, un-partitioned view. Distributed execution slices
// it into SubgraphShard objects (see graph/shard.hpp).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace cgraph {

struct GraphBuildOptions {
  bool with_weights = false;     // retain per-edge weights
  bool build_in_edges = true;    // also build the CSC (needed by GAS apps)
  bool symmetrize = false;       // treat input as undirected
  bool remove_self_loops = true;
};

class Graph {
 public:
  Graph() = default;

  using BuildOptions = GraphBuildOptions;

  /// Build from an edge list. The list is consumed (sorted/deduped inside).
  static Graph build(EdgeList edges, const BuildOptions& opts = {});
  static Graph build(EdgeList edges, VertexId num_vertices,
                     const BuildOptions& opts = {});

  [[nodiscard]] VertexId num_vertices() const { return num_vertices_; }
  [[nodiscard]] EdgeIndex num_edges() const { return out_.num_edges(); }
  [[nodiscard]] bool has_in_edges() const { return in_.num_vertices() > 0; }
  [[nodiscard]] bool has_weights() const { return out_.has_weights(); }

  [[nodiscard]] const Csr& out_csr() const { return out_; }
  [[nodiscard]] const Csr& in_csr() const { return in_; }

  [[nodiscard]] std::span<const VertexId> out_neighbors(VertexId v) const {
    return out_.neighbors(v);
  }
  [[nodiscard]] std::span<const VertexId> in_neighbors(VertexId v) const {
    return in_.neighbors(v);
  }
  [[nodiscard]] EdgeIndex out_degree(VertexId v) const {
    return out_.degree(v);
  }
  [[nodiscard]] EdgeIndex in_degree(VertexId v) const { return in_.degree(v); }

  /// Mean out-degree across all vertices.
  [[nodiscard]] double average_degree() const {
    return num_vertices_ == 0 ? 0.0
                              : static_cast<double>(num_edges()) /
                                    static_cast<double>(num_vertices_);
  }

  [[nodiscard]] std::size_t memory_bytes() const {
    return out_.memory_bytes() + in_.memory_bytes();
  }

  /// Human-readable one-line summary ("V=3.07M E=117.19M avg_deg=38.1").
  [[nodiscard]] std::string summary() const;

 private:
  VertexId num_vertices_ = 0;
  Csr out_;
  Csr in_;
};

}  // namespace cgraph
