#include "graph/shard.hpp"

#include <algorithm>

namespace cgraph {

SubgraphShard SubgraphShard::build(const Graph& graph,
                                   const RangePartition& partition,
                                   PartitionId pid, const Options& opts) {
  SubgraphShard shard;
  shard.id_ = pid;
  shard.local_range_ = partition.range(pid);
  shard.num_global_vertices_ = graph.num_vertices();
  const VertexRange range = shard.local_range_;

  // Collect out-edges of local vertices from the global CSR.
  std::vector<Edge> out_edges;
  EdgeIndex count = 0;
  for (VertexId v = range.begin; v < range.end; ++v)
    count += graph.out_degree(v);
  out_edges.reserve(count);
  shard.out_degree_.resize(range.size());
  const bool weighted = graph.has_weights();
  for (VertexId v = range.begin; v < range.end; ++v) {
    const auto nbrs = graph.out_neighbors(v);
    shard.out_degree_[v - range.begin] = nbrs.size();
    if (weighted) {
      const auto ws = graph.out_csr().weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i)
        out_edges.push_back({v, nbrs[i], ws[i]});
    } else {
      for (VertexId t : nbrs) out_edges.push_back({v, t, 1.0f});
    }
  }

  EdgeSetGrid::Options eso = opts.edge_set;
  eso.with_weights = weighted;
  shard.out_sets_ =
      EdgeSetGrid::build(range, graph.num_vertices(), out_edges, eso);

  // Boundary vertices: remote destinations, deduped.
  std::vector<VertexId> boundary;
  for (const Edge& e : out_edges) {
    if (!range.contains(e.dst)) boundary.push_back(e.dst);
  }
  std::sort(boundary.begin(), boundary.end());
  boundary.erase(std::unique(boundary.begin(), boundary.end()),
                 boundary.end());
  shard.boundary_out_ = std::move(boundary);

  // In-edges (CSC) for local vertices: row = local index, targets = global
  // parent ids. Built by re-mapping destination into local index space.
  if (opts.build_in_edges && graph.has_in_edges()) {
    std::vector<Edge> in_edges;
    EdgeIndex in_count = 0;
    for (VertexId v = range.begin; v < range.end; ++v)
      in_count += graph.in_degree(v);
    in_edges.reserve(in_count);
    for (VertexId v = range.begin; v < range.end; ++v) {
      for (VertexId p : graph.in_neighbors(v)) {
        // src = local index of v, dst = global parent id.
        in_edges.push_back({v - range.begin, p, 1.0f});
      }
    }
    shard.in_csr_ = Csr::from_edges_rect(range.size(), graph.num_vertices(),
                                         in_edges, /*with_weights=*/false);

    if (opts.build_in_edge_sets) {
      // Grid rows use global local-vertex ids (like out_sets_), so remap
      // the CSC rows back to global ids and build over (local, parent).
      std::vector<Edge> in_global;
      in_global.reserve(in_edges.size());
      for (const Edge& e : in_edges) {
        in_global.push_back({e.src + range.begin, e.dst, 1.0f});
      }
      EdgeSetGrid::Options in_eso = opts.edge_set;
      in_eso.with_weights = false;
      shard.in_sets_ = EdgeSetGrid::build(range, graph.num_vertices(),
                                          in_global, in_eso);
    }
  }
  return shard;
}

std::size_t SubgraphShard::memory_bytes() const {
  return out_sets_.memory_bytes() + in_csr_.memory_bytes() +
         in_sets_.memory_bytes() +
         boundary_out_.size() * sizeof(VertexId) +
         out_degree_.size() * sizeof(EdgeIndex);
}

std::vector<SubgraphShard> build_shards(const Graph& graph,
                                        const RangePartition& partition,
                                        const SubgraphShard::Options& opts) {
  std::vector<SubgraphShard> shards;
  shards.reserve(partition.num_partitions());
  for (PartitionId p = 0; p < partition.num_partitions(); ++p) {
    shards.push_back(SubgraphShard::build(graph, partition, p, opts));
  }
  return shards;
}

}  // namespace cgraph
