#include "graph/shard.hpp"

#include <algorithm>

namespace cgraph {

SubgraphShard SubgraphShard::build(const Graph& graph,
                                   const RangePartition& partition,
                                   PartitionId pid, const Options& opts) {
  SubgraphShard shard;
  shard.id_ = pid;
  shard.local_range_ = partition.range(pid);
  shard.num_global_vertices_ = graph.num_vertices();
  shard.edge_set_opts_ = opts.edge_set;
  shard.built_in_edges_ = opts.build_in_edges && graph.has_in_edges();
  shard.built_in_sets_ = shard.built_in_edges_ && opts.build_in_edge_sets;
  const VertexRange range = shard.local_range_;
  shard.delta_out_.reset(range);
  shard.delta_in_.reset(range);

  // Collect out-edges of local vertices from the global CSR.
  std::vector<Edge> out_edges;
  EdgeIndex count = 0;
  for (VertexId v = range.begin; v < range.end; ++v)
    count += graph.out_degree(v);
  out_edges.reserve(count);
  shard.out_degree_.resize(range.size());
  const bool weighted = graph.has_weights();
  for (VertexId v = range.begin; v < range.end; ++v) {
    const auto nbrs = graph.out_neighbors(v);
    shard.out_degree_[v - range.begin] = nbrs.size();
    if (weighted) {
      const auto ws = graph.out_csr().weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i)
        out_edges.push_back({v, nbrs[i], ws[i]});
    } else {
      for (VertexId t : nbrs) out_edges.push_back({v, t, 1.0f});
    }
  }

  EdgeSetGrid::Options eso = opts.edge_set;
  eso.with_weights = weighted;
  shard.out_sets_ =
      EdgeSetGrid::build(range, graph.num_vertices(), out_edges, eso);

  // Boundary vertices: remote destinations, deduped.
  std::vector<VertexId> boundary;
  for (const Edge& e : out_edges) {
    if (!range.contains(e.dst)) boundary.push_back(e.dst);
  }
  std::sort(boundary.begin(), boundary.end());
  boundary.erase(std::unique(boundary.begin(), boundary.end()),
                 boundary.end());
  shard.boundary_out_ = std::move(boundary);

  // In-edges (CSC) for local vertices: row = local index, targets = global
  // parent ids. Built by re-mapping destination into local index space.
  if (opts.build_in_edges && graph.has_in_edges()) {
    std::vector<Edge> in_edges;
    EdgeIndex in_count = 0;
    for (VertexId v = range.begin; v < range.end; ++v)
      in_count += graph.in_degree(v);
    in_edges.reserve(in_count);
    for (VertexId v = range.begin; v < range.end; ++v) {
      for (VertexId p : graph.in_neighbors(v)) {
        // src = local index of v, dst = global parent id.
        in_edges.push_back({v - range.begin, p, 1.0f});
      }
    }
    shard.in_csr_ = Csr::from_edges_rect(range.size(), graph.num_vertices(),
                                         in_edges, /*with_weights=*/false);

    if (opts.build_in_edge_sets) {
      // Grid rows use global local-vertex ids (like out_sets_), so remap
      // the CSC rows back to global ids and build over (local, parent).
      std::vector<Edge> in_global;
      in_global.reserve(in_edges.size());
      for (const Edge& e : in_edges) {
        in_global.push_back({e.src + range.begin, e.dst, 1.0f});
      }
      EdgeSetGrid::Options in_eso = opts.edge_set;
      in_eso.with_weights = false;
      shard.in_sets_ = EdgeSetGrid::build(range, graph.num_vertices(),
                                          in_global, in_eso);
    }
  }
  return shard;
}

std::size_t SubgraphShard::memory_bytes() const {
  return out_sets_.memory_bytes() + in_csr_.memory_bytes() +
         in_sets_.memory_bytes() +
         boundary_out_.size() * sizeof(VertexId) +
         out_degree_.size() * sizeof(EdgeIndex) +
         delta_out_.memory_bytes() + delta_in_.memory_bytes();
}

void SubgraphShard::apply_mutation(const MutationOp& op, Epoch epoch) {
  CGRAPH_CHECK_MSG(epoch >= epoch_, "mutation epochs must be nondecreasing");
  CGRAPH_CHECK(op.src < num_global_vertices_ && op.dst < num_global_vertices_);
  epoch_ = epoch;
  const bool insert = op.kind == MutationKind::kInsertEdge;
  if (local_range_.contains(op.src)) {
    bool in_base = false;
    if (out_sets_.num_rows() > 0)
      for (const EdgeSet& es : out_sets_.row_sets(out_sets_.row_of(op.src))) {
      const auto nbrs = es.neighbors(op.src);
      if (std::binary_search(nbrs.begin(), nbrs.end(), op.dst)) {
        in_base = true;
        break;
      }
    }
    delta_out_.add_event(op.src, op.dst, epoch, insert, in_base);
  }
  if (local_range_.contains(op.dst) && built_in_edges_) {
    const auto parents = in_csr_.neighbors(local_index(op.dst));
    const bool in_base =
        std::binary_search(parents.begin(), parents.end(), op.src);
    delta_in_.add_event(op.dst, op.src, epoch, insert, in_base);
  }
}

void SubgraphShard::advance_epoch(Epoch epoch) {
  CGRAPH_CHECK_MSG(epoch >= epoch_, "mutation epochs must be nondecreasing");
  epoch_ = epoch;
}

void SubgraphShard::compact() {
  if (!has_mutations()) return;
  const VertexRange range = local_range_;

  // Rebuild the out side: base edges minus tombstones (weights carried
  // over), plus delta extras at weight 1.
  std::vector<Edge> out_edges;
  out_edges.reserve(static_cast<std::size_t>(out_sets_.num_edges()) +
                    delta_out_.num_events());
  std::vector<EdgeIndex> degrees(range.size(), 0);
  bool weighted = false;
  for (VertexId v = range.begin; v < range.end; ++v) {
    const std::size_t before = out_edges.size();
    const bool deletes = delta_out_.has_deletes(v);
    out_sets_.for_each_edge(v, [&](VertexId t, Weight w) {
      if (deletes && delta_out_.edge_deleted(v, t, epoch_)) return;
      out_edges.push_back({v, t, w});
      weighted = weighted || w != Weight{1};
    });
    delta_out_.for_each_extra(
        v, epoch_, [&](VertexId t) { out_edges.push_back({v, t, 1.0f}); });
    degrees[v - range.begin] =
        static_cast<EdgeIndex>(out_edges.size() - before);
  }
  EdgeSetGrid::Options eso = edge_set_opts_;
  eso.with_weights = weighted;
  out_sets_ =
      EdgeSetGrid::build(range, num_global_vertices_, out_edges, eso);
  out_degree_ = std::move(degrees);

  std::vector<VertexId> boundary;
  for (const Edge& e : out_edges) {
    if (!range.contains(e.dst)) boundary.push_back(e.dst);
  }
  std::sort(boundary.begin(), boundary.end());
  boundary.erase(std::unique(boundary.begin(), boundary.end()),
                 boundary.end());
  boundary_out_ = std::move(boundary);

  // Rebuild the in side the same way from the CSC rows + in-deltas.
  if (built_in_edges_) {
    std::vector<Edge> in_edges;
    for (VertexId v = range.begin; v < range.end; ++v) {
      for_each_in_parent_at(v, epoch_, [&](VertexId p) {
        in_edges.push_back({v - range.begin, p, 1.0f});
      });
    }
    in_csr_ = Csr::from_edges_rect(range.size(), num_global_vertices_,
                                   in_edges, /*with_weights=*/false);
    if (built_in_sets_) {
      std::vector<Edge> in_global;
      in_global.reserve(in_edges.size());
      for (const Edge& e : in_edges) {
        in_global.push_back({e.src + range.begin, e.dst, 1.0f});
      }
      EdgeSetGrid::Options in_eso = edge_set_opts_;
      in_eso.with_weights = false;
      in_sets_ = EdgeSetGrid::build(range, num_global_vertices_, in_global,
                                    in_eso);
    }
  }

  delta_out_.clear();
  delta_in_.clear();
}

std::uint64_t SubgraphShard::mutation_fingerprint(Epoch at) const {
  // Mirrors the SplitMix64 combine used by the delta/index fingerprints.
  std::uint64_t h = 0x5bd1e9955bd1e995ULL ^ (at * 0x9e3779b97f4a7c15ULL);
  h ^= delta_out_.fingerprint(at) * 0xff51afd7ed558ccdULL;
  h ^= delta_in_.fingerprint(at) * 0xc4ceb9fe1a85ec53ULL;
  h ^= static_cast<std::uint64_t>(id_) + (h << 7);
  return h;
}

void apply_mutations(std::span<SubgraphShard> shards,
                     std::span<const MutationOp> ops, Epoch epoch) {
  for (SubgraphShard& shard : shards) {
    for (const MutationOp& op : ops) {
      if (shard.local_range().contains(op.src) ||
          shard.local_range().contains(op.dst)) {
        shard.apply_mutation(op, epoch);
      }
    }
    shard.advance_epoch(epoch);
  }
}

Epoch current_epoch(std::span<const SubgraphShard> shards) {
  Epoch e = 0;
  for (const SubgraphShard& shard : shards) e = std::max(e, shard.epoch());
  return e;
}

std::uint64_t mutation_fingerprint(std::span<const SubgraphShard> shards,
                                   Epoch at) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (const SubgraphShard& shard : shards) {
    const std::uint64_t f = shard.mutation_fingerprint(at);
    h = (h ^ f) * 0x100000001b3ULL + at;
  }
  return h;
}

std::vector<SubgraphShard> build_shards(const Graph& graph,
                                        const RangePartition& partition,
                                        const SubgraphShard::Options& opts) {
  std::vector<SubgraphShard> shards;
  shards.reserve(partition.num_partitions());
  for (PartitionId p = 0; p < partition.num_partitions(); ++p) {
    shards.push_back(SubgraphShard::build(graph, partition, p, opts));
  }
  return shards;
}

}  // namespace cgraph
