// Graph ingestion and persistence.
//
// Text format: one edge per line, "src dst [weight]", '#' comments allowed
// (SNAP edge-list compatible). Binary format: a small header followed by a
// packed Edge array — the fast path for benchmark re-runs.
//
// Loading re-indexes vertex ids densely in order of first appearance
// (paper §3.1: "vertex ID ... is re-indexed during graph ingestion").
#pragma once

#include <string>
#include <unordered_map>

#include "graph/edge_list.hpp"

namespace cgraph {

struct LoadResult {
  EdgeList edges;
  VertexId num_vertices = 0;
  /// original id -> dense id mapping produced by re-indexing (empty when
  /// reindex was disabled).
  std::unordered_map<std::uint64_t, VertexId> id_map;
};

/// Parse a text edge list. Throws std::runtime_error on unreadable input.
LoadResult load_edge_list_text(const std::string& path, bool reindex = true);

/// Parse edges from an in-memory string (testing convenience).
LoadResult parse_edge_list(const std::string& text, bool reindex = true);

/// Save as SNAP-style text ("src dst weight" lines; weight omitted when
/// it is uniformly 1.0).
void save_edge_list_text(const std::string& path, const EdgeList& edges);

/// Save/load the compact binary format. Binary files round-trip exactly.
void save_edge_list_binary(const std::string& path, const EdgeList& edges,
                           VertexId num_vertices);
LoadResult load_edge_list_binary(const std::string& path);

}  // namespace cgraph
