#include "graph/delta.hpp"

#include <algorithm>

namespace cgraph {

void DeltaEdgeSet::reset(VertexRange range) {
  range_ = range;
  events_.assign(range.size(), {});
  has_delete_.assign(range.size(), 0);
  num_events_ = 0;
}

void DeltaEdgeSet::add_event(VertexId v, VertexId neighbor, Epoch epoch,
                             bool insert, bool in_base) {
  const std::size_t i = index_of(v);
  std::vector<Event>& evs = events_[i];
  CGRAPH_CHECK_MSG(evs.empty() || evs.back().epoch <= epoch,
                   "mutation events must arrive in epoch order");
  evs.push_back({neighbor, epoch, insert, in_base});
  if (!insert) has_delete_[i] = 1;
  ++num_events_;
}

bool DeltaEdgeSet::edge_deleted(VertexId v, VertexId neighbor,
                                Epoch at) const {
  const std::span<const Event> evs = events(v);
  for (std::size_t i = evs.size(); i-- > 0;) {
    const Event& e = evs[i];
    if (e.epoch > at || e.neighbor != neighbor) continue;
    return !e.insert;  // newest event at or before `at` wins
  }
  return false;
}

std::vector<VertexId> DeltaEdgeSet::extras_sorted(VertexId v, Epoch at) const {
  std::vector<VertexId> extras;
  for_each_extra(v, at, [&](VertexId t) { extras.push_back(t); });
  std::sort(extras.begin(), extras.end());
  extras.erase(std::unique(extras.begin(), extras.end()), extras.end());
  return extras;
}

namespace {

inline std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t DeltaEdgeSet::fingerprint(Epoch at) const {
  std::uint64_t h = 0x8f3ad1c6b52e9d47ULL;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    for (const Event& e : events_[i]) {
      if (e.epoch > at) continue;
      h = mix64(h, range_.begin + i);
      h = mix64(h, e.neighbor);
      h = mix64(h, e.epoch);
      h = mix64(h, (e.insert ? 2ULL : 0ULL) | (e.in_base ? 1ULL : 0ULL));
    }
  }
  return h;
}

void DeltaEdgeSet::clear() {
  for (std::vector<Event>& evs : events_) evs.clear();
  std::fill(has_delete_.begin(), has_delete_.end(), std::uint8_t{0});
  num_events_ = 0;
}

std::size_t DeltaEdgeSet::memory_bytes() const {
  std::size_t bytes = events_.capacity() * sizeof(std::vector<Event>) +
                      has_delete_.capacity();
  for (const std::vector<Event>& evs : events_) {
    bytes += evs.capacity() * sizeof(Event);
  }
  return bytes;
}

}  // namespace cgraph
