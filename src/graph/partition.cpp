#include "graph/partition.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cgraph {

RangePartition RangePartition::balanced_by_edges(const Graph& graph,
                                                 PartitionId num_partitions) {
  CGRAPH_CHECK(num_partitions > 0);
  const VertexId n = graph.num_vertices();
  const EdgeIndex total = graph.num_edges();

  RangePartition part;
  part.ranges_.reserve(num_partitions);

  // Greedy sweep: close a partition once its edge quota is met. The quota
  // is recomputed from the remainder so later partitions absorb imbalance
  // introduced by very high degree vertices.
  VertexId begin = 0;
  EdgeIndex assigned = 0;
  for (PartitionId p = 0; p < num_partitions; ++p) {
    const PartitionId remaining_parts = num_partitions - p;
    const EdgeIndex quota = (total - assigned) / remaining_parts;
    VertexId end = begin;
    EdgeIndex acc = 0;
    // Leave enough vertices for the remaining partitions to be non-empty
    // whenever the graph has enough vertices.
    const VertexId reserve_tail = remaining_parts - 1;
    while (end < n - std::min<VertexId>(reserve_tail, n - end)) {
      if (p + 1 < num_partitions && acc >= quota && end > begin) break;
      acc += graph.out_degree(end);
      ++end;
    }
    if (p + 1 == num_partitions) end = n;  // last partition takes the rest
    part.ranges_.push_back({begin, end});
    assigned += acc;
    begin = end;
  }
  CGRAPH_CHECK(part.ranges_.back().end == n);
  return part;
}

RangePartition RangePartition::balanced_by_vertices(
    VertexId num_vertices, PartitionId num_partitions) {
  CGRAPH_CHECK(num_partitions > 0);
  RangePartition part;
  part.ranges_.reserve(num_partitions);
  const VertexId base = num_vertices / num_partitions;
  const VertexId extra = num_vertices % num_partitions;
  VertexId begin = 0;
  for (PartitionId p = 0; p < num_partitions; ++p) {
    const VertexId len = base + (p < extra ? 1 : 0);
    part.ranges_.push_back({begin, begin + len});
    begin += len;
  }
  return part;
}

PartitionId RangePartition::owner(VertexId v) const {
  // Bisect over range begins; ranges are contiguous and sorted.
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), v,
      [](VertexId x, const VertexRange& r) { return x < r.begin; });
  CGRAPH_DCHECK(it != ranges_.begin());
  const auto p = static_cast<PartitionId>(it - ranges_.begin() - 1);
  CGRAPH_DCHECK(ranges_[p].contains(v));
  return p;
}

double RangePartition::edge_balance(const Graph& graph) const {
  if (ranges_.empty() || graph.num_edges() == 0) return 1.0;
  EdgeIndex max_edges = 0;
  for (const VertexRange& r : ranges_) {
    EdgeIndex e = 0;
    for (VertexId v = r.begin; v < r.end; ++v) e += graph.out_degree(v);
    max_edges = std::max(max_edges, e);
  }
  const double mean = static_cast<double>(graph.num_edges()) /
                      static_cast<double>(ranges_.size());
  return mean == 0 ? 1.0 : static_cast<double>(max_edges) / mean;
}

}  // namespace cgraph
