// DeltaEdgeSet: the per-partition mutation side-structure the hot loops
// scan alongside the tiled base CSR/CSC (DESIGN.md §15).
//
// Every edge mutation is recorded as an *event* (neighbor, epoch, kind)
// appended to the owning vertex's list in epoch order. Visibility at a
// snapshot epoch E is last-event-wins: the newest event with epoch <= E
// decides (insert -> present, delete -> absent); a neighbor with no event
// at or before E keeps its base-structure state. Events are tagged with
// whether the edge exists in the base structure, so the traversal loops
// can compose the two sides without membership probes:
//
//   base scan   — skip neighbor t when edge_deleted(v, t, E);
//   extra scan  — for_each_extra(v, E) yields exactly the neighbors that
//                 are present at E but absent from the base structure
//                 (in_base events never appear here), so base + extras is
//                 duplicate-free.
//
// Lists stay tiny between compactions (compaction folds them into the
// rebuilt base structure and clears the set), so the O(events) scans per
// touched vertex are cheap; vertices without events are gated out by a
// one-byte lookup and frozen runs never take the branch at all.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/mutation.hpp"
#include "graph/types.hpp"
#include "util/assert.hpp"

namespace cgraph {

class DeltaEdgeSet {
 public:
  struct Event {
    VertexId neighbor = 0;
    Epoch epoch = 0;
    bool insert = false;
    bool in_base = false;  // (v, neighbor) exists in the base structure
  };

  DeltaEdgeSet() = default;

  /// (Re)initialize for vertices in `range`; drops all events.
  void reset(VertexRange range);

  /// Append an event for local vertex v. Epochs must be nondecreasing per
  /// vertex (the trace applies in epoch order).
  void add_event(VertexId v, VertexId neighbor, Epoch epoch, bool insert,
                 bool in_base);

  [[nodiscard]] bool empty() const { return num_events_ == 0; }
  [[nodiscard]] std::size_t num_events() const { return num_events_; }
  [[nodiscard]] const VertexRange& range() const { return range_; }

  [[nodiscard]] bool has_events(VertexId v) const {
    const std::size_t i = index_of(v);
    return i < events_.size() && !events_[i].empty();
  }

  /// Any delete event recorded for v (at any epoch) — the cheap gate that
  /// decides whether a base scan needs per-neighbor tombstone checks.
  [[nodiscard]] bool has_deletes(VertexId v) const {
    const std::size_t i = index_of(v);
    return i < has_delete_.size() && has_delete_[i] != 0;
  }

  [[nodiscard]] std::span<const Event> events(VertexId v) const {
    const std::size_t i = index_of(v);
    if (i >= events_.size()) return {};
    return events_[i];
  }

  /// True when the newest event for (v, neighbor) at or before `at` is a
  /// delete — i.e. a base edge the snapshot must not see.
  [[nodiscard]] bool edge_deleted(VertexId v, VertexId neighbor,
                                  Epoch at) const;

  /// Neighbors present at `at` that the base structure does not hold:
  /// non-base events whose last write at or before `at` is an insert.
  /// Emission order is event-append order (deterministic per trace).
  template <typename Fn>
  void for_each_extra(VertexId v, Epoch at, Fn&& fn) const {
    const std::span<const Event> evs = events(v);
    for (std::size_t i = 0; i < evs.size(); ++i) {
      const Event& e = evs[i];
      if (e.epoch > at || e.in_base || !e.insert) continue;
      bool superseded = false;
      for (std::size_t j = i + 1; j < evs.size(); ++j) {
        if (evs[j].epoch <= at && evs[j].neighbor == e.neighbor) {
          superseded = true;
          break;
        }
      }
      if (!superseded) fn(e.neighbor);
    }
  }

  /// for_each_extra, materialized sorted and unique — for merge walks that
  /// must preserve a globally sorted neighbor order (the CSC gather side).
  [[nodiscard]] std::vector<VertexId> extras_sorted(VertexId v,
                                                    Epoch at) const;

  /// Order-sensitive content hash over every event visible at `at`; equal
  /// traces applied to equal bases produce equal fingerprints on any
  /// machine/thread count/replay. Folded into the checkpoint delta tail.
  [[nodiscard]] std::uint64_t fingerprint(Epoch at) const;

  /// Drop all events (compaction folded them into the base structure).
  void clear();

  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  [[nodiscard]] std::size_t index_of(VertexId v) const {
    CGRAPH_DCHECK(range_.contains(v));
    return v - range_.begin;
  }

  VertexRange range_;
  std::vector<std::vector<Event>> events_;  // indexed by v - range_.begin
  std::vector<std::uint8_t> has_delete_;
  std::size_t num_events_ = 0;
};

}  // namespace cgraph
