// Mutable edge-list container: the ingestion format every generator and
// loader produces, and the input to GraphBuilder.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/edge.hpp"
#include "graph/types.hpp"

namespace cgraph {

class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(std::vector<Edge> edges) : edges_(std::move(edges)) {}

  void reserve(std::size_t n) { edges_.reserve(n); }
  void add(VertexId src, VertexId dst, Weight w = 1.0f) {
    edges_.push_back({src, dst, w});
  }
  void add(const Edge& e) { edges_.push_back(e); }

  [[nodiscard]] std::size_t size() const { return edges_.size(); }
  [[nodiscard]] bool empty() const { return edges_.empty(); }

  [[nodiscard]] const Edge& operator[](std::size_t i) const {
    return edges_[i];
  }
  Edge& operator[](std::size_t i) { return edges_[i]; }

  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& edges() { return edges_; }

  [[nodiscard]] auto begin() const { return edges_.begin(); }
  [[nodiscard]] auto end() const { return edges_.end(); }

  /// Largest vertex id referenced plus one (0 for an empty list).
  [[nodiscard]] VertexId max_vertex_plus_one() const;

  /// Sort by (src, dst) and drop duplicate (src, dst) pairs, keeping the
  /// first weight seen.
  void sort_and_dedup();

  /// Remove self-loop edges (src == dst).
  void remove_self_loops();

  /// Append the reverse of every edge, making the graph symmetric.
  /// Call sort_and_dedup() afterwards to drop duplicates.
  void add_reverse_edges();

 private:
  std::vector<Edge> edges_;
};

}  // namespace cgraph
