// Range-based graph partitioning (paper §3.1).
//
// Vertices are assigned to partitions by contiguous id range; ranges are
// chosen so each partition holds approximately the same number of edges
// (degree-balanced sweep), which is the paper's workload-balancing rule.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace cgraph {

class RangePartition {
 public:
  RangePartition() = default;

  /// Balance by total degree: splits [0, V) into `num_partitions`
  /// contiguous ranges with near-equal out-edge counts.
  static RangePartition balanced_by_edges(const Graph& graph,
                                          PartitionId num_partitions);

  /// Uniform vertex-count split (for tests and degenerate cases).
  static RangePartition balanced_by_vertices(VertexId num_vertices,
                                             PartitionId num_partitions);

  [[nodiscard]] PartitionId num_partitions() const {
    return static_cast<PartitionId>(ranges_.size());
  }

  [[nodiscard]] const VertexRange& range(PartitionId p) const {
    CGRAPH_DCHECK(p < ranges_.size());
    return ranges_[p];
  }

  /// Owner partition of a global vertex id. O(log p) bisection; p is tiny.
  [[nodiscard]] PartitionId owner(VertexId v) const;

  [[nodiscard]] const std::vector<VertexRange>& ranges() const {
    return ranges_;
  }

  /// Max/mean edge-count ratio across partitions (1.0 = perfectly even).
  [[nodiscard]] double edge_balance(const Graph& graph) const;

 private:
  std::vector<VertexRange> ranges_;
};

}  // namespace cgraph
