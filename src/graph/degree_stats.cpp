#include "graph/degree_stats.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "util/stats.hpp"

namespace cgraph {

DegreeStats compute_degree_stats(const Csr& csr) {
  DegreeStats s;
  const VertexId n = csr.num_vertices();
  if (n == 0) return s;

  std::vector<double> degrees;
  degrees.reserve(n);
  s.min = csr.degree(0);
  for (VertexId v = 0; v < n; ++v) {
    const EdgeIndex d = csr.degree(v);
    degrees.push_back(static_cast<double>(d));
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    if (d == 0) {
      ++s.zero_degree_vertices;
    } else {
      const auto bin = static_cast<std::size_t>(std::bit_width(d) - 1);
      if (bin >= s.log2_histogram.size()) s.log2_histogram.resize(bin + 1, 0);
      ++s.log2_histogram[bin];
    }
  }
  s.mean = static_cast<double>(csr.num_edges()) / static_cast<double>(n);
  std::sort(degrees.begin(), degrees.end());
  s.p50 = percentile_sorted(degrees, 50);
  s.p90 = percentile_sorted(degrees, 90);
  s.p99 = percentile_sorted(degrees, 99);
  return s;
}

std::string degree_stats_to_string(const DegreeStats& stats) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "deg: mean %.1f  p50 %.0f  p90 %.0f  p99 %.0f  max %llu"
                "  (zero-degree %llu)\n",
                stats.mean, stats.p50, stats.p90, stats.p99,
                static_cast<unsigned long long>(stats.max),
                static_cast<unsigned long long>(stats.zero_degree_vertices));
  std::string out = buf;
  for (std::size_t bin = 0; bin < stats.log2_histogram.size(); ++bin) {
    if (stats.log2_histogram[bin] == 0) continue;
    std::snprintf(buf, sizeof buf, "  deg [%llu, %llu): %llu vertices\n",
                  1ULL << bin, 1ULL << (bin + 1),
                  static_cast<unsigned long long>(stats.log2_histogram[bin]));
    out += buf;
  }
  return out;
}

}  // namespace cgraph
