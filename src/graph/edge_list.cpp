#include "graph/edge_list.hpp"

#include <algorithm>

namespace cgraph {

VertexId EdgeList::max_vertex_plus_one() const {
  VertexId m = 0;
  for (const Edge& e : edges_) {
    m = std::max({m, static_cast<VertexId>(e.src + 1),
                  static_cast<VertexId>(e.dst + 1)});
  }
  return m;
}

void EdgeList::sort_and_dedup() {
  // stable_sort so the first-seen weight survives dedup for duplicate
  // (src, dst) pairs.
  std::stable_sort(edges_.begin(), edges_.end(), EdgeLess{});
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

void EdgeList::remove_self_loops() {
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               edges_.end());
}

void EdgeList::add_reverse_edges() {
  const std::size_t n = edges_.size();
  edges_.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    const Edge& e = edges_[i];
    if (e.src != e.dst) edges_.push_back({e.dst, e.src, e.weight});
  }
}

}  // namespace cgraph
