// Triangle counting — the paper's flagship example of a higher-level
// analysis expressible through k-hop neighborhoods ("triangle counting
// ... is equivalent to finding vertices that are within 1 and 2-hop
// neighbors of the same vertex", §1/§2).
//
// Input must be a symmetrized (undirected) graph. Each triangle {u,v,w}
// is counted once via the id-ordering u < v < w: for every edge (u,v)
// with u < v, count common neighbors w > v.
//
// Distributed: two BSP supersteps. For each local u and neighbor v > u,
// the candidate set N>(u) ∩ (v, inf) either intersects locally (v local)
// or ships to v's owner, which intersects against N>(v) — boundary
// adjacency is never replicated, matching the shard model.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/shard.hpp"
#include "net/cluster.hpp"

namespace cgraph {

struct TriangleResult {
  std::uint64_t triangles = 0;
  double wall_seconds = 0;
  double sim_seconds = 0;
  std::uint64_t bytes = 0;  // candidate-set traffic
};

/// Distributed triangle count over sharded symmetric graphs.
TriangleResult run_triangle_count(Cluster& cluster,
                                  const std::vector<SubgraphShard>& shards,
                                  const RangePartition& partition);

/// Serial reference: sorted-adjacency intersection, O(sum deg^1.5)-ish.
std::uint64_t triangle_count_serial(const Graph& graph);

}  // namespace cgraph
