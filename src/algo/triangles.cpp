#include "algo/triangles.hpp"

#include <algorithm>
#include <atomic>

#include "net/serialize.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace cgraph {
namespace {

constexpr std::uint32_t kCandidateTag = 0x54524943;  // 'TRIC'

/// Neighbors of global vertex v (from its shard) strictly greater than
/// `above`, gathered into a sorted scratch vector.
void higher_neighbors(const SubgraphShard& shard, VertexId v, VertexId above,
                      std::vector<VertexId>& out) {
  out.clear();
  shard.out_sets().for_each_neighbor(v, [&](VertexId t) {
    if (t > above) out.push_back(t);
  });
  std::sort(out.begin(), out.end());
}

std::uint64_t sorted_intersection_size(std::span<const VertexId> a,
                                       std::span<const VertexId> b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

TriangleResult run_triangle_count(Cluster& cluster,
                                  const std::vector<SubgraphShard>& shards,
                                  const RangePartition& partition) {
  CGRAPH_CHECK(shards.size() == cluster.num_machines());

  std::atomic<std::uint64_t> total{0};
  cluster.reset_clocks();
  cluster.fabric().reset_counters();
  WallTimer wall;

  cluster.run([&](MachineContext& mc) {
    const SubgraphShard& shard = shards[mc.id()];
    const VertexRange range = shard.local_range();

    std::uint64_t local_count = 0;
    std::uint64_t edges_scanned = 0;
    std::vector<VertexId> nu, nv;

    // Superstep 0: local intersections + ship candidate sets for remote v.
    // One packet per destination machine, all requests batched.
    std::vector<PacketWriter> outbox(mc.num_machines());
    for (VertexId u = range.begin; u < range.end; ++u) {
      higher_neighbors(shard, u, u, nu);
      edges_scanned += nu.size();
      for (VertexId v : nu) {
        // Candidates: w in N>(u) with w > v.
        const auto split = std::upper_bound(nu.begin(), nu.end(), v);
        const std::span<const VertexId> candidates{
            nu.data() + (split - nu.begin()),
            static_cast<std::size_t>(nu.end() - split)};
        if (candidates.empty()) continue;
        if (range.contains(v)) {
          higher_neighbors(shard, v, v, nv);
          local_count += sorted_intersection_size(candidates, nv);
        } else {
          const PartitionId owner = partition.owner(v);
          outbox[owner].write<VertexId>(v);
          outbox[owner].write_span(candidates);
        }
      }
    }
    mc.charge_compute(edges_scanned, range.size());
    for (PartitionId to = 0; to < outbox.size(); ++to) {
      if (outbox[to].empty()) continue;
      mc.send(to, kCandidateTag, outbox[to].take());
    }
    mc.barrier();

    // Superstep 1: intersect received candidate sets against local N>(v).
    std::uint64_t recv_work = 0;
    for (Envelope& env : mc.recv_staged()) {
      CGRAPH_CHECK(env.tag == kCandidateTag);
      PacketReader pr(env.payload);
      while (!pr.exhausted()) {
        const auto v = pr.read<VertexId>();
        const auto candidates = pr.read_vector<VertexId>();
        CGRAPH_DCHECK(range.contains(v));
        higher_neighbors(shard, v, v, nv);
        local_count += sorted_intersection_size(candidates, nv);
        recv_work += candidates.size() + nv.size();
      }
    }
    mc.charge_compute(recv_work);
    mc.barrier();

    total.fetch_add(local_count, std::memory_order_relaxed);
  });

  TriangleResult result;
  result.triangles = total.load(std::memory_order_relaxed);
  result.wall_seconds = wall.seconds();
  result.sim_seconds = cluster.sim_seconds();
  result.bytes = cluster.fabric().total_bytes();
  return result;
}

std::uint64_t triangle_count_serial(const Graph& graph) {
  std::uint64_t count = 0;
  std::vector<VertexId> nu, nv;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    nu.clear();
    for (VertexId t : graph.out_neighbors(u)) {
      if (t > u) nu.push_back(t);  // already sorted in CSR order
    }
    for (VertexId v : nu) {
      nv.clear();
      for (VertexId t : graph.out_neighbors(v)) {
        if (t > v) nv.push_back(t);
      }
      const auto split = std::upper_bound(nu.begin(), nu.end(), v);
      count += sorted_intersection_size(
          {nu.data() + (split - nu.begin()),
           static_cast<std::size_t>(nu.end() - split)},
          nv);
    }
  }
  return count;
}

}  // namespace cgraph
