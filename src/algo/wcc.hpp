// Weakly connected components via distributed label propagation (min-label
// flooding) — a classic "decomposes into local traversals" workload for
// the framework, with a serial union-find reference.
//
// Edges are treated as undirected: labels propagate along out-edges AND
// in-edges (the shard's CSC provides the parents).
#pragma once

#include <vector>

#include "engine/vertex_program.hpp"
#include "graph/graph.hpp"

namespace cgraph {

struct WccResult {
  /// Component label per global vertex (the min vertex id in the
  /// component).
  std::vector<VertexId> label;
  std::uint64_t num_components = 0;
  VertexRunStats stats;
};

/// Distributed WCC. Shards must be built with in-edges (the default).
WccResult run_wcc(Cluster& cluster, const std::vector<SubgraphShard>& shards,
                  const RangePartition& partition);

/// Serial union-find reference; labels normalized to min id per component.
std::vector<VertexId> wcc_serial(const Graph& graph);

}  // namespace cgraph
