#include "algo/sssp.hpp"

#include <queue>

#include "util/assert.hpp"

namespace cgraph {
namespace {

/// Relaxation vertex program: value = best known distance.
class SsspProgram final : public VertexProgram<double, double> {
 public:
  explicit SsspProgram(VertexId source) : source_(source) {}

  double init(VertexId v, const SubgraphShard&) const override {
    return v == source_ ? 0.0 : kUnreachable;
  }

  bool initially_active(VertexId v) const override { return v == source_; }

  void compute(VertexHandle<double, double>& vertex,
               std::span<const double> messages,
               std::uint64_t superstep) const override {
    double best = vertex.value();
    for (double d : messages) best = std::min(best, d);

    // Push only when the distance improved (or on the seed's first step);
    // otherwise this wake-up was redundant.
    const bool seed_kickoff = superstep == 0 && vertex.id() == source_;
    if (best < vertex.value() || seed_kickoff) {
      vertex.value() = best;
      vertex.for_each_out_edge([&](VertexId t, Weight w) {
        vertex.send(t, best + static_cast<double>(w));
      });
    }
    vertex.vote_to_halt();
  }

 private:
  VertexId source_;
};

}  // namespace

SsspResult run_sssp(Cluster& cluster,
                    const std::vector<SubgraphShard>& shards,
                    const RangePartition& partition, VertexId source) {
  CGRAPH_CHECK(!shards.empty());
  CGRAPH_CHECK(source < shards[0].num_global_vertices());
  SsspProgram program(source);
  auto run = run_vertex_program<double, double>(cluster, shards, partition,
                                                program);
  return {std::move(run.values), run.stats};
}

std::vector<double> sssp_serial(const Graph& graph, VertexId source) {
  CGRAPH_CHECK(source < graph.num_vertices());
  std::vector<double> dist(graph.num_vertices(), kUnreachable);
  dist[source] = 0.0;

  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.push({0.0, source});
  const bool weighted = graph.has_weights();
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;  // stale entry
    const auto nbrs = graph.out_neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double w =
          weighted ? static_cast<double>(graph.out_csr().weights(v)[i]) : 1.0;
      const double cand = d + w;
      if (cand < dist[nbrs[i]]) {
        dist[nbrs[i]] = cand;
        heap.push({cand, nbrs[i]});
      }
    }
  }
  return dist;
}

}  // namespace cgraph
