#include "algo/wcc.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace cgraph {
namespace {

/// Min-label flooding over both edge directions.
class WccProgram final : public VertexProgram<VertexId, VertexId> {
 public:
  VertexId init(VertexId v, const SubgraphShard&) const override {
    return v;
  }
  bool initially_active(VertexId) const override { return true; }

  void compute(VertexHandle<VertexId, VertexId>& vertex,
               std::span<const VertexId> messages,
               std::uint64_t superstep) const override {
    VertexId best = vertex.value();
    for (VertexId label : messages) best = std::min(best, label);

    if (best < vertex.value() || superstep == 0) {
      vertex.value() = best;
      vertex.send_to_neighbors(best);
      // Also push along in-edges (undirected semantics).
      if (vertex.shard().has_in_edges()) {
        vertex.for_each_in_neighbor([&](VertexId p) { vertex.send(p, best); });
      }
    }
    vertex.vote_to_halt();
  }
};

class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), VertexId{0});
  }
  VertexId find(VertexId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }
  void unite(VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);  // keep the smaller id as root
    parent_[b] = a;
  }

 private:
  std::vector<VertexId> parent_;
};

}  // namespace

WccResult run_wcc(Cluster& cluster, const std::vector<SubgraphShard>& shards,
                  const RangePartition& partition) {
  CGRAPH_CHECK(!shards.empty());
  CGRAPH_CHECK_MSG(shards[0].has_in_edges() ||
                       shards[0].num_global_vertices() == 0,
                   "WCC needs shards built with in-edges");
  WccProgram program;
  auto run = run_vertex_program<VertexId, VertexId>(cluster, shards,
                                                    partition, program);
  WccResult result{std::move(run.values), 0, run.stats};
  for (VertexId v = 0; v < result.label.size(); ++v) {
    if (result.label[v] == v) ++result.num_components;
  }
  return result;
}

std::vector<VertexId> wcc_serial(const Graph& graph) {
  DisjointSet ds(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId t : graph.out_neighbors(v)) ds.unite(v, t);
  }
  std::vector<VertexId> label(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) label[v] = ds.find(v);
  return label;
}

}  // namespace cgraph
