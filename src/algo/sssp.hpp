// Single-source shortest paths — the paper's §2 example of a traversal
// that accumulates values ("SSSP ... by accumulating the shortest path
// weights on each vertex with respect to the root").
//
// Distributed: a vertex program (Bellman-Ford style relaxation; a vertex
// wakes when a shorter distance arrives and pushes dist+w to neighbors).
// Serial reference: binary-heap Dijkstra over the weighted CSR.
#pragma once

#include <limits>
#include <vector>

#include "engine/vertex_program.hpp"
#include "graph/graph.hpp"

namespace cgraph {

inline constexpr double kUnreachable =
    std::numeric_limits<double>::infinity();

struct SsspResult {
  std::vector<double> distance;  // per global vertex; inf if unreachable
  VertexRunStats stats;
};

/// Distributed SSSP from `source` over sharded weighted (or unit-weight)
/// graphs.
SsspResult run_sssp(Cluster& cluster,
                    const std::vector<SubgraphShard>& shards,
                    const RangePartition& partition, VertexId source);

/// Serial Dijkstra reference (non-negative weights).
std::vector<double> sssp_serial(const Graph& graph, VertexId source);

}  // namespace cgraph
