#include "algo/constrained_reach.hpp"

#include <atomic>
#include <limits>

#include "net/serialize.hpp"
#include "query/bfs.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace cgraph {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kRelaxTag = 0x52454c58;  // 'RELX'
constexpr std::uint32_t kHopTag = 0x484f5056;    // 'HOPV'

struct RelaxRecord {
  VertexId target;
  double distance;
};

ConstrainedReachResult summarize(std::vector<double> dist,
                                 const std::vector<char>& hop_reached,
                                 VertexId source, double budget) {
  ConstrainedReachResult r;
  r.distance = std::move(dist);
  for (VertexId v = 0; v < r.distance.size(); ++v) {
    if (v == source) continue;
    if (hop_reached[v]) ++r.hop_reachable;
    if (r.distance[v] <= budget) {
      ++r.admitted;
      r.worst_admitted = std::max(r.worst_admitted, r.distance[v]);
    }
  }
  return r;
}

}  // namespace

namespace {

/// Constrained queries must never be answered by the reachability index:
/// the labels/gates know nothing about weight budgets, so even the
/// trivially-reachable probe (source -> source) is forced through the
/// constrained entry point, which is unconditionally kUnknown.
IndexVerdict probe_index_constrained(const ReachIndex* index, VertexId source,
                                     Depth max_hops) {
  if (index == nullptr) return IndexVerdict::kUnknown;
  return index->query(source, source, max_hops, /*constrained=*/true);
}

}  // namespace

ConstrainedReachResult constrained_reach(const Graph& graph, VertexId source,
                                         Depth max_hops, double budget,
                                         const ReachIndex* index) {
  CGRAPH_CHECK(source < graph.num_vertices());
  const IndexVerdict index_verdict =
      probe_index_constrained(index, source, max_hops);
  const VertexId n = graph.num_vertices();
  std::vector<double> dist(n, kInf);
  dist[source] = 0.0;

  // Hop-bounded Bellman-Ford: after round h, dist[v] is the cheapest path
  // of <= h edges. Budget pruning is safe with non-negative weights.
  // Expansions read the *round-start* snapshot (dist) and write into
  // next_dist — in-round cascading would credit paths longer than the hop
  // bound.
  std::vector<double> next_dist = dist;
  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  Bitmap queued(n);
  const bool weighted = graph.has_weights();
  for (Depth round = 0; round < max_hops && !frontier.empty(); ++round) {
    next.clear();
    queued.clear_all();
    for (VertexId v : frontier) {
      const double base = dist[v];
      const auto nbrs = graph.out_neighbors(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId t = nbrs[i];
        const double w =
            weighted ? static_cast<double>(graph.out_csr().weights(v)[i])
                     : 1.0;
        const double cand = base + w;
        if (cand >= next_dist[t] || cand > budget) continue;
        next_dist[t] = cand;
        if (!queued.test(t)) {
          queued.set(t);
          next.push_back(t);
        }
      }
    }
    dist = next_dist;
    frontier.swap(next);
  }

  // Hop reachability ignores the budget entirely: plain BFS.
  const auto depth = bfs_levels(graph, source, max_hops);
  std::vector<char> hop_reached(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    hop_reached[v] = depth[v] != kUnvisitedDepth ? 1 : 0;
  }
  ConstrainedReachResult result =
      summarize(std::move(dist), hop_reached, source, budget);
  result.index_verdict = index_verdict;
  return result;
}

ConstrainedReachResult run_constrained_reach(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, VertexId source, Depth max_hops,
    double budget, const ReachIndex* index) {
  CGRAPH_CHECK(shards.size() == cluster.num_machines());
  const VertexId n = shards[0].num_global_vertices();
  CGRAPH_CHECK(source < n);
  const IndexVerdict index_verdict =
      probe_index_constrained(index, source, max_hops);

  std::vector<double> global_dist(n, kInf);
  std::vector<char> global_hop(n, 0);
  std::vector<std::atomic<std::uint8_t>> round_active(
      static_cast<std::size_t>(max_hops) + 1);
  for (auto& a : round_active) a.store(0, std::memory_order_relaxed);

  cluster.run([&](MachineContext& mc) {
    const SubgraphShard& shard = shards[mc.id()];
    const VertexRange range = shard.local_range();
    const VertexId nlocal = range.size();

    // Two traversals ride the same superstep loop:
    //   (a) budget-pruned relaxation -> dist
    //   (b) plain hop-bounded BFS -> hop_reached (budget ignored)
    std::vector<double> dist(nlocal, kInf);
    Bitmap hop_visited(nlocal);
    std::vector<VertexId> relax_frontier, relax_next;
    std::vector<VertexId> hop_frontier, hop_next;
    Bitmap queued(nlocal);
    if (range.contains(source)) {
      dist[source - range.begin] = 0.0;
      hop_visited.set(source - range.begin);
      relax_frontier.push_back(source);
      hop_frontier.push_back(source);
    }
    // Round-start snapshot discipline (see the serial engine): reads come
    // from dist, writes go to next_dist, merged at the round barrier.
    std::vector<double> next_dist = dist;
    std::vector<std::vector<RelaxRecord>> relax_out(mc.num_machines());
    std::vector<std::vector<VertexId>> hop_out(mc.num_machines());

    for (Depth round = 0; round < max_hops; ++round) {
      std::uint64_t edges = 0;

      // (a) relaxation expansion
      for (VertexId s : relax_frontier) {
        const double base = dist[s - range.begin];
        shard.out_sets().for_each_edge(s, [&](VertexId t, Weight w) {
          ++edges;
          const double cand = base + static_cast<double>(w);
          if (cand > budget) return;
          if (range.contains(t)) {
            if (cand < next_dist[t - range.begin]) {
              next_dist[t - range.begin] = cand;
              if (!queued.test(t - range.begin)) {
                queued.set(t - range.begin);
                relax_next.push_back(t);
              }
            }
          } else {
            relax_out[partition.owner(t)].push_back({t, cand});
          }
        });
      }
      // (b) plain BFS expansion
      for (VertexId s : hop_frontier) {
        shard.out_sets().for_each_neighbor(s, [&](VertexId t) {
          ++edges;
          if (range.contains(t)) {
            if (hop_visited.atomic_test_and_set(t - range.begin)) {
              hop_next.push_back(t);
            }
          } else {
            hop_out[partition.owner(t)].push_back(t);
          }
        });
      }
      mc.charge_compute(edges);

      for (PartitionId to = 0; to < mc.num_machines(); ++to) {
        if (!relax_out[to].empty()) {
          PacketWriter pw;
          pw.write_span(std::span<const RelaxRecord>(relax_out[to]));
          mc.send(to, kRelaxTag, pw.take());
          relax_out[to].clear();
        }
        if (!hop_out[to].empty()) {
          PacketWriter pw;
          pw.write_span(std::span<const VertexId>(hop_out[to]));
          mc.send(to, kHopTag, pw.take());
          hop_out[to].clear();
        }
      }
      mc.barrier();

      for (Envelope& env : mc.recv_staged()) {
        PacketReader pr(env.payload);
        if (env.tag == kRelaxTag) {
          for (const RelaxRecord& rec : pr.read_vector<RelaxRecord>()) {
            CGRAPH_DCHECK(range.contains(rec.target));
            const VertexId i = rec.target - range.begin;
            if (rec.distance < next_dist[i]) {
              next_dist[i] = rec.distance;
              if (!queued.test(i)) {
                queued.set(i);
                relax_next.push_back(rec.target);
              }
            }
          }
        } else {
          CGRAPH_CHECK(env.tag == kHopTag);
          for (VertexId t : pr.read_vector<VertexId>()) {
            CGRAPH_DCHECK(range.contains(t));
            if (hop_visited.atomic_test_and_set(t - range.begin)) {
              hop_next.push_back(t);
            }
          }
        }
      }

      dist = next_dist;  // close the round: snapshot advances
      if (!relax_next.empty() || !hop_next.empty()) {
        round_active[round].store(1, std::memory_order_release);
      }
      relax_frontier.swap(relax_next);
      relax_next.clear();
      hop_frontier.swap(hop_next);
      hop_next.clear();
      queued.clear_all();
      mc.barrier();
      if (round_active[round].load(std::memory_order_acquire) == 0) {
        break;  // globally quiescent — consistent decision for all
      }
    }

    for (VertexId i = 0; i < nlocal; ++i) {
      global_dist[range.begin + i] = dist[i];
      global_hop[range.begin + i] = hop_visited.test(i) ? 1 : 0;
    }
  });

  ConstrainedReachResult result =
      summarize(std::move(global_dist), global_hop, source, budget);
  result.index_verdict = index_verdict;
  return result;
}

}  // namespace cgraph
