// Constrained reachability: k-hop bounded traversal with an accumulated
// edge-weight budget — the paper's SDN example ("a path query must be
// subject to some distance constraints in order to meet quality-of-service
// latency requirements", §1).
//
// Semantics: vertex t is admitted if some path from the source reaches it
// within `max_hops` hops AND total weight <= `budget`. Implemented as a
// hop-levelled label-correcting relaxation (a vertex may re-enter the
// frontier when a cheaper path arrives within the hop budget).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/shard.hpp"
#include "index/reach_index.hpp"
#include "net/cluster.hpp"

namespace cgraph {

struct ConstrainedReachResult {
  /// Best known distance per vertex (infinity if not admitted).
  std::vector<double> distance;
  std::uint64_t admitted = 0;        // vertices within both constraints
  std::uint64_t hop_reachable = 0;   // vertices within max_hops, any cost
  double worst_admitted = 0;         // max admitted distance
  /// Verdict of the (optional) index probe issued through the constrained
  /// entry point. The index has no notion of weight budgets, so this is
  /// ALWAYS kUnknown — constrained queries are routed around the fast
  /// path by construction (DESIGN.md §13), and the regression test in
  /// tests/test_index.cpp pins it.
  IndexVerdict index_verdict = IndexVerdict::kUnknown;
};

/// Serial engine over the weighted CSR. When `index` is non-null it is
/// probed through the constrained entry point (never answering — see
/// ConstrainedReachResult::index_verdict); results are identical with or
/// without an index.
ConstrainedReachResult constrained_reach(const Graph& graph, VertexId source,
                                         Depth max_hops, double budget,
                                         const ReachIndex* index = nullptr);

/// Distributed engine over weighted shards: level-synchronous relaxation
/// with boundary pushes, mirroring the k-hop engines' structure. `index`
/// behaves as in the serial engine: probed constrained, never conclusive.
ConstrainedReachResult run_constrained_reach(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, VertexId source, Depth max_hops,
    double budget, const ReachIndex* index = nullptr);

}  // namespace cgraph
