// Frontier state for concurrent traversals (paper §3.5).
//
// Instead of task queues/sets — whose union operations, dynamic allocation
// and locking dominate at high query counts — each query keeps 2 bits per
// vertex for "in current frontier" / "in next frontier" plus 1 bit for
// "visited", stored in word-packed arrays for constant-time access. A
// batch of queries shares the vertex dimension, so one edge-set scan
// advances every query in the batch (MS-BFS).
//
// LevelValueStore implements the paper's dynamic resource allocation: a
// traversal only retains vertex values (depths/parents) for the previous
// and current levels rather than a dense value per vertex per query.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "net/serialize.hpp"
#include "util/bitops.hpp"

namespace cgraph {

/// Frontier density summary, the deterministic input of the
/// direction-optimizing heuristic (see query/direction.hpp). Produced as a
/// by-product of the commit pass — popcounts over words the commit already
/// touches, never an extra scan and never a per-bit loop.
struct FrontierOccupancy {
  /// Rows (vertices) with at least one frontier bit set.
  std::uint64_t active_rows = 0;
  /// Total set frontier bits (row popcounts summed).
  std::uint64_t active_bits = 0;
  /// Sum of out-degrees over active rows: the Beamer scout count — the
  /// edges the next top-down scan would charge. Zero when no degree table
  /// was supplied.
  std::uint64_t scout_edges = 0;

  FrontierOccupancy& operator+=(const FrontierOccupancy& o) {
    active_rows += o.active_rows;
    active_bits += o.active_bits;
    scout_edges += o.scout_edges;
    return *this;
  }
};

/// Per-batch traversal state over a (local) vertex range: three bit planes
/// indexed [vertex][query].
class BatchFrontier {
 public:
  BatchFrontier() = default;
  BatchFrontier(std::size_t num_vertices, std::size_t num_queries)
      : frontier_(num_vertices, num_queries),
        next_(num_vertices, num_queries),
        visited_(num_vertices, num_queries) {}

  [[nodiscard]] std::size_t num_vertices() const { return frontier_.rows(); }
  [[nodiscard]] std::size_t num_queries() const {
    return frontier_.queries();
  }
  [[nodiscard]] std::size_t words_per_row() const {
    return frontier_.words_per_row();
  }

  [[nodiscard]] QueryBitRows& frontier() { return frontier_; }
  [[nodiscard]] QueryBitRows& next() { return next_; }
  [[nodiscard]] QueryBitRows& visited() { return visited_; }
  [[nodiscard]] const QueryBitRows& frontier() const { return frontier_; }
  [[nodiscard]] const QueryBitRows& next() const { return next_; }
  [[nodiscard]] const QueryBitRows& visited() const { return visited_; }

  /// Seed query q at local vertex v (marks frontier + visited).
  void seed(std::size_t v, std::size_t q) {
    frontier_.set(v, q);
    visited_.set(v, q);
  }

  /// Merge `next` bits for vertex v: bits not yet visited become frontier-
  /// next and visited. Returns the word-mask of queries newly discovered.
  /// This is the paper Fig. 6 update: frontierNext |= bits & ~visited.
  void discover(std::size_t v, const Word* query_bits) {
    Word* nx = next_.row(v);
    Word* vis = visited_.row(v);
    for (std::size_t w = 0; w < frontier_.words_per_row(); ++w) {
      const Word fresh = query_bits[w] & ~vis[w];
      nx[w] |= fresh;
      vis[w] |= fresh;
    }
  }

  /// Deferred-commit discover for parallel edge-set scans: the next plane
  /// takes `bits & ~visited` via a relaxed atomic OR, while the visited
  /// plane is treated as read-only for the whole level and folded in once
  /// by commit_rows(). OR is commutative and idempotent, so the result is
  /// identical for any thread count and interleaving — this is what keeps
  /// threads=1 and threads=N bit-exact.
  void discover_atomic(std::size_t v, const Word* query_bits) {
    Word* nx = next_.row(v);
    const Word* vis = visited_.row(v);
    for (std::size_t w = 0; w < frontier_.words_per_row(); ++w) {
      const Word fresh = query_bits[w] & ~vis[w];
      if (fresh == 0) continue;
      // Same storage-aliasing trick as Bitmap::atomic_test_and_set: the
      // word array is only ever touched atomically during the scan phase.
      auto* a = reinterpret_cast<std::atomic<Word>*>(&nx[w]);
      a->fetch_or(fresh, std::memory_order_relaxed);
    }
  }

  /// Close a level for rows [begin, end): fold the next plane into
  /// visited (the once-per-level visited update paired with
  /// discover_atomic) and OR each next row into `nonempty_out`
  /// (words_per_row() words, the per-query occupancy mask). Disjoint row
  /// ranges may be committed concurrently; call only after every
  /// discover_atomic of the level has completed (a pool join provides the
  /// needed ordering).
  void commit_rows(std::size_t begin, std::size_t end, Word* nonempty_out) {
    commit_rows(begin, end, nonempty_out, {}, nullptr);
  }

  /// commit_rows with density accounting: additionally popcounts each next
  /// row while it is being folded (O(words) per row, no second pass) and
  /// returns the closing level's FrontierOccupancy — after the matching
  /// advance() this describes the *new* frontier, which is exactly what
  /// the next level's direction decision needs. `degrees`, when non-empty,
  /// supplies per-row out-degrees for the scout count; `active_out`, when
  /// non-null, collects the active row ids in ascending order (the
  /// bitmap->queue side of the sparse-frontier conversion, built while the
  /// words are already hot instead of by rescanning the plane).
  FrontierOccupancy commit_rows(std::size_t begin, std::size_t end,
                                Word* nonempty_out,
                                std::span<const EdgeIndex> degrees,
                                std::vector<VertexId>* active_out) {
    const std::size_t W = frontier_.words_per_row();
    FrontierOccupancy occ;
    for (std::size_t v = begin; v < end; ++v) {
      const Word* nx = next_.row(v);
      Word* vis = visited_.row(v);
      Word any = 0;
      for (std::size_t w = 0; w < W; ++w) {
        vis[w] |= nx[w];
        nonempty_out[w] |= nx[w];
        any |= nx[w];
      }
      if (any == 0) continue;
      ++occ.active_rows;
      occ.active_bits += popcount_words(nx, W);
      if (!degrees.empty()) occ.scout_edges += degrees[v];
      if (active_out != nullptr) {
        active_out->push_back(static_cast<VertexId>(v));
      }
    }
    return occ;
  }

  /// Recompute the current frontier plane's occupancy directly (O(rows *
  /// words) with one popcount per word). The engines use this only where
  /// no commit pass preceded the level — at seed time and when resuming
  /// from a restored checkpoint — and it reproduces the commit-carried
  /// values exactly, which is what keeps the direction heuristic's replay
  /// bit-exact after a crash.
  [[nodiscard]] FrontierOccupancy frontier_occupancy(
      std::span<const EdgeIndex> degrees = {}) const {
    const std::size_t W = frontier_.words_per_row();
    FrontierOccupancy occ;
    for (std::size_t v = 0; v < frontier_.rows(); ++v) {
      const Word* row = frontier_.row(v);
      const std::uint64_t bits = popcount_words(row, W);
      if (bits == 0) continue;
      ++occ.active_rows;
      occ.active_bits += bits;
      if (!degrees.empty()) occ.scout_edges += degrees[v];
    }
    return occ;
  }

  /// Bitmap -> queue conversion: collect the rows with any frontier bit,
  /// ascending. Returns the queue length. The sparse top-down scan
  /// iterates this queue instead of testing every row; the inverse
  /// conversion below restores a plane from the queue.
  std::size_t frontier_to_queue(std::vector<VertexId>& out) const {
    out.clear();
    for (std::size_t v = 0; v < frontier_.rows(); ++v) {
      if (frontier_.row_any(v)) out.push_back(static_cast<VertexId>(v));
    }
    return out.size();
  }

  /// Queue -> bitmap conversion: rebuild the frontier plane from a queue
  /// of active rows plus the plane the rows were captured from. Rows not
  /// in the queue are cleared. With a queue produced by frontier_to_queue
  /// on `src` this is an exact inverse (round-trip property-tested).
  void frontier_from_queue(std::span<const VertexId> queue,
                           const QueryBitRows& src) {
    const std::size_t W = frontier_.words_per_row();
    CGRAPH_CHECK(src.rows() == frontier_.rows() &&
                 src.words_per_row() == W);
    frontier_.clear_all();
    for (VertexId v : queue) {
      const Word* s = src.row(v);
      Word* d = frontier_.row(v);
      for (std::size_t w = 0; w < W; ++w) d[w] = s[w];
    }
  }

  /// Bottom-up (pull) update for row v — the CSC word-AND kernel. want =
  /// expand & ~visited(v); every parent in `parents` whose global id falls
  /// in [parent_begin, parent_end) (ids sorted ascending, the CSR
  /// invariant, so the window is found by binary search) contributes
  /// frontier(parent - parent_begin) & want into next(v), one AND per
  /// 64-query word; a query's bit is retired as soon as one parent
  /// supplies it and the loop exits early once every wanted bit is found.
  /// The row is written by exactly one thread (scans partition rows), so
  /// the writes are plain — no atomics — and commit_rows() folds next into
  /// visited as usual, which keeps pull bit-exact with push for any thread
  /// count. Returns the number of parent rows examined (what the scout
  /// heuristic charges as bottom-up work).
  std::uint64_t pull_row(std::size_t v, const Word* expand,
                         std::span<const VertexId> parents,
                         VertexId parent_begin, VertexId parent_end) {
    const std::size_t W = frontier_.words_per_row();
    Word want[QueryBitRows::kMaxBatchWords];
    const Word* vis = visited_.row(v);
    Word any = 0;
    for (std::size_t w = 0; w < W; ++w) {
      want[w] = expand[w] & ~vis[w];
      any |= want[w];
    }
    if (any == 0) return 0;
    const auto lo =
        std::lower_bound(parents.begin(), parents.end(), parent_begin);
    const auto hi = std::lower_bound(lo, parents.end(), parent_end);
    Word* nx = next_.row(v);
    std::uint64_t examined = 0;
    for (auto it = lo; it != hi; ++it) {
      ++examined;
      const Word* pf =
          frontier_.row(static_cast<std::size_t>(*it - parent_begin));
      Word remaining = 0;
      for (std::size_t w = 0; w < W; ++w) {
        const Word add = pf[w] & want[w];
        nx[w] |= add;
        want[w] &= ~add;
        remaining |= want[w];
      }
      if (remaining == 0) break;
    }
    return examined;
  }

  /// Advance one level: frontier <- next, next <- 0. Returns true if the
  /// new frontier is non-empty (any query still active here). This variant
  /// rescans every row — O(V·W); prefer the mask overload when commit_rows
  /// already produced the occupancy.
  bool advance() {
    frontier_.swap(next_);
    next_.clear_all();
    for (std::size_t v = 0; v < frontier_.rows(); ++v) {
      if (frontier_.row_any(v)) return true;
    }
    return false;
  }

  /// Advance one level using the per-query occupancy mask commit_rows
  /// accumulated for the closing level (words_per_row() words): the
  /// activity answer is OR(mask) — O(words), no row rescan. The mask is
  /// exactly the OR of every next row, so this returns precisely what the
  /// scanning advance() would.
  bool advance(const Word* nonempty) {
    frontier_.swap(next_);
    next_.clear_all();
    Word any = 0;
    for (std::size_t w = 0; w < frontier_.words_per_row(); ++w) {
      any |= nonempty[w];
    }
    return any != 0;
  }

  /// Approximate memory footprint (the Fig. 12/13 memory discussion).
  /// Capacity-aware: counts the bytes the planes actually reserve, not
  /// just the bits in use, so a long-running service sees its true
  /// footprint.
  [[nodiscard]] std::size_t memory_bytes() const {
    return frontier_.capacity_bytes() + next_.capacity_bytes() +
           visited_.capacity_bytes();
  }

  /// Release the planes' storage entirely (burst-then-idle shrink for
  /// long-running services). The frontier becomes 0-vertex; assign a fresh
  /// BatchFrontier to reuse it.
  void release() {
    frontier_.release();
    next_.release();
    visited_.release();
  }

  /// Checkpoint support: only the frontier and visited planes travel — at
  /// the top-of-level consistent cut where checkpoints are taken, the next
  /// plane is always empty (advance() just cleared it).
  void serialize(PacketWriter& w) const {
    w.write_span<Word>({frontier_.data(), frontier_.size_words()});
    w.write_span<Word>({visited_.data(), visited_.size_words()});
  }
  void deserialize(PacketReader& r) {
    const auto fr = r.read_vector<Word>();
    const auto vis = r.read_vector<Word>();
    CGRAPH_CHECK(fr.size() == frontier_.size_words());
    CGRAPH_CHECK(vis.size() == visited_.size_words());
    std::copy(fr.begin(), fr.end(), frontier_.data());
    std::copy(vis.begin(), vis.end(), visited_.data());
    next_.clear_all();
  }

 private:
  QueryBitRows frontier_;
  QueryBitRows next_;
  QueryBitRows visited_;
};

/// Sparse per-level vertex values: the traversal keeps (vertex, value)
/// pairs for the previous and current levels only, releasing older levels
/// (paper §3.3 "dynamic resource allocation").
template <typename V>
class LevelValueStore {
 public:
  using Entry = std::pair<VertexId, V>;

  /// Record a value for a vertex discovered in the current level.
  void record(VertexId v, const V& value) {
    current_.emplace_back(v, value);
  }

  /// Move to the next level: previous is dropped, current becomes previous.
  /// Shrink policy: the recycled buffer keeps its capacity only while that
  /// capacity is justified by recent occupancy (<= kShrinkSlack x the
  /// level just closed, with a small floor) — a burst no longer pins its
  /// peak allocation for the rest of a long-running service's life.
  void advance_level() {
    previous_.swap(current_);
    current_.clear();
    ++level_;
    const std::size_t justified = std::max<std::size_t>(
        kMinRetainedEntries, kShrinkSlack * previous_.size());
    if (current_.capacity() > justified) {
      current_.shrink_to_fit();
    }
  }

  [[nodiscard]] const std::vector<Entry>& current() const { return current_; }
  [[nodiscard]] const std::vector<Entry>& previous() const {
    return previous_;
  }
  [[nodiscard]] std::uint32_t level() const { return level_; }

  /// Peak entries held at once (for the memory-footprint comparison with a
  /// dense per-vertex store).
  [[nodiscard]] std::size_t live_entries() const {
    return previous_.size() + current_.size();
  }
  /// Capacity-aware footprint: what the vectors reserve, not just what
  /// they hold — size-based accounting under-reports after a burst.
  [[nodiscard]] std::size_t memory_bytes() const {
    return (previous_.capacity() + current_.capacity()) * sizeof(Entry);
  }

  /// Reset for reuse. Capacity is kept for the hot steady state; pass
  /// release_capacity=true (or call shrink()) when going idle so a burst
  /// returns its memory.
  void reset(bool release_capacity = false) {
    previous_.clear();
    current_.clear();
    level_ = 0;
    if (release_capacity) shrink();
  }

  /// Drop all spare capacity now (idle hook for long-running services).
  void shrink() {
    previous_.shrink_to_fit();
    current_.shrink_to_fit();
  }

 private:
  static constexpr std::size_t kShrinkSlack = 4;
  static constexpr std::size_t kMinRetainedEntries = 64;

  std::vector<Entry> previous_;
  std::vector<Entry> current_;
  std::uint32_t level_ = 0;
};

}  // namespace cgraph
