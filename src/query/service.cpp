#include "query/service.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "obs/event_tracer.hpp"
#include "query/replica_router.hpp"
#include "util/assert.hpp"

namespace cgraph {

const char* to_string(ServiceOutcome outcome) {
  switch (outcome) {
    case ServiceOutcome::kShed:
      return "shed";
    case ServiceOutcome::kExpired:
      return "expired";
    case ServiceOutcome::kCompleted:
      return "completed";
    case ServiceOutcome::kIndexAnswered:
      return "index_answered";
  }
  return "unknown";
}

namespace {

struct PendingQuery {
  std::size_t submission = 0;  // index into the arrival stream
  double arrival = 0;
};

struct SealedBatch {
  std::size_t index = 0;
  double seal_time = 0;
  std::vector<PendingQuery> members;  // execution (policy) order
};

/// The admission/execution pipeline. All timing decisions are made in
/// simulated time from deterministic inputs; the mutex only orders the
/// handoff of sealed batches and the publication of batch start/finish
/// facts, so the pipelined and serial modes produce identical outcomes.
class ServicePipeline {
 public:
  ServicePipeline(Cluster& cluster, const std::vector<SubgraphShard>& shards,
                  const RangePartition& partition,
                  std::span<const TimedQuery> arrivals,
                  const ServiceOptions& opts, obs::MetricsRegistry& registry,
                  ServiceRunResult& result)
      : arrivals_(arrivals),
        shards_(shards),
        opts_(opts),
        executor_(cluster, shards, partition, opts.scheduler),
        result_(result),
        queue_depth_current_(registry.gauge(
            "cgraph_service_queue_depth",
            "Admitted-but-unstarted queries in the service queue",
            {{"stat", "current"}})),
        queue_depth_high_water_(registry.gauge(
            "cgraph_service_queue_depth",
            "Admitted-but-unstarted queries in the service queue",
            {{"stat", "high_water"}})),
        index_hits_(registry.counter(
            "cgraph_index_hit_total",
            "Point queries answered conclusively by the reachability "
            "index bypass lane")),
        index_misses_(registry.counter(
            "cgraph_index_miss_total",
            "Point-query index probes that returned unknown")),
        index_fallbacks_(registry.counter(
            "cgraph_index_fallback_total",
            "Point queries resolved by the traversal engine after an "
            "unknown index probe")) {
    result_.queries.resize(arrivals.size());
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      ServiceQueryRecord& r = result_.queries[i];
      r.id = arrivals[i].query.id;
      r.arrival_sim_seconds = arrivals[i].arrival_sim_seconds;
      r.outcome = ServiceOutcome::kShed;  // overwritten once admitted
      r.target = arrivals[i].query.target;
    }
    result_.telemetry.effective_policy = to_string(executor_.policy());
  }

  void run() {
    std::thread worker;
    if (opts_.pipeline) {
      worker = std::thread([this] {
        while (process_one_batch()) {
        }
      });
    }
    admit_all();
    if (opts_.pipeline) {
      worker.join();
    } else {
      while (process_one_batch()) {
      }
    }
    finalize();
  }

 private:
  // ---- admission side (caller thread) ----

  void admit_all() {
    double last_arrival = 0;
    for (std::size_t i = 0; i < arrivals_.size(); ++i) {
      const double t = arrivals_[i].arrival_sim_seconds;
      CGRAPH_CHECK_MSG(t >= last_arrival,
                       "arrival stream must be nondecreasing");
      last_arrival = t;

      // Max-linger seal: the pending batch closed before this arrival.
      if (!pending_.empty() && opts_.linger_seconds > 0 &&
          pending_.front().arrival + opts_.linger_seconds <= t) {
        seal(pending_.front().arrival + opts_.linger_seconds);
      }

      // Index bypass lane: a point query the index can conclude is
      // answered here — it never occupies a queue slot, so it can neither
      // be shed nor delay a batch seal. The probe is a pure function of
      // immutable index state, keeping the admission timeline
      // deterministic.
      const KHopQuery& arrival_query = arrivals_[i].query;
      if (opts_.index != nullptr && arrival_query.is_point()) {
        // Epoch handshake (DESIGN.md §15): tell the index how far the
        // shards have advanced before probing. A superseded index then
        // answers kUnknown for every conclusive verdict except s == t,
        // routing the query to the traversal fallback against live shards.
        opts_.index->observe_epoch(current_epoch(
            std::span<const SubgraphShard>(shards_.data(), shards_.size())));
        const IndexVerdict verdict = opts_.index->query(
            arrival_query.source, arrival_query.target, arrival_query.k);
        const double probe_sim = opts_.index->probe_sim_seconds();
        if (obs::tracing_enabled()) {
          obs::TraceEvent ev;
          ev.phase = obs::TraceEventPhase::kIndexProbe;
          ev.kind = obs::TraceEventKind::kInstant;
          ev.machine = obs::TraceEvent::kAdmissionTrack;
          ev.query = static_cast<std::int64_t>(arrival_query.id);
          ev.sim_seconds = t;
          ev.a = verdict == IndexVerdict::kUnreachable ? 0.0
                 : verdict == IndexVerdict::kReachable ? 1.0
                                                       : 2.0;
          ev.b = probe_sim;
          obs::trace(ev);
        }
        if (verdict != IndexVerdict::kUnknown) {
          ServiceQueryRecord& r = result_.queries[i];
          r.outcome = ServiceOutcome::kIndexAnswered;
          r.index_verdict = verdict;
          r.reachable = verdict == IndexVerdict::kReachable ? 1 : 0;
          r.queue_wait_sim_seconds = 0;
          r.execute_sim_seconds = probe_sim;
          r.response_sim_seconds = probe_sim;
          index_hits_.inc();
          if (opts_.router != nullptr) {
            // Attribution only: the bypass lane reads shared immutable
            // index state, so routing the hit to a healthy replica never
            // touches the execution timeline (stays deterministic).
            const std::size_t pr = opts_.router->route_point(
                static_cast<std::uint64_t>(arrival_query.id));
            if (obs::tracing_enabled()) {
              obs::TraceEvent rev;
              rev.phase = obs::TraceEventPhase::kReplicaRoute;
              rev.kind = obs::TraceEventKind::kInstant;
              rev.machine = obs::TraceEvent::kAdmissionTrack;
              rev.query = static_cast<std::int64_t>(arrival_query.id);
              rev.sim_seconds = t;
              rev.a = static_cast<double>(pr);
              rev.b = static_cast<double>(
                  opts_.router->owner_partition(arrival_query.source));
              obs::trace(rev);
            }
          }
          continue;
        }
        index_misses_.inc();
        ++index_miss_tally_;
      }

      // Backpressure: shed when the admitted-but-unstarted population at
      // time t has reached the cap.
      const std::size_t occupancy = pending_.size() + waiting_admitted_at(t);
      if (opts_.queue_cap > 0 && occupancy >= opts_.queue_cap) {
        queue_depth_current_.set(static_cast<double>(occupancy));
        if (obs::tracing_enabled()) {
          obs::TraceEvent ev;
          ev.phase = obs::TraceEventPhase::kQueryShed;
          ev.kind = obs::TraceEventKind::kInstant;
          ev.machine = obs::TraceEvent::kAdmissionTrack;
          ev.query = static_cast<std::int64_t>(arrivals_[i].query.id);
          ev.sim_seconds = t;
          ev.a = static_cast<double>(occupancy);
          obs::trace(ev);
        }
        continue;  // record already says kShed
      }
      pending_.push_back({i, t});
      result_.stats.peak_queue_depth =
          std::max(result_.stats.peak_queue_depth, occupancy + 1);
      queue_depth_current_.set(static_cast<double>(occupancy + 1));
      queue_depth_high_water_.set(
          static_cast<double>(result_.stats.peak_queue_depth));

      if (pending_.size() >= opts_.scheduler.batch_width ||
          opts_.linger_seconds <= 0) {
        seal(t);
      }
    }
    if (!pending_.empty()) {
      seal(opts_.linger_seconds > 0
               ? pending_.front().arrival + opts_.linger_seconds
               : last_arrival);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    work_cv_.notify_all();
  }

  void seal(double seal_time) {
    SealedBatch sb;
    sb.index = sealed_total_;
    sb.seal_time = seal_time;
    sb.members = std::move(pending_);
    pending_.clear();
    if (obs::tracing_enabled()) {
      obs::TraceEvent ev;
      ev.phase = obs::TraceEventPhase::kBatchSeal;
      ev.kind = obs::TraceEventKind::kInstant;
      ev.machine = obs::TraceEvent::kAdmissionTrack;
      ev.batch = static_cast<std::int64_t>(sb.index);
      ev.sim_seconds = seal_time;
      ev.a = static_cast<double>(sb.members.size());
      obs::trace(ev);
    }
    if (executor_.policy() == BatchPolicy::kDegreeSorted) {
      // Degree-sorted within the admitted window; stable so equal-degree
      // queries keep submission order (the tie rule the offline scheduler
      // pins too).
      const auto& degree_of = opts_.scheduler.degree_of;
      std::stable_sort(sb.members.begin(), sb.members.end(),
                       [&](const PendingQuery& a, const PendingQuery& b) {
                         return degree_of(arrivals_[a.submission].query.source) >
                                degree_of(arrivals_[b.submission].query.source);
                       });
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      sealed_sizes_.push_back(sb.members.size());
      start_times_.push_back(0);
      finish_times_.push_back(0);
      backlog_.push_back(std::move(sb));
    }
    ++sealed_total_;
    work_cv_.notify_one();
    if (!opts_.pipeline) {
      process_one_batch();  // serial mode: execute in place
    }
  }

  /// Queries sealed into batches that have not started executing by sim
  /// time t. Waits (wall-clock) until the executor has published enough
  /// start/finish facts to answer — the answer itself is a pure function
  /// of sim time, so waiting never changes it.
  [[nodiscard]] std::size_t waiting_admitted_at(double t) {
    std::unique_lock<std::mutex> lk(mu_);
    timed_cv_.wait(lk, [&] {
      // Every sealed batch is either timed, or provably starts after t
      // because an earlier batch finishes after t (starts are monotone:
      // start_b >= finish_{b-1}).
      return timed_ == sealed_total_ ||
             (timed_ > 0 && finish_times_[timed_ - 1] > t);
    });
    std::size_t waiting = 0;
    for (std::size_t b = 0; b < sealed_sizes_.size(); ++b) {
      const bool started = b < timed_ && start_times_[b] <= t;
      if (!started) waiting += sealed_sizes_[b];
    }
    return waiting;
  }

  // ---- execution side (worker thread; caller thread in serial mode) ----

  bool process_one_batch() {
    SealedBatch sb;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return !backlog_.empty() || closed_; });
      if (backlog_.empty()) return false;
      sb = std::move(backlog_.front());
      backlog_.pop_front();
    }

    const double start = std::max(sb.seal_time, server_free_);

    ServiceBatchRecord rec;
    rec.index = sb.index;
    rec.seal_sim_seconds = sb.seal_time;
    rec.start_sim_seconds = start;
    rec.admitted = sb.members.size();

    // Deadline shedding at the head of the line: queries whose deadline
    // has already passed are dropped before the engine runs.
    std::vector<PendingQuery> live;
    live.reserve(sb.members.size());
    for (const PendingQuery& pq : sb.members) {
      const double wait = start - pq.arrival;
      if (opts_.deadline_seconds > 0 && wait > opts_.deadline_seconds) {
        ServiceQueryRecord& r = result_.queries[pq.submission];
        r.outcome = ServiceOutcome::kExpired;
        r.batch_index = sb.index;
        r.queue_wait_sim_seconds = wait;
        if (obs::tracing_enabled()) {
          obs::TraceEvent ev;
          ev.phase = obs::TraceEventPhase::kQueryExpired;
          ev.kind = obs::TraceEventKind::kInstant;
          ev.machine = obs::TraceEvent::kExecutorTrack;
          ev.query = static_cast<std::int64_t>(r.id);
          ev.batch = static_cast<std::int64_t>(sb.index);
          ev.sim_seconds = start;
          ev.a = wait;
          obs::trace(ev);
        }
      } else {
        live.push_back(pq);
      }
    }
    rec.expired = sb.members.size() - live.size();

    double finish = start;
    if (!live.empty()) {
      ReplicaRouter* router = opts_.router;
      std::vector<KHopQuery> batch;
      // Point-query fallbacks (index probe returned unknown) are resolved
      // from the batch's final visited plane: target row, this query's bit
      // column. Only the bit-parallel engine exposes a plane.
      bool want_visited = false;
      const auto rebuild_batch = [&] {
        batch.clear();
        batch.reserve(live.size());
        for (const PendingQuery& pq : live) {
          batch.push_back(arrivals_[pq.submission].query);
        }
        want_visited = false;
        if (opts_.scheduler.use_bit_parallel) {
          for (const KHopQuery& q : batch) {
            if (q.is_point()) {
              want_visited = true;
              break;
            }
          }
        }
      };
      rebuild_batch();

      // Engine events carry batch-relative sim times; the batch context
      // re-bases them onto the service's absolute sim axis and stamps the
      // batch id. One batch executes at a time (even across replicas:
      // server_free_ serializes dispatch), so the single global context is
      // race-free even pipelined.
      obs::EventTracer* tracer = obs::EventTracer::current();
      QueryBitRows visited_plane;
      BatchExecutor::Outcome out;
      // Failover penalty on the batch's sim timeline: sim time burnt on
      // attempts whose replica died, minus the prefix the survivor adopted
      // from the last complete checkpoint cut. An attempt's events map to
      // absolute time `start + wasted + <replica-relative sim>` — after an
      // adoption the survivor's clocks resume at the cut, so the mapping
      // stays continuous across the handoff.
      double wasted = 0;
      std::size_t last_dead = ServiceBatchRecord::kNoReplica;
      std::size_t last_survivor = ServiceBatchRecord::kNoReplica;

      if (router == nullptr) {
        if (tracer != nullptr) {
          tracer->set_batch_context(static_cast<std::int64_t>(sb.index),
                                    start);
        }
        out = executor_.execute(batch,
                                want_visited ? &visited_plane : nullptr);
        if (tracer != nullptr) tracer->clear_batch_context();
      } else {
        const auto trace_route = [&](std::size_t replica) {
          if (!obs::tracing_enabled()) return;
          obs::TraceEvent ev;
          ev.phase = obs::TraceEventPhase::kReplicaRoute;
          ev.kind = obs::TraceEventKind::kInstant;
          ev.machine = obs::TraceEvent::kExecutorTrack;
          ev.batch = static_cast<std::int64_t>(sb.index);
          ev.sim_seconds = start + wasted;
          ev.a = static_cast<double>(replica);
          ev.b = static_cast<double>(
              router->owner_partition(batch.front().source));
          obs::trace(ev);
        };
        // Failure-detector sweep at dispatch: a replica killed during an
        // earlier batch shows up as heartbeat misses here, before routing.
        for (const ReplicaRouter::HeartbeatMiss& miss :
             router->poll_heartbeats()) {
          if (!obs::tracing_enabled()) break;
          obs::TraceEvent ev;
          ev.phase = obs::TraceEventPhase::kHeartbeatMiss;
          ev.kind = obs::TraceEventKind::kInstant;
          ev.machine = obs::TraceEvent::kExecutorTrack;
          ev.batch = static_cast<std::int64_t>(sb.index);
          ev.sim_seconds = start;
          ev.a = static_cast<double>(miss.replica);
          ev.b = static_cast<double>(miss.consecutive);
          obs::trace(ev);
        }
        std::size_t r = router->route_batch(
            static_cast<std::uint64_t>(sb.index), batch.front().source);
        trace_route(r);
        for (;;) {
          if (tracer != nullptr) {
            tracer->set_batch_context(static_cast<std::int64_t>(sb.index),
                                      start + wasted);
          }
          try {
            out = router->executor(r).execute(
                batch, want_visited ? &visited_plane : nullptr);
            if (tracer != nullptr) tracer->clear_batch_context();
            router->on_batch_success(r);
            rec.replica = r;
            break;
          } catch (const ReplicaDead&) {
            if (tracer != nullptr) tracer->clear_batch_context();
            ReplicaRouter::FailoverPlan plan = router->plan_failover(r);
            ++rec.failovers;
            last_dead = plan.dead;
            last_survivor = plan.survivor;
            const double t_fail = start + wasted + plan.dead_sim_seconds;
            if (obs::tracing_enabled()) {
              obs::TraceEvent ev;
              ev.phase = obs::TraceEventPhase::kReplicaFailover;
              ev.kind = obs::TraceEventKind::kInstant;
              ev.machine = obs::TraceEvent::kExecutorTrack;
              ev.batch = static_cast<std::int64_t>(sb.index);
              ev.sim_seconds = t_fail;
              ev.a = static_cast<double>(plan.dead);
              ev.b = static_cast<double>(plan.survivor);
              obs::trace(ev);
            }
            // Re-dispatch gate: a member whose deadline has passed by the
            // failover instant, or whose failover budget is spent, is
            // never re-executed on another replica — it is counted shed
            // (batch_index set marks it a failover shed, not an admission
            // shed). Keeps retries bounded under cascading deaths.
            const std::uint32_t budget =
                opts_.failover_budget > 0
                    ? opts_.failover_budget
                    : static_cast<std::uint32_t>(router->num_replicas() - 1);
            std::vector<PendingQuery> keep;
            keep.reserve(live.size());
            for (const PendingQuery& pq : live) {
              ServiceQueryRecord& qr = result_.queries[pq.submission];
              const bool over_deadline =
                  opts_.deadline_seconds > 0 &&
                  t_fail - pq.arrival > opts_.deadline_seconds;
              if (over_deadline || qr.failover_attempts >= budget) {
                qr.outcome = ServiceOutcome::kShed;
                qr.batch_index = sb.index;
                qr.queue_wait_sim_seconds = t_fail - pq.arrival;
                ++rec.failover_shed;
                if (obs::tracing_enabled()) {
                  obs::TraceEvent ev;
                  ev.phase = obs::TraceEventPhase::kQueryShed;
                  ev.kind = obs::TraceEventKind::kInstant;
                  ev.machine = obs::TraceEvent::kExecutorTrack;
                  ev.query = static_cast<std::int64_t>(qr.id);
                  ev.batch = static_cast<std::int64_t>(sb.index);
                  ev.sim_seconds = t_fail;
                  ev.a = t_fail - pq.arrival;
                  obs::trace(ev);
                }
              } else {
                ++qr.failover_attempts;
                keep.push_back(pq);
              }
            }
            const bool membership_changed = keep.size() != live.size();
            live = std::move(keep);
            // Adoption requires the survivor to resume the *same* batch:
            // checkpoint blobs encode per-query planes for the sealed
            // membership, so a shrunk batch must re-execute from scratch.
            if (plan.can_adopt && !membership_changed && plan.cut_step > 0) {
              router->adopt(plan);
              wasted += plan.dead_sim_seconds - plan.cut_sim_seconds;
            } else {
              wasted += plan.dead_sim_seconds;
            }
            if (live.empty()) break;  // everything shed at failover
            if (membership_changed) rebuild_batch();
            r = plan.survivor;
            trace_route(r);
          }
        }
      }

      // live emptied mid-failover <=> nothing executed: the batch burnt
      // the dead attempts' time but produced no answers.
      const double makespan =
          live.empty() ? wasted
                       : out.result.sim_seconds * out.slowdown + wasted;
      finish = start + makespan;
      rec.makespan_sim_seconds = makespan;

      if (obs::tracing_enabled() && !live.empty()) {
        obs::TraceEvent ev;
        ev.phase = obs::TraceEventPhase::kBatchExecute;
        ev.kind = obs::TraceEventKind::kSpan;
        ev.machine = obs::TraceEvent::kExecutorTrack;
        ev.batch = static_cast<std::int64_t>(sb.index);
        ev.sim_seconds = start;
        ev.sim_dur_seconds = makespan;
        ev.wall_dur_ns = static_cast<std::uint64_t>(
            out.result.wall_seconds * 1e9);
        ev.a = static_cast<double>(live.size());
        obs::trace(ev);
      }

      for (std::size_t i = 0; i < live.size(); ++i) {
        rec.executed.push_back(batch[i].id);
        ServiceQueryRecord& r = result_.queries[live[i].submission];
        r.outcome = ServiceOutcome::kCompleted;
        r.batch_index = sb.index;
        r.queue_wait_sim_seconds = start - live[i].arrival;
        // Answers are released when the batch commits, so the failover
        // penalty is borne by every member — including queries that had
        // already completed on the dead replica before the adopted cut.
        r.execute_sim_seconds =
            out.result.completion_sim_seconds[i] * out.slowdown + wasted;
        r.response_sim_seconds =
            r.queue_wait_sim_seconds + r.execute_sim_seconds;
        r.visited = out.result.visited[i];
        r.levels = out.result.levels[i];
        if (batch[i].is_point() && want_visited) {
          r.reachable =
              visited_plane.test(batch[i].target, i) ? 1 : 0;
          if (opts_.index != nullptr) {
            index_fallbacks_.inc();
            ++index_fallback_tally_;
          }
        }

        obs::QueryTrace qt;
        qt.id = batch[i].id;
        qt.batch_index = sb.index;
        qt.levels = r.levels;
        qt.visited = r.visited;
        qt.wait_sim_seconds = r.queue_wait_sim_seconds;
        qt.execute_sim_seconds = r.execute_sim_seconds;
        result_.telemetry.queries.push_back(qt);

        if (obs::tracing_enabled()) {
          const double arrival = live[i].arrival;
          obs::TraceEvent wait_ev;
          wait_ev.phase = obs::TraceEventPhase::kAdmissionWait;
          wait_ev.kind = obs::TraceEventKind::kSpan;
          wait_ev.machine = obs::TraceEvent::kAdmissionTrack;
          wait_ev.query = static_cast<std::int64_t>(r.id);
          wait_ev.batch = static_cast<std::int64_t>(sb.index);
          wait_ev.sim_seconds = arrival;
          wait_ev.sim_dur_seconds = r.queue_wait_sim_seconds;
          obs::trace(wait_ev);
          obs::TraceEvent q_ev;
          q_ev.phase = obs::TraceEventPhase::kQuery;
          q_ev.kind = obs::TraceEventKind::kSpan;
          q_ev.machine = obs::TraceEvent::kExecutorTrack;
          q_ev.query = static_cast<std::int64_t>(r.id);
          q_ev.batch = static_cast<std::int64_t>(sb.index);
          q_ev.sim_seconds = arrival;
          q_ev.sim_dur_seconds = r.response_sim_seconds;
          q_ev.a = static_cast<double>(r.visited);
          q_ev.b = static_cast<double>(r.levels);
          obs::trace(q_ev);
          obs::TraceEvent done_ev;
          done_ev.phase = obs::TraceEventPhase::kQueryComplete;
          done_ev.kind = obs::TraceEventKind::kInstant;
          done_ev.machine = obs::TraceEvent::kExecutorTrack;
          done_ev.query = static_cast<std::int64_t>(r.id);
          done_ev.batch = static_cast<std::int64_t>(sb.index);
          done_ev.sim_seconds = arrival + r.response_sim_seconds;
          done_ev.a = static_cast<double>(r.visited);
          done_ev.b = static_cast<double>(r.levels);
          obs::trace(done_ev);
          if (out.reexecuted) {
            obs::TraceEvent rx;
            rx.phase = obs::TraceEventPhase::kQueryReexecuted;
            rx.kind = obs::TraceEventKind::kInstant;
            rx.machine = obs::TraceEvent::kExecutorTrack;
            rx.query = static_cast<std::int64_t>(r.id);
            rx.batch = static_cast<std::int64_t>(sb.index);
            rx.sim_seconds = start;
            obs::trace(rx);
          }
          if (r.failover_attempts > 0) {
            obs::TraceEvent fo;
            fo.phase = obs::TraceEventPhase::kQueryFailedOver;
            fo.kind = obs::TraceEventKind::kInstant;
            fo.machine = obs::TraceEvent::kExecutorTrack;
            fo.query = static_cast<std::int64_t>(r.id);
            fo.batch = static_cast<std::int64_t>(sb.index);
            fo.sim_seconds = live[i].arrival + r.response_sim_seconds;
            fo.a = static_cast<double>(last_dead);
            fo.b = static_cast<double>(last_survivor);
            obs::trace(fo);
          }
        }
      }

      if (!live.empty()) {
        obs::BatchTrace bt = std::move(out.trace);
        bt.index = sb.index;
        bt.width = live.size();
        bt.wait_sim_seconds = start;
        result_.telemetry.batches.push_back(std::move(bt));
      }
    }

    server_free_ = finish;
    last_finish_ = std::max(last_finish_, finish);
    result_.batches.push_back(std::move(rec));

    {
      std::lock_guard<std::mutex> lk(mu_);
      start_times_[sb.index] = start;
      finish_times_[sb.index] = finish;
      timed_ = sb.index + 1;
    }
    timed_cv_.notify_all();
    return true;
  }

  // ---- assembly (caller thread, after the worker joined) ----

  void finalize() {
    ServiceStats& s = result_.stats;
    s.submitted = arrivals_.size();
    for (const ServiceQueryRecord& r : result_.queries) {
      switch (r.outcome) {
        case ServiceOutcome::kShed:
          ++s.shed;
          break;
        case ServiceOutcome::kExpired:
          ++s.expired;
          break;
        case ServiceOutcome::kCompleted:
          ++s.completed;
          break;
        case ServiceOutcome::kIndexAnswered:
          ++s.index_answered;
          break;
      }
    }
    s.admitted = s.completed + s.expired;
    s.index_misses = index_miss_tally_;
    s.index_fallbacks = index_fallback_tally_;
    s.batches = result_.batches.size();
    for (const ServiceBatchRecord& b : result_.batches) {
      s.failovers += b.failovers;
      s.failover_shed += b.failover_shed;
    }

    double last_arrival = arrivals_.empty()
                              ? 0
                              : arrivals_.back().arrival_sim_seconds;
    result_.makespan_sim_seconds = std::max(last_finish_, last_arrival);
    result_.peak_memory_bytes = opts_.router != nullptr
                                    ? opts_.router->peak_memory_bytes()
                                    : executor_.peak_memory_bytes();
  }

  std::span<const TimedQuery> arrivals_;
  const std::vector<SubgraphShard>& shards_;
  const ServiceOptions& opts_;
  BatchExecutor executor_;
  ServiceRunResult& result_;
  obs::Gauge& queue_depth_current_;
  obs::Gauge& queue_depth_high_water_;
  obs::Counter& index_hits_;
  obs::Counter& index_misses_;
  obs::Counter& index_fallbacks_;

  // Admission-thread state.
  std::vector<PendingQuery> pending_;
  std::size_t sealed_total_ = 0;
  std::uint64_t index_miss_tally_ = 0;

  // Execution-thread state.
  double server_free_ = 0;
  double last_finish_ = 0;
  std::uint64_t index_fallback_tally_ = 0;

  // Shared handoff state (guarded by mu_).
  std::mutex mu_;
  std::condition_variable work_cv_;   // executor waits for sealed batches
  std::condition_variable timed_cv_;  // admission waits for timing facts
  std::deque<SealedBatch> backlog_;
  bool closed_ = false;
  std::vector<std::size_t> sealed_sizes_;
  std::vector<double> start_times_;
  std::vector<double> finish_times_;
  std::size_t timed_ = 0;  // batches with published start/finish
};

void publish_service_metrics(obs::MetricsRegistry& reg,
                             const ServiceRunResult& result) {
  const ServiceStats& s = result.stats;
  reg.counter("cgraph_service_submitted_total",
              "Queries that arrived at the service front end")
      .inc(static_cast<double>(s.submitted));
  reg.counter("cgraph_service_admitted_total",
              "Queries admitted past the bounded queue")
      .inc(static_cast<double>(s.admitted));
  reg.counter("cgraph_service_shed_total",
              "Arrivals rejected because the admission queue was full")
      .inc(static_cast<double>(s.shed));
  reg.counter("cgraph_service_expired_total",
              "Admitted queries dropped for missed deadlines")
      .inc(static_cast<double>(s.expired));
  reg.counter("cgraph_service_completed_total",
              "Queries executed and answered")
      .inc(static_cast<double>(s.completed));
  reg.counter("cgraph_service_batches_total",
              "Batches sealed by the adaptive batcher")
      .inc(static_cast<double>(s.batches));
  reg.gauge("cgraph_service_peak_queue_depth",
            "Peak admitted-but-unstarted queries of the latest run")
      .set(static_cast<double>(s.peak_queue_depth));
  if (s.failovers > 0 || s.failover_shed > 0) {
    reg.counter("cgraph_service_failover_shed_total",
                "Admitted queries dropped at failover re-dispatch "
                "(deadline passed or failover budget exhausted)")
        .inc(static_cast<double>(s.failover_shed));
  }

  obs::LogHistogram& response = reg.histogram(
      "cgraph_service_response_seconds",
      "End-to-end simulated latency (arrival -> answered), completed "
      "queries");
  obs::LogHistogram& wait = reg.histogram(
      "cgraph_service_queue_wait_seconds",
      "Simulated wait from arrival to batch execution start, admitted "
      "queries");
  obs::LogHistogram& execute = reg.histogram(
      "cgraph_service_execute_seconds",
      "Simulated execution time (batch start -> answered), completed "
      "queries");
  for (const ServiceQueryRecord& r : result.queries) {
    if (r.outcome == ServiceOutcome::kShed) continue;
    if (r.outcome == ServiceOutcome::kIndexAnswered) {
      // Index answers are end-to-end responses (the probe time) but never
      // waited in the queue nor executed on the cluster, so only the
      // response series sees them.
      response.observe(r.response_sim_seconds);
      continue;
    }
    wait.observe(r.queue_wait_sim_seconds);
    if (r.outcome == ServiceOutcome::kCompleted) {
      response.observe(r.response_sim_seconds);
      execute.observe(r.execute_sim_seconds);
    }
  }
}

}  // namespace

double ServiceRunResult::response_percentile(double p) const {
  CGRAPH_CHECK(p > 0 && p <= 100);
  std::vector<double> responses;
  responses.reserve(queries.size());
  for (const ServiceQueryRecord& r : queries) {
    if (r.outcome == ServiceOutcome::kCompleted ||
        r.outcome == ServiceOutcome::kIndexAnswered) {
      responses.push_back(r.response_sim_seconds);
    }
  }
  if (responses.empty()) return 0;
  std::sort(responses.begin(), responses.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(responses.size())));
  return responses[std::min(rank, responses.size()) - 1];
}

ServiceRunResult run_query_service(Cluster& cluster,
                                   const std::vector<SubgraphShard>& shards,
                                   const RangePartition& partition,
                                   std::span<const TimedQuery> arrivals,
                                   const ServiceOptions& opts) {
  obs::MetricsRegistry& registry = opts.scheduler.metrics != nullptr
                                       ? *opts.scheduler.metrics
                                       : obs::MetricsRegistry::global();
  obs::TraceSpan run_span("run_query_service", &registry);

  ServiceRunResult result;
  ServicePipeline pipeline(cluster, shards, partition, arrivals, opts,
                           registry, result);
  pipeline.run();

  run_span.finish();
  result.telemetry.publish(registry);
  publish_service_metrics(registry, result);
  if (opts.index != nullptr && opts.index->mode() != IndexMode::kOff) {
    publish_index_metrics(registry, *opts.index);
  }
  // Mutation-layer gauges (DESIGN.md §15): epoch the shards have reached,
  // uncompacted delta events awaiting the next compaction, and the bytes
  // those event sets hold.
  {
    const std::span<const SubgraphShard> sv(shards.data(), shards.size());
    std::uint64_t events = 0;
    std::uint64_t bytes = 0;
    for (const SubgraphShard& s : shards) {
      events += s.delta_out().num_events() + s.delta_in().num_events();
      bytes += s.delta_out().memory_bytes() + s.delta_in().memory_bytes();
    }
    registry
        .gauge("cgraph_mutation_epoch",
               "Highest mutation epoch applied to the serving shards")
        .set(static_cast<double>(current_epoch(sv)));
    registry
        .gauge("cgraph_mutation_delta_events",
               "Uncompacted delta edge events across all shards")
        .set(static_cast<double>(events));
    registry
        .gauge("cgraph_mutation_delta_bytes",
               "Resident bytes of the per-shard delta edge-sets")
        .set(static_cast<double>(bytes));
  }
  if (opts.router != nullptr) {
    opts.router->publish_metrics(registry);
  }
  return result;
}

}  // namespace cgraph
