// Paper Listing 2 expressed verbatim against the Listing 1 programming
// abstraction: a PartitionProgram whose compute() drains a local task
// queue, visits neighbors, pushes local discoveries back onto the queue
// and sendTo()s boundary discoveries — one superstep per traversal level.
//
// The production engines (query/distributed_khop.cpp, query/msbfs.cpp)
// bypass the generic message layer for batching and bit-parallelism; this
// program exists to demonstrate—and regression-test—that the public
// partition-centric API is sufficient to express the paper's k-hop
// pseudocode directly.
#pragma once

#include <memory>

#include "engine/bsp_engine.hpp"
#include "query/query.hpp"
#include "util/bitops.hpp"

namespace cgraph {

/// Message: "visit me at this depth for this query".
struct KhopVisit {
  QueryId query;
  Depth depth;
};

class KhopProgram final : public PartitionProgram<KhopVisit> {
 public:
  /// `visited_out` (one counter per query, shared across machines) is
  /// accumulated at finish().
  KhopProgram(std::span<const KHopQuery> batch,
              std::vector<std::atomic<std::uint64_t>>* visited_out)
      : batch_(batch), visited_out_(visited_out) {}

  void init(PartitionContext<KhopVisit>& ctx) override {
    const VertexRange range = ctx.local_vertices();
    visited_.resize(batch_.size());
    for (auto& bm : visited_) bm.resize(range.size());
    // Seed: deliver depth-0 tasks to local sources through the normal
    // message path (Listing 2's initial queue content).
    for (std::size_t q = 0; q < batch_.size(); ++q) {
      if (ctx.is_local_vertex(batch_[q].source)) {
        ctx.send_to(batch_[q].source,
                    {static_cast<QueryId>(q), Depth{0}});
      }
    }
  }

  // def Traverse(task queue: Q, hops: k) — one level per superstep.
  void compute(PartitionContext<KhopVisit>& ctx) override {
    const VertexRange range = ctx.local_vertices();
    std::uint64_t edges = 0;
    for (const auto& msg : ctx.incoming()) {          // while any s in Q
      const VertexId s = msg.target;
      const KhopVisit task = msg.payload;
      CGRAPH_DCHECK(ctx.is_local_vertex(s));          // isLocalVertex(s)
      if (!visited_[task.query].atomic_test_and_set(s - range.begin)) {
        continue;  // already visited for this query
      }
      if (task.depth < batch_[task.query].k) {        // s.hops < k
        ctx.shard().out_sets().for_each_neighbor(s, [&](VertexId t) {
          ++edges;
          // t.hops = s.hops + 1; local and boundary vertices both go
          // through sendTo — the context short-circuits local targets.
          ctx.send_to(t, {task.query,
                          static_cast<Depth>(task.depth + 1)});
        });
      }
    }
    ctx.charge_compute(edges);
    ctx.vote_to_halt();  // reactivated by incoming tasks
  }

  void finish(PartitionContext<KhopVisit>&) override {
    for (std::size_t q = 0; q < batch_.size(); ++q) {
      (*visited_out_)[q].fetch_add(visited_[q].count(),
                                   std::memory_order_relaxed);
    }
  }

  // The whole per-partition state is the visited bitmaps; each blob
  // carries its own bit-length so restore() needs no context. (The shared
  // visited_out_ counters are only touched in finish(), which is
  // all-or-none across a crash — crashes fire at barriers, finish() runs
  // after the last one.)
  [[nodiscard]] bool supports_checkpoint() const override { return true; }
  void checkpoint(PacketWriter& w) const override {
    w.write<std::uint64_t>(visited_.size());
    for (const Bitmap& bm : visited_) {
      w.write<std::uint64_t>(bm.size_bits());
      w.write_span<Word>({bm.data(), bm.size_words()});
    }
  }
  void restore(PacketReader& r) override {
    visited_.resize(r.read<std::uint64_t>());
    for (Bitmap& bm : visited_) {
      bm.resize(static_cast<std::size_t>(r.read<std::uint64_t>()));
      const auto words = r.read_vector<Word>();
      CGRAPH_CHECK(words.size() == bm.size_words());
      std::copy(words.begin(), words.end(), bm.data());
    }
  }

 private:
  std::span<const KHopQuery> batch_;
  std::vector<Bitmap> visited_;  // per query, over local vertices
  std::vector<std::atomic<std::uint64_t>>* visited_out_;
};

/// Convenience runner: visited counts per query (source excluded).
inline std::vector<std::uint64_t> run_khop_program(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, std::span<const KHopQuery> batch) {
  std::vector<std::atomic<std::uint64_t>> counts(batch.size());
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);
  run_partition_programs<KhopVisit>(
      cluster, shards, partition, [&](PartitionId) {
        return std::make_unique<KhopProgram>(batch, &counts);
      });
  std::vector<std::uint64_t> visited(batch.size());
  for (std::size_t q = 0; q < batch.size(); ++q) {
    const std::uint64_t v = counts[q].load(std::memory_order_relaxed);
    visited[q] = v > 0 ? v - 1 : 0;
  }
  return visited;
}

}  // namespace cgraph
