#include "query/async_khop.hpp"

#include <atomic>

#include "net/serialize.hpp"
#include "obs/event_tracer.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace cgraph {
namespace {

constexpr std::uint32_t kAsyncVisitTag = 0x41565354;  // 'AVST'
// Tasks buffered per destination before an async flush, to amortize the
// per-packet cost without a full level barrier.
constexpr std::size_t kFlushThreshold = 512;
// Local tasks processed between mailbox polls.
constexpr std::size_t kChunk = 1024;

struct AsyncTask {
  VertexId target;
  QueryId query;
  Depth depth;
};

}  // namespace

MsBfsBatchResult run_async_khop(Cluster& cluster,
                                const std::vector<SubgraphShard>& shards,
                                const RangePartition& partition,
                                std::span<const KHopQuery> batch) {
  const std::size_t Q = batch.size();
  CGRAPH_CHECK(Q > 0);
  CGRAPH_CHECK(shards.size() == cluster.num_machines());
  const PartitionId P = cluster.num_machines();

  MsBfsBatchResult result;
  result.visited.assign(Q, 0);
  result.levels.assign(Q, 0);
  result.completion_wall_seconds.assign(Q, 0.0);
  result.completion_sim_seconds.assign(Q, 0.0);

  // Termination state shared across machines (stands in for the credit
  // messages a wire deployment would circulate). Busy-machine count and
  // in-flight message credits share ONE atomic so the quiescence test is a
  // single load — with two counters there is no consistent snapshot, and a
  // checker can interleave its two reads around a peer's send+idle (or
  // recv+wake) transition and declare termination with work still live.
  // Every machine is born busy, so the counter starts at P.
  std::atomic<std::int64_t> outstanding{static_cast<std::int64_t>(P)};
  std::atomic<bool> done{false};

  std::vector<std::atomic<std::uint64_t>> visited_accum(Q);
  for (auto& a : visited_accum) a.store(0, std::memory_order_relaxed);
  std::vector<std::atomic<std::uint32_t>> max_level(Q);
  for (auto& a : max_level) a.store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> edges_total{0};
  std::atomic<std::uint64_t> state_bytes_total{0};

  cluster.reset_clocks();
  cluster.reset_telemetry();
  cluster.fabric().reset_counters();
  cluster.fabric().reset_delivery_state();
  cluster.reset_protocol_state();
  obs::TraceSpan span("run_async_khop");
  WallTimer wall;

  // Crash recovery, async flavor: there is no superstep replay. Each
  // machine checkpoints its best-known depth arrays independently; on a
  // crash every machine rolls back to its own last checkpoint, re-queues
  // everything it knows and re-relaxes. Depths only ever improve and
  // re-expansion is idempotent, so the fixpoint (the exact BFS closure) is
  // unchanged — only wall/sim timing and edge counts may differ from the
  // fault-free schedule. The shared termination and result accumulators
  // restart from scratch.
  RunHooks hooks;
  hooks.link_replay = false;
  hooks.on_restore = [&] {
    outstanding.store(static_cast<std::int64_t>(P),
                      std::memory_order_relaxed);
    done.store(false, std::memory_order_relaxed);
    for (auto& a : visited_accum) a.store(0, std::memory_order_relaxed);
    for (auto& a : max_level) a.store(0, std::memory_order_relaxed);
    edges_total.store(0, std::memory_order_relaxed);
    state_bytes_total.store(0, std::memory_order_relaxed);
  };

  cluster.run([&](MachineContext& mc) {
    const SubgraphShard& shard = shards[mc.id()];
    const VertexRange range = shard.local_range();
    const std::size_t nlocal = range.size();

    // Best-known depth per (query, local vertex); re-expansion on
    // improvement keeps async results exact.
    std::vector<std::vector<Depth>> depth(Q);
    for (auto& d : depth) d.assign(nlocal, kUnvisitedDepth);
    state_bytes_total.fetch_add(Q * nlocal * sizeof(Depth),
                                std::memory_order_relaxed);

    std::vector<AsyncTask> queue;
    std::vector<std::vector<AsyncTask>> outbox(P);

    auto flush = [&](PartitionId to) {
      if (outbox[to].empty()) return;
      PacketWriter pw;
      pw.write_span(std::span<const AsyncTask>(outbox[to]));
      outstanding.fetch_add(static_cast<std::int64_t>(outbox[to].size()),
                            std::memory_order_acq_rel);
      mc.send_async(to, kAsyncVisitTag, pw.take());
      outbox[to].clear();
    };

    std::uint64_t my_edges = 0;
    if (auto ckpt = mc.restore_checkpoint()) {
      // Re-entering after a crash: restore the depth arrays and re-queue
      // every vertex this machine has ever reached, so all of its outgoing
      // relaxations (including messages lost in the crash) are re-derived.
      PacketReader pr(*ckpt);
      my_edges = pr.read<std::uint64_t>();
      for (std::size_t q = 0; q < Q; ++q) {
        const auto depths = pr.read_vector<Depth>();
        CGRAPH_CHECK(depths.size() == nlocal);
        std::copy(depths.begin(), depths.end(), depth[q].begin());
        for (std::size_t v = 0; v < nlocal; ++v) {
          if (depth[q][v] != kUnvisitedDepth) {
            queue.push_back({range.begin + static_cast<VertexId>(v),
                             static_cast<QueryId>(q), depth[q][v]});
          }
        }
      }
    } else {
      // Seed local sources at depth 0.
      for (std::size_t q = 0; q < Q; ++q) {
        if (range.contains(batch[q].source)) {
          depth[q][batch[q].source - range.begin] = 0;
          queue.push_back({batch[q].source, static_cast<QueryId>(q), 0});
        }
      }
    }

    bool idle = false;
    while (!done.load(std::memory_order_acquire)) {
      // One logical "tick" per poll-loop pass: the async analogue of a
      // superstep for the crash schedule. (Checkpoints are taken below,
      // only on passes that process work — an idle machine spinning on the
      // quiescence check has nothing new to save.)
      mc.tick_crash_point();
      // Poll incoming tasks.
      for (Envelope& env : mc.recv_async()) {
        CGRAPH_CHECK(env.tag == kAsyncVisitTag);
        PacketReader pr(env.payload);
        const auto tasks = pr.read_vector<AsyncTask>();
        // Go busy BEFORE releasing the message credits: the counter must
        // never pass through zero while this machine has tasks in hand.
        if (idle) {
          idle = false;
          outstanding.fetch_add(1, std::memory_order_acq_rel);
        }
        outstanding.fetch_sub(static_cast<std::int64_t>(tasks.size()),
                              std::memory_order_acq_rel);
        for (const AsyncTask& t : tasks) {
          CGRAPH_DCHECK(range.contains(t.target));
          Depth& best = depth[t.query][t.target - range.begin];
          if (t.depth < best) {
            best = t.depth;
            queue.push_back(t);
          }
        }
      }

      // Graceful degradation: a failed send is one the fabric dropped on
      // every attempt, so the receiver never saw those tasks and never
      // decremented for them — release their termination credits here or
      // the quiescence check would wedge forever. (Quiescence tests `<= 0`
      // purely defensively; the failure-detector contract keeps the
      // counter non-negative.)
      for (FailedSend& f : mc.take_failed_async()) {
        CGRAPH_DCHECK(f.tag == kAsyncVisitTag);
        PacketReader pr(f.payload);
        const auto lost = pr.read_vector<AsyncTask>();
        const auto n = static_cast<std::int64_t>(lost.size());
        // This release can be the transition to global quiescence (every
        // machine idle, these were the last credits).
        if (outstanding.fetch_sub(n, std::memory_order_acq_rel) == n) {
          done.store(true, std::memory_order_release);
        }
      }

      if (queue.empty()) {
        if (!idle) {
          idle = true;
          // Quiescent iff this was the last busy machine and no credits
          // remain; fetch_sub's return value makes that one atomic test.
          if (outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            done.store(true, std::memory_order_release);
          }
        } else if (outstanding.load(std::memory_order_acquire) <= 0) {
          done.store(true, std::memory_order_release);
        }
        continue;
      }
      if (idle) {
        idle = false;
        outstanding.fetch_add(1, std::memory_order_acq_rel);
      }

      mc.maybe_checkpoint([&](PacketWriter& pw) {
        pw.write<std::uint64_t>(my_edges);
        for (std::size_t q = 0; q < Q; ++q) {
          pw.write_span<Depth>({depth[q].data(), depth[q].size()});
        }
      });

      // Process a chunk, then loop back to the poll.
      const bool tracing = obs::tracing_enabled();
      const double scan_sim_t0 = tracing ? mc.clock().seconds() : 0.0;
      WallTimer phase_wall;
      const std::uint64_t queued_before = queue.size();
      std::uint64_t chunk_edges = 0;
      for (std::size_t n = 0; n < kChunk && !queue.empty(); ++n) {
        const AsyncTask task = queue.back();
        queue.pop_back();
        const Depth cur = depth[task.query][task.target - range.begin];
        if (task.depth > cur) continue;  // superseded by a shorter path
        const Depth k = batch[task.query].k;
        if (task.depth >= k) continue;
        {
          std::uint32_t seen =
              max_level[task.query].load(std::memory_order_relaxed);
          const std::uint32_t mine = task.depth + 1u;
          while (seen < mine && !max_level[task.query].compare_exchange_weak(
                                    seen, mine, std::memory_order_relaxed)) {
          }
        }
        shard.out_sets().for_each_neighbor(task.target, [&](VertexId t) {
          ++chunk_edges;
          const Depth nd = static_cast<Depth>(task.depth + 1);
          if (range.contains(t)) {
            Depth& best = depth[task.query][t - range.begin];
            if (nd < best) {
              best = nd;
              queue.push_back({t, task.query, nd});
            }
          } else {
            const PartitionId owner = partition.owner(t);
            outbox[owner].push_back({t, task.query, nd});
            if (outbox[owner].size() >= kFlushThreshold) flush(owner);
          }
        });
      }
      my_edges += chunk_edges;
      mc.charge_compute(chunk_edges);
      if (tracing) {
        // Async has no supersteps: each worked poll-loop pass is one scan
        // span (level -1 marks "not a BSP level").
        obs::TraceEvent ev;
        ev.phase = obs::TraceEventPhase::kSuperstepScan;
        ev.kind = obs::TraceEventKind::kSpan;
        ev.machine = static_cast<std::int32_t>(mc.id());
        ev.sim_seconds = scan_sim_t0;
        ev.sim_dur_seconds = mc.clock().seconds() - scan_sim_t0;
        ev.wall_dur_ns = phase_wall.nanos();
        ev.a = static_cast<double>(chunk_edges);
        ev.b = static_cast<double>(queued_before);
        obs::trace(ev);
      }
      for (PartitionId to = 0; to < P; ++to) flush(to);
    }

    // Count visited vertices per query (depth <= k set; excludes nothing
    // yet — the source is subtracted below).
    for (std::size_t q = 0; q < Q; ++q) {
      std::uint64_t count = 0;
      for (Depth d : depth[q]) {
        if (d != kUnvisitedDepth) ++count;
      }
      visited_accum[q].fetch_add(count, std::memory_order_relaxed);
    }
    edges_total.fetch_add(my_edges, std::memory_order_relaxed);
  }, hooks);

  result.wall_seconds = wall.seconds();
  result.sim_seconds = cluster.sim_seconds();
  for (std::size_t q = 0; q < Q; ++q) {
    const std::uint64_t v = visited_accum[q].load(std::memory_order_relaxed);
    result.visited[q] = v > 0 ? v - 1 : 0;
    result.levels[q] =
        static_cast<Depth>(max_level[q].load(std::memory_order_relaxed));
    result.completion_wall_seconds[q] = result.wall_seconds;
    result.completion_sim_seconds[q] = result.sim_seconds;
  }
  result.edges_scanned = edges_total.load(std::memory_order_relaxed);
  result.frontier_bytes =
      state_bytes_total.load(std::memory_order_relaxed);
  result.total_levels = 0;
  for (Depth l : result.levels) {
    result.total_levels = std::max(result.total_levels, l);
  }
  return result;
}

}  // namespace cgraph
