// Bit-parallel concurrent traversal engines (paper §3.5, extending
// MS-BFS [Then et al., VLDB'14] to the distributed setting).
//
// A batch of up to 512 queries advances together: every vertex row holds
// one frontier/next/visited bit per query, and a single scan of the
// edge-sets updates all queries with a few bitwise ops per edge. Vertices
// shared between queries (paper Fig. 3b) are therefore traversed once per
// batch instead of once per query — the source of C-Graph's sublinear
// scaling with query count (paper Fig. 13).
//
// Two engines:
//   msbfs_batch             - single machine, over the global Graph
//   run_distributed_msbfs   - sharded, level-synchronous BSP over a Cluster
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/shard.hpp"
#include "net/cluster.hpp"
#include "obs/trace.hpp"
#include "query/query.hpp"

namespace cgraph {

struct MsBfsBatchResult {
  /// Per query (batch order): vertices visited, levels run, and the time
  /// from batch start until that query's frontier went empty.
  std::vector<std::uint64_t> visited;
  std::vector<Depth> levels;
  std::vector<double> completion_wall_seconds;
  std::vector<double> completion_sim_seconds;  // distributed engine only

  Depth total_levels = 0;
  double wall_seconds = 0;
  double sim_seconds = 0;
  std::uint64_t edges_scanned = 0;
  std::uint64_t frontier_bytes = 0;  // peak bitmap memory

  /// Per-level cost breakdown (frontier size, edges, bitmap word ops,
  /// barrier waits), one entry per traversal level. Empty for engines
  /// without level structure (async).
  std::vector<obs::LevelTrace> level_trace;
};

/// Single-machine bit-parallel batch over the global CSR. Batch size must
/// not exceed QueryBitRows::kMaxBatchWords * 64 queries.
MsBfsBatchResult msbfs_batch(const Graph& graph,
                             std::span<const KHopQuery> batch);

/// Multi-source variant: each query's bit column is seeded at every one of
/// its sources, answering union reachability (visited counts exclude the
/// distinct sources themselves).
MsBfsBatchResult msbfs_batch(const Graph& graph,
                             std::span<const MultiKHopQuery> batch);

/// Distributed bit-parallel batch over sharded edge-sets. Remote frontier
/// discoveries travel as (vertex, bit-row) records; per-destination rows
/// are OR-combined before sending so wire volume is bounded by boundary
/// vertices, not by edges.
MsBfsBatchResult run_distributed_msbfs(Cluster& cluster,
                                       const std::vector<SubgraphShard>& shards,
                                       const RangePartition& partition,
                                       std::span<const KHopQuery> batch);

/// Multi-source distributed variant (see the single-machine overload).
MsBfsBatchResult run_distributed_msbfs(Cluster& cluster,
                                       const std::vector<SubgraphShard>& shards,
                                       const RangePartition& partition,
                                       std::span<const MultiKHopQuery> batch);

}  // namespace cgraph
