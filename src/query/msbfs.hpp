// Bit-parallel concurrent traversal engines (paper §3.5, extending
// MS-BFS [Then et al., VLDB'14] to the distributed setting).
//
// A batch of up to 512 queries advances together: every vertex row holds
// one frontier/next/visited bit per query, and a single scan of the
// edge-sets updates all queries with a few bitwise ops per edge. Vertices
// shared between queries (paper Fig. 3b) are therefore traversed once per
// batch instead of once per query — the source of C-Graph's sublinear
// scaling with query count (paper Fig. 13).
//
// Two engines:
//   msbfs_batch             - single machine, over the global Graph
//   run_distributed_msbfs   - sharded, level-synchronous BSP over a Cluster
//
// Both engines additionally parallelize each level's frontier expansion
// *inside* a machine over a ThreadPool (the paper's LLC-sized edge-set
// tiles are the natural unit of intra-node work sharing): scans OR fresh
// discoveries into the next-frontier plane with relaxed atomics while the
// visited plane stays frozen, and visited is committed once per level.
// Because every cross-thread write is a bitwise OR, results are bit-exact
// for any thread count. The distributed engine takes its thread count
// from the Cluster (set_compute_threads / $CGRAPH_THREADS); the
// single-machine overloads take it as a parameter.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/shard.hpp"
#include "net/cluster.hpp"
#include "obs/trace.hpp"
#include "query/direction.hpp"
#include "query/query.hpp"
#include "util/bitops.hpp"
#include "util/thread_pool.hpp"

namespace cgraph {

struct MsBfsBatchResult {
  /// Per query (batch order): vertices visited, levels run, and the time
  /// from batch start until that query's frontier went empty.
  std::vector<std::uint64_t> visited;
  std::vector<Depth> levels;
  std::vector<double> completion_wall_seconds;
  std::vector<double> completion_sim_seconds;  // distributed engine only

  Depth total_levels = 0;
  double wall_seconds = 0;
  double sim_seconds = 0;
  std::uint64_t edges_scanned = 0;
  std::uint64_t frontier_bytes = 0;  // peak bitmap memory

  /// Per-level cost breakdown (frontier size, edges, bitmap word ops,
  /// barrier waits), one entry per traversal level. Empty for engines
  /// without level structure (async).
  std::vector<obs::LevelTrace> level_trace;
};

/// Single-machine bit-parallel batch over the global CSR. Batch size must
/// not exceed QueryBitRows::kMaxBatchWords * 64 queries.
///
/// \param threads Compute threads for the per-level scans: 0 selects one
///                thread per hardware core, 1 runs serially. The default
///                honours $CGRAPH_THREADS (unset -> serial). Results are
///                bit-exact for every value.
/// \param direction Traversal direction policy (DESIGN.md §12). The
///                default hybrid heuristic degrades to push on graphs
///                built without in-edges; every mode is bit-exact with
///                every other.
/// \param visited_out When non-null, receives a copy of the final visited
///                plane (rows = vertices, bits = queries) — the
///                differential test harness compares planes across modes
///                and thread counts, not just aggregate counts.
MsBfsBatchResult msbfs_batch(const Graph& graph,
                             std::span<const KHopQuery> batch,
                             std::size_t threads = default_compute_threads(),
                             const DirectionOptions& direction = {},
                             QueryBitRows* visited_out = nullptr);

/// Multi-source variant: each query's bit column is seeded at every one of
/// its sources, answering union reachability (visited counts exclude the
/// distinct sources themselves).
MsBfsBatchResult msbfs_batch(const Graph& graph,
                             std::span<const MultiKHopQuery> batch,
                             std::size_t threads = default_compute_threads(),
                             const DirectionOptions& direction = {},
                             QueryBitRows* visited_out = nullptr);

/// Distributed bit-parallel batch over sharded edge-sets. Remote frontier
/// discoveries travel as (vertex, bit-row) records; per-destination rows
/// are OR-combined before sending so wire volume is bounded by boundary
/// vertices, not by edges.
///
/// Direction policy is applied per level *per partition*: a machine in
/// pull mode pulls its local in-edges (CSC) and still pushes masked
/// frontier rows across partition boundaries, so the shipped packets are
/// byte-identical to push mode — fault plans, checkpoint cuts, and
/// recovery replay compose with either direction unchanged. visited_out
/// (when non-null) is assembled from every machine's local rows at global
/// offsets.
///
/// \param snapshot_epoch Mutation snapshot the batch reads (DESIGN.md
///                §15): base structures plus every delta event with epoch
///                <= snapshot_epoch. kEpochHead (the default) pins the
///                shards' epoch at entry, so writers appending events for
///                later epochs never change what an in-flight batch sees.
MsBfsBatchResult run_distributed_msbfs(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, std::span<const KHopQuery> batch,
    const DirectionOptions& direction = {},
    QueryBitRows* visited_out = nullptr,
    Epoch snapshot_epoch = kEpochHead);

/// Multi-source distributed variant (see the single-machine overload).
MsBfsBatchResult run_distributed_msbfs(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, std::span<const MultiKHopQuery> batch,
    const DirectionOptions& direction = {},
    QueryBitRows* visited_out = nullptr,
    Epoch snapshot_epoch = kEpochHead);

}  // namespace cgraph
