// Asynchronous k-hop traversal (paper §3.3: when a boundary vertex is
// visited "the vertex value will be asynchronously updated and the
// traversal on that vertex will be performed based on the new depth").
//
// Unlike the level-synchronous engines there are no barriers: every
// machine drains its local task queue, pushes boundary discoveries to the
// owner's mailbox immediately (send_async), and polls for incoming tasks.
// Global termination uses an idle-count + in-flight-message counter
// (a Mattern-style credit scheme collapsed onto the shared-memory
// substrate that hosts the simulated cluster).
//
// Async traversals can visit a vertex through a longer path first, which
// would strand deeper neighbors inside the hop budget if visitation were
// once-only. The engine therefore keeps a best-known depth per (query,
// vertex) and re-expands on improvement (unit-weight relaxation, the same
// fix asynchronous SSSP needs) — so results match the BSP engines exactly
// at the cost of the dense per-query depth array the paper's §3.3 memory
// discussion warns about.
#pragma once

#include <span>
#include <vector>

#include "graph/partition.hpp"
#include "graph/shard.hpp"
#include "net/cluster.hpp"
#include "query/msbfs.hpp"
#include "query/query.hpp"

namespace cgraph {

/// Run the batch asynchronously. Result layout matches the BSP engines;
/// per-query completion times are not individually tracked (no global
/// level clock exists) and are reported as the batch total.
MsBfsBatchResult run_async_khop(Cluster& cluster,
                                const std::vector<SubgraphShard>& shards,
                                const RangePartition& partition,
                                std::span<const KHopQuery> batch);

}  // namespace cgraph
