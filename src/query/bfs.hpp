// Serial BFS / k-hop reference implementations and the hop-plot analysis
// behind paper Fig. 1. These are the ground truth the distributed and
// bit-parallel engines are validated against, and the per-query kernel the
// GeminiLike baseline uses.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace cgraph {

/// Level-synchronous BFS from `src`, following out-edges, stopping after
/// `max_depth` hops. Returns per-vertex depth (kUnvisitedDepth if
/// unreached). max_depth = kUnvisitedDepth means unbounded (full BFS).
std::vector<Depth> bfs_levels(const Graph& graph, VertexId src,
                              Depth max_depth = kUnvisitedDepth);

/// Number of vertices reachable within k hops of src (excluding src).
std::uint64_t khop_reach_count(const Graph& graph, VertexId src, Depth k);

/// Vertices reachable within k hops, in discovery (level) order.
std::vector<VertexId> khop_reach_set(const Graph& graph, VertexId src,
                                     Depth k);

/// Hop plot: cumulative fraction of reachable vertex pairs by distance
/// (paper Fig. 1), estimated by BFS from `samples` random sources.
struct HopPlot {
  /// cumulative[d] = fraction of sampled reachable pairs at distance <= d.
  std::vector<double> cumulative;
  /// Largest observed distance (the sampled diameter δ).
  Depth diameter = 0;
  /// 50- and 90-percentile effective diameters (δ0.5, δ0.9), interpolated.
  double effective_diameter_50 = 0;
  double effective_diameter_90 = 0;
};

HopPlot compute_hop_plot(const Graph& graph, std::uint32_t samples,
                         std::uint64_t seed = 1);

}  // namespace cgraph
