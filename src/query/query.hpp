// Query descriptors and results shared by every traversal engine.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace cgraph {

/// A k-hop reachability query: visit everything within `k` hops of
/// `source`. k = kUnvisitedDepth means unbounded (full BFS reachability).
struct KHopQuery {
  QueryId id = 0;
  VertexId source = 0;
  Depth k = 3;
  /// Point-reachability target: when set (!= kInvalidVertex) the query
  /// asks "does source reach target within k hops?" and becomes eligible
  /// for the index fast path (src/index/, DESIGN.md §13). The traversal
  /// engines ignore this field — they still expand from source — and the
  /// service resolves the answer from the final visited plane.
  VertexId target = kInvalidVertex;

  [[nodiscard]] bool is_point() const { return target != kInvalidVertex; }
};

/// A multi-source k-hop query: visit everything within k hops of ANY of
/// the sources (the paper's Fig. 7 protocol issues queries "containing 10
/// source vertices"). Answered as union reachability in one bit column of
/// the batch engine.
struct MultiKHopQuery {
  QueryId id = 0;
  std::vector<VertexId> sources;
  Depth k = 3;
};

/// A query stamped with its (simulated) arrival time at the service front
/// end — the open-loop workload unit. gen/arrivals.hpp produces streams of
/// these; run_query_service() consumes them in nondecreasing time order.
struct TimedQuery {
  KHopQuery query;
  double arrival_sim_seconds = 0;
};

/// Outcome of one query under a concurrent workload.
struct QueryResult {
  QueryId id = 0;
  /// Vertices reached within k hops (excluding the source).
  std::uint64_t visited = 0;
  /// Traversal levels actually executed (< k if the frontier died early).
  Depth levels = 0;
  /// Host wall-clock response time: submission -> this query complete.
  double wall_seconds = 0;
  /// Simulated-cluster response time under the cost model.
  double sim_seconds = 0;
};

}  // namespace cgraph
