// Concurrent query front end (paper §3.3 "Concurrent queries can be ...
// processed in batches to enable subgraph sharing among queries").
//
// A set of simultaneously-issued k-hop queries is split into bit-parallel
// batches (default width 64 — one cache line of bits per vertex row, the
// paper's "fixed number of concurrent queries decided by hardware
// parameters"). Batches execute back-to-back on the cluster; a query's
// response time is its queue wait plus its completion time inside its own
// batch, which is exactly how response time stacks in the real system.
//
// Memory model: every finished query retains its result (the paper notes
// "every query returns with found paths, the memory usage increases
// linearly with the query count"). When the modeled footprint exceeds the
// configured budget, batch execution slows proportionally — reproducing
// the degradation the paper reports at 350 concurrent queries (Fig. 12).
#pragma once

#include <algorithm>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "graph/partition.hpp"
#include "graph/shard.hpp"
#include "net/cluster.hpp"
#include "obs/trace.hpp"
#include "query/msbfs.hpp"
#include "query/query.hpp"

namespace cgraph {

enum class BatchPolicy {
  /// Batch in arrival order.
  kFifo,
  /// Sort by root out-degree before batching so heavy queries share a
  /// batch instead of straggling light ones (Congra-style admission, cf.
  /// the paper's related work on concurrent-query scheduling). Results
  /// are reported back in submission order either way.
  kDegreeSorted,
};

struct SchedulerOptions {
  /// Queries per bit-parallel batch (<= 512).
  std::size_t batch_width = 64;
  BatchPolicy policy = BatchPolicy::kFifo;
  /// Use the §3.5 bit-operation engine; false falls back to per-query task
  /// queues (Listing 2) — the ablation switch.
  bool use_bit_parallel = true;
  /// Modeled memory budget; 0 disables the memory-pressure model.
  std::uint64_t memory_budget_bytes = 0;
  /// Execution slowdown per 1x budget overshoot (linear model).
  double memory_penalty = 3.0;
  /// Modeled bytes retained per visited vertex in query results
  /// ("returns with found paths").
  std::uint64_t result_bytes_per_visited = 8;
  /// Root-degree lookup for kDegreeSorted (e.g. [&](VertexId v) { return
  /// graph.out_degree(v); }). Policy falls back to FIFO when unset.
  std::function<EdgeIndex(VertexId)> degree_of;
  /// Traversal direction policy for the bit-parallel engine (DESIGN.md
  /// §12): forced push/pull or the per-level per-partition hybrid
  /// heuristic (the default; degrades to push on shards built without
  /// in-edges). Every mode answers bit-identically.
  DirectionOptions direction;
  /// Intra-machine compute threads for the per-level scans: 0 selects one
  /// thread per hardware core, 1 runs serially. Unset leaves the Cluster's
  /// current setting (which itself defaults to $CGRAPH_THREADS, or serial).
  /// Results are bit-exact for every value — see DESIGN.md "Threading
  /// model".
  std::optional<std::size_t> threads;
  /// Registry receiving this run's spans and counters; nullptr uses the
  /// process-global registry (tests pass a private one).
  obs::MetricsRegistry* metrics = nullptr;
  /// Mutation snapshot every batch reads (DESIGN.md §15). kEpochHead (the
  /// default) resolves to the shards' epoch when each batch starts, so a
  /// service interleaving queries with trace replay runs each batch
  /// against one consistent snapshot while writers proceed.
  Epoch snapshot_epoch = kEpochHead;
};

[[nodiscard]] const char* to_string(BatchPolicy policy);

/// Resolve the policy that will actually run: kDegreeSorted without a
/// degree_of lookup cannot sort and degrades to kFifo. The degradation is
/// logged once per process and recorded in RunTelemetry::effective_policy
/// and every BatchTrace, so a misconfigured service is visible instead of
/// silent.
[[nodiscard]] BatchPolicy effective_batch_policy(const SchedulerOptions& opts);

/// Reusable batch-execute core shared by the offline scheduler
/// (run_concurrent_queries) and the online service layer
/// (run_query_service). Executes one admitted batch on the cluster via the
/// configured engine and carries the cross-batch memory-retention model
/// ("every query returns with found paths"), so the same admitted batch
/// produces bit-identical visited/levels whichever front end formed it.
class BatchExecutor {
 public:
  BatchExecutor(Cluster& cluster, const std::vector<SubgraphShard>& shards,
                const RangePartition& partition, SchedulerOptions opts);

  struct Outcome {
    MsBfsBatchResult result;
    /// Memory-pressure stretch applied to this batch's times (>= 1).
    double slowdown = 1.0;
    /// Modeled bytes live while this batch executed.
    std::uint64_t footprint_bytes = 0;
    /// A crash inside the batch forced the engine to re-derive it.
    bool reexecuted = false;
    /// Cluster + fabric snapshot for the batch (levels, machines,
    /// straggler ratio, execute timings, policy). The caller fills the
    /// queue-side fields: index, width, wait_sim_seconds.
    obs::BatchTrace trace;
  };

  /// Execute one admitted batch (non-empty, <= batch_width queries).
  /// `visited_out`, when non-null, receives the final visited plane
  /// (rows = vertices, bits = batch slots) — how the service resolves
  /// point-query fallbacks (DESIGN.md §13). Requires the bit-parallel
  /// engine; the task-queue ablation path has no plane to expose.
  Outcome execute(std::span<const KHopQuery> batch,
                  QueryBitRows* visited_out = nullptr);

  [[nodiscard]] const SchedulerOptions& options() const { return opts_; }
  [[nodiscard]] BatchPolicy policy() const { return policy_; }
  [[nodiscard]] std::uint64_t peak_memory_bytes() const {
    return peak_memory_bytes_;
  }
  [[nodiscard]] std::uint64_t retained_result_bytes() const {
    return retained_result_bytes_;
  }
  [[nodiscard]] std::size_t batches_executed() const {
    return batches_executed_;
  }

  /// Replicated serving: N replicas implement ONE logical service, so the
  /// cross-batch memory-retention model ("every query returns with found
  /// paths") is global, not per-replica. After a batch lands on one
  /// replica, the ReplicaRouter mirrors that executor's accounting onto
  /// the idle peers so whichever replica executes the next batch sees the
  /// same modeled footprint (and thus the same slowdown — keeping the
  /// timing model independent of routing history).
  void sync_memory_model(std::uint64_t retained_result_bytes,
                         std::uint64_t peak_memory_bytes) {
    retained_result_bytes_ = retained_result_bytes;
    peak_memory_bytes_ = std::max(peak_memory_bytes_, peak_memory_bytes);
  }

 private:
  Cluster& cluster_;
  const std::vector<SubgraphShard>& shards_;
  const RangePartition& partition_;
  SchedulerOptions opts_;
  BatchPolicy policy_;
  std::uint64_t retained_result_bytes_ = 0;
  std::uint64_t peak_memory_bytes_ = 0;
  std::size_t batches_executed_ = 0;
};

struct ConcurrentRunResult {
  std::vector<QueryResult> queries;  // submission order
  double total_wall_seconds = 0;
  double total_sim_seconds = 0;
  std::uint64_t total_edges_scanned = 0;
  std::uint64_t peak_memory_bytes = 0;
  std::size_t batches = 0;
  /// Structured trace of the run (per batch, level, machine, query);
  /// already published into the configured metrics registry.
  obs::RunTelemetry telemetry;
};

/// Execute all queries "simultaneously submitted" against the sharded
/// graph and report per-query response times.
ConcurrentRunResult run_concurrent_queries(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, std::span<const KHopQuery> queries,
    const SchedulerOptions& opts = {});

/// Random query workload: `count` k-hop queries with sources drawn
/// uniformly from vertices with out-degree >= min_degree (the paper roots
/// queries at random vertices; zero-degree roots answer trivially).
std::vector<KHopQuery> make_random_queries(const Graph& graph,
                                           std::size_t count, Depth k,
                                           std::uint64_t seed = 1,
                                           EdgeIndex min_degree = 1);

}  // namespace cgraph
