#include "query/paths.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "net/serialize.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"
#include "util/timer.hpp"

namespace cgraph {
namespace {

constexpr std::uint32_t kVisitTag = 0x50564954;  // 'PVIT'
constexpr std::size_t kMaxLevels = 256;

/// VisitTask extended with the discovering parent.
struct ParentTask {
  VertexId target;
  VertexId parent;
  QueryId query;
  Depth depth;
};

}  // namespace

KhopPathsResult run_distributed_khop_paths(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, std::span<const KHopQuery> batch) {
  const std::size_t Q = batch.size();
  CGRAPH_CHECK(Q > 0);
  CGRAPH_CHECK(shards.size() == cluster.num_machines());

  KhopPathsResult result;
  result.base.visited.assign(Q, 0);
  result.base.levels.assign(Q, 0);
  result.base.completion_wall_seconds.assign(Q, 0.0);
  result.base.completion_sim_seconds.assign(Q, 0.0);
  result.parents.resize(Q);
  std::mutex parents_mu;

  const std::size_t W = words_for_bits(Q);
  CGRAPH_CHECK_MSG(W <= QueryBitRows::kMaxBatchWords,
                   "batch exceeds activity-plane capacity");
  std::vector<std::atomic<Word>> nonempty_planes(kMaxLevels * W);
  for (auto& a : nonempty_planes) a.store(0, std::memory_order_relaxed);
  std::vector<std::atomic<std::uint64_t>> visited_accum(Q);
  for (auto& a : visited_accum) a.store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> edges_total{0};

  cluster.reset_clocks();
  cluster.fabric().reset_counters();
  WallTimer wall;

  cluster.run([&](MachineContext& mc) {
    const SubgraphShard& shard = shards[mc.id()];
    const VertexRange range = shard.local_range();
    const VertexId nlocal = range.size();

    std::vector<Bitmap> visited(Q);
    std::vector<std::vector<VertexId>> frontier(Q), next(Q);
    std::vector<ParentList> local_parents(Q);
    for (std::size_t q = 0; q < Q; ++q) {
      visited[q].resize(nlocal);
      if (range.contains(batch[q].source)) {
        visited[q].set(batch[q].source - range.begin);
        frontier[q].push_back(batch[q].source);
      }
    }

    std::vector<std::vector<ParentTask>> outbox(mc.num_machines());
    std::vector<bool> done(Q, false);
    std::size_t done_count = 0;
    std::uint64_t my_edges = 0;

    for (Depth level = 0; done_count < Q; ++level) {
      std::uint64_t level_edges = 0;
      for (std::size_t q = 0; q < Q; ++q) {
        if (batch[q].k <= level) continue;
        for (VertexId s : frontier[q]) {
          shard.out_sets().for_each_neighbor(s, [&](VertexId t) {
            ++level_edges;
            if (range.contains(t)) {
              if (visited[q].atomic_test_and_set(t - range.begin)) {
                next[q].push_back(t);
                local_parents[q].emplace_back(t, s);
              }
            } else {
              outbox[partition.owner(t)].push_back(
                  {t, s, static_cast<QueryId>(q),
                   static_cast<Depth>(level + 1)});
            }
          });
        }
      }
      my_edges += level_edges;
      mc.charge_compute(level_edges);

      for (PartitionId to = 0; to < outbox.size(); ++to) {
        if (outbox[to].empty()) continue;
        PacketWriter pw;
        pw.write_span(std::span<const ParentTask>(outbox[to]));
        mc.send(to, kVisitTag, pw.take());
        outbox[to].clear();
      }
      mc.barrier();

      for (Envelope& env : mc.recv_staged()) {
        CGRAPH_CHECK(env.tag == kVisitTag);
        PacketReader pr(env.payload);
        for (const ParentTask& task : pr.read_vector<ParentTask>()) {
          CGRAPH_DCHECK(range.contains(task.target));
          if (visited[task.query].atomic_test_and_set(task.target -
                                                      range.begin)) {
            next[task.query].push_back(task.target);
            local_parents[task.query].emplace_back(task.target, task.parent);
          }
        }
      }

      {
        Word local_nonempty[QueryBitRows::kMaxBatchWords] = {};
        for (std::size_t q = 0; q < Q; ++q) {
          if (!next[q].empty()) {
            local_nonempty[q / kWordBits] |= Word{1} << (q % kWordBits);
          }
        }
        for (std::size_t w = 0; w < W; ++w) {
          if (local_nonempty[w] != 0) {
            nonempty_planes[static_cast<std::size_t>(level) * W + w]
                .fetch_or(local_nonempty[w], std::memory_order_acq_rel);
          }
        }
      }
      for (std::size_t q = 0; q < Q; ++q) {
        frontier[q].swap(next[q]);
        next[q].clear();
      }
      mc.barrier();

      for (std::size_t q = 0; q < Q; ++q) {
        if (done[q]) continue;
        const Word plane =
            nonempty_planes[static_cast<std::size_t>(level) * W +
                            q / kWordBits]
                .load(std::memory_order_acquire);
        const bool empty_next = ((plane >> (q % kWordBits)) & 1u) == 0;
        const bool k_exhausted = static_cast<Depth>(level + 1) >= batch[q].k;
        if (empty_next || k_exhausted) {
          done[q] = true;
          ++done_count;
          if (mc.id() == 0) {
            result.base.levels[q] = static_cast<Depth>(level + 1);
            result.base.completion_wall_seconds[q] = wall.seconds();
            result.base.completion_sim_seconds[q] = mc.clock().seconds();
          }
        }
      }
      if (mc.id() == 0) {
        result.base.total_levels = static_cast<Depth>(level + 1);
      }
      CGRAPH_CHECK_MSG(static_cast<std::size_t>(level) + 1 < kMaxLevels,
                       "traversal exceeded level cap");
    }

    for (std::size_t q = 0; q < Q; ++q) {
      visited_accum[q].fetch_add(visited[q].count(),
                                 std::memory_order_relaxed);
    }
    edges_total.fetch_add(my_edges, std::memory_order_relaxed);

    // Merge per-machine parent lists (each vertex is discovered on exactly
    // one machine — its owner — so lists are disjoint).
    std::lock_guard<std::mutex> lk(parents_mu);
    for (std::size_t q = 0; q < Q; ++q) {
      result.parents[q].insert(result.parents[q].end(),
                               local_parents[q].begin(),
                               local_parents[q].end());
    }
  });

  for (std::size_t q = 0; q < Q; ++q) {
    const std::uint64_t v = visited_accum[q].load(std::memory_order_relaxed);
    result.base.visited[q] = v > 0 ? v - 1 : 0;
  }
  result.base.wall_seconds = wall.seconds();
  result.base.sim_seconds = cluster.sim_seconds();
  result.base.edges_scanned = edges_total.load(std::memory_order_relaxed);
  return result;
}

std::vector<VertexId> reconstruct_path(const ParentList& parents,
                                       VertexId source, VertexId target) {
  if (source == target) return {source};
  std::unordered_map<VertexId, VertexId> parent_of;
  parent_of.reserve(parents.size());
  for (const auto& [v, p] : parents) parent_of.emplace(v, p);

  std::vector<VertexId> path{target};
  VertexId cur = target;
  while (cur != source) {
    const auto it = parent_of.find(cur);
    if (it == parent_of.end()) return {};  // unreachable
    cur = it->second;
    path.push_back(cur);
    CGRAPH_CHECK_MSG(path.size() <= parents.size() + 2,
                     "cycle in parent list");
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace cgraph
