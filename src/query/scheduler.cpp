#include "query/scheduler.hpp"

#include <algorithm>
#include <atomic>

#include "query/distributed_khop.hpp"
#include "query/msbfs.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"
#include "util/rng.hpp"

namespace cgraph {

ConcurrentRunResult run_concurrent_queries(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, std::span<const KHopQuery> queries,
    const SchedulerOptions& opts) {
  CGRAPH_CHECK(!queries.empty());
  CGRAPH_CHECK(opts.batch_width > 0 &&
               opts.batch_width <= QueryBitRows::kMaxBatchWords * kWordBits);

  obs::MetricsRegistry& registry =
      opts.metrics != nullptr ? *opts.metrics : obs::MetricsRegistry::global();
  obs::TraceSpan run_span("run_concurrent_queries", &registry);

  if (opts.threads.has_value()) {
    cluster.set_compute_threads(*opts.threads);
  }

  ConcurrentRunResult run;
  run.queries.resize(queries.size());

  // Batch composition: FIFO keeps submission order; degree-sorted groups
  // queries with similar expected work. `order[i]` maps execution slot i
  // back to the submission index.
  std::vector<std::size_t> order(queries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<KHopQuery> reordered;
  std::span<const KHopQuery> exec_queries = queries;
  if (opts.policy == BatchPolicy::kDegreeSorted && opts.degree_of) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return opts.degree_of(queries[a].source) >
                              opts.degree_of(queries[b].source);
                     });
    reordered.reserve(queries.size());
    for (std::size_t i : order) reordered.push_back(queries[i]);
    exec_queries = reordered;
  }

  double wait_wall = 0;
  double wait_sim = 0;
  std::uint64_t retained_result_bytes = 0;

  for (std::size_t begin = 0; begin < exec_queries.size();
       begin += opts.batch_width) {
    const std::size_t end =
        std::min(begin + opts.batch_width, exec_queries.size());
    const std::span<const KHopQuery> batch =
        exec_queries.subspan(begin, end - begin);

    obs::BatchTrace bt;
    bt.index = run.batches;
    bt.width = batch.size();
    bt.wait_sim_seconds = wait_sim;

    obs::TraceSpan batch_span("batch_execute", &registry);
    // Query failover accounting: a crash inside the batch forces the
    // engine to re-execute (part of) the run, which re-derives every query
    // in the batch — untouched batches never pay for a crash.
    const std::uint64_t crashes_before = cluster.recovery_stats().crashes;
    MsBfsBatchResult br =
        opts.use_bit_parallel
            ? run_distributed_msbfs(cluster, shards, partition, batch)
            : run_distributed_khop(cluster, shards, partition, batch);
    if (cluster.recovery_stats().crashes > crashes_before) {
      cluster.add_queries_reexecuted(batch.size());
    }
    batch_span.finish();
    ++run.batches;
    run.total_edges_scanned += br.edges_scanned;

    // Memory-pressure model: in-flight traversal state plus all retained
    // results; overshooting the budget stretches simulated time linearly.
    std::uint64_t batch_result_bytes = 0;
    for (std::uint64_t v : br.visited)
      batch_result_bytes += v * opts.result_bytes_per_visited;
    const std::uint64_t footprint =
        retained_result_bytes + batch_result_bytes + br.frontier_bytes;
    run.peak_memory_bytes = std::max(run.peak_memory_bytes, footprint);
    retained_result_bytes += batch_result_bytes;

    double slowdown = 1.0;
    if (opts.memory_budget_bytes > 0 &&
        footprint > opts.memory_budget_bytes) {
      const double overshoot =
          static_cast<double>(footprint - opts.memory_budget_bytes) /
          static_cast<double>(opts.memory_budget_bytes);
      slowdown += opts.memory_penalty * overshoot;
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
      QueryResult& qr = run.queries[order[begin + i]];
      qr.id = batch[i].id;
      qr.visited = br.visited[i];
      qr.levels = br.levels[i];
      qr.wall_seconds =
          wait_wall + br.completion_wall_seconds[i] * slowdown;
      qr.sim_seconds = wait_sim + br.completion_sim_seconds[i] * slowdown;

      obs::QueryTrace qt;
      qt.id = batch[i].id;
      qt.batch_index = bt.index;
      qt.levels = br.levels[i];
      qt.visited = br.visited[i];
      qt.wait_sim_seconds = wait_sim;
      qt.execute_sim_seconds = br.completion_sim_seconds[i] * slowdown;
      run.telemetry.queries.push_back(qt);
    }
    wait_wall += br.wall_seconds * slowdown;
    wait_sim += br.sim_seconds * slowdown;

    // Snapshot cluster + fabric state for this batch (every engine resets
    // both at run start, so the counters are batch-scoped).
    bt.execute_sim_seconds = br.sim_seconds * slowdown;
    bt.execute_wall_seconds = br.wall_seconds;
    bt.straggler_ratio = cluster.telemetry().straggler_ratio();
    bt.levels = br.level_trace;
    const ClusterTelemetry& ct = cluster.telemetry();
    for (PartitionId m = 0; m < cluster.num_machines(); ++m) {
      obs::MachineTrace mt;
      mt.machine = m;
      if (m < ct.machines.size()) {
        mt.supersteps = ct.machines[m].supersteps;
        mt.barrier_wait_sim_seconds = ct.machines[m].barrier_wait_sim_seconds;
        mt.barrier_wait_wall_seconds =
            ct.machines[m].barrier_wait_wall_seconds;
      }
      const TrafficCounters& tc = cluster.fabric().sent_counters(m);
      mt.staged_packets = tc.staged_packets.load(std::memory_order_relaxed);
      mt.staged_bytes = tc.staged_bytes.load(std::memory_order_relaxed);
      mt.async_packets = tc.async_packets.load(std::memory_order_relaxed);
      mt.async_bytes = tc.async_bytes.load(std::memory_order_relaxed);
      mt.delivered_packets =
          tc.delivered_packets.load(std::memory_order_relaxed);
      mt.dropped_packets = tc.dropped_packets.load(std::memory_order_relaxed);
      mt.duplicated_packets =
          tc.duplicated_packets.load(std::memory_order_relaxed);
      mt.retried_packets = tc.retried_packets.load(std::memory_order_relaxed);
      mt.ack_packets = tc.ack_packets.load(std::memory_order_relaxed);
      mt.delivery_failed_packets =
          tc.delivery_failed_packets.load(std::memory_order_relaxed);
      mt.dedup_suppressed_packets =
          tc.dedup_suppressed_packets.load(std::memory_order_relaxed);
      bt.machines.push_back(mt);
    }
    run.telemetry.batches.push_back(std::move(bt));
  }

  run.total_wall_seconds = wait_wall;
  run.total_sim_seconds = wait_sim;
  run_span.finish();
  run.telemetry.publish(registry);
  return run;
}

std::vector<KHopQuery> make_random_queries(const Graph& graph,
                                           std::size_t count, Depth k,
                                           std::uint64_t seed,
                                           EdgeIndex min_degree) {
  CGRAPH_CHECK(graph.num_vertices() > 0);
  Xoshiro256 rng(seed);
  std::vector<KHopQuery> queries;
  queries.reserve(count);
  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 1000 + 1000;
  while (queries.size() < count) {
    const auto v =
        static_cast<VertexId>(rng.next_bounded(graph.num_vertices()));
    ++attempts;
    if (graph.out_degree(v) < min_degree && attempts < max_attempts) {
      continue;  // resample low-degree roots while attempts remain
    }
    queries.push_back(
        {static_cast<QueryId>(queries.size()), v, k});
  }
  return queries;
}

}  // namespace cgraph
