#include "query/scheduler.hpp"

#include <algorithm>
#include <atomic>

#include "obs/event_tracer.hpp"
#include "query/distributed_khop.hpp"
#include "query/msbfs.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace cgraph {

const char* to_string(BatchPolicy policy) {
  switch (policy) {
    case BatchPolicy::kFifo:
      return "fifo";
    case BatchPolicy::kDegreeSorted:
      return "degree-sorted";
  }
  return "unknown";
}

BatchPolicy effective_batch_policy(const SchedulerOptions& opts) {
  if (opts.policy == BatchPolicy::kDegreeSorted && !opts.degree_of) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      CGRAPH_LOG_WARN(
          "BatchPolicy::kDegreeSorted requested without a degree_of lookup; "
          "batching falls back to FIFO (set SchedulerOptions::degree_of)");
    }
    return BatchPolicy::kFifo;
  }
  return opts.policy;
}

BatchExecutor::BatchExecutor(Cluster& cluster,
                             const std::vector<SubgraphShard>& shards,
                             const RangePartition& partition,
                             SchedulerOptions opts)
    : cluster_(cluster),
      shards_(shards),
      partition_(partition),
      opts_(std::move(opts)),
      policy_(effective_batch_policy(opts_)) {
  CGRAPH_CHECK(opts_.batch_width > 0 &&
               opts_.batch_width <= QueryBitRows::kMaxBatchWords * kWordBits);
  if (opts_.threads.has_value()) {
    cluster_.set_compute_threads(*opts_.threads);
  }
}

BatchExecutor::Outcome BatchExecutor::execute(
    std::span<const KHopQuery> batch, QueryBitRows* visited_out) {
  CGRAPH_CHECK(!batch.empty());
  CGRAPH_CHECK(batch.size() <= opts_.batch_width);
  CGRAPH_CHECK_MSG(visited_out == nullptr || opts_.use_bit_parallel,
                   "visited-plane capture requires the bit-parallel engine");

  Outcome out;
  out.trace.index = batches_executed_;
  out.trace.width = batch.size();
  out.trace.policy = to_string(policy_);

  // Query failover accounting: a crash inside the batch forces the engine
  // to re-execute (part of) the run, which re-derives every query in the
  // batch — untouched batches never pay for a crash.
  const std::uint64_t crashes_before = cluster_.recovery_stats().crashes;
  out.result = opts_.use_bit_parallel
                   ? run_distributed_msbfs(cluster_, shards_, partition_,
                                           batch, opts_.direction,
                                           visited_out, opts_.snapshot_epoch)
                   : run_distributed_khop(cluster_, shards_, partition_,
                                          batch, opts_.snapshot_epoch);
  if (cluster_.recovery_stats().crashes > crashes_before) {
    cluster_.add_queries_reexecuted(batch.size());
    out.reexecuted = true;
  }
  ++batches_executed_;

  // Memory-pressure model: in-flight traversal state plus all retained
  // results; overshooting the budget stretches simulated time linearly.
  std::uint64_t batch_result_bytes = 0;
  for (std::uint64_t v : out.result.visited)
    batch_result_bytes += v * opts_.result_bytes_per_visited;
  out.footprint_bytes = retained_result_bytes_ + batch_result_bytes +
                        out.result.frontier_bytes;
  peak_memory_bytes_ = std::max(peak_memory_bytes_, out.footprint_bytes);
  retained_result_bytes_ += batch_result_bytes;

  if (opts_.memory_budget_bytes > 0 &&
      out.footprint_bytes > opts_.memory_budget_bytes) {
    const double overshoot =
        static_cast<double>(out.footprint_bytes - opts_.memory_budget_bytes) /
        static_cast<double>(opts_.memory_budget_bytes);
    out.slowdown += opts_.memory_penalty * overshoot;
  }

  // Snapshot cluster + fabric state for this batch (every engine resets
  // both at run start, so the counters are batch-scoped).
  out.trace.execute_sim_seconds = out.result.sim_seconds * out.slowdown;
  out.trace.execute_wall_seconds = out.result.wall_seconds;
  out.trace.straggler_ratio = cluster_.telemetry().straggler_ratio();
  out.trace.levels = out.result.level_trace;
  const ClusterTelemetry& ct = cluster_.telemetry();
  for (PartitionId m = 0; m < cluster_.num_machines(); ++m) {
    obs::MachineTrace mt;
    mt.machine = m;
    if (m < ct.machines.size()) {
      mt.supersteps = ct.machines[m].supersteps;
      mt.barrier_wait_sim_seconds = ct.machines[m].barrier_wait_sim_seconds;
      mt.barrier_wait_wall_seconds =
          ct.machines[m].barrier_wait_wall_seconds;
    }
    const TrafficCounters& tc = cluster_.fabric().sent_counters(m);
    mt.staged_packets = tc.staged_packets.load(std::memory_order_relaxed);
    mt.staged_bytes = tc.staged_bytes.load(std::memory_order_relaxed);
    mt.async_packets = tc.async_packets.load(std::memory_order_relaxed);
    mt.async_bytes = tc.async_bytes.load(std::memory_order_relaxed);
    mt.delivered_packets =
        tc.delivered_packets.load(std::memory_order_relaxed);
    mt.dropped_packets = tc.dropped_packets.load(std::memory_order_relaxed);
    mt.duplicated_packets =
        tc.duplicated_packets.load(std::memory_order_relaxed);
    mt.retried_packets = tc.retried_packets.load(std::memory_order_relaxed);
    mt.ack_packets = tc.ack_packets.load(std::memory_order_relaxed);
    mt.delivery_failed_packets =
        tc.delivery_failed_packets.load(std::memory_order_relaxed);
    mt.dedup_suppressed_packets =
        tc.dedup_suppressed_packets.load(std::memory_order_relaxed);
    out.trace.machines.push_back(mt);
  }
  return out;
}

ConcurrentRunResult run_concurrent_queries(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, std::span<const KHopQuery> queries,
    const SchedulerOptions& opts) {
  CGRAPH_CHECK(!queries.empty());

  obs::MetricsRegistry& registry =
      opts.metrics != nullptr ? *opts.metrics : obs::MetricsRegistry::global();
  obs::TraceSpan run_span("run_concurrent_queries", &registry);

  BatchExecutor executor(cluster, shards, partition, opts);
  const BatchPolicy policy = executor.policy();

  ConcurrentRunResult run;
  run.queries.resize(queries.size());
  run.telemetry.effective_policy = to_string(policy);

  // Batch composition: FIFO keeps submission order; degree-sorted groups
  // queries with similar expected work. `order[i]` maps execution slot i
  // back to the submission index.
  std::vector<std::size_t> order(queries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<KHopQuery> reordered;
  std::span<const KHopQuery> exec_queries = queries;
  if (policy == BatchPolicy::kDegreeSorted) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return opts.degree_of(queries[a].source) >
                              opts.degree_of(queries[b].source);
                     });
    reordered.reserve(queries.size());
    for (std::size_t i : order) reordered.push_back(queries[i]);
    exec_queries = reordered;
  }

  double wait_wall = 0;
  double wait_sim = 0;

  for (std::size_t begin = 0; begin < exec_queries.size();
       begin += opts.batch_width) {
    const std::size_t end =
        std::min(begin + opts.batch_width, exec_queries.size());
    const std::span<const KHopQuery> batch =
        exec_queries.subspan(begin, end - begin);

    obs::TraceSpan batch_span("batch_execute", &registry);
    // Engine events carry batch-relative sim times (every engine resets the
    // cluster clocks); the batch context re-bases them onto the run's
    // absolute sim axis and stamps the batch id. Batches execute serially,
    // so one global context is race-free.
    obs::EventTracer* tracer = obs::EventTracer::current();
    if (tracer != nullptr) {
      tracer->set_batch_context(static_cast<std::int64_t>(run.batches),
                                wait_sim);
    }
    BatchExecutor::Outcome out = executor.execute(batch);
    if (tracer != nullptr) tracer->clear_batch_context();
    batch_span.finish();

    obs::BatchTrace bt = std::move(out.trace);
    bt.index = run.batches;
    bt.wait_sim_seconds = wait_sim;
    ++run.batches;
    run.total_edges_scanned += out.result.edges_scanned;

    if (obs::tracing_enabled()) {
      obs::TraceEvent ev;
      ev.phase = obs::TraceEventPhase::kBatchExecute;
      ev.kind = obs::TraceEventKind::kSpan;
      ev.machine = obs::TraceEvent::kExecutorTrack;
      ev.batch = static_cast<std::int64_t>(bt.index);
      ev.sim_seconds = wait_sim;
      ev.sim_dur_seconds = out.result.sim_seconds * out.slowdown;
      ev.wall_dur_ns = static_cast<std::uint64_t>(
          out.result.wall_seconds * 1e9);
      ev.a = static_cast<double>(batch.size());
      obs::trace(ev);
      if (out.reexecuted) {
        for (const KHopQuery& q : batch) {
          obs::TraceEvent rx;
          rx.phase = obs::TraceEventPhase::kQueryReexecuted;
          rx.kind = obs::TraceEventKind::kInstant;
          rx.machine = obs::TraceEvent::kExecutorTrack;
          rx.query = static_cast<std::int64_t>(q.id);
          rx.batch = static_cast<std::int64_t>(bt.index);
          rx.sim_seconds = wait_sim;
          obs::trace(rx);
        }
      }
    }

    const MsBfsBatchResult& br = out.result;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      QueryResult& qr = run.queries[order[begin + i]];
      qr.id = batch[i].id;
      qr.visited = br.visited[i];
      qr.levels = br.levels[i];
      qr.wall_seconds =
          wait_wall + br.completion_wall_seconds[i] * out.slowdown;
      qr.sim_seconds =
          wait_sim + br.completion_sim_seconds[i] * out.slowdown;

      obs::QueryTrace qt;
      qt.id = batch[i].id;
      qt.batch_index = bt.index;
      qt.levels = br.levels[i];
      qt.visited = br.visited[i];
      qt.wait_sim_seconds = wait_sim;
      qt.execute_sim_seconds = br.completion_sim_seconds[i] * out.slowdown;
      run.telemetry.queries.push_back(qt);

      if (obs::tracing_enabled()) {
        obs::TraceEvent ev;
        ev.phase = obs::TraceEventPhase::kQuery;
        ev.kind = obs::TraceEventKind::kSpan;
        ev.machine = obs::TraceEvent::kExecutorTrack;
        ev.query = static_cast<std::int64_t>(qr.id);
        ev.batch = static_cast<std::int64_t>(bt.index);
        ev.sim_seconds = 0.0;  // closed-loop: all queries submitted at t=0
        ev.sim_dur_seconds = qr.sim_seconds;
        ev.a = static_cast<double>(qr.visited);
        ev.b = static_cast<double>(qr.levels);
        obs::trace(ev);
        obs::TraceEvent done_ev;
        done_ev.phase = obs::TraceEventPhase::kQueryComplete;
        done_ev.kind = obs::TraceEventKind::kInstant;
        done_ev.machine = obs::TraceEvent::kExecutorTrack;
        done_ev.query = static_cast<std::int64_t>(qr.id);
        done_ev.batch = static_cast<std::int64_t>(bt.index);
        done_ev.sim_seconds = qr.sim_seconds;
        done_ev.a = static_cast<double>(qr.visited);
        done_ev.b = static_cast<double>(qr.levels);
        obs::trace(done_ev);
      }
    }
    wait_wall += br.wall_seconds * out.slowdown;
    wait_sim += br.sim_seconds * out.slowdown;
    run.telemetry.batches.push_back(std::move(bt));
  }

  run.peak_memory_bytes = executor.peak_memory_bytes();
  run.total_wall_seconds = wait_wall;
  run.total_sim_seconds = wait_sim;
  run_span.finish();
  run.telemetry.publish(registry);
  return run;
}

std::vector<KHopQuery> make_random_queries(const Graph& graph,
                                           std::size_t count, Depth k,
                                           std::uint64_t seed,
                                           EdgeIndex min_degree) {
  CGRAPH_CHECK(graph.num_vertices() > 0);
  Xoshiro256 rng(seed);
  std::vector<KHopQuery> queries;
  queries.reserve(count);
  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 1000 + 1000;
  while (queries.size() < count) {
    const auto v =
        static_cast<VertexId>(rng.next_bounded(graph.num_vertices()));
    ++attempts;
    if (graph.out_degree(v) < min_degree && attempts < max_attempts) {
      continue;  // resample low-degree roots while attempts remain
    }
    queries.push_back(
        {static_cast<QueryId>(queries.size()), v, k});
  }
  return queries;
}

}  // namespace cgraph
