// Direction-optimizing traversal policy (Beamer et al., SC'12) for the
// bit-parallel MS-BFS engines.
//
// Top-down ("push") expands the frontier over out-edges (CSR); bottom-up
// ("pull") iterates *unvisited* vertices' in-edges (CSC) and tests parent
// frontier planes with one AND per 64-query word, retiring a query's bit
// as soon as any parent supplies it. On dense batched frontiers pull
// examines a small fraction of the edges push would touch, because most
// rows have already been discovered for most queries.
//
// The hybrid heuristic switches per level *per partition* from two
// deterministic inputs produced by the previous level's commit pass
// (FrontierOccupancy — no extra scan):
//
//   push -> pull  when scout_edges          > total_edges / alpha
//   pull -> push  when active frontier rows < num_vertices / beta
//
// scout_edges is the classic scout count: the sum of out-degrees of rows
// with any frontier bit, i.e. the edges the next push scan would charge.
// Both inputs derive only from frontier planes and static degrees — never
// from wall clocks or thread interleavings — so the chosen direction is
// identical for every thread count and replays bit-exact through
// checkpoint/restore (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <string>

namespace cgraph {

enum class TraversalDirection : std::uint8_t {
  kPush,    ///< force top-down over out-edges (CSR) at every level
  kPull,    ///< force bottom-up over in-edges (CSC) at every level
  kHybrid,  ///< scout-count heuristic, per level per partition
};

struct DirectionOptions {
  /// kHybrid falls back to push on graphs/shards built without in-edges
  /// (the CSC side is optional); forced kPull on such a graph is a
  /// configuration error and fails a CGRAPH_CHECK.
  TraversalDirection mode = TraversalDirection::kHybrid;
  /// Push->pull threshold divisor. Beamer's alpha, adapted: the reference
  /// count stays the partition's full edge count instead of the shrinking
  /// unvisited-edge count, which is ill-defined across a 512-query batch.
  double alpha = 14.0;
  /// Pull->push threshold divisor over the partition's vertex count.
  double beta = 24.0;
};

[[nodiscard]] inline const char* to_string(TraversalDirection mode) {
  switch (mode) {
    case TraversalDirection::kPush:
      return "push";
    case TraversalDirection::kPull:
      return "pull";
    case TraversalDirection::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

/// Parse "push" | "pull" | "hybrid"; returns false (out untouched) on
/// anything else.
inline bool parse_direction(const std::string& text,
                            TraversalDirection* out) {
  if (text == "push") {
    *out = TraversalDirection::kPush;
  } else if (text == "pull") {
    *out = TraversalDirection::kPull;
  } else if (text == "hybrid") {
    *out = TraversalDirection::kHybrid;
  } else {
    return false;
  }
  return true;
}

}  // namespace cgraph
