// Replicated shard serving (DESIGN.md §14): N replica Clusters over the
// same partitioned graph, fronted by a health-checked router.
//
// Replication is for availability, not capacity: every replica holds the
// full set of shards, so any healthy replica can serve any batch. The
// router (a) routes index-answerable point queries (the §13 bypass lane)
// to any healthy replica, (b) routes traversal batches by partition
// ownership of the batch's first root with a deterministic, seed-pinned
// replica choice, and (c) health-checks replicas via heartbeat misses —
// replica deaths themselves are driven off the deterministic halt/crash
// schedule (Cluster::arm_halt layered on the FaultPlan machinery), so a
// replica-kill sweep replays exactly.
//
// When a replica dies mid-batch (Cluster::run throws ReplicaDead), the
// service fails the admitted batch over to a surviving replica: the dead
// replica's checkpoint store is exported with its partial tail discarded
// (CheckpointStore::latest_complete_step) and adopted by the survivor,
// which resumes the batch from the last complete barrier cut. Down to one
// replica, the service keeps answering — degraded, never wrong: answers
// are fault-plan independent (the chaos invariant), so a survivor
// replaying an adopted cut under its own FaultPlan stays bit-exact.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/partition.hpp"
#include "graph/shard.hpp"
#include "net/cluster.hpp"
#include "obs/metrics.hpp"
#include "query/scheduler.hpp"

namespace cgraph {

/// Replica health as seen by the router's failure detector.
enum class ReplicaHealth : std::uint8_t {
  kHealthy,  // serving; heartbeats current
  kSuspect,  // missed at least one heartbeat, not yet declared dead
  kDead,     // declared dead (miss threshold, or a hard ReplicaDead)
};

[[nodiscard]] const char* to_string(ReplicaHealth health);

struct ReplicaRouterOptions {
  /// Seed pinning the deterministic replica choice (route hash). Distinct
  /// from the FaultPlan seed so routing can be varied independently of the
  /// chaos schedule.
  std::uint64_t route_seed = 1;
  /// Consecutive heartbeat misses before a replica is declared dead by the
  /// polling detector. A ReplicaDead thrown mid-batch is a hard signal and
  /// declares death immediately (recorded as threshold misses).
  std::uint32_t heartbeat_miss_threshold = 3;
};

/// Per-replica counters surfaced through publish_metrics.
struct ReplicaStats {
  ReplicaHealth health = ReplicaHealth::kHealthy;
  std::uint32_t consecutive_misses = 0;
  std::uint64_t heartbeat_misses_total = 0;
  std::uint64_t batches_executed = 0;
  std::uint64_t point_queries_routed = 0;
};

class ReplicaRouter {
 public:
  static constexpr std::size_t kNoReplica = ~std::size_t{0};

  /// `replicas` are caller-owned Clusters (all with shards.size()
  /// machines). Each gets its own BatchExecutor so per-replica engine
  /// state never aliases; the shared memory-retention model is kept in
  /// sync via BatchExecutor::sync_memory_model after every batch.
  ReplicaRouter(std::vector<Cluster*> replicas,
                const std::vector<SubgraphShard>& shards,
                const RangePartition& partition,
                const SchedulerOptions& sched_opts,
                ReplicaRouterOptions opts = {});

  [[nodiscard]] std::size_t num_replicas() const { return replicas_.size(); }
  [[nodiscard]] Cluster& replica(std::size_t r) { return *replicas_[r]; }
  [[nodiscard]] BatchExecutor& executor(std::size_t r) {
    return *executors_[r];
  }
  [[nodiscard]] const ReplicaRouterOptions& options() const { return opts_; }

  [[nodiscard]] ReplicaHealth health(std::size_t r) const;
  [[nodiscard]] std::size_t healthy_count() const;
  /// Degraded-but-correct mode: at least one replica has been declared
  /// dead and the survivors carry the service.
  [[nodiscard]] bool degraded() const;
  [[nodiscard]] std::uint64_t failovers() const;
  [[nodiscard]] std::vector<ReplicaStats> stats() const;

  /// Deterministic, seed-pinned batch routing: hash(route_seed,
  /// batch_index, owner partition of the batch's first root) picks the
  /// preferred replica; the first non-dead replica scanning from it is
  /// returned. Pure in (seed, batch, owner, set of dead replicas) — and
  /// the dead set evolves deterministically on the executor thread — so a
  /// replay routes identically.
  [[nodiscard]] std::size_t route_batch(std::uint64_t batch_index,
                                        VertexId first_root) const;

  /// Route an index-answerable point query (the bypass lane never touches
  /// replica state — the index tier is shared — so this is attribution:
  /// which healthy replica the hit is accounted to). Bumps that replica's
  /// point_queries_routed. Thread-safe: called from the admission thread
  /// while batches execute.
  std::size_t route_point(std::uint64_t query_id);

  /// Owning partition of a root under the shared RangePartition (the
  /// routing key; exposed for traces and tests).
  [[nodiscard]] PartitionId owner_partition(VertexId root) const {
    return partition_.owner(root);
  }

  /// One failure-detector sweep (the service runs it at each batch
  /// dispatch): a halted-but-not-yet-declared replica records a heartbeat
  /// miss; at the miss threshold it is declared dead. Healthy replicas
  /// reset their consecutive-miss counts. Returns the misses recorded so
  /// the caller can trace them (kHeartbeatMiss).
  struct HeartbeatMiss {
    std::size_t replica = kNoReplica;
    std::uint32_t consecutive = 0;
    bool declared_dead = false;
  };
  std::vector<HeartbeatMiss> poll_heartbeats();

  /// Failover decision for a replica that died mid-batch (hard signal:
  /// Cluster::run threw ReplicaDead). Declares it dead, charges threshold
  /// heartbeat misses, bumps the failover counter, and picks the survivor
  /// — but does NOT move checkpoint state; the caller decides adoption
  /// (membership may have changed, see ServicePipeline) and calls adopt().
  struct FailoverPlan {
    std::size_t dead = kNoReplica;
    std::size_t survivor = kNoReplica;
    /// Dead replica's simulated clock at death (batch-relative: engines
    /// reset clocks at execute entry).
    double dead_sim_seconds = 0;
    /// Simulated clock at the adoptable cut (0 when cut_step == 0).
    double cut_sim_seconds = 0;
    std::uint64_t cut_step = 0;
    /// Both sides run recovery, so the cut can actually be adopted.
    bool can_adopt = false;
  };
  FailoverPlan plan_failover(std::size_t dead_replica);

  /// Export the dead replica's last complete cut (partial tail discarded)
  /// and arm the survivor to resume from it on its next execute.
  void adopt(const FailoverPlan& plan);

  /// Post-batch bookkeeping: bump the executing replica's batch counter,
  /// reset its miss count, and mirror its memory-model accounting onto the
  /// idle peers (one logical service).
  void on_batch_success(std::size_t r);

  /// Modeled peak footprint across replicas (they mirror each other, but
  /// a replica that died mid-batch may hold the high-water mark).
  [[nodiscard]] std::uint64_t peak_memory_bytes() const;

  /// Publish replica health gauges and routing/failover counters
  /// (cgraph_replica_*). Call after the run, like Cluster::publish_metrics.
  void publish_metrics(obs::MetricsRegistry& registry) const;

 private:
  [[nodiscard]] std::size_t first_live_from_locked(std::size_t start) const;

  std::vector<Cluster*> replicas_;
  const RangePartition& partition_;
  ReplicaRouterOptions opts_;
  std::vector<std::unique_ptr<BatchExecutor>> executors_;

  /// Guards health/counters: the admission thread routes point queries
  /// while the executor thread dispatches batches and fails over.
  mutable std::mutex mu_;
  std::vector<ReplicaStats> stats_;
  std::uint64_t failovers_ = 0;
};

}  // namespace cgraph
