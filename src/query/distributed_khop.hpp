// Queue-based distributed k-hop traversal — the direct implementation of
// paper Listing 2. Each query keeps an explicit per-machine task queue and
// visited set; local neighbors are pushed onto the local queue, boundary
// neighbors are shipped to the owner's remote task buffer (paper Fig. 4/5).
//
// This is the non-bit-parallel execution mode: queries in a batch are
// level-synchronized but do NOT share edge scans, so its total work grows
// linearly with the query count. It serves as (a) the semantics reference
// for the bit-parallel engine and (b) the ablation baseline for the
// paper's §3.5 bit-operation optimization.
#pragma once

#include <span>
#include <vector>

#include "graph/partition.hpp"
#include "graph/shard.hpp"
#include "net/cluster.hpp"
#include "query/msbfs.hpp"
#include "query/query.hpp"

namespace cgraph {

/// Runs the batch with per-query task queues. Result layout matches the
/// bit-parallel engine so harnesses can swap engines. `snapshot_epoch`
/// selects the mutation snapshot the scatter reads (kEpochHead pins the
/// shards' epoch at entry), exactly as in run_distributed_msbfs.
MsBfsBatchResult run_distributed_khop(Cluster& cluster,
                                      const std::vector<SubgraphShard>& shards,
                                      const RangePartition& partition,
                                      std::span<const KHopQuery> batch,
                                      Epoch snapshot_epoch = kEpochHead);

}  // namespace cgraph
