#include "query/bfs.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cgraph {

std::vector<Depth> bfs_levels(const Graph& graph, VertexId src,
                              Depth max_depth) {
  CGRAPH_CHECK(src < graph.num_vertices());
  // Handles resolved per call, not cached in statics: MetricsRegistry::clear()
  // invalidates handles, and one registry lookup is noise next to a BFS.
  obs::Counter& runs_total = obs::MetricsRegistry::global().counter(
      "cgraph_serial_bfs_runs_total", "Serial BFS traversals executed");
  obs::Counter& edges_total = obs::MetricsRegistry::global().counter(
      "cgraph_serial_bfs_edges_total", "Edges relaxed by serial BFS");
  std::vector<Depth> depth(graph.num_vertices(), kUnvisitedDepth);
  std::vector<VertexId> frontier{src};
  std::vector<VertexId> next;
  depth[src] = 0;
  Depth level = 0;
  std::uint64_t edges = 0;
  while (!frontier.empty() && level < max_depth) {
    next.clear();
    for (VertexId v : frontier) {
      for (VertexId t : graph.out_neighbors(v)) {
        ++edges;
        if (depth[t] == kUnvisitedDepth) {
          depth[t] = static_cast<Depth>(level + 1);
          next.push_back(t);
        }
      }
    }
    frontier.swap(next);
    ++level;
  }
  runs_total.inc();
  edges_total.inc(static_cast<double>(edges));
  return depth;
}

std::uint64_t khop_reach_count(const Graph& graph, VertexId src, Depth k) {
  const auto depth = bfs_levels(graph, src, k);
  std::uint64_t count = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (v != src && depth[v] != kUnvisitedDepth) ++count;
  }
  return count;
}

std::vector<VertexId> khop_reach_set(const Graph& graph, VertexId src,
                                     Depth k) {
  CGRAPH_CHECK(src < graph.num_vertices());
  std::vector<Depth> depth(graph.num_vertices(), kUnvisitedDepth);
  std::vector<VertexId> order;
  std::vector<VertexId> frontier{src};
  std::vector<VertexId> next;
  depth[src] = 0;
  Depth level = 0;
  while (!frontier.empty() && level < k) {
    next.clear();
    for (VertexId v : frontier) {
      for (VertexId t : graph.out_neighbors(v)) {
        if (depth[t] == kUnvisitedDepth) {
          depth[t] = static_cast<Depth>(level + 1);
          next.push_back(t);
          order.push_back(t);
        }
      }
    }
    frontier.swap(next);
    ++level;
  }
  return order;
}

HopPlot compute_hop_plot(const Graph& graph, std::uint32_t samples,
                         std::uint64_t seed) {
  HopPlot plot;
  if (graph.num_vertices() == 0) return plot;
  Xoshiro256 rng(seed);

  // distance histogram over sampled (source, reachable target) pairs
  std::vector<std::uint64_t> dist_count;
  std::uint64_t total_pairs = 0;
  for (std::uint32_t s = 0; s < samples; ++s) {
    const auto src =
        static_cast<VertexId>(rng.next_bounded(graph.num_vertices()));
    const auto depth = bfs_levels(graph, src);
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      const Depth d = depth[v];
      if (v == src || d == kUnvisitedDepth) continue;
      if (d >= dist_count.size()) dist_count.resize(d + 1, 0);
      ++dist_count[d];
      ++total_pairs;
      plot.diameter = std::max(plot.diameter, d);
    }
  }
  if (total_pairs == 0) return plot;

  // cumulative[d] = fraction of sampled pairs at distance <= d;
  // dist_count[0] is always zero (the source itself is excluded).
  plot.cumulative.resize(dist_count.size(), 0.0);
  std::uint64_t cum = 0;
  for (std::size_t d = 0; d < dist_count.size(); ++d) {
    cum += dist_count[d];
    plot.cumulative[d] =
        static_cast<double>(cum) / static_cast<double>(total_pairs);
  }

  // Effective diameter at fraction q: linear interpolation between the
  // first distance whose cumulative fraction reaches q and its predecessor
  // (the standard KONECT/SNAP definition, matching Fig. 1's δ0.5 = 3.51).
  auto effective = [&](double q) -> double {
    for (std::size_t d = 1; d < plot.cumulative.size(); ++d) {
      if (plot.cumulative[d] >= q) {
        const double prev = plot.cumulative[d - 1];
        const double cur = plot.cumulative[d];
        const double frac = cur == prev ? 0.0 : (q - prev) / (cur - prev);
        return static_cast<double>(d - 1) + frac;
      }
    }
    return static_cast<double>(plot.cumulative.size() - 1);
  };
  plot.effective_diameter_50 = effective(0.5);
  plot.effective_diameter_90 = effective(0.9);
  return plot;
}

}  // namespace cgraph
