#include "query/replica_router.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace cgraph {
namespace {

/// SplitMix64-style finalizer over (seed, a, b): the seed-pinned routing
/// hash. Stateless so routing decisions replay bit-exact.
std::uint64_t route_mix(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = seed ^ 0x9e3779b97f4a7c15ULL;
  x ^= (a << 32) ^ b;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

const char* to_string(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kSuspect:
      return "suspect";
    case ReplicaHealth::kDead:
      return "dead";
  }
  return "unknown";
}

ReplicaRouter::ReplicaRouter(std::vector<Cluster*> replicas,
                             const std::vector<SubgraphShard>& shards,
                             const RangePartition& partition,
                             const SchedulerOptions& sched_opts,
                             ReplicaRouterOptions opts)
    : replicas_(std::move(replicas)), partition_(partition),
      opts_(opts) {
  CGRAPH_CHECK_MSG(!replicas_.empty(), "router needs at least one replica");
  if (opts_.heartbeat_miss_threshold == 0) opts_.heartbeat_miss_threshold = 1;
  for (Cluster* c : replicas_) {
    CGRAPH_CHECK(c != nullptr);
    CGRAPH_CHECK_MSG(c->num_machines() == shards.size(),
                     "every replica must span the same shard set");
  }
  executors_.reserve(replicas_.size());
  for (Cluster* c : replicas_) {
    executors_.push_back(
        std::make_unique<BatchExecutor>(*c, shards, partition, sched_opts));
  }
  stats_.resize(replicas_.size());
  // A replica that was already halted when handed to the router starts
  // dead — e.g. one killed during a previous service run.
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (replicas_[r]->halted()) stats_[r].health = ReplicaHealth::kDead;
  }
}

ReplicaHealth ReplicaRouter::health(std::size_t r) const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_[r].health;
}

std::size_t ReplicaRouter::healthy_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const ReplicaStats& s : stats_) {
    if (s.health != ReplicaHealth::kDead) ++n;
  }
  return n;
}

bool ReplicaRouter::degraded() const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const ReplicaStats& s : stats_) {
    if (s.health == ReplicaHealth::kDead) return true;
  }
  return false;
}

std::uint64_t ReplicaRouter::failovers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return failovers_;
}

std::vector<ReplicaStats> ReplicaRouter::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t ReplicaRouter::first_live_from_locked(std::size_t start) const {
  const std::size_t n = replicas_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = (start + i) % n;
    if (stats_[r].health != ReplicaHealth::kDead) return r;
  }
  return kNoReplica;
}

std::size_t ReplicaRouter::route_batch(std::uint64_t batch_index,
                                       VertexId first_root) const {
  const PartitionId owner = partition_.owner(first_root);
  const std::size_t preferred = static_cast<std::size_t>(
      route_mix(opts_.route_seed, batch_index, owner) % replicas_.size());
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t r = first_live_from_locked(preferred);
  CGRAPH_CHECK_MSG(r != kNoReplica,
                   "no live replica to route a batch to (all replicas dead)");
  return r;
}

std::size_t ReplicaRouter::route_point(std::uint64_t query_id) {
  const std::size_t preferred = static_cast<std::size_t>(
      route_mix(opts_.route_seed, query_id, 0x706f696e74ULL /* "point" */) %
      replicas_.size());
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t r = first_live_from_locked(preferred);
  CGRAPH_CHECK_MSG(r != kNoReplica,
                   "no live replica to route a point query to");
  ++stats_[r].point_queries_routed;
  return r;
}

std::vector<ReplicaRouter::HeartbeatMiss> ReplicaRouter::poll_heartbeats() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<HeartbeatMiss> misses;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    ReplicaStats& s = stats_[r];
    if (s.health == ReplicaHealth::kDead) continue;
    if (replicas_[r]->halted()) {
      ++s.consecutive_misses;
      ++s.heartbeat_misses_total;
      const bool dead = s.consecutive_misses >= opts_.heartbeat_miss_threshold;
      s.health = dead ? ReplicaHealth::kDead : ReplicaHealth::kSuspect;
      misses.push_back({r, s.consecutive_misses, dead});
    } else {
      s.consecutive_misses = 0;
      s.health = ReplicaHealth::kHealthy;
    }
  }
  return misses;
}

ReplicaRouter::FailoverPlan ReplicaRouter::plan_failover(
    std::size_t dead_replica) {
  FailoverPlan plan;
  plan.dead = dead_replica;
  Cluster& dead = *replicas_[dead_replica];
  plan.dead_sim_seconds = dead.sim_seconds();
  {
    std::lock_guard<std::mutex> lk(mu_);
    ReplicaStats& s = stats_[dead_replica];
    if (s.health != ReplicaHealth::kDead) {
      // A hard ReplicaDead is the failure detector's strongest signal:
      // account it as a full threshold of missed heartbeats.
      s.consecutive_misses = opts_.heartbeat_miss_threshold;
      s.heartbeat_misses_total += opts_.heartbeat_miss_threshold;
      s.health = ReplicaHealth::kDead;
    }
    ++failovers_;
    plan.survivor = first_live_from_locked((dead_replica + 1) %
                                           replicas_.size());
  }
  CGRAPH_CHECK_MSG(plan.survivor != kNoReplica,
                   "replica died with no survivor to fail over to");
  plan.can_adopt = dead.recovery_enabled() &&
                   replicas_[plan.survivor]->recovery_enabled();
  if (plan.can_adopt) {
    plan.cut_step = dead.checkpoint_store().latest_complete_step();
    if (plan.cut_step > 0) {
      const auto snap =
          dead.checkpoint_store().cluster_snapshot(plan.cut_step);
      if (snap.has_value()) {
        double max_ns = 0;
        for (double ns : snap->clock_ns) max_ns = std::max(max_ns, ns);
        plan.cut_sim_seconds = max_ns * 1e-9;
      }
    }
  }
  CGRAPH_LOG_INFO(
      "replica %zu died at sim %.6fs; failing over to replica %zu "
      "(cut step %llu, adoptable=%d)",
      dead_replica, plan.dead_sim_seconds, plan.survivor,
      static_cast<unsigned long long>(plan.cut_step),
      plan.can_adopt ? 1 : 0);
  return plan;
}

void ReplicaRouter::adopt(const FailoverPlan& plan) {
  CGRAPH_CHECK(plan.can_adopt);
  CGRAPH_CHECK(plan.dead != kNoReplica && plan.survivor != kNoReplica);
  replicas_[plan.survivor]->arm_resume(
      replicas_[plan.dead]->export_resume_package());
}

void ReplicaRouter::on_batch_success(std::size_t r) {
  const std::uint64_t retained = executors_[r]->retained_result_bytes();
  const std::uint64_t peak = executors_[r]->peak_memory_bytes();
  for (std::size_t i = 0; i < executors_.size(); ++i) {
    if (i != r) executors_[i]->sync_memory_model(retained, peak);
  }
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_[r].batches_executed;
  stats_[r].consecutive_misses = 0;
}

std::uint64_t ReplicaRouter::peak_memory_bytes() const {
  std::uint64_t peak = 0;
  for (const auto& e : executors_) {
    peak = std::max(peak, e->peak_memory_bytes());
  }
  return peak;
}

void ReplicaRouter::publish_metrics(obs::MetricsRegistry& reg) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t healthy = 0;
  for (std::size_t r = 0; r < stats_.size(); ++r) {
    const ReplicaStats& s = stats_[r];
    if (s.health != ReplicaHealth::kDead) ++healthy;
    const obs::Labels rl{{"replica", std::to_string(r)}};
    reg.gauge("cgraph_replica_health",
              "Replica health (0 healthy, 1 suspect, 2 dead)", rl)
        .set(static_cast<double>(s.health));
    reg.counter("cgraph_replica_heartbeat_misses_total",
                "Heartbeat misses recorded by the replica failure detector",
                rl)
        .inc(static_cast<double>(s.heartbeat_misses_total));
    reg.counter("cgraph_replica_batches_total",
                "Traversal batches executed per replica", rl)
        .inc(static_cast<double>(s.batches_executed));
    reg.counter("cgraph_replica_point_queries_total",
                "Index-answered point queries attributed per replica", rl)
        .inc(static_cast<double>(s.point_queries_routed));
  }
  reg.gauge("cgraph_replica_healthy",
            "Replicas currently considered live by the router")
      .set(static_cast<double>(healthy));
  reg.gauge("cgraph_replica_total", "Replicas configured behind the router")
      .set(static_cast<double>(stats_.size()));
  reg.counter("cgraph_replica_failover_total",
              "Batches failed over to a surviving replica")
      .inc(static_cast<double>(failovers_));
}

}  // namespace cgraph
