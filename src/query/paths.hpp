// Path recording for k-hop queries.
//
// The paper notes "every query returns with found paths, the memory usage
// increases linearly with the query count" (§4.2, Fig. 12). This module
// provides the found-path side of that statement: a traversal variant that
// records, per query, the BFS parent of every visited vertex, and a
// reconstruction helper that walks a parent map back to the source.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "graph/partition.hpp"
#include "graph/shard.hpp"
#include "net/cluster.hpp"
#include "query/msbfs.hpp"
#include "query/query.hpp"

namespace cgraph {

/// (vertex, parent) discovery records for one query; the source has no
/// entry. Parents form a BFS tree, so the path they induce is a shortest
/// (minimum-hop) path.
using ParentList = std::vector<std::pair<VertexId, VertexId>>;

struct KhopPathsResult {
  MsBfsBatchResult base;
  /// Per query (batch order): the discovery parent of every visited
  /// vertex. Total size across queries is the paper's linearly-growing
  /// result footprint.
  std::vector<ParentList> parents;

  [[nodiscard]] std::size_t result_bytes() const {
    std::size_t bytes = 0;
    for (const ParentList& p : parents) {
      bytes += p.size() * sizeof(ParentList::value_type);
    }
    return bytes;
  }
};

/// Queue-based distributed k-hop that also records parents.
KhopPathsResult run_distributed_khop_paths(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, std::span<const KHopQuery> batch);

/// Reconstruct the hop path source -> ... -> target from a parent list.
/// Returns an empty vector if target was not reached.
std::vector<VertexId> reconstruct_path(const ParentList& parents,
                                       VertexId source, VertexId target);

}  // namespace cgraph
