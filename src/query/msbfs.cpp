#include "query/msbfs.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <mutex>

#include "net/serialize.hpp"
#include "obs/event_tracer.hpp"
#include "query/frontier.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace cgraph {
namespace {

constexpr std::uint32_t kRemoteDiscoverTag = 0x52444953;  // 'RDIS'
// Depth is uint8_t, so no traversal can exceed 255 levels; +1 slack.
constexpr std::size_t kMaxLevels = 256;

// Sparse top-down scans iterate the active-row queue instead of testing
// every row once the queue is this many times smaller than the vertex
// count. Purely a work-saving choice: queue and full scans expand the
// same rows, so every downstream bit and counter is identical.
constexpr std::uint64_t kSparseQueueFactor = 8;

using WordRow = std::array<Word, QueryBitRows::kMaxBatchWords>;

/// Internal batch form shared by the single- and multi-source overloads:
/// per query, a hop bound and a list of distinct seed vertices.
struct SeededBatch {
  std::vector<Depth> ks;
  std::vector<std::vector<VertexId>> seeds;

  [[nodiscard]] std::size_t size() const { return ks.size(); }
};

SeededBatch to_seeded(std::span<const KHopQuery> batch) {
  SeededBatch sb;
  sb.ks.reserve(batch.size());
  sb.seeds.reserve(batch.size());
  for (const KHopQuery& q : batch) {
    sb.ks.push_back(q.k);
    sb.seeds.push_back({q.source});
  }
  return sb;
}

SeededBatch to_seeded(std::span<const MultiKHopQuery> batch) {
  SeededBatch sb;
  sb.ks.reserve(batch.size());
  sb.seeds.reserve(batch.size());
  for (const MultiKHopQuery& q : batch) {
    CGRAPH_CHECK_MSG(!q.sources.empty(),
                     "multi-source query needs at least one source");
    sb.ks.push_back(q.k);
    std::vector<VertexId> seeds = q.sources;
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
    sb.seeds.push_back(std::move(seeds));
  }
  return sb;
}

/// Per-level expansion mask: bit q set iff query q still has hops left
/// when expanding the frontier at `level` (discovering level+1).
WordRow expand_mask_for_level(std::span<const Depth> ks, Depth level) {
  WordRow mask{};
  for (std::size_t q = 0; q < ks.size(); ++q) {
    if (ks[q] > level) {
      mask[q / kWordBits] |= Word{1} << (q % kWordBits);
    }
  }
  return mask;
}

bool row_masked_any(const Word* row, const WordRow& mask, std::size_t words,
                    WordRow& out) {
  Word any = 0;
  for (std::size_t w = 0; w < words; ++w) {
    out[w] = row[w] & mask[w];
    any |= out[w];
  }
  return any != 0;
}

// Relaxed OR into a plain shared word. Legal for the same reason as
// Bitmap::atomic_test_and_set: during a parallel scan phase these words are
// only ever touched through this atomic view, and OR commutes, so the final
// value is independent of thread interleaving.
inline void atomic_or_word(Word* word, Word bits) {
  reinterpret_cast<std::atomic<Word>*>(word)->fetch_or(
      bits, std::memory_order_relaxed);
}

/// The per-level direction decision (DESIGN.md §12). Every input is a
/// deterministic function of the frontier planes and static degrees — the
/// previous level's commit-pass occupancy, the partition's edge/vertex
/// totals, and the previous decision (Beamer's hysteresis) — so the choice
/// is identical for every thread count and replays bit-exact from a
/// restored checkpoint.
TraversalDirection decide_direction(const DirectionOptions& opts,
                                    bool can_pull, bool was_pulling,
                                    const FrontierOccupancy& occ,
                                    std::uint64_t total_edges,
                                    std::uint64_t nrows) {
  if (opts.mode == TraversalDirection::kPush) return TraversalDirection::kPush;
  if (opts.mode == TraversalDirection::kPull) return TraversalDirection::kPull;
  if (!can_pull) return TraversalDirection::kPush;
  if (!was_pulling) {
    // Push -> pull when the frontier's out-edges pass total/alpha: the
    // top-down scan is about to touch a large fraction of the graph, and
    // most of those checks will land on already-visited rows.
    const double scout_limit =
        static_cast<double>(total_edges) / std::max(opts.alpha, 1e-9);
    return static_cast<double>(occ.scout_edges) > scout_limit
               ? TraversalDirection::kPull
               : TraversalDirection::kPush;
  }
  // Pull -> push when the frontier thins out again (the tail of the
  // traversal): bottom-up would keep scanning every unvisited row for
  // parents that are no longer there.
  const double rows_limit =
      static_cast<double>(nrows) / std::max(opts.beta, 1e-9);
  return static_cast<double>(occ.active_rows) < rows_limit
             ? TraversalDirection::kPush
             : TraversalDirection::kPull;
}

MsBfsBatchResult msbfs_batch_core(const Graph& graph,
                                  const SeededBatch& batch,
                                  std::size_t threads,
                                  const DirectionOptions& direction,
                                  QueryBitRows* visited_out) {
  const std::size_t Q = batch.size();
  CGRAPH_CHECK(Q > 0);
  CGRAPH_CHECK_MSG(Q <= QueryBitRows::kMaxBatchWords * kWordBits,
                   "batch exceeds bit-parallel capacity");
  const VertexId n = graph.num_vertices();

  const bool can_pull = graph.has_in_edges();
  CGRAPH_CHECK_MSG(
      direction.mode != TraversalDirection::kPull || can_pull,
      "forced pull requires a graph built with in-edges (CSC)");

  const std::size_t nthreads = resolve_compute_threads(threads);
  std::unique_ptr<ThreadPool> owned_pool;
  if (nthreads > 1) owned_pool = std::make_unique<ThreadPool>(nthreads - 1);
  ThreadPool* pool = owned_pool.get();

  MsBfsBatchResult result;
  result.visited.assign(Q, 0);
  result.levels.assign(Q, 0);
  result.completion_wall_seconds.assign(Q, 0.0);
  result.completion_sim_seconds.assign(Q, 0.0);

  BatchFrontier bf(n, Q);
  const std::size_t W = bf.words_per_row();
  result.frontier_bytes = bf.memory_bytes();

  for (std::size_t q = 0; q < Q; ++q) {
    for (VertexId source : batch.seeds[q]) {
      CGRAPH_CHECK(source < n);
      bf.seed(source, q);
    }
  }

  // Scout-count inputs: per-row out-degrees (static) and the seeded
  // frontier's occupancy; from level 1 on the occupancy is carried out of
  // the commit pass for free.
  std::vector<EdgeIndex> degrees(n);
  for (VertexId v = 0; v < n; ++v) degrees[v] = graph.out_degree(v);
  const std::uint64_t total_edges = graph.num_edges();
  FrontierOccupancy occ = bf.frontier_occupancy(degrees);

  // Active-row queue for sparse top-down levels: seeded by the
  // bitmap->queue conversion, then maintained by the commit pass.
  std::vector<VertexId> queue;
  bf.frontier_to_queue(queue);

  std::vector<bool> done(Q, false);
  std::size_t done_count = 0;
  bool pulling = false;
  WallTimer wall;

  auto mark_done = [&](std::size_t q, Depth levels_run) {
    if (done[q]) return;
    done[q] = true;
    ++done_count;
    result.levels[q] = levels_run;
    result.completion_wall_seconds[q] = wall.seconds();
  };

  for (Depth level = 0; done_count < Q; ++level) {
    const WordRow expand = expand_mask_for_level(batch.ks, level);

    const TraversalDirection used = decide_direction(
        direction, can_pull, pulling, occ, total_edges, n);
    pulling = used == TraversalDirection::kPull;

    obs::LevelTrace lt;
    lt.level = level;
    lt.scout_edges = occ.scout_edges;
    lt.push_machines = pulling ? 0 : 1;
    lt.pull_machines = pulling ? 1 : 0;

    std::atomic<std::uint64_t> frontier_acc{0};
    std::atomic<std::uint64_t> edges_acc{0};
    ParallelForStats scan_stats;
    if (!pulling) {
      // Top-down scan: threads claim disjoint vertex ranges of the
      // frontier; fresh discoveries land in the next plane via relaxed
      // atomic OR while the visited plane stays frozen (committed once
      // below), so any thread interleaving produces exactly the serial
      // scan's bits. A sparse frontier iterates the active-row queue
      // instead of testing all n rows — same rows expand either way.
      auto expand_row = [&](std::size_t v, WordRow& masked,
                            std::uint64_t& chunk_frontier,
                            std::uint64_t& chunk_edges) {
        const Word* row = bf.frontier().row(v);
        if (!row_masked_any(row, expand, W, masked)) return;
        ++chunk_frontier;
        const auto nbrs = graph.out_neighbors(static_cast<VertexId>(v));
        for (VertexId t : nbrs) {
          bf.discover_atomic(t, masked.data());
        }
        chunk_edges += nbrs.size();
      };
      const bool sparse =
          queue.size() * kSparseQueueFactor < static_cast<std::size_t>(n);
      if (sparse) {
        scan_stats = parallel_ranges(
            pool, queue.size(), [&](std::size_t qb, std::size_t qe) {
              WordRow masked;
              std::uint64_t chunk_frontier = 0;
              std::uint64_t chunk_edges = 0;
              for (std::size_t i = qb; i < qe; ++i) {
                expand_row(queue[i], masked, chunk_frontier, chunk_edges);
              }
              frontier_acc.fetch_add(chunk_frontier,
                                     std::memory_order_relaxed);
              edges_acc.fetch_add(chunk_edges, std::memory_order_relaxed);
            });
      } else {
        scan_stats = parallel_ranges(
            pool, n, [&](std::size_t vb, std::size_t ve) {
              WordRow masked;
              std::uint64_t chunk_frontier = 0;
              std::uint64_t chunk_edges = 0;
              for (std::size_t v = vb; v < ve; ++v) {
                expand_row(v, masked, chunk_frontier, chunk_edges);
              }
              frontier_acc.fetch_add(chunk_frontier,
                                     std::memory_order_relaxed);
              edges_acc.fetch_add(chunk_edges, std::memory_order_relaxed);
            });
      }
    } else {
      // Bottom-up scan: threads claim disjoint ranges of *rows to fill*;
      // each unvisited row ANDs its parents' frontier words into its own
      // next row (one word-AND per 64 queries), stopping as soon as every
      // wanted bit found a parent. Each row has exactly one writer, so no
      // atomics are needed; the frontier occupancy count rides along for
      // telemetry parity with the push path.
      scan_stats = parallel_ranges(
          pool, n, [&](std::size_t vb, std::size_t ve) {
            WordRow masked;
            std::uint64_t chunk_frontier = 0;
            std::uint64_t chunk_examined = 0;
            for (std::size_t v = vb; v < ve; ++v) {
              if (row_masked_any(bf.frontier().row(v), expand, W, masked)) {
                ++chunk_frontier;
              }
              chunk_examined += bf.pull_row(
                  v, expand.data(),
                  graph.in_neighbors(static_cast<VertexId>(v)), 0, n);
            }
            frontier_acc.fetch_add(chunk_frontier,
                                   std::memory_order_relaxed);
            edges_acc.fetch_add(chunk_examined, std::memory_order_relaxed);
          });
    }

    // Commit: fold the next plane into visited once for the whole level,
    // collect the per-query occupancy of the next frontier, and carry the
    // next level's density + scout count out of the same pass.
    WordRow nonempty{};
    FrontierOccupancy occ_next;
    std::vector<std::pair<std::size_t, std::vector<VertexId>>> active_chunks;
    std::mutex nonempty_mu;
    const ParallelForStats commit_stats = parallel_ranges(
        pool, n, [&](std::size_t vb, std::size_t ve) {
          WordRow chunk_nonempty{};
          std::vector<VertexId> chunk_active;
          const FrontierOccupancy chunk_occ = bf.commit_rows(
              vb, ve, chunk_nonempty.data(), degrees, &chunk_active);
          std::lock_guard<std::mutex> lock(nonempty_mu);
          for (std::size_t w = 0; w < W; ++w) nonempty[w] |= chunk_nonempty[w];
          occ_next += chunk_occ;
          active_chunks.emplace_back(vb, std::move(chunk_active));
        });
    // Rebuild the queue from the per-chunk pieces in row order (chunks are
    // contiguous ranges, so sorting by range start restores the global
    // ascending order regardless of which thread finished first).
    std::sort(active_chunks.begin(), active_chunks.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    queue.clear();
    for (auto& [begin_row, rows] : active_chunks) {
      (void)begin_row;
      queue.insert(queue.end(), rows.begin(), rows.end());
    }
    occ = occ_next;

    lt.frontier_vertices = frontier_acc.load(std::memory_order_relaxed);
    const std::uint64_t discovers =
        edges_acc.load(std::memory_order_relaxed);
    lt.edges_scanned = discovers;
    result.edges_scanned += discovers;

    // Bitmap words touched. Push: frontier scan + occupancy scan of every
    // row, plus the three word-ops per discovered neighbor row (Fig. 6
    // update). Pull: frontier/want scans of every row plus two word-ops
    // (AND + OR) per parent row examined, plus the commit scan.
    lt.bit_ops = pulling
                     ? 3 * static_cast<std::uint64_t>(n) * W +
                           discovers * 2 * W
                     : 2 * static_cast<std::uint64_t>(n) * W +
                           discovers * 3 * W;
    lt.parallel_tasks = scan_stats.tasks + commit_stats.tasks;
    lt.steal_wait_seconds =
        scan_stats.join_wait_seconds + commit_stats.join_wait_seconds;
    result.level_trace.push_back(lt);

    bf.advance(nonempty.data());  // O(words): reuse the commit-phase mask
    result.total_levels = static_cast<Depth>(level + 1);

    for (std::size_t q = 0; q < Q; ++q) {
      if (done[q]) continue;
      const bool empty_next =
          ((nonempty[q / kWordBits] >> (q % kWordBits)) & 1u) == 0;
      const bool k_exhausted =
          static_cast<Depth>(level + 1) >= batch.ks[q];
      if (empty_next || k_exhausted) {
        mark_done(q, static_cast<Depth>(level + 1));
      }
    }
    CGRAPH_CHECK_MSG(static_cast<std::size_t>(level) + 1 < kMaxLevels,
                     "traversal exceeded level cap");
  }

  // Visited counts per query (the seeds themselves excluded).
  {
    std::mutex visited_mu;
    parallel_ranges(pool, n, [&](std::size_t vb, std::size_t ve) {
      std::vector<std::uint64_t> counts(Q, 0);
      for (std::size_t v = vb; v < ve; ++v) {
        const Word* row = bf.visited().row(v);
        for (std::size_t w = 0; w < W; ++w) {
          for_each_set_bit(row[w], w * kWordBits,
                           [&](std::size_t q) { ++counts[q]; });
        }
      }
      std::lock_guard<std::mutex> lock(visited_mu);
      for (std::size_t q = 0; q < Q; ++q) result.visited[q] += counts[q];
    });
  }
  for (std::size_t q = 0; q < Q; ++q) {
    const std::uint64_t seeds = batch.seeds[q].size();
    result.visited[q] = result.visited[q] > seeds
                            ? result.visited[q] - seeds
                            : 0;
  }
  if (visited_out != nullptr) *visited_out = bf.visited();

  result.wall_seconds = wall.seconds();
  result.sim_seconds = result.wall_seconds;  // no cluster: wall == sim
  result.completion_sim_seconds = result.completion_wall_seconds;
  return result;
}

MsBfsBatchResult run_distributed_msbfs_core(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, const SeededBatch& batch,
    const DirectionOptions& direction, QueryBitRows* visited_out,
    Epoch snapshot_epoch) {
  const std::size_t Q = batch.size();
  // Resolve the snapshot: kEpochHead pins the batch to the shards' epoch
  // at entry, so writers appending events for later epochs never change
  // what this batch sees (snapshot isolation, DESIGN.md §15).
  const Epoch epoch = snapshot_epoch == kEpochHead
                          ? current_epoch(std::span<const SubgraphShard>(
                                shards.data(), shards.size()))
                          : snapshot_epoch;
  CGRAPH_CHECK(Q > 0);
  CGRAPH_CHECK_MSG(Q <= QueryBitRows::kMaxBatchWords * kWordBits,
                   "batch exceeds bit-parallel capacity");
  CGRAPH_CHECK(shards.size() == cluster.num_machines());
  const VertexId num_vertices = shards[0].num_global_vertices();
  const std::size_t W = words_for_bits(Q);

  if (direction.mode == TraversalDirection::kPull) {
    for (const SubgraphShard& shard : shards) {
      CGRAPH_CHECK_MSG(shard.has_in_edges(),
                       "forced pull requires shards built with in-edges "
                       "(ShardOptions::build_in_edges)");
    }
  }

  MsBfsBatchResult result;
  result.visited.assign(Q, 0);
  result.levels.assign(Q, 0);
  result.completion_wall_seconds.assign(Q, 0.0);
  result.completion_sim_seconds.assign(Q, 0.0);
  if (visited_out != nullptr) {
    *visited_out = QueryBitRows(num_vertices, Q);
  }

  // Shared reduction planes, one row per level so no reset/race dance is
  // needed: machines OR their local next-frontier masks for level L into
  // plane L before the level's closing barrier, everyone reads after.
  std::vector<std::atomic<Word>> nonempty_planes(kMaxLevels * W);
  for (auto& a : nonempty_planes) a.store(0, std::memory_order_relaxed);
  std::vector<std::atomic<std::uint64_t>> visited_accum(Q);
  for (auto& a : visited_accum) a.store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> edges_total{0};
  std::atomic<std::uint64_t> frontier_bytes_total{0};

  // Per-level telemetry planes (same indexing as nonempty_planes). Pool
  // join waits are stored as integer nanoseconds so machines can fetch_add
  // without requiring atomic<double> RMW support.
  std::vector<std::atomic<std::uint64_t>> lvl_frontier(kMaxLevels);
  std::vector<std::atomic<std::uint64_t>> lvl_edges(kMaxLevels);
  std::vector<std::atomic<std::uint64_t>> lvl_bitops(kMaxLevels);
  std::vector<std::atomic<std::uint64_t>> lvl_ptasks(kMaxLevels);
  std::vector<std::atomic<std::uint64_t>> lvl_stealwait_ns(kMaxLevels);
  std::vector<std::atomic<std::uint64_t>> lvl_push(kMaxLevels);
  std::vector<std::atomic<std::uint64_t>> lvl_pull(kMaxLevels);
  std::vector<std::atomic<std::uint64_t>> lvl_scout(kMaxLevels);
  for (std::size_t i = 0; i < kMaxLevels; ++i) {
    lvl_frontier[i].store(0, std::memory_order_relaxed);
    lvl_edges[i].store(0, std::memory_order_relaxed);
    lvl_bitops[i].store(0, std::memory_order_relaxed);
    lvl_ptasks[i].store(0, std::memory_order_relaxed);
    lvl_stealwait_ns[i].store(0, std::memory_order_relaxed);
    lvl_push[i].store(0, std::memory_order_relaxed);
    lvl_pull[i].store(0, std::memory_order_relaxed);
    lvl_scout[i].store(0, std::memory_order_relaxed);
  }

  cluster.reset_clocks();
  cluster.reset_telemetry();
  cluster.fabric().reset_counters();
  cluster.fabric().reset_delivery_state();
  cluster.reset_protocol_state();
  WallTimer wall;

  // Crash recovery: after a rollback to checkpointed level L, clear every
  // shared accumulator the replayed levels will re-contribute to, so the
  // recovered run's results and telemetry stay bit-exact (replayed work is
  // counted exactly once).
  RunHooks hooks;
  hooks.on_restore = [&] {
    const std::size_t from_level = static_cast<std::size_t>(
        cluster.checkpoint_store().latest_common_step() / 2);
    for (std::size_t l = from_level; l < kMaxLevels; ++l) {
      for (std::size_t w = 0; w < W; ++w) {
        nonempty_planes[l * W + w].store(0, std::memory_order_relaxed);
      }
      lvl_frontier[l].store(0, std::memory_order_relaxed);
      lvl_edges[l].store(0, std::memory_order_relaxed);
      lvl_bitops[l].store(0, std::memory_order_relaxed);
      lvl_ptasks[l].store(0, std::memory_order_relaxed);
      lvl_stealwait_ns[l].store(0, std::memory_order_relaxed);
      lvl_push[l].store(0, std::memory_order_relaxed);
      lvl_pull[l].store(0, std::memory_order_relaxed);
      lvl_scout[l].store(0, std::memory_order_relaxed);
    }
    for (auto& a : visited_accum) a.store(0, std::memory_order_relaxed);
    edges_total.store(0, std::memory_order_relaxed);
    frontier_bytes_total.store(0, std::memory_order_relaxed);
  };

  cluster.run([&](MachineContext& mc) {
    const SubgraphShard& shard = shards[mc.id()];
    const VertexRange range = shard.local_range();
    const VertexId nlocal = range.size();
    // Intra-machine compute pool (nullptr = serial), sized by
    // Cluster::set_compute_threads / $CGRAPH_THREADS.
    ThreadPool* pool = mc.pool();

    // Direction heuristic inputs for this partition: static out-degrees
    // (scout counts) and the partition's own edge/vertex totals — the
    // decision is per level per partition.
    const std::span<const EdgeIndex> degrees(shard.out_degrees());
    std::uint64_t my_total_out_edges = 0;
    for (EdgeIndex d : degrees) my_total_out_edges += d;
    const bool can_pull = shard.has_in_edges();

    // Delta edge-sets overlaying the tiled base structures (DESIGN.md §15).
    // When the shard carries no uncompacted events every gate below is a
    // dead branch and the scan is byte-for-byte the frozen path.
    const DeltaEdgeSet& dout = shard.delta_out();
    const DeltaEdgeSet& din = shard.delta_in();
    const bool mutating = shard.has_mutations();

    // Discover bits are OR-ed (idempotent), so duplicated packets cannot
    // corrupt state — the filter keeps delivery exactly-once so the
    // dedup-suppression counters reconcile under fault plans.
    DedupFilter dedup;

    BatchFrontier bf(nlocal, Q);
    frontier_bytes_total.fetch_add(bf.memory_bytes(),
                                   std::memory_order_relaxed);

    std::vector<bool> done(Q, false);
    std::size_t done_count = 0;
    std::uint64_t my_edges = 0;
    Depth start_level = 0;
    bool pulling = false;

    if (auto ckpt = mc.restore_checkpoint()) {
      // Re-entering after a crash: resume from the checkpointed level
      // instead of re-seeding. The link/clock state was already rolled
      // back by the cluster, so the replay is bit-exact.
      PacketReader pr(*ckpt);
      start_level = static_cast<Depth>(pr.read<std::uint32_t>());
      done_count = static_cast<std::size_t>(pr.read<std::uint64_t>());
      for (std::size_t q = 0; q < Q; ++q) {
        done[q] = pr.read<std::uint8_t>() != 0;
      }
      my_edges = pr.read<std::uint64_t>();
      dedup.deserialize(pr);
      bf.deserialize(pr);
      pulling = pr.read<std::uint8_t>() != 0;
      if (mc.id() == 0) {
        result.total_levels = static_cast<Depth>(pr.read<std::uint32_t>());
        for (std::size_t q = 0; q < Q; ++q) {
          result.levels[q] = static_cast<Depth>(pr.read<std::uint32_t>());
          result.completion_wall_seconds[q] = pr.read<double>();
          result.completion_sim_seconds[q] = pr.read<double>();
        }
      }
      const auto ck_epoch = pr.read<std::uint64_t>();
      const auto ck_fp = pr.read<std::uint64_t>();
      CGRAPH_CHECK_MSG(ck_epoch == epoch &&
                           ck_fp == shard.mutation_fingerprint(epoch),
                       "checkpoint delta tail mismatch: a restored run "
                       "must see the snapshot the blob was cut against");
    } else {
      for (std::size_t q = 0; q < Q; ++q) {
        for (VertexId source : batch.seeds[q]) {
          CGRAPH_CHECK(source < num_vertices);
          if (range.contains(source)) {
            bf.seed(source - range.begin, q);
          }
        }
      }
    }

    // Occupancy entering the first (or restored) level, recomputed from
    // the frontier plane; later levels carry it out of the commit pass.
    // The recomputation reproduces the commit-carried values exactly, so
    // direction decisions replay bit-exact through a restore.
    FrontierOccupancy occ = bf.frontier_occupancy(degrees);

    // Remote accumulator: dense bit rows over the whole global space plus
    // a touched list, so per-destination rows are OR-combined before they
    // hit the wire (bounded by boundary vertices, not edges).
    std::vector<Word> remote_acc(static_cast<std::size_t>(num_vertices) * W,
                                 0);
    std::vector<VertexId> touched;
    Bitmap touched_bm(num_vertices);

    for (Depth level = start_level; done_count < Q; ++level) {
      // Top of level = the consistent cut: staged mailboxes are empty and
      // the next plane was just cleared, so (level, done, dedup, planes,
      // direction hysteresis) is the machine's whole recoverable state.
      mc.maybe_checkpoint([&](PacketWriter& pw) {
        pw.write<std::uint32_t>(level);
        pw.write<std::uint64_t>(done_count);
        for (std::size_t q = 0; q < Q; ++q) {
          pw.write<std::uint8_t>(done[q] ? 1 : 0);
        }
        pw.write<std::uint64_t>(my_edges);
        dedup.serialize(pw);
        bf.serialize(pw);
        pw.write<std::uint8_t>(pulling ? 1 : 0);
        if (mc.id() == 0) {
          // Machine 0 owns the per-query completion metadata. A restore on
          // this cluster keeps `result` alive by reference, but a surviving
          // replica adopting this cut starts with zeroed result arrays, so
          // pre-cut completions must travel inside the blob.
          pw.write<std::uint32_t>(result.total_levels);
          for (std::size_t q = 0; q < Q; ++q) {
            pw.write<std::uint32_t>(result.levels[q]);
            pw.write<double>(result.completion_wall_seconds[q]);
            pw.write<double>(result.completion_sim_seconds[q]);
          }
        }
        // Delta tail: pins the snapshot this blob was cut against. A
        // rollback on this cluster (or a surviving replica adopting the
        // cut) must replay against byte-identical mutation state, or the
        // replayed scans would diverge from the pre-crash ones.
        pw.write<std::uint64_t>(epoch);
        pw.write<std::uint64_t>(shard.mutation_fingerprint(epoch));
      });

      const WordRow expand = expand_mask_for_level(batch.ks, level);

      const TraversalDirection used = decide_direction(
          direction, can_pull, pulling, occ, my_total_out_edges, nlocal);
      pulling = used == TraversalDirection::kPull;
      (pulling ? lvl_pull : lvl_push)[level].fetch_add(
          1, std::memory_order_relaxed);
      lvl_scout[level].fetch_add(occ.scout_edges,
                                 std::memory_order_relaxed);

      const bool tracing = obs::tracing_enabled();
      const double scan_sim_t0 = tracing ? mc.clock().seconds() : 0.0;
      WallTimer phase_wall;

      if (tracing) {
        obs::TraceEvent ev;
        ev.phase = obs::TraceEventPhase::kDirectionChoice;
        ev.kind = obs::TraceEventKind::kInstant;
        ev.machine = static_cast<std::int32_t>(mc.id());
        ev.level = static_cast<std::int32_t>(level);
        ev.sim_seconds = scan_sim_t0;
        ev.a = pulling ? 1.0 : 0.0;
        ev.b = static_cast<double>(occ.scout_edges);
        obs::trace(ev);
      }

      // --- Telemetry: local frontier occupancy entering this level.
      std::atomic<std::uint64_t> frontier_acc{0};
      const ParallelForStats occ_stats = parallel_ranges(
          pool, nlocal, [&](std::size_t vb, std::size_t ve) {
            WordRow masked;
            std::uint64_t chunk_frontier = 0;
            for (std::size_t v = vb; v < ve; ++v) {
              if (row_masked_any(bf.frontier().row(v), expand, W, masked)) {
                ++chunk_frontier;
              }
            }
            frontier_acc.fetch_add(chunk_frontier,
                                   std::memory_order_relaxed);
          });
      const std::uint64_t level_frontier =
          frontier_acc.load(std::memory_order_relaxed);
      lvl_frontier[level].fetch_add(level_frontier,
                                    std::memory_order_relaxed);

      const EdgeSetGrid& grid = shard.out_sets();
      std::atomic<std::uint64_t> edges_acc{0};
      std::atomic<std::uint64_t> rows_acc{0};
      std::atomic<std::uint64_t> pull_examined_acc{0};
      std::mutex touched_mu;
      ParallelForStats scan_stats;
      ParallelForStats pull_stats;

      if (!pulling) {
        // --- Top-down local edge-set scan. Pool threads claim ranges of
        // flat block indices (each block is an LLC-sized EdgeSet tile, the
        // natural unit of intra-machine work). Local discoveries OR into
        // the next plane atomically with visited frozen; remote
        // discoveries OR into the dense accumulator words atomically, with
        // first-touch claimed via the touched bitmap and chunk-local touch
        // lists merged (then sorted below) so shipped packets stay
        // byte-identical to the serial scan.
        scan_stats = parallel_ranges(
            pool, grid.num_sets(), [&](std::size_t bb, std::size_t be) {
              WordRow masked;
              std::uint64_t chunk_edges = 0;
              std::uint64_t chunk_rows = 0;
              std::vector<VertexId> chunk_touched;
              for (std::size_t b = bb; b < be; ++b) {
                const EdgeSet& es = grid.set_at(b);
                const VertexRange rr = grid.row_range(grid.row_of_set(b));
                for (VertexId v = rr.begin; v < rr.end; ++v) {
                  const Word* row = bf.frontier().row(v - range.begin);
                  ++chunk_rows;
                  if (!row_masked_any(row, expand, W, masked)) continue;
                  const auto nbrs = es.neighbors(v);
                  chunk_edges += nbrs.size();
                  const bool vdel = mutating && dout.has_deletes(v);
                  for (VertexId t : nbrs) {
                    if (vdel && dout.edge_deleted(v, t, epoch)) continue;
                    if (range.contains(t)) {
                      bf.discover_atomic(t - range.begin, masked.data());
                    } else {
                      Word* acc = remote_acc.data() +
                                  static_cast<std::size_t>(t) * W;
                      for (std::size_t w = 0; w < W; ++w) {
                        if (masked[w] != 0) atomic_or_word(&acc[w], masked[w]);
                      }
                      if (touched_bm.atomic_test_and_set(t)) {
                        chunk_touched.push_back(t);
                      }
                    }
                  }
                }
              }
              edges_acc.fetch_add(chunk_edges, std::memory_order_relaxed);
              rows_acc.fetch_add(chunk_rows, std::memory_order_relaxed);
              if (!chunk_touched.empty()) {
                std::lock_guard<std::mutex> lock(touched_mu);
                touched.insert(touched.end(), chunk_touched.begin(),
                               chunk_touched.end());
              }
            });
      } else {
        // --- Bottom-up local scan over the partition's CSC: each thread
        // owns a disjoint range of unvisited rows and ANDs local parents'
        // frontier words into them (plain writes — one writer per row).
        // Parents outside the local range are skipped; their contributions
        // arrive through the cross-partition push below, exactly as in
        // push mode.
        pull_stats = parallel_ranges(
            pool, nlocal, [&](std::size_t vb, std::size_t ve) {
              std::uint64_t chunk_examined = 0;
              std::vector<VertexId> merged;
              for (std::size_t v = vb; v < ve; ++v) {
                const VertexId vg =
                    range.begin + static_cast<VertexId>(v);
                if (mutating && din.has_events(vg)) {
                  // Rows with in-side delta events pull from a merged
                  // parent list — base parents minus tombstones plus
                  // inserted parents, in the same globally sorted order
                  // a compacted rebuild would produce — so the examined
                  // count (and every downstream bit) matches the frozen
                  // equivalent graph exactly.
                  merged.clear();
                  shard.for_each_in_parent_at(
                      vg, epoch, [&](VertexId p) { merged.push_back(p); });
                  chunk_examined += bf.pull_row(
                      v, expand.data(),
                      std::span<const VertexId>(merged.data(),
                                                merged.size()),
                      range.begin, range.end);
                } else {
                  chunk_examined += bf.pull_row(
                      v, expand.data(), shard.in_csr().neighbors(v),
                      range.begin, range.end);
                }
              }
              pull_examined_acc.fetch_add(chunk_examined,
                                          std::memory_order_relaxed);
            });
        // --- Cross-partition push: boundary rows still push their masked
        // frontier bits into the remote accumulator, so the shipped
        // packets (and therefore every fault-plan decision, barrier count,
        // and checkpoint cut downstream) are byte-identical to push mode.
        // Blocks whose destination range is entirely local carry no
        // boundary edges and are skipped — that skip is the pull-side
        // saving on the local partition.
        scan_stats = parallel_ranges(
            pool, grid.num_sets(), [&](std::size_t bb, std::size_t be) {
              WordRow masked;
              std::uint64_t chunk_edges = 0;
              std::uint64_t chunk_rows = 0;
              std::vector<VertexId> chunk_touched;
              for (std::size_t b = bb; b < be; ++b) {
                const EdgeSet& es = grid.set_at(b);
                if (es.dst_range().begin >= range.begin &&
                    es.dst_range().end <= range.end) {
                  continue;  // fully local destinations: pull covered them
                }
                const VertexRange rr = grid.row_range(grid.row_of_set(b));
                for (VertexId v = rr.begin; v < rr.end; ++v) {
                  const Word* row = bf.frontier().row(v - range.begin);
                  ++chunk_rows;
                  if (!row_masked_any(row, expand, W, masked)) continue;
                  const auto nbrs = es.neighbors(v);
                  chunk_edges += nbrs.size();
                  const bool vdel = mutating && dout.has_deletes(v);
                  for (VertexId t : nbrs) {
                    if (range.contains(t)) continue;  // pull covered it
                    if (vdel && dout.edge_deleted(v, t, epoch)) continue;
                    Word* acc = remote_acc.data() +
                                static_cast<std::size_t>(t) * W;
                    for (std::size_t w = 0; w < W; ++w) {
                      if (masked[w] != 0) atomic_or_word(&acc[w], masked[w]);
                    }
                    if (touched_bm.atomic_test_and_set(t)) {
                      chunk_touched.push_back(t);
                    }
                  }
                }
              }
              edges_acc.fetch_add(chunk_edges, std::memory_order_relaxed);
              rows_acc.fetch_add(chunk_rows, std::memory_order_relaxed);
              if (!chunk_touched.empty()) {
                std::lock_guard<std::mutex> lock(touched_mu);
                touched.insert(touched.end(), chunk_touched.begin(),
                               chunk_touched.end());
              }
            });
      }
      // --- Delta extras: edges inserted after ingestion live in the
      // per-partition event sets, not the tiled base structures; feed
      // them through the *identical* local / remote discovery paths
      // (OR-discovery is idempotent and commutative, and the remote
      // accumulator is indexed by global id, so a brand-new boundary
      // destination needs no boundary-list changes). The pass is serial
      // — per-vertex event lists are tiny — which also pins a
      // deterministic extras count across thread counts. In pull mode
      // local extras were already covered by the merged-parent pull
      // rows above, so only boundary targets push here.
      if (mutating && !dout.empty()) {
        WordRow masked;
        std::uint64_t extra_edges = 0;
        for (VertexId v = range.begin; v < range.end; ++v) {
          if (!dout.has_events(v)) continue;
          const Word* row = bf.frontier().row(v - range.begin);
          if (!row_masked_any(row, expand, W, masked)) continue;
          dout.for_each_extra(v, epoch, [&](VertexId t) {
            if (range.contains(t)) {
              if (pulling) return;
              bf.discover_atomic(t - range.begin, masked.data());
              ++extra_edges;
            } else {
              Word* acc =
                  remote_acc.data() + static_cast<std::size_t>(t) * W;
              for (std::size_t w = 0; w < W; ++w) {
                if (masked[w] != 0) atomic_or_word(&acc[w], masked[w]);
              }
              if (touched_bm.atomic_test_and_set(t)) {
                touched.push_back(t);
              }
              ++extra_edges;
            }
          });
        }
        edges_acc.fetch_add(extra_edges, std::memory_order_relaxed);
      }

      const std::uint64_t pull_examined =
          pull_examined_acc.load(std::memory_order_relaxed);
      const std::uint64_t level_edges =
          edges_acc.load(std::memory_order_relaxed) + pull_examined;
      const std::uint64_t level_rows =
          rows_acc.load(std::memory_order_relaxed);
      my_edges += level_edges;
      lvl_edges[level].fetch_add(level_edges, std::memory_order_relaxed);
      // Bitmap words touched this level. Push: occupancy pre-scan +
      // per-row frontier masks + three word-ops per discovered neighbor
      // row, plus the occupancy publish scan below. Pull: the same
      // pre/publish scans, the per-row want computation, two word-ops per
      // parent examined, and the boundary rows' masks + remote ORs.
      lvl_bitops[level].fetch_add(
          pulling ? (static_cast<std::uint64_t>(nlocal) * 3 + level_rows +
                     pull_examined * 2 +
                     (level_edges - pull_examined) * 3) *
                        W
                  : (static_cast<std::uint64_t>(nlocal) * 2 + level_rows +
                     level_edges * 3) *
                        W,
          std::memory_order_relaxed);
      mc.charge_compute(level_edges, /*vertices=*/0);

      if (tracing) {
        // Scan span: occupancy pre-scan + edge scan + compute charge.
        // Sim duration is exactly this level's charged compute time.
        obs::TraceEvent ev;
        ev.phase = obs::TraceEventPhase::kSuperstepScan;
        ev.kind = obs::TraceEventKind::kSpan;
        ev.machine = static_cast<std::int32_t>(mc.id());
        ev.level = static_cast<std::int32_t>(level);
        ev.sim_seconds = scan_sim_t0;
        ev.sim_dur_seconds = mc.clock().seconds() - scan_sim_t0;
        ev.wall_dur_ns = static_cast<std::uint64_t>(phase_wall.nanos());
        ev.a = static_cast<double>(level_edges);
        ev.b = static_cast<double>(level_frontier);
        obs::trace(ev);
      }

      // --- Ship combined remote discoveries, grouped by owner.
      std::sort(touched.begin(), touched.end());
      std::size_t i = 0;
      while (i < touched.size()) {
        const PartitionId owner = partition.owner(touched[i]);
        const VertexRange orange = partition.range(owner);
        PacketWriter pw;
        std::uint64_t count = 0;
        const std::size_t start = i;
        while (i < touched.size() && orange.contains(touched[i])) ++i;
        count = i - start;
        pw.write<std::uint64_t>(count);
        for (std::size_t j = start; j < i; ++j) {
          const VertexId t = touched[j];
          pw.write<VertexId>(t);
          const Word* acc =
              remote_acc.data() + static_cast<std::size_t>(t) * W;
          for (std::size_t w = 0; w < W; ++w) pw.write<Word>(acc[w]);
        }
        mc.send(owner, kRemoteDiscoverTag, pw.take());
      }
      // Clear accumulator slots we used.
      for (VertexId t : touched) {
        Word* acc = remote_acc.data() + static_cast<std::size_t>(t) * W;
        for (std::size_t w = 0; w < W; ++w) acc[w] = 0;
        touched_bm.clear_bit(t);
      }
      touched.clear();

      mc.barrier();  // ---- exchange boundary discoveries ----

      const double commit_sim_t0 = tracing ? mc.clock().seconds() : 0.0;
      phase_wall.reset();
      std::uint64_t staged_envelopes = 0;

      WordRow incoming_bits;
      for (Envelope& env : mc.recv_staged()) {
        CGRAPH_CHECK(env.tag == kRemoteDiscoverTag);
        ++staged_envelopes;
        if (!dedup.accept(env.from, env.seq)) {
          mc.cluster().fabric().record_dedup_suppressed(mc.id());
          continue;
        }
        PacketReader pr(env.payload);
        const auto count = pr.read<std::uint64_t>();
        for (std::uint64_t j = 0; j < count; ++j) {
          const auto t = pr.read<VertexId>();
          CGRAPH_DCHECK(range.contains(t));
          for (std::size_t w = 0; w < W; ++w)
            incoming_bits[w] = pr.read<Word>();
          bf.discover_atomic(t - range.begin, incoming_bits.data());
        }
      }

      // --- Commit the level (visited |= next, once), publish local
      // next-frontier occupancy for this level, and carry the next
      // level's density/scout inputs out of the same pass.
      WordRow nonempty{};
      FrontierOccupancy occ_next;
      std::mutex nonempty_mu;
      const ParallelForStats commit_stats = parallel_ranges(
          pool, nlocal, [&](std::size_t vb, std::size_t ve) {
            WordRow chunk_nonempty{};
            const FrontierOccupancy chunk_occ = bf.commit_rows(
                vb, ve, chunk_nonempty.data(), degrees, nullptr);
            std::lock_guard<std::mutex> lock(nonempty_mu);
            for (std::size_t w = 0; w < W; ++w) {
              nonempty[w] |= chunk_nonempty[w];
            }
            occ_next += chunk_occ;
          });
      occ = occ_next;
      for (std::size_t w = 0; w < W; ++w) {
        if (nonempty[w] != 0) {
          nonempty_planes[static_cast<std::size_t>(level) * W + w]
              .fetch_or(nonempty[w], std::memory_order_acq_rel);
        }
      }
      lvl_ptasks[level].fetch_add(
          occ_stats.tasks + scan_stats.tasks + pull_stats.tasks +
              commit_stats.tasks,
          std::memory_order_relaxed);
      lvl_stealwait_ns[level].fetch_add(
          static_cast<std::uint64_t>(
              (occ_stats.join_wait_seconds + scan_stats.join_wait_seconds +
               pull_stats.join_wait_seconds +
               commit_stats.join_wait_seconds) *
              1e9),
          std::memory_order_relaxed);
      bf.advance(nonempty.data());  // O(words): reuse the commit-phase mask

      if (tracing) {
        // Commit span: staged recv + dedup + visited fold + occupancy
        // publish. No sim cost is charged here, so the sim duration is
        // usually 0 — the wall duration carries the host-side cost.
        obs::TraceEvent ev;
        ev.phase = obs::TraceEventPhase::kSuperstepCommit;
        ev.kind = obs::TraceEventKind::kSpan;
        ev.machine = static_cast<std::int32_t>(mc.id());
        ev.level = static_cast<std::int32_t>(level);
        ev.sim_seconds = commit_sim_t0;
        ev.sim_dur_seconds = mc.clock().seconds() - commit_sim_t0;
        ev.wall_dur_ns = static_cast<std::uint64_t>(phase_wall.nanos());
        ev.a = static_cast<double>(staged_envelopes);
        obs::trace(ev);
      }
      mc.barrier();  // ---- level close: occupancy now globally visible ----

      // --- Globally consistent completion decisions.
      WordRow global_nonempty;
      for (std::size_t w = 0; w < W; ++w) {
        global_nonempty[w] =
            nonempty_planes[static_cast<std::size_t>(level) * W + w].load(
                std::memory_order_acquire);
      }
      for (std::size_t q = 0; q < Q; ++q) {
        if (done[q]) continue;
        const bool empty_next =
            ((global_nonempty[q / kWordBits] >> (q % kWordBits)) & 1u) == 0;
        const bool k_exhausted =
            static_cast<Depth>(level + 1) >= batch.ks[q];
        if (empty_next || k_exhausted) {
          done[q] = true;
          ++done_count;
          if (mc.id() == 0) {
            result.levels[q] = static_cast<Depth>(level + 1);
            result.completion_wall_seconds[q] = wall.seconds();
            result.completion_sim_seconds[q] = mc.clock().seconds();
          }
        }
      }
      if (mc.id() == 0) {
        result.total_levels = static_cast<Depth>(level + 1);
      }
      CGRAPH_CHECK_MSG(static_cast<std::size_t>(level) + 1 < kMaxLevels,
                       "traversal exceeded level cap");
    }

    // --- Per-query visited counts (seeds excluded at the end).
    parallel_ranges(pool, nlocal, [&](std::size_t vb, std::size_t ve) {
      std::vector<std::uint64_t> counts(Q, 0);
      for (std::size_t v = vb; v < ve; ++v) {
        const Word* row = bf.visited().row(v);
        for (std::size_t w = 0; w < W; ++w) {
          for_each_set_bit(row[w], w * kWordBits,
                           [&](std::size_t q) { ++counts[q]; });
        }
      }
      for (std::size_t q = 0; q < Q; ++q) {
        if (counts[q] != 0) {
          visited_accum[q].fetch_add(counts[q], std::memory_order_relaxed);
        }
      }
    });
    if (visited_out != nullptr) {
      // Machines own disjoint global row ranges, so the plane assembles
      // without synchronization; a crashed machine only reaches this point
      // on its final (successful) attempt.
      for (std::size_t v = 0; v < static_cast<std::size_t>(nlocal); ++v) {
        const Word* src = bf.visited().row(v);
        Word* dst = visited_out->row(range.begin + v);
        for (std::size_t w = 0; w < W; ++w) dst[w] = src[w];
      }
    }
    edges_total.fetch_add(my_edges, std::memory_order_relaxed);
  }, hooks);

  for (std::size_t q = 0; q < Q; ++q) {
    const std::uint64_t v = visited_accum[q].load(std::memory_order_relaxed);
    const std::uint64_t seeds = batch.seeds[q].size();
    result.visited[q] = v > seeds ? v - seeds : 0;
  }
  result.wall_seconds = wall.seconds();
  result.sim_seconds = cluster.sim_seconds();
  result.edges_scanned = edges_total.load(std::memory_order_relaxed);
  result.frontier_bytes =
      frontier_bytes_total.load(std::memory_order_relaxed);

  // Assemble the per-level trace; each level closed with two barriers
  // (exchange + level close), so its barrier wait is the sum of the
  // matching pair of superstep telemetry records.
  const auto& steps = cluster.telemetry().supersteps;
  result.level_trace.reserve(result.total_levels);
  for (std::size_t l = 0; l < result.total_levels; ++l) {
    obs::LevelTrace lt;
    lt.level = static_cast<std::uint32_t>(l);
    lt.frontier_vertices = lvl_frontier[l].load(std::memory_order_relaxed);
    lt.edges_scanned = lvl_edges[l].load(std::memory_order_relaxed);
    lt.bit_ops = lvl_bitops[l].load(std::memory_order_relaxed);
    lt.parallel_tasks = lvl_ptasks[l].load(std::memory_order_relaxed);
    lt.steal_wait_seconds =
        static_cast<double>(
            lvl_stealwait_ns[l].load(std::memory_order_relaxed)) *
        1e-9;
    lt.push_machines = static_cast<std::uint32_t>(
        lvl_push[l].load(std::memory_order_relaxed));
    lt.pull_machines = static_cast<std::uint32_t>(
        lvl_pull[l].load(std::memory_order_relaxed));
    lt.scout_edges = lvl_scout[l].load(std::memory_order_relaxed);
    for (std::size_t s = 2 * l; s < 2 * l + 2 && s < steps.size(); ++s) {
      lt.barrier_wait_sim_seconds += steps[s].barrier_wait_sim_seconds;
    }
    result.level_trace.push_back(lt);
  }
  return result;
}

}  // namespace

MsBfsBatchResult msbfs_batch(const Graph& graph,
                             std::span<const KHopQuery> batch,
                             std::size_t threads,
                             const DirectionOptions& direction,
                             QueryBitRows* visited_out) {
  return msbfs_batch_core(graph, to_seeded(batch), threads, direction,
                          visited_out);
}

MsBfsBatchResult msbfs_batch(const Graph& graph,
                             std::span<const MultiKHopQuery> batch,
                             std::size_t threads,
                             const DirectionOptions& direction,
                             QueryBitRows* visited_out) {
  return msbfs_batch_core(graph, to_seeded(batch), threads, direction,
                          visited_out);
}

MsBfsBatchResult run_distributed_msbfs(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, std::span<const KHopQuery> batch,
    const DirectionOptions& direction, QueryBitRows* visited_out,
    Epoch snapshot_epoch) {
  return run_distributed_msbfs_core(cluster, shards, partition,
                                    to_seeded(batch), direction,
                                    visited_out, snapshot_epoch);
}

MsBfsBatchResult run_distributed_msbfs(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, std::span<const MultiKHopQuery> batch,
    const DirectionOptions& direction, QueryBitRows* visited_out,
    Epoch snapshot_epoch) {
  return run_distributed_msbfs_core(cluster, shards, partition,
                                    to_seeded(batch), direction,
                                    visited_out, snapshot_epoch);
}

}  // namespace cgraph
