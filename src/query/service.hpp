// Online admission front end for the concurrent-query scheduler.
//
// The paper's §3.3 scenario is *concurrent* queries, but the offline
// harness (run_concurrent_queries) assumes a closed world: every query
// present at t=0, batches back-to-back. This layer serves an *open-loop*
// arrival stream (gen/arrivals.hpp) the way a production front end would:
//
//   * bounded admission queue with backpressure — when the queries waiting
//     to start execution reach queue_cap, new arrivals are shed;
//   * deadline-based load shedding — an admitted query whose deadline has
//     already passed when its batch reaches the head of the line is
//     dropped (expired) instead of burning cluster time;
//   * adaptive MS-BFS batch formation — a batch seals when batch_width
//     admitted queries are pending OR the oldest has lingered
//     linger_seconds, whichever first; FIFO or degree-sorted within the
//     admitted window;
//   * pipelined execution — batches execute on a worker thread through the
//     shared BatchExecutor core while admission keeps consuming arrivals.
//
// Determinism: every admission / shedding / sealing decision is a pure
// function of the arrival timestamps and the (deterministic) simulated
// batch makespans, never of host wall-clock or thread interleaving, so a
// pipelined run and a single-threaded run produce identical outcomes and
// the same admitted batch is bit-exact versus the offline scheduler
// (DESIGN.md §10).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "index/reach_index.hpp"
#include "query/scheduler.hpp"

namespace cgraph {

class ReplicaRouter;

/// Why a submitted query left the service.
enum class ServiceOutcome : std::uint8_t {
  /// Rejected at admission: the bounded queue was full.
  kShed,
  /// Admitted, but its deadline passed before its batch started executing.
  kExpired,
  /// Executed and answered.
  kCompleted,
  /// Point query answered conclusively by the reachability index at
  /// admission — bypassed the queue, consumed no batch slot (DESIGN.md
  /// §13).
  kIndexAnswered,
};

[[nodiscard]] const char* to_string(ServiceOutcome outcome);

struct ServiceOptions {
  /// Batch width, policy, engine, memory model, threads, metrics registry.
  SchedulerOptions scheduler;
  /// Bound on queries admitted but not yet executing (the pending window
  /// plus sealed-but-unstarted batches). 0 = unbounded, nothing is shed.
  std::size_t queue_cap = 1024;
  /// Deadline from arrival to execution start; an admitted query whose
  /// wait exceeds this when its batch starts is dropped as expired.
  /// 0 disables expiry.
  double deadline_seconds = 0;
  /// Max linger: a partial batch seals once its oldest admitted query has
  /// waited this long. <= 0 seals every batch at first arrival.
  double linger_seconds = 0.010;
  /// Overlap admission with execution on a worker thread (the production
  /// shape and the TSAN target); false runs both phases on the caller
  /// thread — results are identical either way.
  bool pipeline = true;
  /// Reachability index consulted for point queries (target set) before
  /// admission. Conclusive probes are answered in place (kIndexAnswered);
  /// inconclusive ones fall back to the traversal path, and their answer
  /// is resolved from the batch's visited plane (bit-parallel engine
  /// only). nullptr disables the fast path entirely.
  const ReachIndex* index = nullptr;
  /// Replicated serving (DESIGN.md §14): when set, batches are routed
  /// through the router's replicas instead of the single `cluster`
  /// argument, and a replica death mid-batch fails the admitted batch over
  /// to a survivor (adopting the dead replica's last complete checkpoint
  /// cut when the batch membership is unchanged). nullptr = single-cluster
  /// service, exactly the pre-replication behavior.
  ReplicaRouter* router = nullptr;
  /// Per-query failover budget: re-dispatches to another replica allowed
  /// per admitted query before it is counted shed. 0 = one less than the
  /// router's replica count (every query may survive any single loss).
  std::uint32_t failover_budget = 0;
};

struct ServiceQueryRecord {
  static constexpr std::size_t kNoBatch = ~std::size_t{0};
  QueryId id = 0;
  ServiceOutcome outcome = ServiceOutcome::kShed;
  std::size_t batch_index = kNoBatch;  // kNoBatch for shed queries
  double arrival_sim_seconds = 0;
  /// Arrival -> batch execution start (admitted queries; for expired ones
  /// this is the wait at which the deadline verdict was passed).
  double queue_wait_sim_seconds = 0;
  /// Batch start -> this query answered (completed only).
  double execute_sim_seconds = 0;
  /// End-to-end: arrival -> answered (completed only).
  double response_sim_seconds = 0;
  std::uint64_t visited = 0;
  Depth levels = 0;
  /// Point-query bookkeeping (kInvalidVertex target = aggregate query).
  VertexId target = kInvalidVertex;
  /// Verdict of the admission-time index probe (kUnknown when no index
  /// was configured, the query was not a point query, or the probe was
  /// inconclusive and the query fell back to traversal).
  IndexVerdict index_verdict = IndexVerdict::kUnknown;
  /// Resolved point answer: 1 reachable, 0 unreachable, -1 unresolved
  /// (aggregate query, or a fallback under the non-bit-parallel engine,
  /// which has no visited plane to read the target bit from).
  std::int8_t reachable = -1;
  /// Times this query was re-dispatched to another replica after a replica
  /// death. A query dropped at failover time (deadline passed or budget
  /// exhausted) ends kShed with batch_index set — distinguishing a
  /// failover shed from an admission shed (batch_index == kNoBatch).
  std::uint32_t failover_attempts = 0;
};

struct ServiceBatchRecord {
  std::size_t index = 0;
  double seal_sim_seconds = 0;   // when the batch stopped admitting
  double start_sim_seconds = 0;  // sealed AND the server became free
  double makespan_sim_seconds = 0;
  std::size_t admitted = 0;  // queries sealed into the batch
  std::size_t expired = 0;   // dropped at start for missed deadlines
  /// Ids actually executed, in execution (policy) order — the admitted
  /// set the bit-exactness guarantee speaks about.
  std::vector<QueryId> executed;
  /// Replica that completed the batch (kNoReplica when the service runs
  /// without a router, or every member was dropped before execution).
  static constexpr std::size_t kNoReplica = ~std::size_t{0};
  std::size_t replica = kNoReplica;
  /// Replica deaths absorbed while this batch was in flight.
  std::size_t failovers = 0;
  /// Members dropped at failover time (deadline/budget), counted shed.
  std::size_t failover_shed = 0;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t completed = 0;
  /// Point queries answered by the index bypass lane (cgraph_index_hit).
  std::uint64_t index_answered = 0;
  /// Point queries whose index probe was inconclusive (cgraph_index_miss);
  /// they proceeded into normal admission.
  std::uint64_t index_misses = 0;
  /// Point queries resolved by the traversal engine after an inconclusive
  /// probe (cgraph_index_fallback) — a subset of `completed`.
  std::uint64_t index_fallbacks = 0;
  std::uint64_t batches = 0;
  std::size_t peak_queue_depth = 0;
  /// Replica deaths absorbed mid-batch (cgraph_replica_failover_total).
  std::uint64_t failovers = 0;
  /// Queries dropped at failover re-dispatch because their deadline had
  /// passed or their failover budget was exhausted. A subset of `shed`:
  /// a deadline-expired query is never re-executed on another replica.
  std::uint64_t failover_shed = 0;

  /// The counter identities the service must keep:
  ///   submitted = admitted + shed + index_answered;
  ///   admitted  = completed + expired;
  ///   failover_shed <= shed.
  [[nodiscard]] bool identities_hold() const {
    return submitted == admitted + shed + index_answered &&
           admitted == completed + expired && failover_shed <= shed;
  }
};

struct ServiceRunResult {
  std::vector<ServiceQueryRecord> queries;  // submission order
  std::vector<ServiceBatchRecord> batches;
  ServiceStats stats;
  /// Last batch finish (or last arrival when nothing executed).
  double makespan_sim_seconds = 0;
  std::uint64_t peak_memory_bytes = 0;
  /// Same structured trace the offline scheduler emits (executed batches
  /// only); already published into the configured metrics registry along
  /// with the cgraph_service_* series.
  obs::RunTelemetry telemetry;

  /// Exact end-to-end latency percentile over answered queries (completed
  /// + index-answered), p in (0, 100] (the
  /// cgraph_service_response_seconds histogram is the scrape-able
  /// approximation). 0 when nothing was answered.
  [[nodiscard]] double response_percentile(double p) const;
};

/// Serve an open-loop arrival stream (nondecreasing timestamps) against
/// the sharded graph. Crash/fault behavior follows whatever FaultPlan /
/// RecoveryOptions the cluster carries — answers stay exact (PR 4).
ServiceRunResult run_query_service(Cluster& cluster,
                                   const std::vector<SubgraphShard>& shards,
                                   const RangePartition& partition,
                                   std::span<const TimedQuery> arrivals,
                                   const ServiceOptions& opts = {});

}  // namespace cgraph
