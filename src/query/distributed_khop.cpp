#include "query/distributed_khop.hpp"

#include <algorithm>
#include <atomic>

#include "net/serialize.hpp"
#include "obs/event_tracer.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cgraph {
namespace {

constexpr std::uint32_t kVisitTag = 0x56495354;  // 'VIST'
constexpr std::size_t kMaxLevels = 256;

/// Wire record: "visit vertex `target` for query `query` at depth `depth`"
/// — the sendTo(t, t.hops) of paper Listing 2.
struct VisitTask {
  VertexId target;
  QueryId query;
  Depth depth;
};

}  // namespace

MsBfsBatchResult run_distributed_khop(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, std::span<const KHopQuery> batch,
    Epoch snapshot_epoch) {
  const std::size_t Q = batch.size();
  CGRAPH_CHECK(Q > 0);
  CGRAPH_CHECK(shards.size() == cluster.num_machines());
  // Pin the snapshot the whole batch reads (DESIGN.md §15); see
  // run_distributed_msbfs for the isolation argument.
  const Epoch epoch = snapshot_epoch == kEpochHead
                          ? current_epoch(std::span<const SubgraphShard>(
                                shards.data(), shards.size()))
                          : snapshot_epoch;

  MsBfsBatchResult result;
  result.visited.assign(Q, 0);
  result.levels.assign(Q, 0);
  result.completion_wall_seconds.assign(Q, 0.0);
  result.completion_sim_seconds.assign(Q, 0.0);

  // Shared per-level activity planes (bit q = query q's next frontier is
  // non-empty somewhere), same reduction scheme as the bit-parallel engine.
  const std::size_t W = words_for_bits(Q);
  CGRAPH_CHECK_MSG(W <= QueryBitRows::kMaxBatchWords,
                   "batch exceeds activity-plane capacity");
  std::vector<std::atomic<Word>> nonempty_planes(kMaxLevels * W);
  for (auto& a : nonempty_planes) a.store(0, std::memory_order_relaxed);
  std::vector<std::atomic<std::uint64_t>> visited_accum(Q);
  for (auto& a : visited_accum) a.store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> edges_total{0};
  std::atomic<std::uint64_t> state_bytes_total{0};

  // Per-level telemetry planes (frontier = queued tasks, bit_ops = visited
  // bitmap test-and-set operations).
  std::vector<std::atomic<std::uint64_t>> lvl_frontier(kMaxLevels);
  std::vector<std::atomic<std::uint64_t>> lvl_edges(kMaxLevels);
  std::vector<std::atomic<std::uint64_t>> lvl_bitops(kMaxLevels);
  std::vector<std::atomic<std::uint64_t>> lvl_ptasks(kMaxLevels);
  std::vector<std::atomic<std::uint64_t>> lvl_stealwait_ns(kMaxLevels);
  for (std::size_t i = 0; i < kMaxLevels; ++i) {
    lvl_frontier[i].store(0, std::memory_order_relaxed);
    lvl_edges[i].store(0, std::memory_order_relaxed);
    lvl_bitops[i].store(0, std::memory_order_relaxed);
    lvl_ptasks[i].store(0, std::memory_order_relaxed);
    lvl_stealwait_ns[i].store(0, std::memory_order_relaxed);
  }

  cluster.reset_clocks();
  cluster.reset_telemetry();
  cluster.fabric().reset_counters();
  cluster.fabric().reset_delivery_state();
  cluster.reset_protocol_state();
  WallTimer wall;

  // Crash recovery: after a rollback to checkpointed level L, clear every
  // shared accumulator the replayed levels will re-contribute to, so the
  // recovered run's results and telemetry stay bit-exact (replayed work is
  // counted exactly once).
  RunHooks hooks;
  hooks.on_restore = [&] {
    const std::size_t from_level = static_cast<std::size_t>(
        cluster.checkpoint_store().latest_common_step() / 2);
    for (std::size_t l = from_level; l < kMaxLevels; ++l) {
      for (std::size_t w = 0; w < W; ++w) {
        nonempty_planes[l * W + w].store(0, std::memory_order_relaxed);
      }
      lvl_frontier[l].store(0, std::memory_order_relaxed);
      lvl_edges[l].store(0, std::memory_order_relaxed);
      lvl_bitops[l].store(0, std::memory_order_relaxed);
      lvl_ptasks[l].store(0, std::memory_order_relaxed);
      lvl_stealwait_ns[l].store(0, std::memory_order_relaxed);
    }
    for (auto& a : visited_accum) a.store(0, std::memory_order_relaxed);
    edges_total.store(0, std::memory_order_relaxed);
    state_bytes_total.store(0, std::memory_order_relaxed);
  };

  cluster.run([&](MachineContext& mc) {
    const SubgraphShard& shard = shards[mc.id()];
    const VertexRange range = shard.local_range();
    const VertexId nlocal = range.size();
    // Intra-machine compute pool (nullptr = serial), sized by
    // Cluster::set_compute_threads / $CGRAPH_THREADS.
    ThreadPool* pool = mc.pool();

    // Exactly-once application of exchanged task packets: the visited
    // bitmap makes task application idempotent anyway, but a duplicated
    // packet must not re-queue vertices into `next`, so packets are
    // filtered by (sender, seq) before decoding.
    DedupFilter dedup;

    // Per-query state: visited bitmap over local vertices and the current
    // level's task queue (local vertex ids, global numbering).
    std::vector<Bitmap> visited(Q);
    std::vector<std::vector<VertexId>> frontier(Q);
    std::vector<std::vector<VertexId>> next(Q);
    for (std::size_t q = 0; q < Q; ++q) visited[q].resize(nlocal);

    std::vector<bool> done(Q, false);
    std::size_t done_count = 0;
    std::uint64_t my_edges = 0;
    Depth start_level = 0;

    if (auto ckpt = mc.restore_checkpoint()) {
      // Re-entering after a crash: resume from the checkpointed level. The
      // link/clock state was already rolled back by the cluster, so the
      // replay is bit-exact.
      PacketReader pr(*ckpt);
      start_level = static_cast<Depth>(pr.read<std::uint32_t>());
      done_count = static_cast<std::size_t>(pr.read<std::uint64_t>());
      for (std::size_t q = 0; q < Q; ++q) {
        done[q] = pr.read<std::uint8_t>() != 0;
      }
      my_edges = pr.read<std::uint64_t>();
      dedup.deserialize(pr);
      for (std::size_t q = 0; q < Q; ++q) {
        const auto words = pr.read_vector<Word>();
        CGRAPH_CHECK(words.size() == visited[q].size_words());
        std::copy(words.begin(), words.end(), visited[q].data());
        frontier[q] = pr.read_vector<VertexId>();
      }
      const auto ck_epoch = pr.read<std::uint64_t>();
      const auto ck_fp = pr.read<std::uint64_t>();
      CGRAPH_CHECK_MSG(ck_epoch == epoch &&
                           ck_fp == shard.mutation_fingerprint(epoch),
                       "checkpoint delta tail mismatch: a restored run "
                       "must see the snapshot the blob was cut against");
    } else {
      for (std::size_t q = 0; q < Q; ++q) {
        if (range.contains(batch[q].source)) {
          visited[q].set(batch[q].source - range.begin);
          frontier[q].push_back(batch[q].source);
        }
      }
    }
    state_bytes_total.fetch_add(
        Q * (words_for_bits(nlocal) * sizeof(Word)),
        std::memory_order_relaxed);

    // Outgoing remote tasks, bucketed per (query, owner machine) so pool
    // threads never share a bucket; merged per owner in query order below.
    const std::size_t M = mc.num_machines();
    std::vector<std::vector<VisitTask>> outbox(Q * M);
    std::vector<VisitTask> merged;

    for (Depth level = start_level; done_count < Q; ++level) {
      // Top of level = the consistent cut: staged mailboxes are empty,
      // outboxes drained and `next` queues just swapped away, so (level,
      // done, dedup, visited, frontier) is the machine's whole recoverable
      // state.
      mc.maybe_checkpoint([&](PacketWriter& pw) {
        pw.write<std::uint32_t>(level);
        pw.write<std::uint64_t>(done_count);
        for (std::size_t q = 0; q < Q; ++q) {
          pw.write<std::uint8_t>(done[q] ? 1 : 0);
        }
        pw.write<std::uint64_t>(my_edges);
        dedup.serialize(pw);
        for (std::size_t q = 0; q < Q; ++q) {
          pw.write_span<Word>({visited[q].data(), visited[q].size_words()});
          pw.write_span<VertexId>(
              {frontier[q].data(), frontier[q].size()});
        }
        // Delta tail: the snapshot this blob was cut against (see the
        // bit-parallel engine's checkpoint for the adoption argument).
        pw.write<std::uint64_t>(epoch);
        pw.write<std::uint64_t>(shard.mutation_fingerprint(epoch));
      });
      const bool tracing = obs::tracing_enabled();
      const double scan_sim_t0 = tracing ? mc.clock().seconds() : 0.0;
      WallTimer phase_wall;
      // --- Expand every active query's local frontier (Listing 2 body).
      // Pool threads claim ranges of queries: all of query q's state
      // (visited[q], next[q], its outbox row) is touched by exactly one
      // thread, and the merged per-destination packets below are assembled
      // in query order, so queue contents and wire bytes are identical to
      // the serial scatter for any thread count.
      std::atomic<std::uint64_t> edges_acc{0};
      std::atomic<std::uint64_t> tasks_acc{0};
      std::atomic<std::uint64_t> tnset_acc{0};
      const ParallelForStats scatter_stats = parallel_ranges(
          pool, Q, [&](std::size_t qb, std::size_t qe) {
            std::uint64_t chunk_edges = 0;
            std::uint64_t chunk_tasks = 0;
            std::uint64_t chunk_tnset = 0;
            for (std::size_t q = qb; q < qe; ++q) {
              if (batch[q].k <= level) continue;  // s.hops == k: stop
              chunk_tasks += frontier[q].size();
              for (VertexId s : frontier[q]) {
                // Merged view: tiled base edges minus tombstones plus
                // delta inserts at the pinned epoch. Falls through to the
                // plain tile scan for vertices with no events.
                shard.for_each_out_neighbor_at(s, epoch, [&](VertexId t) {
                  ++chunk_edges;
                  if (range.contains(t)) {
                    ++chunk_tnset;
                    if (visited[q].atomic_test_and_set(t - range.begin)) {
                      next[q].push_back(t);  // Q.push(t)
                    }
                  } else {
                    // sendTo(t, t.hops): dedup at the receiver's visited
                    // set.
                    outbox[q * M + partition.owner(t)].push_back(
                        {t, static_cast<QueryId>(q),
                         static_cast<Depth>(level + 1)});
                  }
                });
              }
            }
            edges_acc.fetch_add(chunk_edges, std::memory_order_relaxed);
            tasks_acc.fetch_add(chunk_tasks, std::memory_order_relaxed);
            tnset_acc.fetch_add(chunk_tnset, std::memory_order_relaxed);
          });
      const std::uint64_t level_edges =
          edges_acc.load(std::memory_order_relaxed);
      const std::uint64_t level_tasks =
          tasks_acc.load(std::memory_order_relaxed);
      std::uint64_t level_tnset = tnset_acc.load(std::memory_order_relaxed);
      my_edges += level_edges;
      mc.charge_compute(level_edges);
      if (tracing) {
        obs::TraceEvent ev;
        ev.phase = obs::TraceEventPhase::kSuperstepScan;
        ev.kind = obs::TraceEventKind::kSpan;
        ev.machine = static_cast<std::int32_t>(mc.id());
        ev.level = static_cast<std::int32_t>(level);
        ev.sim_seconds = scan_sim_t0;
        ev.sim_dur_seconds = mc.clock().seconds() - scan_sim_t0;
        ev.wall_dur_ns = phase_wall.nanos();
        ev.a = static_cast<double>(level_edges);
        ev.b = static_cast<double>(level_tasks);
        obs::trace(ev);
      }

      for (PartitionId to = 0; to < M; ++to) {
        merged.clear();
        for (std::size_t q = 0; q < Q; ++q) {
          std::vector<VisitTask>& bucket = outbox[q * M + to];
          merged.insert(merged.end(), bucket.begin(), bucket.end());
          bucket.clear();
        }
        if (merged.empty()) continue;
        PacketWriter pw;
        pw.write_span(std::span<const VisitTask>(merged));
        mc.send(to, kVisitTag, pw.take());
      }
      mc.barrier();  // ---- exchange remote task buffers ----

      const double commit_sim_t0 = tracing ? mc.clock().seconds() : 0.0;
      phase_wall.reset();
      std::uint64_t staged_envelopes = 0;
      for (Envelope& env : mc.recv_staged()) {
        ++staged_envelopes;
        CGRAPH_CHECK(env.tag == kVisitTag);
        if (!dedup.accept(env.from, env.seq)) {
          mc.cluster().fabric().record_dedup_suppressed(mc.id());
          continue;
        }
        PacketReader pr(env.payload);
        for (const VisitTask& task : pr.read_vector<VisitTask>()) {
          CGRAPH_DCHECK(range.contains(task.target));
          ++level_tnset;
          if (visited[task.query].atomic_test_and_set(task.target -
                                                      range.begin)) {
            next[task.query].push_back(task.target);
          }
        }
      }
      lvl_frontier[static_cast<std::size_t>(level)].fetch_add(
          level_tasks, std::memory_order_relaxed);
      lvl_edges[static_cast<std::size_t>(level)].fetch_add(
          level_edges, std::memory_order_relaxed);
      lvl_bitops[static_cast<std::size_t>(level)].fetch_add(
          level_tnset, std::memory_order_relaxed);
      lvl_ptasks[static_cast<std::size_t>(level)].fetch_add(
          scatter_stats.tasks, std::memory_order_relaxed);
      lvl_stealwait_ns[static_cast<std::size_t>(level)].fetch_add(
          static_cast<std::uint64_t>(scatter_stats.join_wait_seconds * 1e9),
          std::memory_order_relaxed);

      // --- Publish activity, advance queues.
      {
        Word local_nonempty[QueryBitRows::kMaxBatchWords] = {};
        for (std::size_t q = 0; q < Q; ++q) {
          if (!next[q].empty()) {
            local_nonempty[q / kWordBits] |= Word{1} << (q % kWordBits);
          }
        }
        for (std::size_t w = 0; w < W; ++w) {
          if (local_nonempty[w] != 0) {
            nonempty_planes[static_cast<std::size_t>(level) * W + w]
                .fetch_or(local_nonempty[w], std::memory_order_acq_rel);
          }
        }
      }
      for (std::size_t q = 0; q < Q; ++q) {
        frontier[q].swap(next[q]);  // Q.pop of the drained level
        next[q].clear();
      }
      if (tracing) {
        obs::TraceEvent ev;
        ev.phase = obs::TraceEventPhase::kSuperstepCommit;
        ev.kind = obs::TraceEventKind::kSpan;
        ev.machine = static_cast<std::int32_t>(mc.id());
        ev.level = static_cast<std::int32_t>(level);
        ev.sim_seconds = commit_sim_t0;
        ev.sim_dur_seconds = mc.clock().seconds() - commit_sim_t0;
        ev.wall_dur_ns = phase_wall.nanos();
        ev.a = static_cast<double>(staged_envelopes);
        obs::trace(ev);
      }
      mc.barrier();  // ---- level close ----

      for (std::size_t q = 0; q < Q; ++q) {
        if (done[q]) continue;
        const Word plane =
            nonempty_planes[static_cast<std::size_t>(level) * W +
                            q / kWordBits]
                .load(std::memory_order_acquire);
        const bool empty_next = ((plane >> (q % kWordBits)) & 1u) == 0;
        const bool k_exhausted = static_cast<Depth>(level + 1) >= batch[q].k;
        if (empty_next || k_exhausted) {
          done[q] = true;
          ++done_count;
          if (mc.id() == 0) {
            result.levels[q] = static_cast<Depth>(level + 1);
            result.completion_wall_seconds[q] = wall.seconds();
            result.completion_sim_seconds[q] = mc.clock().seconds();
          }
        }
      }
      if (mc.id() == 0) result.total_levels = static_cast<Depth>(level + 1);
      CGRAPH_CHECK_MSG(static_cast<std::size_t>(level) + 1 < kMaxLevels,
                       "traversal exceeded level cap");
    }

    for (std::size_t q = 0; q < Q; ++q) {
      visited_accum[q].fetch_add(visited[q].count(),
                                 std::memory_order_relaxed);
    }
    edges_total.fetch_add(my_edges, std::memory_order_relaxed);
  }, hooks);

  for (std::size_t q = 0; q < Q; ++q) {
    const std::uint64_t v = visited_accum[q].load(std::memory_order_relaxed);
    result.visited[q] = v > 0 ? v - 1 : 0;
  }
  result.wall_seconds = wall.seconds();
  result.sim_seconds = cluster.sim_seconds();
  result.edges_scanned = edges_total.load(std::memory_order_relaxed);
  result.frontier_bytes = state_bytes_total.load(std::memory_order_relaxed);

  // Each traversal level runs two barriers (task exchange + level close), so
  // level l pairs with superstep telemetry records 2l and 2l+1.
  const auto& steps = cluster.telemetry().supersteps;
  for (std::size_t l = 0; l < result.total_levels; ++l) {
    obs::LevelTrace lt;
    lt.level = static_cast<std::uint32_t>(l);
    lt.frontier_vertices = lvl_frontier[l].load(std::memory_order_relaxed);
    lt.edges_scanned = lvl_edges[l].load(std::memory_order_relaxed);
    lt.bit_ops = lvl_bitops[l].load(std::memory_order_relaxed);
    lt.parallel_tasks = lvl_ptasks[l].load(std::memory_order_relaxed);
    lt.steal_wait_seconds =
        static_cast<double>(
            lvl_stealwait_ns[l].load(std::memory_order_relaxed)) *
        1e-9;
    for (std::size_t s = 2 * l; s < 2 * l + 2 && s < steps.size(); ++s) {
      lt.barrier_wait_sim_seconds += steps[s].barrier_wait_sim_seconds;
    }
    result.level_trace.push_back(lt);
  }
  return result;
}

}  // namespace cgraph
