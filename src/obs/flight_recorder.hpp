// Flight recorder (DESIGN.md §11): turns every service anomaly into a
// self-contained repro artifact.
//
// After a run, ingest() scans a tracer snapshot, retains the last N
// per-query span trees in memory, and collects one FlightRecord for every
// query that was shed, expired, or re-executed after a crash — the full
// span tree (the query's own events plus everything its batch did on every
// machine: supersteps, barriers, fabric traffic, checkpoints). write_dumps()
// then writes one JSON file per anomaly, stamped with the FaultPlan seed
// and the run configuration, so an operator can replay the exact scenario.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/event_tracer.hpp"

namespace cgraph::obs {

struct FlightRecorderOptions {
  /// Per-query traces retained in memory (most recent first out).
  std::size_t retain = 64;
  /// Dump budget per run: anomalies beyond this are counted, not written.
  std::size_t max_dumps = 64;
  /// FaultPlan seed of the run (0 when no fault plan was installed).
  std::uint64_t fault_seed = 0;
  /// Free-form configuration summary embedded in every dump.
  std::string config;
};

/// One anomalous query's complete trace. Service-level records (a degraded
/// shutdown, a replica loss) use query = -1 and carry the service-track
/// events instead of a per-query span tree.
struct FlightRecord {
  std::int64_t query = -1;
  std::string reason;  // "shed" | "expired" | "reexecuted" | "failed_over"
                       //  | service-level reasons ("degraded", ...)
  std::vector<TraceEvent> events;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions opts = {});

  /// Scan a content-ordered event list (EventTracer::snapshot()).
  void ingest(const std::vector<TraceEvent>& events);
  /// Convenience: snapshot + ingest.
  void ingest(const EventTracer& tracer);

  /// Anomalies found so far, in timeline order.
  [[nodiscard]] const std::vector<FlightRecord>& anomalies() const {
    return anomalies_;
  }
  /// The last-N retained query traces (ring semantics: oldest evicted).
  [[nodiscard]] const std::deque<FlightRecord>& recent() const {
    return recent_;
  }

  /// Append a service-level anomaly record (query = -1): degraded-mode
  /// shutdown, replica loss, and similar run-scoped conditions that have
  /// no single owning query. `events` is typically the replica/service
  /// subset of a tracer snapshot (may be empty — the record still dumps
  /// with the run configuration, which is the repro recipe).
  void add_service_record(std::string reason, std::vector<TraceEvent> events);

  /// Write one JSON dump per anomaly into `dir` (created if missing),
  /// named flight_q<query>_<reason>.json — service-level records (query
  /// < 0) as flight_service_<reason>.json. Returns files written.
  std::size_t write_dumps(const std::string& dir) const;

 private:
  FlightRecorderOptions opts_;
  std::vector<FlightRecord> anomalies_;
  std::deque<FlightRecord> recent_;
};

}  // namespace cgraph::obs
