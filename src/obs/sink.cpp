#include "obs/sink.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/logging.hpp"

namespace cgraph::obs {

bool write_metrics_file(const std::string& path, MetricsRegistry& registry) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) {
    CGRAPH_LOG_WARN("metrics sink: cannot write %s", path.c_str());
    return false;
  }
  const bool json = p.extension() == ".json";
  out << (json ? registry.to_json() : registry.to_prometheus());
  CGRAPH_LOG_INFO("metrics sink: wrote %s (%s)", path.c_str(),
                  json ? "json" : "prometheus");
  return out.good();
}

bool maybe_write_metrics_env(MetricsRegistry& registry) {
  const char* path = std::getenv("CGRAPH_METRICS");
  if (path == nullptr || path[0] == '\0') return false;
  return write_metrics_file(path, registry);
}

}  // namespace cgraph::obs
