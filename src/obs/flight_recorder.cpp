#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

#include "obs/trace_export.hpp"
#include "util/logging.hpp"

namespace cgraph::obs {
namespace {

const char* anomaly_reason(TraceEventPhase phase) {
  switch (phase) {
    case TraceEventPhase::kQueryShed:
      return "shed";
    case TraceEventPhase::kQueryExpired:
      return "expired";
    case TraceEventPhase::kQueryReexecuted:
      return "reexecuted";
    case TraceEventPhase::kQueryFailedOver:
      return "failed_over";
    default:
      return nullptr;
  }
}

/// JSON string escape for the free-form config field.
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions opts)
    : opts_(std::move(opts)) {}

void FlightRecorder::ingest(const EventTracer& tracer) {
  ingest(tracer.snapshot());
}

void FlightRecorder::ingest(const std::vector<TraceEvent>& events) {
  // Index the snapshot two ways: per-query events (the query's own span
  // tree) and per-batch events (everything its batch did on every machine
  // — supersteps, barriers, fabric traffic, checkpoints).
  std::map<std::int64_t, std::vector<TraceEvent>> by_query;
  std::map<std::int64_t, std::vector<TraceEvent>> by_batch;
  // (query, reason) anomaly markers in timeline order; query -> batch.
  std::vector<std::pair<std::int64_t, const char*>> markers;
  std::map<std::int64_t, std::int64_t> batch_of;

  for (const TraceEvent& ev : events) {
    if (ev.query >= 0) {
      by_query[ev.query].push_back(ev);
      if (ev.batch >= 0) batch_of.emplace(ev.query, ev.batch);
      if (const char* reason = anomaly_reason(ev.phase)) {
        markers.emplace_back(ev.query, reason);
      }
    } else if (ev.batch >= 0) {
      by_batch[ev.batch].push_back(ev);
    }
  }

  // Retained window: the last N queries seen (by last event on the
  // timeline, which the content-ordered snapshot gives us for free).
  recent_.clear();
  for (const auto& [query, evs] : by_query) {
    FlightRecord rec;
    rec.query = query;
    rec.events = evs;
    recent_.push_back(std::move(rec));
  }
  std::sort(recent_.begin(), recent_.end(),
            [](const FlightRecord& x, const FlightRecord& y) {
              return x.events.back().sim_seconds <
                     y.events.back().sim_seconds;
            });
  while (recent_.size() > opts_.retain) recent_.pop_front();

  // One record per (query, reason), full span tree attached.
  std::set<std::pair<std::int64_t, std::string>> seen;
  for (const auto& [query, reason] : markers) {
    if (!seen.emplace(query, reason).second) continue;
    FlightRecord rec;
    rec.query = query;
    rec.reason = reason;
    rec.events = by_query[query];
    const auto it = batch_of.find(query);
    if (it != batch_of.end()) {
      const auto& batch_events = by_batch[it->second];
      rec.events.insert(rec.events.end(), batch_events.begin(),
                        batch_events.end());
      std::sort(rec.events.begin(), rec.events.end(),
                [](const TraceEvent& x, const TraceEvent& y) {
                  return x.sim_seconds < y.sim_seconds;
                });
    }
    anomalies_.push_back(std::move(rec));
  }
}

void FlightRecorder::add_service_record(std::string reason,
                                        std::vector<TraceEvent> events) {
  FlightRecord rec;
  rec.query = -1;
  rec.reason = std::move(reason);
  rec.events = std::move(events);
  anomalies_.push_back(std::move(rec));
}

std::size_t FlightRecorder::write_dumps(const std::string& dir) const {
  if (anomalies_.empty()) return 0;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::size_t written = 0;
  for (const FlightRecord& rec : anomalies_) {
    if (written >= opts_.max_dumps) break;
    const std::string path =
        rec.query < 0
            ? dir + "/flight_service_" + rec.reason + ".json"
            : dir + "/flight_q" + std::to_string(rec.query) + "_" +
                  rec.reason + ".json";
    std::ofstream out(path);
    if (!out) {
      CGRAPH_LOG_WARN("flight recorder: cannot write %s", path.c_str());
      continue;
    }
    out << "{\"query\":" << rec.query << ",\"reason\":\"" << rec.reason
        << "\",\"fault_seed\":" << opts_.fault_seed << ",\"config\":\""
        << escape_json(opts_.config) << "\",\"events\":[\n";
    TraceExportOptions eopts;
    for (std::size_t i = 0; i < rec.events.size(); ++i) {
      std::string line = to_jsonl({rec.events[i]}, eopts);
      // to_jsonl emits a header line then the event line; keep the event.
      const std::size_t nl = line.find('\n');
      std::string obj = line.substr(nl + 1);
      if (!obj.empty() && obj.back() == '\n') obj.pop_back();
      out << obj << (i + 1 < rec.events.size() ? ",\n" : "\n");
    }
    out << "]}\n";
    if (out.good()) ++written;
  }
  if (written < anomalies_.size()) {
    CGRAPH_LOG_WARN("flight recorder: %zu anomalies, wrote %zu (max-dumps)",
                    anomalies_.size(), written);
  }
  return written;
}

}  // namespace cgraph::obs
