// Metrics exposition sink: dump a registry snapshot to a file, either on
// demand (`--metrics-out` in cgraph_tool) or from the CGRAPH_METRICS
// environment variable (every bench harness writes one at exit). A path
// ending in ".json" gets the JSON document; anything else gets Prometheus
// text format, so `CGRAPH_METRICS=run.prom bench/fig12_querycount` leaves
// a scrape-able telemetry file next to the figure output.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace cgraph::obs {

/// Write `registry` to `path` (parent directories are created). Returns
/// false (and logs a warning) if the file cannot be written.
bool write_metrics_file(const std::string& path,
                        MetricsRegistry& registry = MetricsRegistry::global());

/// Write to $CGRAPH_METRICS if set; returns whether a file was written.
bool maybe_write_metrics_env(
    MetricsRegistry& registry = MetricsRegistry::global());

}  // namespace cgraph::obs
