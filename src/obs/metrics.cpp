#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace cgraph::obs {
namespace {

/// Shortest round-trippable rendering for metric values ("15" not
/// "15.000000"; "0.4" not "4.0e-01") so exposition output stays readable
/// and golden-testable.
std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

Labels sorted_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Renders {k="v",...}; `extra` appends one pre-rendered pair (le=...).
std::string label_block(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k + "=\"" + escape_label_value(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out.push_back(',');
    out += extra;
  }
  out.push_back('}');
  return out;
}

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string json_labels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
  }
  out.push_back('}');
  return out;
}

}  // namespace

LogHistogram::LogHistogram(HistogramSpec spec)
    : counts_(spec.nbins + 1) {
  CGRAPH_CHECK(spec.lo > 0 && spec.growth > 1 && spec.nbins > 0);
  uppers_.reserve(spec.nbins);
  double bound = spec.lo;
  for (std::size_t i = 0; i < spec.nbins; ++i) {
    uppers_.push_back(bound);
    bound *= spec.growth;
  }
}

void LogHistogram::observe(double x) {
  // Log-spaced bounds make this loop short (≤ nbins); observes happen per
  // query / per superstep, not per edge, so linear scan beats a log() call.
  std::size_t bin = uppers_.size();  // +Inf
  for (std::size_t i = 0; i < uppers_.size(); ++i) {
    if (x <= uppers_[i]) {
      bin = i;
      break;
    }
  }
  counts_[bin].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
}

double LogHistogram::percentile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  CGRAPH_CHECK(p > 0.0 && p <= 100.0);
  const double rank = p / 100.0 * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t prev = cum;
    const std::uint64_t here = bucket_count(i);
    cum += here;
    if (static_cast<double>(cum) < rank) continue;
    if (i >= uppers_.size()) return uppers_.back();  // +Inf bucket
    const double lower = i == 0 ? 0.0 : uppers_[i - 1];
    if (here == 0) return lower;
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(here);
    return lower + (uppers_[i] - lower) * frac;
  }
  return uppers_.back();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

MetricsRegistry::Child& MetricsRegistry::child(const std::string& name,
                                               const std::string& help,
                                               MetricType type,
                                               const Labels& labels,
                                               const HistogramSpec& spec) {
  const Labels key = sorted_labels(labels);
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = families_.try_emplace(name);
  Family& fam = it->second;
  if (inserted) {
    fam.help = help;
    fam.type = type;
  } else {
    CGRAPH_CHECK_MSG(fam.type == type,
                     "metric family re-registered with a different type");
  }
  for (const auto& c : fam.children) {
    if (c->labels == key) return *c;
  }
  auto c = std::make_unique<Child>();
  c->labels = key;
  switch (type) {
    case MetricType::kCounter: c->counter = std::make_unique<Counter>(); break;
    case MetricType::kGauge: c->gauge = std::make_unique<Gauge>(); break;
    case MetricType::kHistogram:
      c->histogram = std::make_unique<LogHistogram>(spec);
      break;
  }
  fam.children.push_back(std::move(c));
  return *fam.children.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  return *child(name, help, MetricType::kCounter, labels, {}).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help, const Labels& labels) {
  return *child(name, help, MetricType::kGauge, labels, {}).gauge;
}

LogHistogram& MetricsRegistry::histogram(const std::string& name,
                                         const std::string& help,
                                         const Labels& labels,
                                         HistogramSpec spec) {
  return *child(name, help, MetricType::kHistogram, labels, spec).histogram;
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) {
      out += "# HELP " + name + " " + fam.help + "\n";
    }
    out += "# TYPE " + name + " " + type_name(fam.type) + "\n";
    for (const auto& cp : fam.children) {
      const Child& c = *cp;
      switch (fam.type) {
        case MetricType::kCounter:
          out += name + label_block(c.labels) + " " +
                 format_value(c.counter->value()) + "\n";
          break;
        case MetricType::kGauge:
          out += name + label_block(c.labels) + " " +
                 format_value(c.gauge->value()) + "\n";
          break;
        case MetricType::kHistogram: {
          const LogHistogram& h = *c.histogram;
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < h.nbins(); ++i) {
            cum += h.bucket_count(i);
            out += name + "_bucket" +
                   label_block(c.labels, "le=\"" + format_value(h.upper(i)) +
                                             "\"") +
                   " " + std::to_string(cum) + "\n";
          }
          // +Inf and _count derive from the same bucket pass rather than
          // h.count(): a concurrent observe() between the reads would
          // otherwise yield a non-monotonic bucket series.
          cum += h.bucket_count(h.nbins());
          out += name + "_bucket" + label_block(c.labels, "le=\"+Inf\"") +
                 " " + std::to_string(cum) + "\n";
          out += name + "_sum" + label_block(c.labels) + " " +
                 format_value(h.sum()) + "\n";
          out += name + "_count" + label_block(c.labels) + " " +
                 std::to_string(cum) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\"metrics\":[";
  bool first_fam = true;
  for (const auto& [name, fam] : families_) {
    if (!first_fam) out.push_back(',');
    first_fam = false;
    out += "{\"name\":\"" + json_escape(name) + "\",\"type\":\"" +
           type_name(fam.type) + "\",\"help\":\"" + json_escape(fam.help) +
           "\",\"series\":[";
    bool first_child = true;
    for (const auto& cp : fam.children) {
      const Child& c = *cp;
      if (!first_child) out.push_back(',');
      first_child = false;
      out += "{\"labels\":" + json_labels(c.labels);
      switch (fam.type) {
        case MetricType::kCounter:
          out += ",\"value\":" + format_value(c.counter->value());
          break;
        case MetricType::kGauge:
          out += ",\"value\":" + format_value(c.gauge->value());
          break;
        case MetricType::kHistogram: {
          const LogHistogram& h = *c.histogram;
          out += ",\"buckets\":[";
          for (std::size_t i = 0; i <= h.nbins(); ++i) {
            if (i > 0) out.push_back(',');
            const std::string le =
                i < h.nbins() ? format_value(h.upper(i)) : "\"+Inf\"";
            out += "[" + le + "," + std::to_string(h.bucket_count(i)) + "]";
          }
          out += "],\"sum\":" + format_value(h.sum()) +
                 ",\"count\":" + std::to_string(h.count());
          break;
        }
      }
      out.push_back('}');
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  families_.clear();
}

}  // namespace cgraph::obs
