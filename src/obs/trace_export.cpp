#include "obs/trace_export.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/logging.hpp"

namespace cgraph::obs {
namespace {

/// Chrome needs nonnegative thread ids; service tracks sort first.
std::int64_t track_tid(std::int32_t machine) {
  if (machine == TraceEvent::kAdmissionTrack) return 0;
  if (machine == TraceEvent::kExecutorTrack) return 1;
  return 10 + static_cast<std::int64_t>(machine);
}

std::string track_name(std::int32_t machine) {
  if (machine == TraceEvent::kAdmissionTrack) return "service admission";
  if (machine == TraceEvent::kExecutorTrack) return "service executor";
  return "machine " + std::to_string(machine);
}

void append_f(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

/// Locale-independent, round-trip-exact double (deterministic output).
void append_double(std::string& out, double v) {
  append_f(out, "%.17g", v);
}

/// Common `"args":{...}` payload for both exporters' Chrome-side events.
void append_args(std::string& out, const TraceEvent& ev,
                 const TraceExportOptions& opts) {
  out += "\"args\":{";
  if (ev.query >= 0) {
    append_f(out, "\"query\":%" PRId64 ",", ev.query);
  }
  if (ev.batch >= 0) {
    append_f(out, "\"batch\":%" PRId64 ",", ev.batch);
  }
  if (ev.level >= 0) append_f(out, "\"level\":%d,", ev.level);
  out += "\"a\":";
  append_double(out, ev.a);
  out += ",\"b\":";
  append_double(out, ev.b);
  if (opts.include_wall) {
    append_f(out, ",\"wall_ns\":%" PRIu64 ",\"wall_dur_ns\":%" PRIu64,
             ev.wall_ns, ev.wall_dur_ns);
  }
  out += "}";
}

}  // namespace

std::string to_chrome_trace_json(const std::vector<TraceEvent>& events,
                                 const TraceExportOptions& opts) {
  std::string out;
  out.reserve(events.size() * 160 + 1024);
  out += "{\"traceEvents\":[\n";

  // Track metadata: name every track that actually has events, in tid
  // order, so Perfetto shows "service admission", "service executor",
  // "machine 0..N" lanes.
  std::set<std::int32_t> machines;
  for (const TraceEvent& ev : events) machines.insert(ev.machine);
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"cgraph\"}}";
  for (std::int32_t m : machines) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    append_f(out, "%" PRId64, track_tid(m));
    out += ",\"args\":{\"name\":\"" + track_name(m) + "\"}}";
  }

  for (const TraceEvent& ev : events) {
    out += ",\n{\"name\":\"";
    out += to_string(ev.phase);
    out += "\",\"ph\":\"";
    out += ev.kind == TraceEventKind::kSpan ? "X" : "i";
    out += "\",";
    if (ev.kind == TraceEventKind::kInstant) out += "\"s\":\"t\",";
    out += "\"ts\":";
    append_f(out, "%.3f", ev.sim_seconds * 1e6);  // microseconds
    if (ev.kind == TraceEventKind::kSpan) {
      out += ",\"dur\":";
      append_f(out, "%.3f", ev.sim_dur_seconds * 1e6);
    }
    out += ",\"pid\":0,\"tid\":";
    append_f(out, "%" PRId64, track_tid(ev.machine));
    out += ",";
    append_args(out, ev, opts);
    out += "}";
  }

  out += "\n],\"displayTimeUnit\":\"ms\"";
  if (opts.recorded > 0) {
    append_f(out,
             ",\"otherData\":{\"events_recorded\":%" PRIu64
             ",\"events_dropped\":%" PRIu64 "}",
             opts.recorded, opts.dropped);
  }
  out += "}\n";
  return out;
}

std::string to_jsonl(const std::vector<TraceEvent>& events,
                     const TraceExportOptions& opts) {
  std::string out;
  out.reserve(events.size() * 140 + 256);
  append_f(out,
           "{\"trace\":\"cgraph\",\"events\":%zu,\"recorded\":%" PRIu64
           ",\"dropped\":%" PRIu64 "}\n",
           events.size(), opts.recorded, opts.dropped);
  for (const TraceEvent& ev : events) {
    out += "{\"phase\":\"";
    out += to_string(ev.phase);
    out += "\",\"kind\":\"";
    out += ev.kind == TraceEventKind::kSpan ? "span" : "instant";
    append_f(out, "\",\"machine\":%d,\"level\":%d,", ev.machine, ev.level);
    append_f(out, "\"query\":%" PRId64 ",\"batch\":%" PRId64 ",", ev.query,
             ev.batch);
    out += "\"sim\":";
    append_double(out, ev.sim_seconds);
    out += ",\"sim_dur\":";
    append_double(out, ev.sim_dur_seconds);
    out += ",\"a\":";
    append_double(out, ev.a);
    out += ",\"b\":";
    append_double(out, ev.b);
    if (opts.include_wall) {
      append_f(out, ",\"wall_ns\":%" PRIu64 ",\"wall_dur_ns\":%" PRIu64,
               ev.wall_ns, ev.wall_dur_ns);
    }
    out += "}\n";
  }
  return out;
}

bool write_trace_file(const EventTracer& tracer, const std::string& path,
                      TraceExportOptions opts) {
  if (opts.recorded == 0) {
    opts.recorded = tracer.recorded();
    opts.dropped = tracer.dropped();
  }
  const std::vector<TraceEvent> events = tracer.snapshot();
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) {
    CGRAPH_LOG_WARN("trace sink: cannot write %s", path.c_str());
    return false;
  }
  const bool jsonl = p.extension() == ".jsonl";
  out << (jsonl ? to_jsonl(events, opts) : to_chrome_trace_json(events, opts));
  CGRAPH_LOG_INFO("trace sink: wrote %s (%zu events, %s)", path.c_str(),
                  events.size(), jsonl ? "jsonl" : "chrome-trace");
  return out.good();
}

}  // namespace cgraph::obs
