// Trace exporters (DESIGN.md §11): Chrome trace_event JSON — loadable in
// Perfetto / chrome://tracing, one track per simulated machine plus one
// per service thread — and a compact JSONL stream (one event per line) for
// ad-hoc tooling.
//
// Both exporters order events by deterministic content (simulated time +
// identity fields) and, with include_wall = false, emit no host-clock
// data at all, so a fixed-seed run exports byte-identical files whatever
// the thread count (the determinism test relies on this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event_tracer.hpp"

namespace cgraph::obs {

struct TraceExportOptions {
  /// Include host wall-clock stamps in the output. Set false for
  /// byte-deterministic sim-only exports (fixed seed => identical file
  /// across thread counts).
  bool include_wall = true;
  /// Ring statistics to embed (Chrome: `otherData`; JSONL: header line).
  /// Zero means "not provided" and is omitted.
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
};

/// Chrome trace_event JSON ("X" complete events for spans, "i" instants),
/// with thread_name metadata naming every machine/service track.
[[nodiscard]] std::string to_chrome_trace_json(
    const std::vector<TraceEvent>& events,
    const TraceExportOptions& opts = {});

/// One JSON object per line (plus a leading header object).
[[nodiscard]] std::string to_jsonl(const std::vector<TraceEvent>& events,
                                   const TraceExportOptions& opts = {});

/// Snapshot `tracer` and write it to `path` (parent directories are
/// created): ".jsonl" selects the JSONL stream, anything else the Chrome
/// trace JSON. Returns false (and logs a warning) on write failure.
bool write_trace_file(const EventTracer& tracer, const std::string& path,
                      TraceExportOptions opts = {});

}  // namespace cgraph::obs
