#include "obs/event_tracer.hpp"

#include <algorithm>
#include <chrono>
#include <tuple>

namespace cgraph::obs {
namespace {

std::atomic<EventTracer*> g_current{nullptr};
std::atomic<std::uint64_t> g_next_id{1};

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Deterministic content ordering: sim time first, then every other
/// non-wall field as a tie break, so the merged timeline is independent of
/// which thread's ring an event landed in.
bool content_less(const TraceEvent& x, const TraceEvent& y) {
  return std::tie(x.sim_seconds, x.machine, x.level, x.batch, x.query,
                  x.phase, x.kind, x.sim_dur_seconds, x.a, x.b) <
         std::tie(y.sim_seconds, y.machine, y.level, y.batch, y.query,
                  y.phase, y.kind, y.sim_dur_seconds, y.a, y.b);
}

}  // namespace

const char* to_string(TraceEventPhase phase) {
  switch (phase) {
    case TraceEventPhase::kQuery:
      return "query";
    case TraceEventPhase::kAdmissionWait:
      return "admission_wait";
    case TraceEventPhase::kBatchSeal:
      return "batch_seal";
    case TraceEventPhase::kBatchExecute:
      return "batch_execute";
    case TraceEventPhase::kSuperstepScan:
      return "superstep_scan";
    case TraceEventPhase::kSuperstepCommit:
      return "superstep_commit";
    case TraceEventPhase::kBarrier:
      return "barrier";
    case TraceEventPhase::kFabricSend:
      return "fabric_send";
    case TraceEventPhase::kFabricAsyncSend:
      return "fabric_async_send";
    case TraceEventPhase::kFabricRetry:
      return "fabric_retry";
    case TraceEventPhase::kFabricAck:
      return "fabric_ack";
    case TraceEventPhase::kCheckpoint:
      return "checkpoint";
    case TraceEventPhase::kRestore:
      return "restore";
    case TraceEventPhase::kQueryComplete:
      return "query_complete";
    case TraceEventPhase::kQueryShed:
      return "query_shed";
    case TraceEventPhase::kQueryExpired:
      return "query_expired";
    case TraceEventPhase::kQueryReexecuted:
      return "query_reexecuted";
    case TraceEventPhase::kDirectionChoice:
      return "direction_choice";
    case TraceEventPhase::kIndexProbe:
      return "index_probe";
    case TraceEventPhase::kReplicaRoute:
      return "replica_route";
    case TraceEventPhase::kHeartbeatMiss:
      return "heartbeat_miss";
    case TraceEventPhase::kReplicaFailover:
      return "replica_failover";
    case TraceEventPhase::kQueryFailedOver:
      return "query_failed_over";
  }
  return "unknown";
}

EventTracer::EventTracer() : EventTracer(Options()) {}

EventTracer::EventTracer(Options opts)
    : opts_(opts),
      id_(g_next_id.fetch_add(1, std::memory_order_relaxed)) {}

EventTracer::~EventTracer() {
  // Installing a tracer without uninstalling it before destruction would
  // leave a dangling current(); Scope handles the pairing, and a stray
  // current() == this is cleared here as a last resort.
  EventTracer* self = this;
  g_current.compare_exchange_strong(self, nullptr,
                                    std::memory_order_acq_rel);
}

EventTracer* EventTracer::current() {
  return g_current.load(std::memory_order_relaxed);
}

EventTracer::Scope::Scope(EventTracer& tracer)
    : previous_(g_current.exchange(&tracer, std::memory_order_acq_rel)) {}

EventTracer::Scope::~Scope() {
  g_current.store(previous_, std::memory_order_release);
}

EventTracer::Ring& EventTracer::ring_for_this_thread() {
  // Per-thread cache keyed by tracer id: a thread re-registers once per
  // tracer it ever records into, and the hot path is two thread_local
  // reads. Ids are never reused, so a stale cache entry can only miss.
  thread_local std::uint64_t cached_id = 0;
  thread_local Ring* cached_ring = nullptr;
  if (cached_id == id_ && cached_ring != nullptr) return *cached_ring;
  std::lock_guard<std::mutex> lk(mu_);
  rings_.push_back(std::make_unique<Ring>(opts_.ring_capacity));
  cached_id = id_;
  cached_ring = rings_.back().get();
  return *cached_ring;
}

void EventTracer::record(TraceEvent ev) {
  if (ev.machine >= 0) {
    // Engine event: attach the active batch context so batch-relative sim
    // times land on the absolute timeline with their batch id.
    const std::int64_t ctx_batch =
        ctx_batch_.load(std::memory_order_relaxed);
    if (ctx_batch >= 0) {
      if (ev.batch < 0) ev.batch = ctx_batch;
      ev.sim_seconds += ctx_offset_.load(std::memory_order_relaxed);
    }
  }
  if (ev.wall_ns == 0) ev.wall_ns = wall_now_ns();
  Ring& ring = ring_for_this_thread();
  std::lock_guard<std::mutex> lk(ring.mu);
  if (ring.buf.size() < ring.capacity) {
    ring.buf.push_back(ev);
  } else {
    // Drop-oldest: the write cursor count % capacity always lands on the
    // oldest retained slot.
    ring.buf[ring.count % ring.capacity] = ev;
    ++ring.dropped;
  }
  ++ring.count;
}

std::uint64_t EventTracer::recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const auto& r : rings_) {
    std::lock_guard<std::mutex> rlk(r->mu);
    total += r->count;
  }
  return total;
}

std::uint64_t EventTracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const auto& r : rings_) {
    std::lock_guard<std::mutex> rlk(r->mu);
    total += r->dropped;
  }
  return total;
}

std::vector<TraceEvent> EventTracer::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& r : rings_) {
      std::lock_guard<std::mutex> rlk(r->mu);
      out.insert(out.end(), r->buf.begin(), r->buf.end());
    }
  }
  std::stable_sort(out.begin(), out.end(), content_less);
  return out;
}

void EventTracer::set_batch_context(std::int64_t batch,
                                    double sim_offset_seconds) {
  // Offset first: a machine event racing this install may read the old
  // batch id with the old offset or the new pair, never a torn mix that
  // shifts an old batch onto the new timeline.
  ctx_offset_.store(sim_offset_seconds, std::memory_order_relaxed);
  ctx_batch_.store(batch, std::memory_order_release);
}

void EventTracer::clear_batch_context() {
  ctx_batch_.store(-1, std::memory_order_release);
  ctx_offset_.store(0.0, std::memory_order_relaxed);
}

}  // namespace cgraph::obs
