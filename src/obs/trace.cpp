#include "obs/trace.hpp"

#include <cstdio>

namespace cgraph::obs {

void TraceSpan::finish() {
  if (finished_ || registry_ == nullptr) return;
  finished_ = true;
  registry_
      ->histogram("cgraph_span_seconds",
                  "Wall-clock duration of named trace spans",
                  {{"span", name_}})
      .observe(timer_.seconds());
}

std::uint64_t BatchTrace::edges_scanned() const {
  std::uint64_t total = 0;
  for (const LevelTrace& l : levels) total += l.edges_scanned;
  return total;
}

std::uint64_t BatchTrace::bit_ops() const {
  std::uint64_t total = 0;
  for (const LevelTrace& l : levels) total += l.bit_ops;
  return total;
}

std::uint64_t RunTelemetry::total_edges_scanned() const {
  std::uint64_t total = 0;
  for (const BatchTrace& b : batches) total += b.edges_scanned();
  return total;
}

void RunTelemetry::publish(MetricsRegistry& reg) const {
  reg.counter("cgraph_queries_total", "Queries answered by the scheduler")
      .inc(static_cast<double>(queries.size()));
  reg.counter("cgraph_query_batches_total",
              "Bit-parallel batches executed by the scheduler")
      .inc(static_cast<double>(batches.size()));
  reg.counter("cgraph_query_edges_scanned_total",
              "Edges scanned by concurrent-query traversals")
      .inc(static_cast<double>(total_edges_scanned()));
  if (!effective_policy.empty()) {
    reg.counter("cgraph_scheduler_runs_total",
                "Scheduler runs by effective batching policy",
                {{"policy", effective_policy}})
        .inc();
  }

  std::uint64_t bitops = 0;
  for (const BatchTrace& b : batches) bitops += b.bit_ops();
  reg.counter("cgraph_query_bit_ops_total",
              "Bitmap words processed by concurrent-query traversals")
      .inc(static_cast<double>(bitops));

  LogHistogram& response =
      reg.histogram("cgraph_query_response_seconds",
                    "Per-query simulated response time (wait + execute)");
  LogHistogram& wait = reg.histogram(
      "cgraph_query_wait_seconds", "Per-query simulated queue wait");
  for (const QueryTrace& q : queries) {
    response.observe(q.wait_sim_seconds + q.execute_sim_seconds);
    wait.observe(q.wait_sim_seconds);
  }

  LogHistogram& exec =
      reg.histogram("cgraph_batch_execute_sim_seconds",
                    "Per-batch simulated makespan");
  double straggler_sum = 0;
  std::size_t straggler_n = 0;
  for (const BatchTrace& b : batches) {
    exec.observe(b.execute_sim_seconds);
    if (b.straggler_ratio > 0) {
      straggler_sum += b.straggler_ratio;
      ++straggler_n;
    }

    for (const LevelTrace& l : b.levels) {
      const Labels lv{{"level", std::to_string(l.level)}};
      reg.counter("cgraph_superstep_edges_total",
                  "Edges scanned per traversal level", lv)
          .inc(static_cast<double>(l.edges_scanned));
      reg.counter("cgraph_superstep_frontier_vertices_total",
                  "Frontier entries expanded per traversal level", lv)
          .inc(static_cast<double>(l.frontier_vertices));
      reg.counter("cgraph_superstep_bit_ops_total",
                  "Bitmap words processed per traversal level", lv)
          .inc(static_cast<double>(l.bit_ops));
      reg.counter("cgraph_superstep_barrier_wait_seconds_total",
                  "Simulated barrier idle time per traversal level "
                  "(summed over machines)",
                  lv)
          .inc(l.barrier_wait_sim_seconds);
      reg.counter("cgraph_superstep_parallel_tasks_total",
                  "Intra-machine pool chunks executed per traversal level",
                  lv)
          .inc(static_cast<double>(l.parallel_tasks));
      reg.counter("cgraph_superstep_steal_wait_seconds_total",
                  "Host seconds machine threads spent joining their "
                  "compute pools per traversal level",
                  lv)
          .inc(l.steal_wait_seconds);
      if (l.push_machines > 0) {
        reg.counter("cgraph_msbfs_direction_total",
                    "Per-level per-partition traversal direction choices",
                    Labels{{"direction", "push"}})
            .inc(static_cast<double>(l.push_machines));
      }
      if (l.pull_machines > 0) {
        reg.counter("cgraph_msbfs_direction_total",
                    "Per-level per-partition traversal direction choices",
                    Labels{{"direction", "pull"}})
            .inc(static_cast<double>(l.pull_machines));
      }
      reg.gauge("cgraph_msbfs_scout_edges",
                "Scout count (frontier out-edges) entering the level, "
                "summed over machines — the direction heuristic's input",
                lv)
          .set(static_cast<double>(l.scout_edges));
    }

    for (const MachineTrace& m : b.machines) {
      const Labels ml{{"machine", std::to_string(m.machine)}};
      reg.counter("cgraph_machine_supersteps_total",
                  "BSP supersteps executed per machine", ml)
          .inc(static_cast<double>(m.supersteps));
      reg.counter("cgraph_machine_barrier_wait_sim_seconds_total",
                  "Simulated idle time waiting at barriers per machine", ml)
          .inc(m.barrier_wait_sim_seconds);
      reg.counter("cgraph_machine_barrier_wait_wall_seconds_total",
                  "Host wall-clock blocked at barriers per machine", ml)
          .inc(m.barrier_wait_wall_seconds);
      reg.counter("cgraph_fabric_staged_packets_total",
                  "BSP (staged) packets sent per machine", ml)
          .inc(static_cast<double>(m.staged_packets));
      reg.counter("cgraph_fabric_staged_bytes_total",
                  "BSP (staged) bytes sent per machine", ml)
          .inc(static_cast<double>(m.staged_bytes));
      reg.counter("cgraph_fabric_async_packets_total",
                  "Async packets sent per machine", ml)
          .inc(static_cast<double>(m.async_packets));
      reg.counter("cgraph_fabric_async_bytes_total",
                  "Async bytes sent per machine", ml)
          .inc(static_cast<double>(m.async_bytes));
      const struct {
        const char* name;
        const char* help;
        std::uint64_t value;
      } outcomes[] = {
          {"cgraph_fabric_delivered_packets_total",
           "Mailbox deposits (duplicates included) per sending machine",
           m.delivered_packets},
          {"cgraph_fabric_dropped_packets_total",
           "Transmission attempts dropped by the fault layer",
           m.dropped_packets},
          {"cgraph_fabric_duplicated_packets_total",
           "Attempts delivered twice by the fault layer",
           m.duplicated_packets},
          {"cgraph_fabric_retried_packets_total",
           "Retransmission attempts (staged retry loop + async ack "
           "timeouts)",
           m.retried_packets},
          {"cgraph_fabric_ack_packets_total",
           "Acknowledgement frames sent by the reliable async protocol",
           m.ack_packets},
          {"cgraph_fabric_delivery_failed_packets_total",
           "Packets abandoned after the bounded retry budget",
           m.delivery_failed_packets},
          {"cgraph_fabric_dedup_suppressed_packets_total",
           "Duplicate deliveries suppressed by receiver dedup filters",
           m.dedup_suppressed_packets},
      };
      for (const auto& o : outcomes) {
        reg.counter(o.name, o.help, ml).inc(static_cast<double>(o.value));
      }
    }
  }
  if (straggler_n > 0) {
    reg.gauge("cgraph_straggler_ratio",
              "Mean max/mean machine step time of the latest run")
        .set(straggler_sum / static_cast<double>(straggler_n));
  }
}

std::string RunTelemetry::summary() const {
  std::string out;
  char buf[192];
  for (const BatchTrace& b : batches) {
    std::snprintf(buf, sizeof buf,
                  "batch %zu: width=%zu wait=%.6fs exec=%.6fs "
                  "edges=%llu straggler=%.2f\n",
                  b.index, b.width, b.wait_sim_seconds, b.execute_sim_seconds,
                  static_cast<unsigned long long>(b.edges_scanned()),
                  b.straggler_ratio);
    out += buf;
    for (const LevelTrace& l : b.levels) {
      std::snprintf(buf, sizeof buf,
                    "  level %u: frontier=%llu edges=%llu bitops=%llu "
                    "barrier_wait=%.6fs tasks=%llu steal_wait=%.6fs\n",
                    l.level,
                    static_cast<unsigned long long>(l.frontier_vertices),
                    static_cast<unsigned long long>(l.edges_scanned),
                    static_cast<unsigned long long>(l.bit_ops),
                    l.barrier_wait_sim_seconds,
                    static_cast<unsigned long long>(l.parallel_tasks),
                    l.steal_wait_seconds);
      out += buf;
    }
  }
  return out;
}

}  // namespace cgraph::obs
