// Structured event tracing for the query path (DESIGN.md §11).
//
// An EventTracer records causally linked spans and instants — query →
// admission wait → batch seal → per-level superstep (scan/commit/barrier)
// → fabric send/retry/ack → checkpoint/restore → completion|shed|expired —
// keyed by stable query/batch ids and stamped with both clock domains:
// simulated seconds (deterministic, what the exporters order by) and host
// wall nanoseconds (informational).
//
// Hot-path cost model:
//   * disabled (no tracer installed): one relaxed atomic load + branch per
//     call site — the default for every engine run;
//   * enabled: one uncontended per-thread mutex lock plus a ring-buffer
//     slot write. Threads never share rings, so recording never contends;
//     only snapshot() takes the cross-thread locks.
//
// Memory is bounded: each thread's ring holds ring_capacity events and
// overwrites the oldest once full (drop-oldest), counting what it dropped,
// so a runaway trace degrades to "most recent window" instead of OOM.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace cgraph::obs {

/// Compile-time kill switch: build with -DCGRAPH_TRACING_ENABLED=0 to turn
/// every trace() call site into dead code.
#ifndef CGRAPH_TRACING_ENABLED
#define CGRAPH_TRACING_ENABLED 1
#endif

/// What happened. One enumerator per edge of the causal chain the tracer
/// records (the event taxonomy of DESIGN.md §11).
enum class TraceEventPhase : std::uint8_t {
  kQuery,            // span: arrival -> answered (per query)
  kAdmissionWait,    // span: arrival -> batch execution start
  kBatchSeal,        // instant: the adaptive batcher closed a batch
  kBatchExecute,     // span: batch start -> batch finish
  kSuperstepScan,    // span: per machine per level, edge-set scan + charge
  kSuperstepCommit,  // span: per machine per level, recv + visited commit
  kBarrier,          // span: per machine, BSP barrier (sim dur = sync wait)
  kFabricSend,       // instant: staged (superstep) send
  kFabricAsyncSend,  // instant: async send injection
  kFabricRetry,      // instant: retransmission attempt
  kFabricAck,        // instant: ack frame sent
  kCheckpoint,       // instant: superstep checkpoint saved
  kRestore,          // instant: machine state rolled back after a crash
  kQueryComplete,    // instant: query answered
  kQueryShed,        // instant: arrival rejected at admission
  kQueryExpired,     // instant: admitted query dropped for missed deadline
  kQueryReexecuted,  // instant: query re-derived after a machine crash
  kDirectionChoice,  // instant: per machine per level push/pull decision
                     //   (a = 1 for pull / 0 for push, b = scout edges)
  kIndexProbe,       // instant: reachability-index probe at admission
                     //   (a = verdict: 0 unreachable / 1 reachable /
                     //   2 unknown, b = probe sim seconds)
  kReplicaRoute,     // instant: batch routed to a replica
                     //   (a = replica chosen, b = owning partition)
  kHeartbeatMiss,    // instant: replica missed a heartbeat
                     //   (a = replica, b = consecutive misses)
  kReplicaFailover,  // instant: batch failed over to a survivor
                     //   (a = dead replica, b = surviving replica)
  kQueryFailedOver,  // instant: admitted query survived a replica loss and
                     //   completed on a survivor (a = dead, b = survivor)
};

[[nodiscard]] const char* to_string(TraceEventPhase phase);

enum class TraceEventKind : std::uint8_t { kSpan, kInstant };

/// One recorded event. POD by design: rings copy these around freely.
struct TraceEvent {
  /// Pseudo-machine ids for the service threads (real machines are >= 0).
  static constexpr std::int32_t kAdmissionTrack = -1;
  static constexpr std::int32_t kExecutorTrack = -2;

  TraceEventPhase phase = TraceEventPhase::kQuery;
  TraceEventKind kind = TraceEventKind::kInstant;
  /// Simulated machine (>= 0) or a service track constant above.
  std::int32_t machine = kAdmissionTrack;
  /// Traversal level for superstep events, -1 otherwise.
  std::int32_t level = -1;
  /// Stable query id (-1 when the event is not query-scoped).
  std::int64_t query = -1;
  /// Batch index (-1 when unknown; engine events inherit the installed
  /// batch context, see EventTracer::set_batch_context).
  std::int64_t batch = -1;
  /// Simulated-clock start (seconds). The deterministic timeline.
  double sim_seconds = 0;
  /// Simulated duration; 0 for instants and uncharged phases.
  double sim_dur_seconds = 0;
  /// Host wall clock at record time (steady-clock ns) and span duration.
  /// Informational only: exporters exclude these in deterministic mode.
  std::uint64_t wall_ns = 0;
  std::uint64_t wall_dur_ns = 0;
  /// Phase-specific payload (bytes, counts, peer ids, ...). Must be
  /// derived from deterministic state only — wall-derived values belong in
  /// wall_ns / wall_dur_ns.
  double a = 0;
  double b = 0;
};

/// Lock-light per-thread ring-buffer trace collector.
class EventTracer {
 public:
  struct Options {
    /// Events retained per recording thread before drop-oldest kicks in.
    std::size_t ring_capacity = std::size_t{1} << 16;
  };

  EventTracer();
  explicit EventTracer(Options opts);
  ~EventTracer();
  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  /// Record one event into the calling thread's ring. Applies the current
  /// batch context (batch id + sim-time offset) to machine events and
  /// stamps wall_ns when the caller left it 0.
  void record(TraceEvent ev);

  /// Events recorded (before drops) / overwritten by drop-oldest, summed
  /// over every thread ring.
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Merge every ring into one list ordered by deterministic content
  /// (sim time, then phase/machine/level/query/batch/payload) — the order
  /// every exporter uses, independent of which thread recorded what.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Engine events (machine >= 0) carry sim times relative to their batch
  /// (each engine run resets the cluster clocks). The front end that knows
  /// the batch's absolute start installs it here before executing, so
  /// recorded engine events land on the service-absolute timeline with
  /// their batch id attached. Batches execute one at a time on both front
  /// ends, so a single context is enough.
  void set_batch_context(std::int64_t batch, double sim_offset_seconds);
  void clear_batch_context();

  /// Process-wide current tracer (nullptr = tracing disabled).
  [[nodiscard]] static EventTracer* current();

  /// RAII installer: constructor publishes the tracer as current(),
  /// destructor restores the previous one.
  class Scope {
   public:
    explicit Scope(EventTracer& tracer);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    EventTracer* previous_;
  };

 private:
  struct Ring {
    explicit Ring(std::size_t cap) : capacity(cap) {}
    mutable std::mutex mu;
    std::vector<TraceEvent> buf;  // grows to capacity, then wraps
    std::size_t capacity;
    std::uint64_t count = 0;    // total recorded
    std::uint64_t dropped = 0;  // overwritten by drop-oldest
  };

  Ring& ring_for_this_thread();

  const Options opts_;
  const std::uint64_t id_;  // distinguishes tracers for thread caches
  mutable std::mutex mu_;   // guards rings_ growth
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<std::int64_t> ctx_batch_{-1};
  std::atomic<double> ctx_offset_{0.0};
};

/// True iff a tracer is installed. One relaxed load; call sites guard any
/// non-trivial event assembly behind it.
[[nodiscard]] inline bool tracing_enabled() {
#if CGRAPH_TRACING_ENABLED
  return EventTracer::current() != nullptr;
#else
  return false;
#endif
}

/// Record `ev` into the current tracer, if any.
inline void trace(const TraceEvent& ev) {
#if CGRAPH_TRACING_ENABLED
  if (EventTracer* t = EventTracer::current()) t->record(ev);
#else
  (void)ev;
#endif
}

}  // namespace cgraph::obs
