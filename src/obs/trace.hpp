// Trace spans and structured run telemetry for the query path.
//
// Engines record what actually happened (per-level frontier sizes, edges,
// bitmap word ops) into LevelTrace rows; the scheduler wraps them with
// queue-wait / execute timings per batch and per query and publishes the
// whole RunTelemetry into a MetricsRegistry — the per-superstep cost
// breakdown GPOP/iPregel use to attribute wins, available for every
// run_concurrent_queries() call.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace cgraph::obs {

/// RAII wall-clock span. On finish (or destruction) the duration lands in
/// the `cgraph_span_seconds{span="<name>"}` histogram of the registry, so
/// any scope becomes a scrape-able latency series.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name,
                     MetricsRegistry* registry = &MetricsRegistry::global())
      : name_(std::move(name)), registry_(registry) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  /// Moves transfer ownership of the recording: the moved-from span is
  /// left finished, so factory helpers can return spans by value without
  /// double-recording.
  TraceSpan(TraceSpan&& other) noexcept
      : name_(std::move(other.name_)),
        registry_(other.registry_),
        timer_(other.timer_),
        finished_(other.finished_) {
    other.finished_ = true;
  }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    if (this != &other) {
      finish();  // close our own span before adopting the other
      name_ = std::move(other.name_);
      registry_ = other.registry_;
      timer_ = other.timer_;
      finished_ = other.finished_;
      other.finished_ = true;
    }
    return *this;
  }
  ~TraceSpan() { finish(); }

  /// Elapsed seconds so far (the span keeps running).
  [[nodiscard]] double seconds() const { return timer_.seconds(); }

  /// Record the span now; later finish()/destruction is a no-op.
  void finish();

 private:
  std::string name_;
  MetricsRegistry* registry_;
  WallTimer timer_;
  bool finished_ = false;
};

/// One traversal level (= one frontier expansion, two BSP supersteps in
/// the distributed engines) of one batch.
struct LevelTrace {
  std::uint32_t level = 0;
  /// Frontier entries expanded entering this level: vertices with any
  /// frontier bit (bit-parallel engine) or queued tasks (queue engine).
  std::uint64_t frontier_vertices = 0;
  std::uint64_t edges_scanned = 0;
  /// 64-bit bitmap words processed (frontier scans + discover updates).
  std::uint64_t bit_ops = 0;
  /// Sum over machines of simulated idle time at this level's barriers.
  double barrier_wait_sim_seconds = 0;
  /// Intra-machine pool chunks executed for this level (scan + commit
  /// phases, summed over machines). One task per phase per machine means
  /// the level ran serially.
  std::uint64_t parallel_tasks = 0;
  /// Host seconds machine threads spent blocked waiting for their pool
  /// workers to drain this level's chunks (join-side steal wait).
  double steal_wait_seconds = 0;
  /// Direction-optimizing traversal (DESIGN.md §12): how many partitions
  /// expanded this level top-down (push) vs bottom-up (pull). The hybrid
  /// heuristic decides per level per partition, so both can be non-zero
  /// for one level. The single-machine engine reports one "machine".
  std::uint32_t push_machines = 0;
  std::uint32_t pull_machines = 0;
  /// Scout count entering this level (summed over machines): out-edges of
  /// rows with any frontier bit — the heuristic's push-cost estimate.
  std::uint64_t scout_edges = 0;
};

/// Per-machine counters for one batch, snapshotted from the cluster and
/// fabric after the batch ran.
struct MachineTrace {
  std::uint32_t machine = 0;
  std::uint64_t supersteps = 0;
  double barrier_wait_sim_seconds = 0;
  double barrier_wait_wall_seconds = 0;
  std::uint64_t staged_packets = 0;
  std::uint64_t staged_bytes = 0;
  std::uint64_t async_packets = 0;
  std::uint64_t async_bytes = 0;
  // Per-attempt delivery outcomes (non-zero under a FaultPlan). These obey
  //   delivered == staged + async + ack + retried - dropped + duplicated
  // exactly, which test_obs.cpp asserts through the exposition endpoint.
  std::uint64_t delivered_packets = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t duplicated_packets = 0;
  std::uint64_t retried_packets = 0;
  std::uint64_t ack_packets = 0;
  std::uint64_t delivery_failed_packets = 0;
  std::uint64_t dedup_suppressed_packets = 0;
};

/// One bit-parallel (or queue-mode) batch of the concurrent scheduler.
struct BatchTrace {
  std::size_t index = 0;
  std::size_t width = 0;  // queries in the batch
  /// Simulated queue time before this batch started executing.
  double wait_sim_seconds = 0;
  /// Simulated batch makespan (after any memory-pressure slowdown).
  double execute_sim_seconds = 0;
  double execute_wall_seconds = 0;
  /// Mean over supersteps of (max machine step time / mean step time);
  /// 1.0 = perfectly balanced, higher = stragglers.
  double straggler_ratio = 0;
  /// Batching policy that actually ran ("fifo" / "degree-sorted") — the
  /// effective policy after option validation, not the requested one.
  std::string policy;
  std::vector<LevelTrace> levels;
  std::vector<MachineTrace> machines;

  [[nodiscard]] std::uint64_t edges_scanned() const;
  [[nodiscard]] std::uint64_t bit_ops() const;
};

/// One query's view of the run: which batch it rode in, how long it
/// queued, and how long its batch took to answer it.
struct QueryTrace {
  QueryId id = 0;
  std::size_t batch_index = 0;
  Depth levels = 0;
  std::uint64_t visited = 0;
  double wait_sim_seconds = 0;     // queue wait before its batch started
  double execute_sim_seconds = 0;  // batch start -> this query complete
};

/// Everything observable about one run_concurrent_queries() call.
struct RunTelemetry {
  std::vector<BatchTrace> batches;
  std::vector<QueryTrace> queries;
  /// Effective batching policy for the run (kDegreeSorted silently ran as
  /// FIFO before this was recorded — see effective_batch_policy()).
  std::string effective_policy;

  /// Sum of per-level edge counts across every batch; reconciles with
  /// ConcurrentRunResult::total_edges_scanned.
  [[nodiscard]] std::uint64_t total_edges_scanned() const;

  /// Push counters/histograms for this run into `registry`:
  ///   cgraph_queries_total, cgraph_query_batches_total,
  ///   cgraph_query_edges_scanned_total, cgraph_query_bit_ops_total,
  ///   cgraph_query_response_seconds / _wait_seconds (histograms),
  ///   cgraph_batch_execute_sim_seconds (histogram),
  ///   cgraph_superstep_*_total{level=...} per traversal level,
  ///   cgraph_machine_*_total{machine=...} and cgraph_fabric_*_total
  ///   per machine, cgraph_straggler_ratio (gauge).
  void publish(MetricsRegistry& registry) const;

  /// Human-readable per-level summary for logs / debugging.
  [[nodiscard]] std::string summary() const;
};

}  // namespace cgraph::obs
