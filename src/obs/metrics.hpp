// Lock-cheap metrics registry (the query engine's runtime telemetry core).
//
// Handles (Counter/Gauge/LogHistogram) are created once under a mutex and
// then bumped with plain relaxed atomics, so instrumented hot paths pay a
// single atomic add — the GPOP/iPregel-style per-superstep counters the
// perf experiments need stay effectively free.
//
// Exposition: `to_prometheus()` renders the standard Prometheus text
// format (HELP/TYPE headers, cumulative `_bucket{le=...}` rows, `_sum` /
// `_count`); `to_json()` renders the same data as one JSON document. Both
// are snapshots — collection continues concurrently.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cgraph::obs {

/// Monotonic-compatible add on an atomic double (usable pre-C++20
/// fetch_add support and TSan-clean).
inline void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

/// Sorted (key, value) label pairs identifying one series in a family.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing value. Double-valued (Prometheus counters are
/// floats) so second-counters and event-counters share one type; integer
/// increments stay exact below 2^53.
class Counter {
 public:
  void inc(double delta = 1.0) { atomic_add(v_, delta); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) { atomic_add(v_, delta); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Bucket layout for LogHistogram: nbins log-spaced upper bounds starting
/// at `lo` growing by `growth`, plus an implicit +Inf overflow bucket.
struct HistogramSpec {
  double lo = 1e-6;      // first bucket upper bound (seconds scale)
  double growth = 2.0;   // ratio between consecutive bounds
  std::size_t nbins = 40;
};

/// Fixed log-scale-bin histogram with atomic buckets. observe() is
/// wait-free (one relaxed add per bucket plus the sum/count updates).
class LogHistogram {
 public:
  explicit LogHistogram(HistogramSpec spec = {});

  void observe(double x);

  [[nodiscard]] std::size_t nbins() const { return uppers_.size(); }
  /// Upper bound of finite bucket i.
  [[nodiscard]] double upper(std::size_t i) const { return uppers_[i]; }
  /// Non-cumulative count in bucket i (i == nbins() is the +Inf bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Value at percentile p in (0, 100], interpolated inside the containing
  /// log bucket. Overflow observations report the last finite bound.
  [[nodiscard]] double percentile(double p) const;

 private:
  std::vector<double> uppers_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // nbins + 1 (+Inf)
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// Named families of labeled series. Handle lookup/creation takes a mutex;
/// returned references stay valid for the registry's lifetime, so callers
/// cache them and the hot path never locks.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry (intentionally leaked: usable from destructors
  /// of statics, e.g. the bench-harness at-exit sink).
  static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& help = "",
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const Labels& labels = {});
  LogHistogram& histogram(const std::string& name,
                          const std::string& help = "",
                          const Labels& labels = {},
                          HistogramSpec spec = {});

  /// Prometheus text exposition format (one snapshot).
  [[nodiscard]] std::string to_prometheus() const;
  /// The same snapshot as a JSON document.
  [[nodiscard]] std::string to_json() const;

  /// Drop every family (tests / between benchmark repetitions). Invalidates
  /// previously returned handles.
  void clear();

 private:
  struct Child {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LogHistogram> histogram;
  };
  struct Family {
    std::string help;
    MetricType type = MetricType::kCounter;
    // unique_ptr elements: vector growth must not move a Child whose
    // address another thread already holds as a metric handle.
    std::vector<std::unique_ptr<Child>> children;
  };

  /// Finds or creates the series, fully constructing its payload while mu_
  /// is held, so concurrent lookups of the same series never double-assign.
  Child& child(const std::string& name, const std::string& help,
               MetricType type, const Labels& labels,
               const HistogramSpec& spec);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace cgraph::obs
