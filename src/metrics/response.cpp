#include "metrics/response.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cgraph {

ResponseTimeSeries::ResponseTimeSeries(std::string label)
    : label_(std::move(label)) {}

void ResponseTimeSeries::add(double seconds) { samples_.push_back(seconds); }

void ResponseTimeSeries::add_all(const std::vector<double>& seconds) {
  samples_.insert(samples_.end(), seconds.begin(), seconds.end());
}

std::vector<double> ResponseTimeSeries::sorted() const {
  std::vector<double> s = samples_;
  std::sort(s.begin(), s.end());
  return s;
}

// Degenerate series return defined values (0 for empty, the sample for a
// single element) instead of crashing or propagating NaN — a service run
// where every query was shed still reports printable stats.

double ResponseTimeSeries::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double ResponseTimeSeries::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double ResponseTimeSeries::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double ResponseTimeSeries::percentile(double p) const {
  return cgraph::percentile(samples_, p);
}

BoxplotSummary ResponseTimeSeries::boxplot_summary() const {
  return boxplot(samples_);
}

double ResponseTimeSeries::fraction_within(double threshold) const {
  if (samples_.empty()) return 0.0;
  std::size_t within = 0;
  for (double x : samples_) {
    if (x <= threshold) ++within;
  }
  return static_cast<double>(within) / static_cast<double>(samples_.size());
}

}  // namespace cgraph
