#include "metrics/reporter.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/logging.hpp"

#include "util/histogram.hpp"
#include "util/table.hpp"

namespace cgraph {

Reporter::Reporter(std::string title) : title_(std::move(title)) {
  std::printf("\n==== %s ====\n", title_.c_str());
}

void Reporter::note(const std::string& text) const {
  std::printf("  %s\n", text.c_str());
}

void Reporter::print_sorted_series(
    const std::vector<ResponseTimeSeries>& series, std::size_t step) const {
  if (series.empty()) return;
  std::vector<std::vector<double>> sorted;
  std::size_t max_n = 0;
  for (const auto& s : series) {
    sorted.push_back(s.sorted());
    max_n = std::max(max_n, sorted.back().size());
  }

  std::vector<std::string> headers{"query rank"};
  for (const auto& s : series) headers.push_back(s.label() + " (s)");
  AsciiTable table(std::move(headers));
  for (std::size_t i = 0; i < max_n; i += step) {
    std::vector<std::string> row{AsciiTable::fmt_int(
        static_cast<long long>(i + 1))};
    for (const auto& v : sorted) {
      row.push_back(i < v.size() ? AsciiTable::fmt(v[i], 4) : "-");
    }
    table.add_row(std::move(row));
  }
  // Always include the tail (the paper's "upper bound of response time").
  if (max_n > 0 && (max_n - 1) % step != 0) {
    std::vector<std::string> row{
        AsciiTable::fmt_int(static_cast<long long>(max_n))};
    for (const auto& v : sorted) {
      row.push_back(!v.empty() ? AsciiTable::fmt(v.back(), 4) : "-");
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);

  for (const auto& s : series) {
    std::printf("  %-12s mean=%.4fs  p50=%.4fs  p90=%.4fs  max=%.4fs\n",
                s.label().c_str(), s.mean(), s.percentile(50),
                s.percentile(90), s.max());
  }
}

void Reporter::print_boxplots(
    const std::vector<ResponseTimeSeries>& series) const {
  AsciiTable table({"system", "min (s)", "q1", "median", "q3", "max",
                    "mean", "n"});
  for (const auto& s : series) {
    const BoxplotSummary b = s.boxplot_summary();
    table.add_row({s.label(), AsciiTable::fmt(b.min, 4),
                   AsciiTable::fmt(b.q1, 4), AsciiTable::fmt(b.median, 4),
                   AsciiTable::fmt(b.q3, 4), AsciiTable::fmt(b.max, 4),
                   AsciiTable::fmt(b.mean, 4),
                   AsciiTable::fmt_int(static_cast<long long>(b.count))});
  }
  std::fputs(table.to_string().c_str(), stdout);
}

void Reporter::print_histograms(const std::vector<ResponseTimeSeries>& series,
                                double bin_width, double max_seconds) const {
  for (const auto& s : series) {
    const auto nbins =
        static_cast<std::size_t>(max_seconds / bin_width + 0.5);
    Histogram h(0.0, max_seconds, nbins);
    for (double x : s.samples()) h.add(x);
    std::printf("  -- %s (%zu queries) --\n", s.label().c_str(), s.count());
    std::fputs(h.to_string().c_str(), stdout);
  }
}

namespace {

/// Keep [A-Za-z0-9._-]; anything else (spaces, slashes, shell metachars
/// from free-form labels) becomes '_' so the file name stays safe.
std::string sanitize_component(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

void Reporter::maybe_write_csv(const ResponseTimeSeries& series,
                               const std::string& experiment) {
  const char* dir = std::getenv("CGRAPH_CSV_DIR");
  if (dir == nullptr) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    CGRAPH_LOG_WARN("cannot create CGRAPH_CSV_DIR %s: %s", dir,
                    ec.message().c_str());
    return;
  }
  const std::string path = std::string(dir) + "/" +
                           sanitize_component(experiment) + "_" +
                           sanitize_component(series.label()) + ".csv";
  std::ofstream out(path);
  if (!out) {
    CGRAPH_LOG_WARN("cannot open %s for writing", path.c_str());
    return;
  }
  out << "rank,seconds\n";
  const auto sorted = series.sorted();
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    out << (i + 1) << ',' << sorted[i] << '\n';
  }
}

}  // namespace cgraph
