// Response-time collection and summarization for concurrent-query
// experiments. One ResponseTimeSeries per (system, configuration) cell of
// a figure.
#pragma once

#include <string>
#include <vector>

#include "util/stats.hpp"

namespace cgraph {

class ResponseTimeSeries {
 public:
  explicit ResponseTimeSeries(std::string label = "");

  void add(double seconds);
  void add_all(const std::vector<double>& seconds);

  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] const std::vector<double>& samples() const {
    return samples_;
  }

  /// Samples sorted ascending (the paper's Fig. 7/9 presentation).
  [[nodiscard]] std::vector<double> sorted() const;

  [[nodiscard]] double mean() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] BoxplotSummary boxplot_summary() const;

  /// Fraction of queries answered within `threshold` seconds (the paper's
  /// "85% of queries return within 0.4 s" style statements).
  [[nodiscard]] double fraction_within(double threshold) const;

 private:
  std::string label_;
  std::vector<double> samples_;
};

}  // namespace cgraph
