// Figure/table rendering for the benchmark harnesses. Every reproduced
// experiment prints through these helpers so output formats stay uniform
// and machine-parsable (optional CSV mirror).
#pragma once

#include <string>
#include <vector>

#include "metrics/response.hpp"

namespace cgraph {

class Reporter {
 public:
  /// header, e.g. "Figure 7: 100 concurrent 3-hop queries, OR graph".
  explicit Reporter(std::string title);

  /// Paper Fig. 7/9 style: per-query response times sorted ascending, one
  /// series per system, printed as aligned columns sampled every `step`
  /// queries (plus summary stats).
  void print_sorted_series(const std::vector<ResponseTimeSeries>& series,
                           std::size_t step = 10) const;

  /// Paper Fig. 8 style: boxplot summary lines per system.
  void print_boxplots(const std::vector<ResponseTimeSeries>& series) const;

  /// Paper Fig. 11/12 style: response-time histogram (percent per bin,
  /// cumulative), bins of `bin_width` seconds up to `max_seconds`.
  void print_histograms(const std::vector<ResponseTimeSeries>& series,
                        double bin_width = 0.2,
                        double max_seconds = 2.0) const;

  /// Free-form summary line under the title.
  void note(const std::string& text) const;

  /// Mirror a series to CSV if CGRAPH_CSV_DIR is set (one file per label).
  static void maybe_write_csv(const ResponseTimeSeries& series,
                              const std::string& experiment);

 private:
  std::string title_;
};

}  // namespace cgraph
