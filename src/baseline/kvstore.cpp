#include "baseline/kvstore.hpp"

#include <chrono>
#include <thread>

#include "util/assert.hpp"

namespace cgraph {
namespace {

void io_wait(double micros) {
  if (micros <= 0) return;
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(static_cast<std::int64_t>(micros * 1e3)));
}

}  // namespace

KvStore::KvStore(Options opts) : opts_(opts), stripes_(opts.lock_stripes) {
  CGRAPH_CHECK(opts.lock_stripes > 0);
}

KvStore::Stripe& KvStore::stripe_for(const std::string& key) const {
  const std::size_t h = std::hash<std::string>{}(key);
  return stripes_[h % stripes_.size()];
}

void KvStore::put(const std::string& key, std::vector<std::uint8_t> value) {
  io_wait(opts_.write_latency_us);
  Stripe& s = stripe_for(key);
  std::lock_guard<std::mutex> lk(s.mu);
  s.map[key] = std::move(value);
}

std::optional<std::vector<std::uint8_t>> KvStore::get(
    const std::string& key) const {
  io_wait(opts_.read_latency_us);
  reads_.fetch_add(1, std::memory_order_relaxed);
  Stripe& s = stripe_for(key);
  std::lock_guard<std::mutex> lk(s.mu);
  const auto it = s.map.find(key);
  if (it == s.map.end()) return std::nullopt;
  return it->second;  // copy, like a backend read materializing the row
}

std::size_t KvStore::size() const {
  std::size_t n = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lk(s.mu);
    n += s.map.size();
  }
  return n;
}

}  // namespace cgraph
