// TitanLike: the graph-database baseline (paper §4.2 compares against
// Titan [3], a distributed graph DB whose concurrent 3-hop queries average
// ~8.6 s with 100 s tails on a 117 M edge graph).
//
// Architecture mirrored here: adjacency lists live as serialized row blobs
// in a key-value storage engine; a k-hop query is a BFS that performs one
// storage read + deserialization per expanded vertex; concurrent queries
// run on a session thread pool with a fixed per-query software-stack
// overhead. No state is shared between queries — each allocates its own
// visited set, exactly the behaviour that makes real graph databases slow
// and high-variance under concurrency.
#pragma once

#include <span>
#include <vector>

#include "baseline/kvstore.hpp"
#include "graph/graph.hpp"
#include "query/query.hpp"

namespace cgraph {

struct TitanLikeOptions {
  KvStoreOptions storage;
  /// Fixed software-stack cost per query (session setup, query parsing,
  /// JVM-ish bookkeeping). Titan's stack is far thicker than this.
  double per_query_overhead_ms = 2.0;
  /// Worker threads serving concurrent sessions.
  std::size_t session_threads = 8;
};

class TitanLikeDb {
 public:
  using Options = TitanLikeOptions;

  explicit TitanLikeDb(Options opts = {});

  /// Bulk-load a graph: one storage row per vertex adjacency.
  void load(const Graph& graph);

  [[nodiscard]] VertexId num_vertices() const { return num_vertices_; }

  /// One k-hop query through the storage stack. Returns visited count
  /// (source excluded) and fills wall_seconds.
  QueryResult khop(const KHopQuery& query) const;

  /// Run a set of concurrent queries on the session pool; per-query
  /// response times include queueing for a session thread.
  std::vector<QueryResult> run_concurrent(
      std::span<const KHopQuery> queries) const;

  /// One PageRank iteration through the storage stack (full scan, one read
  /// per vertex row). Returns wall seconds — the paper reports "hours" for
  /// Titan on OR-100M; here it demonstrates the same orders-of-magnitude
  /// gap against the native engine.
  double pagerank_iteration_seconds() const;

 private:
  [[nodiscard]] std::vector<VertexId> fetch_neighbors(VertexId v) const;

  Options opts_;
  KvStore store_;
  VertexId num_vertices_ = 0;
};

}  // namespace cgraph
