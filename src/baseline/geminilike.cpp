#include "baseline/geminilike.hpp"

#include "util/assert.hpp"
#include "util/bitops.hpp"
#include "util/timer.hpp"

namespace cgraph {
namespace {

// Direction-optimizing switch (Beamer-style, as real Gemini uses): go
// bottom-up when the frontier's out-edges outnumber the unvisited
// vertices' in-edges divided by alpha.
constexpr double kBottomUpAlpha = 14.0;

}  // namespace

GeminiLikeEngine::GeminiLikeEngine(const Graph& graph, Options opts)
    : graph_(graph),
      opts_(opts),
      partition_(RangePartition::balanced_by_edges(graph, opts.machines)) {
  CGRAPH_CHECK(opts_.machines > 0);
}

GeminiLikeEngine::Exec GeminiLikeEngine::execute(
    const KHopQuery& query) const {
  CGRAPH_CHECK(query.source < graph_.num_vertices());
  WallTimer timer;

  const VertexId n = graph_.num_vertices();
  Bitmap visited(n);
  Bitmap in_frontier(n);
  visited.set(query.source);
  in_frontier.set(query.source);
  std::vector<VertexId> frontier{query.source};
  std::vector<VertexId> next;

  // Running count of unexplored edges for the direction heuristic.
  EdgeIndex unvisited_in_edges =
      graph_.has_in_edges() ? graph_.num_edges() : 0;

  Exec exec;
  double sim_ns = 0;
  Depth level = 0;
  while (!frontier.empty() && level < query.k) {
    next.clear();
    std::uint64_t level_edges = 0;
    std::uint64_t boundary_msgs = 0;

    EdgeIndex frontier_out_edges = 0;
    for (VertexId v : frontier) frontier_out_edges += graph_.out_degree(v);

    const bool bottom_up =
        opts_.direction_optimizing && graph_.has_in_edges() &&
        static_cast<double>(frontier_out_edges) >
            static_cast<double>(unvisited_in_edges) / kBottomUpAlpha;

    if (bottom_up) {
      // Bottom-up: every unvisited vertex probes its parents for frontier
      // membership; early exit on the first hit.
      for (VertexId u = 0; u < n; ++u) {
        if (visited.test(u)) continue;
        for (VertexId p : graph_.in_neighbors(u)) {
          ++level_edges;
          if (in_frontier.test(p)) {
            visited.set(u);
            next.push_back(u);
            if (partition_.owner(p) != partition_.owner(u)) ++boundary_msgs;
            break;
          }
        }
      }
    } else {
      // Top-down: expand the frontier's out-edges.
      for (VertexId v : frontier) {
        const auto nbrs = graph_.out_neighbors(v);
        level_edges += nbrs.size();
        const PartitionId owner_v = partition_.owner(v);
        for (VertexId t : nbrs) {
          if (visited.atomic_test_and_set(t)) {
            next.push_back(t);
            if (partition_.owner(t) != owner_v) ++boundary_msgs;
          }
        }
      }
    }

    exec.edges_scanned += level_edges;
    // Gemini parallelizes one query across machines: compute divides by
    // machine count; boundary sync + one barrier per level are paid fully.
    sim_ns += opts_.cost_model.compute_ns(level_edges, frontier.size()) /
              static_cast<double>(opts_.machines);
    sim_ns += opts_.cost_model.comm_ns(
        opts_.machines > 1 ? opts_.machines - 1 : 0,
        boundary_msgs * sizeof(VertexId));
    sim_ns += opts_.cost_model.ns_per_barrier;

    // Maintain the unexplored-in-edge estimate and frontier bitmap.
    if (graph_.has_in_edges()) {
      for (VertexId t : next) unvisited_in_edges -= graph_.in_degree(t);
    }
    in_frontier.clear_all();
    for (VertexId t : next) in_frontier.set(t);
    frontier.swap(next);
    ++level;
  }

  exec.visited = visited.count() - 1;
  exec.levels = level;
  exec.wall_seconds = timer.seconds();
  exec.sim_seconds = sim_ns * 1e-9;
  return exec;
}

std::vector<QueryResult> GeminiLikeEngine::run_serialized(
    std::span<const KHopQuery> queries) const {
  std::vector<QueryResult> results(queries.size());
  double backlog_wall = 0;
  double backlog_sim = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Exec exec = execute(queries[i]);
    backlog_wall += exec.wall_seconds;
    backlog_sim += exec.sim_seconds;
    QueryResult& r = results[i];
    r.id = queries[i].id;
    r.visited = exec.visited;
    r.levels = exec.levels;
    r.wall_seconds = backlog_wall;  // wait for everything ahead + own run
    r.sim_seconds = backlog_sim;
  }
  return results;
}

}  // namespace cgraph
