#include "baseline/titanlike.hpp"

#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_set>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cgraph {
namespace {

std::string row_key(VertexId v) { return "adj:" + std::to_string(v); }

std::vector<std::uint8_t> serialize_row(std::span<const VertexId> nbrs) {
  std::vector<std::uint8_t> blob(sizeof(std::uint32_t) +
                                 nbrs.size_bytes());
  const auto n = static_cast<std::uint32_t>(nbrs.size());
  std::memcpy(blob.data(), &n, sizeof n);
  std::memcpy(blob.data() + sizeof n, nbrs.data(), nbrs.size_bytes());
  return blob;
}

std::vector<VertexId> deserialize_row(const std::vector<std::uint8_t>& blob) {
  CGRAPH_CHECK(blob.size() >= sizeof(std::uint32_t));
  std::uint32_t n = 0;
  std::memcpy(&n, blob.data(), sizeof n);
  CGRAPH_CHECK(blob.size() == sizeof n + n * sizeof(VertexId));
  std::vector<VertexId> nbrs(n);
  std::memcpy(nbrs.data(), blob.data() + sizeof n, n * sizeof(VertexId));
  return nbrs;
}

}  // namespace

TitanLikeDb::TitanLikeDb(Options opts)
    : opts_(opts), store_(opts.storage) {}

void TitanLikeDb::load(const Graph& graph) {
  num_vertices_ = graph.num_vertices();
  for (VertexId v = 0; v < num_vertices_; ++v) {
    store_.put(row_key(v), serialize_row(graph.out_neighbors(v)));
  }
}

std::vector<VertexId> TitanLikeDb::fetch_neighbors(VertexId v) const {
  auto blob = store_.get(row_key(v));
  CGRAPH_CHECK_MSG(blob.has_value(), "missing adjacency row");
  return deserialize_row(*blob);
}

QueryResult TitanLikeDb::khop(const KHopQuery& query) const {
  CGRAPH_CHECK(query.source < num_vertices_);
  WallTimer timer;

  // Software-stack overhead before the traversal even starts.
  std::this_thread::sleep_for(std::chrono::nanoseconds(
      static_cast<std::int64_t>(opts_.per_query_overhead_ms * 1e6)));

  // Plain BFS with per-query containers — no sharing with other sessions.
  std::unordered_set<VertexId> visited{query.source};
  std::vector<VertexId> frontier{query.source};
  std::vector<VertexId> next;
  Depth level = 0;
  while (!frontier.empty() && level < query.k) {
    next.clear();
    for (VertexId v : frontier) {
      for (VertexId t : fetch_neighbors(v)) {
        if (visited.insert(t).second) next.push_back(t);
      }
    }
    frontier.swap(next);
    ++level;
  }

  QueryResult result;
  result.id = query.id;
  result.visited = visited.size() - 1;
  result.levels = level;
  result.wall_seconds = timer.seconds();
  result.sim_seconds = result.wall_seconds;
  return result;
}

std::vector<QueryResult> TitanLikeDb::run_concurrent(
    std::span<const KHopQuery> queries) const {
  std::vector<QueryResult> results(queries.size());
  WallTimer submit;  // all queries are submitted at t = 0
  {
    ThreadPool pool(opts_.session_threads);
    std::vector<std::future<void>> futs;
    futs.reserve(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      futs.push_back(pool.submit([this, &queries, &results, &submit, i] {
        const KHopQuery q = queries[i];
        QueryResult r = khop(q);
        // Response time = completion since submission (includes the wait
        // for a free session thread).
        r.wall_seconds = submit.seconds();
        r.sim_seconds = r.wall_seconds;
        results[i] = r;
      }));
    }
    for (auto& f : futs) f.get();
  }
  return results;
}

double TitanLikeDb::pagerank_iteration_seconds() const {
  WallTimer timer;
  std::vector<double> contrib(num_vertices_, 0.0);
  std::vector<double> value(num_vertices_, 1.0);
  // One iteration = one full storage scan: read every adjacency row,
  // deserialize, push contributions.
  for (VertexId v = 0; v < num_vertices_; ++v) {
    const auto nbrs = fetch_neighbors(v);
    if (nbrs.empty()) continue;
    const double share = value[v] / static_cast<double>(nbrs.size());
    for (VertexId t : nbrs) contrib[t] += share;
  }
  for (VertexId v = 0; v < num_vertices_; ++v) {
    value[v] = 0.15 + 0.85 * contrib[v];
  }
  return timer.seconds();
}

}  // namespace cgraph
