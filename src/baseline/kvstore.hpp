// Simulated storage-engine substrate for the TitanLike baseline.
//
// Titan's poor concurrent-query latency (paper §4.2: 8.6 s average, 100 s
// tail) comes from its storage stack: every adjacency fetch is a key-value
// read through a backend (Cassandra/HBase) with per-operation latency,
// (de)serialization of row blobs, and lock contention. This component
// reproduces those mechanics honestly: real byte-blob storage behind a
// striped-lock map, a real deserialization pass on every read, and a
// configurable per-read I/O wait (sleep, so concurrent readers overlap the
// way threads blocked on I/O do).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace cgraph {

struct KvStoreOptions {
  double read_latency_us = 20.0;   // per-get backend round trip
  double write_latency_us = 5.0;   // per-put (bulk load path)
  std::size_t lock_stripes = 16;   // backend contention granularity
};

class KvStore {
 public:
  using Options = KvStoreOptions;

  explicit KvStore(Options opts = {});

  void put(const std::string& key, std::vector<std::uint8_t> value);

  /// Returns a copy of the value blob (as a backend read would), after the
  /// simulated I/O wait. std::nullopt if absent.
  std::optional<std::vector<std::uint8_t>> get(const std::string& key) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t reads_performed() const {
    return reads_.load(std::memory_order_relaxed);
  }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::vector<std::uint8_t>> map;
  };

  [[nodiscard]] Stripe& stripe_for(const std::string& key) const;

  Options opts_;
  mutable std::vector<Stripe> stripes_;
  mutable std::atomic<std::uint64_t> reads_{0};
};

}  // namespace cgraph
