// GeminiLike: the fast-but-serial baseline (paper §4.2 / §5).
//
// Gemini [Zhu et al., OSDI'16] is an efficient distributed engine —
// "only takes tens of milliseconds for a single 3-hop query" — but has no
// native concurrency support, so concurrently-issued queries are
// serialized and each response time includes the full backlog ahead of it
// (paper Fig. 8b: 4.25 s average vs C-Graph's 0.3 s; Fig. 13: total time
// linear in query count).
//
// Reproduced here as a tight in-memory CSR frontier BFS (per-query, no
// sharing) executed from a FIFO queue. Simulated distributed time uses the
// same cost model as C-Graph: per-superstep compute is divided across
// machines (Gemini parallelizes a *single* query well) plus barrier and
// boundary-communication charges.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "net/cost_model.hpp"
#include "query/query.hpp"

namespace cgraph {

struct GeminiLikeOptions {
  PartitionId machines = 1;
  CostModel cost_model;
  /// Beamer-style top-down/bottom-up switching (as real Gemini does).
  bool direction_optimizing = true;
};

class GeminiLikeEngine {
 public:
  using Options = GeminiLikeOptions;

  GeminiLikeEngine(const Graph& graph, Options opts = {});

  struct Exec {
    std::uint64_t visited = 0;
    std::uint64_t edges_scanned = 0;
    Depth levels = 0;
    double wall_seconds = 0;
    double sim_seconds = 0;
  };

  /// One k-hop/BFS executed at full machine efficiency.
  Exec execute(const KHopQuery& query) const;

  /// FIFO-serialized execution of a concurrent workload; response time of
  /// query i includes all of queries 0..i-1 (the paper's "stacked up wait
  /// time").
  std::vector<QueryResult> run_serialized(
      std::span<const KHopQuery> queries) const;

 private:
  const Graph& graph_;
  Options opts_;
  RangePartition partition_;  // used to estimate boundary traffic
};

}  // namespace cgraph
