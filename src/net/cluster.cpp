#include "net/cluster.hpp"

#include <algorithm>
#include <utility>

#include "obs/event_tracer.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace cgraph {

void SyncBarrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    if (completion_) completion_();
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lk, [&] { return generation_ != gen; });
  }
}

double ClusterTelemetry::straggler_ratio() const {
  if (supersteps.empty()) return 0.0;
  double sum = 0;
  for (const SuperstepTelemetry& s : supersteps) sum += s.straggler_ratio;
  return sum / static_cast<double>(supersteps.size());
}

MachineContext::MachineContext(Cluster& cluster, PartitionId id)
    : cluster_(cluster), id_(id), proto_(*cluster.proto_[id]) {}

PartitionId MachineContext::num_machines() const {
  return cluster_.num_machines();
}

void MachineContext::send(PartitionId to, std::uint32_t tag, Packet payload) {
  step_packets_ += 1;
  step_bytes_ += payload.size();
  if (obs::tracing_enabled()) {
    obs::TraceEvent ev;
    ev.phase = obs::TraceEventPhase::kFabricSend;
    ev.machine = static_cast<std::int32_t>(id_);
    ev.sim_seconds = clock().seconds();
    ev.a = static_cast<double>(payload.size());
    ev.b = static_cast<double>(to);
    obs::trace(ev);
  }
  cluster_.fabric_.send_superstep(id_, to, tag, std::move(payload),
                                  superstep_);
}

void MachineContext::send_async(PartitionId to, std::uint32_t tag,
                                Packet payload) {
  // Async sends are charged immediately: the sender pays injection cost.
  cluster_.clocks_[id_].charge_comm(cluster_.cost_model_, 1, payload.size());
  if (obs::tracing_enabled()) {
    obs::TraceEvent ev;
    ev.phase = obs::TraceEventPhase::kFabricAsyncSend;
    ev.machine = static_cast<std::int32_t>(id_);
    ev.sim_seconds = clock().seconds();
    ev.a = static_cast<double>(payload.size());
    ev.b = static_cast<double>(to);
    obs::trace(ev);
  }
  // Keep a copy for retransmission until the ack arrives. (A clean fabric
  // acks on the receiver's next poll, so the window stays tiny.)
  Packet copy = payload;
  const Fabric::AsyncSendResult res =
      cluster_.fabric_.send_now(id_, to, tag, std::move(payload));
  proto_.pending.push_back({to, tag, std::move(copy), res.seq, res.deposited});
}

std::vector<Envelope> MachineContext::recv_staged() {
  // Messages staged under superstep s-1 become visible in superstep s.
  CGRAPH_DCHECK(superstep_ > 0);
  return cluster_.fabric_.mailbox(id_).drain_superstep(superstep_ - 1);
}

std::vector<Envelope> MachineContext::recv_async() {
  Fabric& fabric = cluster_.fabric_;
  std::vector<PendingSend>& pending = proto_.pending;
  std::vector<Envelope> out;
  for (Envelope& env : fabric.mailbox(id_).drain_now()) {
    if (env.kind == EnvelopeKind::kAck) {
      // Ack for one of our sends: release the retransmission copy.
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (pending[i].to == env.from && pending[i].seq == env.seq) {
          pending[i] = std::move(pending.back());
          pending.pop_back();
          break;
        }
      }
      continue;
    }
    // Data: ack it (even if it is a duplicate — the original ack may have
    // been lost, and an unacked sender keeps retransmitting), then apply
    // exactly once.
    fabric.send_ack(id_, env.from, env.seq);
    cluster_.clocks_[id_].charge_comm(cluster_.cost_model_, 1, 0);
    if (obs::tracing_enabled()) {
      obs::TraceEvent ev;
      ev.phase = obs::TraceEventPhase::kFabricAck;
      ev.machine = static_cast<std::int32_t>(id_);
      ev.sim_seconds = clock().seconds();
      ev.a = static_cast<double>(env.seq);
      ev.b = static_cast<double>(env.from);
      obs::trace(ev);
    }
    if (!proto_.dedup.accept(env.from, env.seq)) {
      fabric.record_dedup_suppressed(id_);
      continue;
    }
    out.push_back(std::move(env));
  }

  // Retry pump: retransmit unacked sends whose backoff timeout expired;
  // surface the ones that exhausted their budget. The timeout grows
  // exponentially per attempt with deterministic per-link jitter, so a
  // lossy link's retransmissions thin out and de-synchronize across links
  // instead of hammering in lockstep every fixed interval.
  const FaultPlan* plan = fabric.fault_plan();
  const std::uint64_t retry_seed = plan != nullptr ? plan->seed() : 0;
  for (std::size_t i = 0; i < pending.size();) {
    PendingSend& p = pending[i];
    if (++p.polls_since_send <
        retry_backoff_polls(retry_seed, id_, p.to, p.attempts)) {
      ++i;
      continue;
    }
    if (p.attempts >= kMaxAsyncAttempts) {
      if (!p.ever_deposited) {
        // Every attempt was dropped: the receiver provably never saw the
        // packet, so surfacing it as failed is safe (no double-apply and
        // no double credit release).
        fabric.record_delivery_failed(id_);
        proto_.failed.push_back({p.to, p.tag, std::move(p.payload)});
      }
      // else: the data reached the receiver at least once and only the
      // acks keep getting lost — abandon the bookkeeping entry silently.
      pending[i] = std::move(pending.back());
      pending.pop_back();
      continue;
    }
    p.polls_since_send = 0;
    ++p.attempts;
    cluster_.clocks_[id_].charge_comm(cluster_.cost_model_, 1,
                                      p.payload.size());
    if (obs::tracing_enabled()) {
      obs::TraceEvent ev;
      ev.phase = obs::TraceEventPhase::kFabricRetry;
      ev.machine = static_cast<std::int32_t>(id_);
      ev.sim_seconds = clock().seconds();
      ev.a = static_cast<double>(p.attempts);
      ev.b = static_cast<double>(p.to);
      obs::trace(ev);
    }
    p.ever_deposited =
        fabric.resend_now(id_, p.to, p.tag, p.payload, p.seq) ||
        p.ever_deposited;
    ++i;
  }
  return out;
}

std::vector<FailedSend> MachineContext::take_failed_async() {
  return std::exchange(proto_.failed, {});
}

std::uint32_t MachineContext::retry_backoff_polls(std::uint64_t seed,
                                                  PartitionId from,
                                                  PartitionId to,
                                                  std::uint32_t attempt) {
  const std::uint32_t n = attempt == 0 ? 1 : attempt;
  // Bounded exponential base: 2, 4, 8, then capped at kRetryMaxPolls.
  const std::uint32_t shift = std::min<std::uint32_t>(n - 1, 31);
  const std::uint64_t raw = std::uint64_t{kRetryBasePolls} << shift;
  const std::uint32_t base = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(raw, kRetryMaxPolls));
  // SplitMix64-style finalizer over (seed, link, attempt): stateless, so a
  // checkpoint-restored replay recomputes identical jitter — no RNG stream
  // to snapshot. The directed link matters: from->to and to->from must not
  // share a schedule or their retransmissions stay in phase.
  std::uint64_t x = seed ^ 0x9e3779b97f4a7c15ULL;
  x ^= (static_cast<std::uint64_t>(from) << 40) ^
       (static_cast<std::uint64_t>(to) << 20) ^ n;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return base + static_cast<std::uint32_t>(x % (kRetryJitterPolls + 1));
}

void MachineContext::barrier() {
  // Comm cost for this superstep's BSP sends is paid at the barrier, which
  // models overlap-free exchange (conservative, like a Pregel superstep).
  cluster_.clocks_[id_].charge_comm(cluster_.cost_model_, step_packets_,
                                    step_bytes_);
  step_packets_ = 0;
  step_bytes_ = 0;
  const double barrier_sim_t0 = clock().seconds();
  WallTimer wait_timer;
  cluster_.barrier_.arrive_and_wait();
  // Own-slot fields only; the sim-wait field of this slot is written by
  // the completion callback while every machine is parked in the barrier,
  // so the accesses never overlap.
  MachineTelemetry& mt = cluster_.telemetry_.machines[id_];
  mt.barrier_wait_wall_seconds += wait_timer.seconds();
  mt.supersteps += 1;
  if (obs::tracing_enabled()) {
    // The completion callback advanced this machine's clock to the barrier
    // sync point while everyone was parked, so [t0, now) is the simulated
    // idle wait at this barrier.
    obs::TraceEvent ev;
    ev.phase = obs::TraceEventPhase::kBarrier;
    ev.kind = obs::TraceEventKind::kSpan;
    ev.machine = static_cast<std::int32_t>(id_);
    ev.sim_seconds = barrier_sim_t0;
    ev.sim_dur_seconds = clock().seconds() - barrier_sim_t0;
    ev.wall_dur_ns = static_cast<std::uint64_t>(wait_timer.nanos());
    ev.a = static_cast<double>(superstep_);
    obs::trace(ev);
  }
  ++superstep_;
  // Crash-stop failure: the completion callback flagged a crash at this
  // barrier, and every machine is parked at it, so every machine unwinds
  // here — no thread is left waiting at a later barrier (no deadlock).
  if (cluster_.crash_pending_.load(std::memory_order_acquire)) {
    throw MachineCrash{cluster_.crashed_machine_, cluster_.crash_superstep_};
  }
}

void MachineContext::tick_crash_point() {
  ++tick_;
  if (cluster_.recovery_enabled_) cluster_.consume_crash(id_, tick_);
  if (cluster_.crash_pending_.load(std::memory_order_acquire)) {
    throw MachineCrash{cluster_.crashed_machine_, cluster_.crash_superstep_};
  }
}

bool MachineContext::maybe_checkpoint(
    const std::function<void(PacketWriter&)>& save) {
  Cluster& cl = cluster_;
  if (!cl.recovery_enabled_) return false;
  // Staged engines advance superstep_, the async engine advances tick_;
  // either way "progress" is monotone and deterministic per machine, so
  // the interval gate fires at the same points on every replay.
  const std::uint64_t progress = superstep_ + tick_;
  const std::uint64_t interval = cl.recovery_opts_.checkpoint_interval;
  if (has_last_ckpt_) {
    if (progress - (last_ckpt_step_ + last_ckpt_tick_) < interval) {
      return false;
    }
  } else {
    // progress 0 is the body entry point — the baseline snapshot already
    // covers it, so the first checkpoint waits for the interval.
    if (progress == 0 || progress < interval) return false;
  }
  // Death-mid-checkpoint-write simulation (HaltSpec::partial_from): this
  // machine's blob for the cut at partial_step never reaches the store, so
  // the armed halt leaves a partial cut behind. Keyed on (id, progress) —
  // not on save arrival order — so the sweep is deterministic under any
  // thread interleaving. The interval gate still advances: the machine
  // believes it checkpointed.
  if (cl.halt_armed_ && cl.halt_spec_.partial_from != kInvalidPartition &&
      progress == cl.halt_spec_.partial_step &&
      id_ >= cl.halt_spec_.partial_from) {
    has_last_ckpt_ = true;
    last_ckpt_step_ = superstep_;
    last_ckpt_tick_ = tick_;
    return false;
  }
  WallTimer timer;
  PacketWriter w;
  save(w);
  MachineCheckpoint ckpt;
  ckpt.step = superstep_;
  ckpt.tick = tick_;
  ckpt.clock_ns = cluster_.clocks_[id_].nanos();
  ckpt.state = w.take();
  const std::size_t bytes = ckpt.state.size();
  cl.store_.save_machine(id_, std::move(ckpt));
  has_last_ckpt_ = true;
  last_ckpt_step_ = superstep_;
  last_ckpt_tick_ = tick_;
  {
    std::lock_guard<std::mutex> lk(cl.crash_mu_);
    cl.recovery_stats_.checkpoints_taken += 1;
    cl.recovery_stats_.checkpoint_bytes += bytes;
    cl.recovery_stats_.checkpoint_seconds += timer.seconds();
  }
  if (obs::tracing_enabled()) {
    obs::TraceEvent ev;
    ev.phase = obs::TraceEventPhase::kCheckpoint;
    ev.machine = static_cast<std::int32_t>(id_);
    ev.sim_seconds = clock().seconds();
    ev.wall_dur_ns = static_cast<std::uint64_t>(timer.nanos());
    ev.a = static_cast<double>(bytes);
    ev.b = static_cast<double>(superstep_);
    obs::trace(ev);
  }
  return true;
}

std::optional<Packet> MachineContext::restore_checkpoint() {
  Cluster& cl = cluster_;
  if (!cl.recovery_enabled_) return std::nullopt;
  // The store is wiped at run entry, so a blob present at body entry means
  // this body is being re-entered after a crash this run.
  auto blob = cl.store_.machine(id_);
  if (!blob) return std::nullopt;
  superstep_ = blob->step;
  tick_ = blob->tick;
  has_last_ckpt_ = true;
  last_ckpt_step_ = blob->step;
  last_ckpt_tick_ = blob->tick;
  if (obs::tracing_enabled()) {
    // The cluster rolled the clocks back before re-entering the body, so
    // this instant lands at the restored (checkpointed) sim time.
    obs::TraceEvent ev;
    ev.phase = obs::TraceEventPhase::kRestore;
    ev.machine = static_cast<std::int32_t>(id_);
    ev.sim_seconds = clock().seconds();
    ev.a = static_cast<double>(blob->step);
    ev.b = static_cast<double>(blob->state.size());
    obs::trace(ev);
  }
  return std::move(blob->state);
}

void MachineContext::charge_compute(std::uint64_t edges,
                                    std::uint64_t vertices) {
  cluster_.clocks_[id_].charge_compute(cluster_.cost_model_, edges, vertices);
}

ThreadPool* MachineContext::pool() { return cluster_.compute_pool(id_); }

SimClock& MachineContext::clock() { return cluster_.clocks_[id_]; }

Cluster::Cluster(PartitionId num_machines, CostModel cost_model)
    : fabric_(num_machines),
      cost_model_(cost_model),
      clocks_(num_machines),
      barrier_(num_machines, [this] {
        // BSP step end: every clock advances to the slowest machine, plus
        // the global synchronization cost. Runs on exactly one thread while
        // the rest are parked, so telemetry writes need no atomics.
        double max_ns = 0;
        for (const SimClock& c : clocks_) max_ns = std::max(max_ns, c.nanos());

        SuperstepTelemetry step;
        double sum_delta = 0;
        double max_delta = 0;
        for (std::size_t i = 0; i < clocks_.size(); ++i) {
          const double delta =
              std::max(0.0, clocks_[i].nanos() - step_start_ns_);
          sum_delta += delta;
          max_delta = std::max(max_delta, delta);
          const double wait_ns = max_ns - clocks_[i].nanos();
          telemetry_.machines[i].barrier_wait_sim_seconds += wait_ns * 1e-9;
          step.barrier_wait_sim_seconds += wait_ns * 1e-9;
        }
        const double mean_delta =
            sum_delta / static_cast<double>(clocks_.size());
        step.straggler_ratio = mean_delta > 0 ? max_delta / mean_delta : 1.0;
        telemetry_.supersteps.push_back(step);

        max_ns += cost_model_.ns_per_barrier;
        for (SimClock& c : clocks_) c.advance_to(max_ns);
        step_start_ns_ = max_ns;

        // Recovery hook: snapshot cluster state for this superstep and
        // evaluate the crash schedule. Still on the single completion
        // thread, with every machine parked — a perfect consistent cut.
        on_barrier_complete();
      }) {
  CGRAPH_CHECK(num_machines > 0);
  telemetry_.machines.resize(num_machines);
  compute_threads_ = default_compute_threads();
  proto_.resize(num_machines);
  for (auto& p : proto_) p = std::make_unique<AsyncProtocolState>();
}

void Cluster::set_recovery(RecoveryOptions opts) {
  recovery_enabled_ = true;
  if (opts.checkpoint_interval == 0) opts.checkpoint_interval = 1;
  recovery_opts_ = std::move(opts);
}

void Cluster::on_barrier_complete() {
  ++barrier_count_;
  if (recovery_enabled_) {
    ClusterSnapshot snap;
    snap.links = fabric_.snapshot_links();
    snap.clock_ns.reserve(clocks_.size());
    for (const SimClock& c : clocks_) snap.clock_ns.push_back(c.nanos());
    snap.step_start_ns = step_start_ns_;
    store_.save_cluster_snapshot(barrier_count_, std::move(snap));
  }
  if (crash_pending_.load(std::memory_order_relaxed)) return;
  // Replica fail-stop: reuse the crash unwind — every machine is parked at
  // this barrier, so flagging crash_pending_ makes all of them throw
  // MachineCrash here; run() then sees halt_fired_ and escalates to
  // ReplicaDead instead of restoring.
  if (halt_armed_ && barrier_count_ >= halt_spec_.at_superstep) {
    halt_armed_ = false;
    halt_fired_ = true;
    crashed_machine_ = kInvalidPartition;
    crash_superstep_ = barrier_count_;
    crash_pending_.store(true, std::memory_order_release);
    return;
  }
  if (!recovery_enabled_) return;
  for (PartitionId m = 0; m < num_machines(); ++m) {
    if (consume_crash(m, barrier_count_)) break;
  }
}

bool Cluster::consume_crash(PartitionId machine, std::uint64_t step) {
  const FaultPlan* plan = fabric_.fault_plan();
  if (plan == nullptr || !plan->has_crash_faults()) return false;
  if (!plan->crash_decision(machine, step)) return false;
  std::lock_guard<std::mutex> lk(crash_mu_);
  const std::uint64_t key = (static_cast<std::uint64_t>(machine) << 32) | step;
  // Each crash event fires exactly once per run, so the replay after the
  // rollback makes it past the crash point instead of dying there forever.
  if (!consumed_crashes_.insert(key).second) return false;
  crashed_machine_ = machine;
  crash_superstep_ = step;
  crash_pending_.store(true, std::memory_order_release);
  return true;
}

void Cluster::set_compute_threads(std::size_t threads) {
  const std::size_t old = resolve_compute_threads(compute_threads_);
  compute_threads_ = threads;
  if (resolve_compute_threads(threads) != old) {
    pools_.clear();  // rebuilt lazily by the next run()
  }
}

ThreadPool* Cluster::compute_pool(PartitionId id) {
  if (id >= pools_.size()) return nullptr;
  return pools_[id].get();
}

void Cluster::ensure_compute_pools() {
  const std::size_t resolved = resolve_compute_threads(compute_threads_);
  if (resolved <= 1) {
    pools_.clear();
    return;
  }
  if (!pools_.empty()) return;
  pools_.resize(num_machines());
  for (auto& p : pools_) {
    // `resolved` counts the machine thread itself; workers are the rest.
    p = std::make_unique<ThreadPool>(resolved - 1);
  }
}

void Cluster::run(const std::function<void(MachineContext&)>& body) {
  run(body, RunHooks{});
}

void Cluster::run(const std::function<void(MachineContext&)>& body,
                  const RunHooks& hooks) {
  CGRAPH_CHECK_MSG(!halted_,
                   "this replica is halted (ReplicaDead); it cannot run again");
  ensure_compute_pools();
  begin_run();
  for (std::uint32_t attempt = 0;; ++attempt) {
    CGRAPH_CHECK_MSG(attempt < kMaxRecoveryAttempts,
                     "crash recovery did not converge (kMaxRecoveryAttempts)");
    if (!run_once(body)) return;
    if (halt_fired_) {
      // Whole-replica fail-stop: do NOT restore — the replica is dead. The
      // crash flag is cleared so export_resume_package() callers see a
      // quiescent store, and halted_ makes the death sticky.
      halt_fired_ = false;
      halted_ = true;
      crash_pending_.store(false, std::memory_order_release);
      throw ReplicaDead{crash_superstep_};
    }
    restore_from_checkpoint(hooks);
  }
}

void Cluster::arm_halt(HaltSpec spec) {
  CGRAPH_CHECK_MSG(!halted_, "cannot arm a halt on an already-dead replica");
  if (spec.at_superstep == 0) spec.at_superstep = 1;
  halt_spec_ = spec;
  halt_armed_ = true;
}

ClusterResumePackage Cluster::export_resume_package() const {
  ClusterResumePackage pkg;
  pkg.machines = num_machines();
  pkg.step = store_.latest_complete_step();
  CheckpointStore::Contents c = store_.export_contents();
  // Discard the partial tail: blobs/snapshots newer than the last complete
  // cut belong to a checkpoint write the halt interrupted. A survivor must
  // never see them — restoring a mixed-step cut would not be a consistent
  // state.
  for (auto& history : c.machines) {
    history.erase(history.upper_bound(pkg.step), history.end());
  }
  c.snapshots.erase(c.snapshots.upper_bound(pkg.step), c.snapshots.end());
  if (pkg.step == 0) {
    pkg.snapshot = c.baseline;
  } else {
    const auto it = c.snapshots.find(pkg.step);
    CGRAPH_CHECK_MSG(it != c.snapshots.end(),
                     "missing cluster snapshot at the complete cut");
    pkg.snapshot = it->second;
  }
  pkg.store = std::move(c);
  return pkg;
}

void Cluster::arm_resume(ClusterResumePackage pkg) {
  CGRAPH_CHECK_MSG(!halted_, "a dead replica cannot adopt work");
  CGRAPH_CHECK_MSG(recovery_enabled_,
                   "arm_resume requires recovery (the adopted blobs are "
                   "picked up via restore_checkpoint)");
  CGRAPH_CHECK_MSG(pkg.machines == num_machines(),
                   "resume package machine count mismatch");
  resume_pending_ = std::make_unique<ClusterResumePackage>(std::move(pkg));
}

void Cluster::begin_run() {
  barrier_count_ = 0;
  crash_pending_.store(false, std::memory_order_relaxed);
  crashed_machine_ = kInvalidPartition;
  crash_superstep_ = 0;
  {
    std::lock_guard<std::mutex> lk(crash_mu_);
    consumed_crashes_.clear();
  }
  telemetry_supersteps_at_run_start_ = telemetry_.supersteps.size();
  if (!recovery_enabled_) return;
  if (resume_pending_ != nullptr) {
    // Adoption: install the dead donor's store (partial tail already
    // discarded at export) and roll this cluster forward to the donor's
    // last complete cut. Machine bodies find the blobs via
    // restore_checkpoint() and resume mid-run; this replica's own FaultPlan
    // governs the remainder, which is safe because query answers are
    // fault-plan independent (the chaos invariant).
    ClusterResumePackage pkg = std::move(*resume_pending_);
    resume_pending_.reset();
    store_.import_contents(std::move(pkg.store));
    store_.set_dir(recovery_opts_.checkpoint_dir);
    if (!pkg.snapshot.clock_ns.empty()) {
      fabric_.restore_links(pkg.snapshot.links);
      for (std::size_t i = 0; i < clocks_.size(); ++i) {
        clocks_[i].set_nanos(pkg.snapshot.clock_ns[i]);
      }
      step_start_ns_ = pkg.snapshot.step_start_ns;
    }
    barrier_count_ = pkg.step;
    // Pre-cut supersteps ran on the donor; pad this run's telemetry so
    // per-level indices keep lining up with superstep numbers.
    telemetry_.supersteps.resize(telemetry_supersteps_at_run_start_ +
                                 pkg.step);
    return;
  }
  store_.reset(num_machines());
  store_.set_dir(recovery_opts_.checkpoint_dir);
  ClusterSnapshot base;
  base.links = fabric_.snapshot_links();
  base.clock_ns.reserve(clocks_.size());
  for (const SimClock& c : clocks_) base.clock_ns.push_back(c.nanos());
  base.step_start_ns = step_start_ns_;
  store_.set_baseline(std::move(base));
}

bool Cluster::run_once(const std::function<void(MachineContext&)>& body) {
  const PartitionId n = num_machines();
  if (n == 1) {
    set_thread_machine(0);
    MachineContext ctx(*this, 0);
    try {
      body(ctx);
    } catch (const MachineCrash&) {
    }
    set_thread_machine(-1);
    return crash_pending_.load(std::memory_order_acquire);
  }
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (PartitionId i = 0; i < n; ++i) {
    threads.emplace_back([this, &body, i] {
      set_thread_machine(static_cast<int>(i));
      MachineContext ctx(*this, i);
      try {
        body(ctx);
      } catch (const MachineCrash&) {
        // The crash flag is already set; sibling machines unwind at their
        // own barrier / tick crash point and run() restores below.
      }
    });
  }
  for (auto& t : threads) t.join();
  return crash_pending_.load(std::memory_order_acquire);
}

void Cluster::restore_from_checkpoint(const RunHooks& hooks) {
  WallTimer timer;
  recovery_stats_.crashes += 1;
  if (hooks.link_replay) {
    // Staged (BSP) engines: symmetric rollback to the latest common
    // checkpointed superstep S. Restoring the link sequence/attempt
    // counters alongside the machines' blobs means the replay re-issues
    // identical sequence numbers and identical fault decisions — the
    // replay is bit-exact, so restoring every machine is observationally
    // equivalent to restoring only the dead one (see DESIGN.md).
    const std::uint64_t step = store_.latest_common_step();
    ClusterSnapshot snap;
    if (step == 0) {
      snap = store_.baseline();
    } else {
      auto stored = store_.cluster_snapshot(step);
      CGRAPH_CHECK_MSG(stored.has_value(),
                       "missing cluster snapshot for restore step");
      snap = std::move(*stored);
    }
    fabric_.restore_links(snap.links);
    for (std::size_t i = 0; i < clocks_.size(); ++i) {
      clocks_[i].set_nanos(snap.clock_ns[i]);
    }
    step_start_ns_ = snap.step_start_ns;
    barrier_count_ = step;
    // Keep per-superstep telemetry aligned with the re-executed steps
    // (replayed barriers re-push their entries).
    telemetry_.supersteps.resize(telemetry_supersteps_at_run_start_ + step);
    recovery_stats_.supersteps_replayed +=
        crash_superstep_ > step ? crash_superstep_ - step : 1;
  } else {
    // Async engine: poll ticks are wall-schedule dependent, so there is no
    // bit-exact replay. Start delivery state fresh (new sequence numbers
    // against empty dedup windows are trivially safe) and let each machine
    // restore its own blob independently; correctness comes from monotone
    // re-relaxation, not replay.
    fabric_.reset_delivery_state();
    const ClusterSnapshot base = store_.baseline();
    for (PartitionId i = 0; i < num_machines(); ++i) {
      const auto blob = store_.machine(i);
      clocks_[i].set_nanos(blob ? blob->clock_ns : base.clock_ns[i]);
    }
    step_start_ns_ = base.step_start_ns;
    barrier_count_ = 0;
    telemetry_.supersteps.resize(telemetry_supersteps_at_run_start_);
    recovery_stats_.supersteps_replayed += 1;
  }
  reset_protocol_state();
  crash_pending_.store(false, std::memory_order_release);
  if (hooks.on_restore) hooks.on_restore();
  recovery_stats_.restore_seconds += timer.seconds();
}

double Cluster::sim_seconds() const {
  double max_ns = 0;
  for (const SimClock& c : clocks_) max_ns = std::max(max_ns, c.nanos());
  return max_ns * 1e-9;
}

void Cluster::reset_telemetry() {
  for (auto& m : telemetry_.machines) m = MachineTelemetry{};
  telemetry_.supersteps.clear();
}

void Cluster::publish_metrics(obs::MetricsRegistry& reg) const {
  for (PartitionId i = 0; i < num_machines(); ++i) {
    const obs::Labels ml{{"machine", std::to_string(i)}};
    const MachineTelemetry& m = telemetry_.machines[i];
    reg.counter("cgraph_machine_supersteps_total",
                "BSP supersteps executed per machine", ml)
        .inc(static_cast<double>(m.supersteps));
    reg.counter("cgraph_machine_barrier_wait_sim_seconds_total",
                "Simulated idle time waiting at barriers per machine", ml)
        .inc(m.barrier_wait_sim_seconds);
    reg.counter("cgraph_machine_barrier_wait_wall_seconds_total",
                "Host wall-clock blocked at barriers per machine", ml)
        .inc(m.barrier_wait_wall_seconds);
    const TrafficCounters& t = fabric_.sent_counters(i);
    reg.counter("cgraph_fabric_staged_packets_total",
                "BSP (staged) packets sent per machine", ml)
        .inc(static_cast<double>(
            t.staged_packets.load(std::memory_order_relaxed)));
    reg.counter("cgraph_fabric_staged_bytes_total",
                "BSP (staged) bytes sent per machine", ml)
        .inc(static_cast<double>(
            t.staged_bytes.load(std::memory_order_relaxed)));
    reg.counter("cgraph_fabric_async_packets_total",
                "Async packets sent per machine", ml)
        .inc(static_cast<double>(
            t.async_packets.load(std::memory_order_relaxed)));
    reg.counter("cgraph_fabric_async_bytes_total",
                "Async bytes sent per machine", ml)
        .inc(static_cast<double>(
            t.async_bytes.load(std::memory_order_relaxed)));
    // Delivery outcomes: exact per-attempt accounting, meaningful (and
    // non-zero) once a FaultPlan is installed on the fabric.
    const struct {
      const char* name;
      const char* help;
      std::uint64_t value;
    } outcomes[] = {
        {"cgraph_fabric_delivered_packets_total",
         "Mailbox deposits (duplicates included) per sending machine",
         t.delivered_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_dropped_packets_total",
         "Transmission attempts dropped by the fault layer",
         t.dropped_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_duplicated_packets_total",
         "Attempts delivered twice by the fault layer",
         t.duplicated_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_reordered_packets_total",
         "Attempts delivered ahead of earlier undrained traffic",
         t.reordered_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_delayed_packets_total",
         "Attempts held in the receiver's limbo queue",
         t.delayed_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_retried_packets_total",
         "Retransmission attempts (staged retry loop + async ack timeouts)",
         t.retried_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_delivery_failed_packets_total",
         "Packets abandoned after the bounded retry budget",
         t.delivery_failed_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_ack_packets_total",
         "Acknowledgement frames sent by the reliable async protocol",
         t.ack_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_dedup_suppressed_packets_total",
         "Duplicate deliveries suppressed by receiver dedup filters",
         t.dedup_suppressed_packets.load(std::memory_order_relaxed)},
    };
    for (const auto& o : outcomes) {
      reg.counter(o.name, o.help, ml).inc(static_cast<double>(o.value));
    }
  }
  if (!telemetry_.supersteps.empty()) {
    reg.gauge("cgraph_straggler_ratio",
              "Mean max/mean machine step time of the latest run")
        .set(telemetry_.straggler_ratio());
  }
  if (recovery_enabled_) {
    const RecoveryStats& r = recovery_stats_;
    reg.counter("cgraph_recovery_crashes_total",
                "Crash-stop machine failures injected by the fault plan")
        .inc(static_cast<double>(r.crashes));
    reg.counter("cgraph_recovery_supersteps_replayed_total",
                "Supersteps re-executed while recovering from crashes")
        .inc(static_cast<double>(r.supersteps_replayed));
    reg.counter("cgraph_recovery_checkpoints_total",
                "Machine checkpoints taken at superstep barriers")
        .inc(static_cast<double>(r.checkpoints_taken));
    reg.counter("cgraph_recovery_checkpoint_bytes_total",
                "Serialized machine state bytes checkpointed")
        .inc(static_cast<double>(r.checkpoint_bytes));
    reg.counter("cgraph_recovery_checkpoint_seconds_total",
                "Host wall-clock spent serializing checkpoints")
        .inc(r.checkpoint_seconds);
    reg.counter("cgraph_recovery_restore_seconds_total",
                "Host wall-clock spent restoring from checkpoints")
        .inc(r.restore_seconds);
    reg.counter("cgraph_recovery_queries_reexecuted_total",
                "Queries re-executed because a crash touched their batch")
        .inc(static_cast<double>(r.queries_reexecuted));
  }
}

}  // namespace cgraph
