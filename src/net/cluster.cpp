#include "net/cluster.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace cgraph {

void SyncBarrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    if (completion_) completion_();
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lk, [&] { return generation_ != gen; });
  }
}

double ClusterTelemetry::straggler_ratio() const {
  if (supersteps.empty()) return 0.0;
  double sum = 0;
  for (const SuperstepTelemetry& s : supersteps) sum += s.straggler_ratio;
  return sum / static_cast<double>(supersteps.size());
}

MachineContext::MachineContext(Cluster& cluster, PartitionId id)
    : cluster_(cluster), id_(id) {}

PartitionId MachineContext::num_machines() const {
  return cluster_.num_machines();
}

void MachineContext::send(PartitionId to, std::uint32_t tag, Packet payload) {
  step_packets_ += 1;
  step_bytes_ += payload.size();
  cluster_.fabric_.send_superstep(id_, to, tag, std::move(payload),
                                  superstep_);
}

void MachineContext::send_async(PartitionId to, std::uint32_t tag,
                                Packet payload) {
  // Async sends are charged immediately: the sender pays injection cost.
  cluster_.clocks_[id_].charge_comm(cluster_.cost_model_, 1, payload.size());
  // Keep a copy for retransmission until the ack arrives. (A clean fabric
  // acks on the receiver's next poll, so the window stays tiny.)
  Packet copy = payload;
  const Fabric::AsyncSendResult res =
      cluster_.fabric_.send_now(id_, to, tag, std::move(payload));
  pending_.push_back({to, tag, std::move(copy), res.seq, res.deposited});
}

std::vector<Envelope> MachineContext::recv_staged() {
  // Messages staged under superstep s-1 become visible in superstep s.
  CGRAPH_DCHECK(superstep_ > 0);
  return cluster_.fabric_.mailbox(id_).drain_superstep(superstep_ - 1);
}

std::vector<Envelope> MachineContext::recv_async() {
  Fabric& fabric = cluster_.fabric_;
  std::vector<Envelope> out;
  for (Envelope& env : fabric.mailbox(id_).drain_now()) {
    if (env.kind == EnvelopeKind::kAck) {
      // Ack for one of our sends: release the retransmission copy.
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].to == env.from && pending_[i].seq == env.seq) {
          pending_[i] = std::move(pending_.back());
          pending_.pop_back();
          break;
        }
      }
      continue;
    }
    // Data: ack it (even if it is a duplicate — the original ack may have
    // been lost, and an unacked sender keeps retransmitting), then apply
    // exactly once.
    fabric.send_ack(id_, env.from, env.seq);
    cluster_.clocks_[id_].charge_comm(cluster_.cost_model_, 1, 0);
    if (!dedup_.accept(env.from, env.seq)) {
      fabric.record_dedup_suppressed(id_);
      continue;
    }
    out.push_back(std::move(env));
  }

  // Retry pump: retransmit unacked sends whose poll-count timeout expired;
  // surface the ones that exhausted their budget.
  for (std::size_t i = 0; i < pending_.size();) {
    PendingSend& p = pending_[i];
    if (++p.polls_since_send < kRetryAfterPolls) {
      ++i;
      continue;
    }
    if (p.attempts >= kMaxAsyncAttempts) {
      if (!p.ever_deposited) {
        // Every attempt was dropped: the receiver provably never saw the
        // packet, so surfacing it as failed is safe (no double-apply and
        // no double credit release).
        fabric.record_delivery_failed(id_);
        failed_.push_back({p.to, p.tag, std::move(p.payload)});
      }
      // else: the data reached the receiver at least once and only the
      // acks keep getting lost — abandon the bookkeeping entry silently.
      pending_[i] = std::move(pending_.back());
      pending_.pop_back();
      continue;
    }
    p.polls_since_send = 0;
    ++p.attempts;
    cluster_.clocks_[id_].charge_comm(cluster_.cost_model_, 1,
                                      p.payload.size());
    p.ever_deposited =
        fabric.resend_now(id_, p.to, p.tag, p.payload, p.seq) ||
        p.ever_deposited;
    ++i;
  }
  return out;
}

std::vector<FailedSend> MachineContext::take_failed_async() {
  return std::exchange(failed_, {});
}

void MachineContext::barrier() {
  // Comm cost for this superstep's BSP sends is paid at the barrier, which
  // models overlap-free exchange (conservative, like a Pregel superstep).
  cluster_.clocks_[id_].charge_comm(cluster_.cost_model_, step_packets_,
                                    step_bytes_);
  step_packets_ = 0;
  step_bytes_ = 0;
  WallTimer wait_timer;
  cluster_.barrier_.arrive_and_wait();
  // Own-slot fields only; the sim-wait field of this slot is written by
  // the completion callback while every machine is parked in the barrier,
  // so the accesses never overlap.
  MachineTelemetry& mt = cluster_.telemetry_.machines[id_];
  mt.barrier_wait_wall_seconds += wait_timer.seconds();
  mt.supersteps += 1;
  ++superstep_;
}

void MachineContext::charge_compute(std::uint64_t edges,
                                    std::uint64_t vertices) {
  cluster_.clocks_[id_].charge_compute(cluster_.cost_model_, edges, vertices);
}

ThreadPool* MachineContext::pool() { return cluster_.compute_pool(id_); }

SimClock& MachineContext::clock() { return cluster_.clocks_[id_]; }

Cluster::Cluster(PartitionId num_machines, CostModel cost_model)
    : fabric_(num_machines),
      cost_model_(cost_model),
      clocks_(num_machines),
      barrier_(num_machines, [this] {
        // BSP step end: every clock advances to the slowest machine, plus
        // the global synchronization cost. Runs on exactly one thread while
        // the rest are parked, so telemetry writes need no atomics.
        double max_ns = 0;
        for (const SimClock& c : clocks_) max_ns = std::max(max_ns, c.nanos());

        SuperstepTelemetry step;
        double sum_delta = 0;
        double max_delta = 0;
        for (std::size_t i = 0; i < clocks_.size(); ++i) {
          const double delta =
              std::max(0.0, clocks_[i].nanos() - step_start_ns_);
          sum_delta += delta;
          max_delta = std::max(max_delta, delta);
          const double wait_ns = max_ns - clocks_[i].nanos();
          telemetry_.machines[i].barrier_wait_sim_seconds += wait_ns * 1e-9;
          step.barrier_wait_sim_seconds += wait_ns * 1e-9;
        }
        const double mean_delta =
            sum_delta / static_cast<double>(clocks_.size());
        step.straggler_ratio = mean_delta > 0 ? max_delta / mean_delta : 1.0;
        telemetry_.supersteps.push_back(step);

        max_ns += cost_model_.ns_per_barrier;
        for (SimClock& c : clocks_) c.advance_to(max_ns);
        step_start_ns_ = max_ns;
      }) {
  CGRAPH_CHECK(num_machines > 0);
  telemetry_.machines.resize(num_machines);
  compute_threads_ = default_compute_threads();
}

void Cluster::set_compute_threads(std::size_t threads) {
  const std::size_t old = resolve_compute_threads(compute_threads_);
  compute_threads_ = threads;
  if (resolve_compute_threads(threads) != old) {
    pools_.clear();  // rebuilt lazily by the next run()
  }
}

ThreadPool* Cluster::compute_pool(PartitionId id) {
  if (id >= pools_.size()) return nullptr;
  return pools_[id].get();
}

void Cluster::ensure_compute_pools() {
  const std::size_t resolved = resolve_compute_threads(compute_threads_);
  if (resolved <= 1) {
    pools_.clear();
    return;
  }
  if (!pools_.empty()) return;
  pools_.resize(num_machines());
  for (auto& p : pools_) {
    // `resolved` counts the machine thread itself; workers are the rest.
    p = std::make_unique<ThreadPool>(resolved - 1);
  }
}

void Cluster::run(const std::function<void(MachineContext&)>& body) {
  ensure_compute_pools();
  const PartitionId n = num_machines();
  if (n == 1) {
    set_thread_machine(0);
    MachineContext ctx(*this, 0);
    body(ctx);
    set_thread_machine(-1);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (PartitionId i = 0; i < n; ++i) {
    threads.emplace_back([this, &body, i] {
      set_thread_machine(static_cast<int>(i));
      MachineContext ctx(*this, i);
      body(ctx);
    });
  }
  for (auto& t : threads) t.join();
}

double Cluster::sim_seconds() const {
  double max_ns = 0;
  for (const SimClock& c : clocks_) max_ns = std::max(max_ns, c.nanos());
  return max_ns * 1e-9;
}

void Cluster::reset_telemetry() {
  for (auto& m : telemetry_.machines) m = MachineTelemetry{};
  telemetry_.supersteps.clear();
}

void Cluster::publish_metrics(obs::MetricsRegistry& reg) const {
  for (PartitionId i = 0; i < num_machines(); ++i) {
    const obs::Labels ml{{"machine", std::to_string(i)}};
    const MachineTelemetry& m = telemetry_.machines[i];
    reg.counter("cgraph_machine_supersteps_total",
                "BSP supersteps executed per machine", ml)
        .inc(static_cast<double>(m.supersteps));
    reg.counter("cgraph_machine_barrier_wait_sim_seconds_total",
                "Simulated idle time waiting at barriers per machine", ml)
        .inc(m.barrier_wait_sim_seconds);
    reg.counter("cgraph_machine_barrier_wait_wall_seconds_total",
                "Host wall-clock blocked at barriers per machine", ml)
        .inc(m.barrier_wait_wall_seconds);
    const TrafficCounters& t = fabric_.sent_counters(i);
    reg.counter("cgraph_fabric_staged_packets_total",
                "BSP (staged) packets sent per machine", ml)
        .inc(static_cast<double>(
            t.staged_packets.load(std::memory_order_relaxed)));
    reg.counter("cgraph_fabric_staged_bytes_total",
                "BSP (staged) bytes sent per machine", ml)
        .inc(static_cast<double>(
            t.staged_bytes.load(std::memory_order_relaxed)));
    reg.counter("cgraph_fabric_async_packets_total",
                "Async packets sent per machine", ml)
        .inc(static_cast<double>(
            t.async_packets.load(std::memory_order_relaxed)));
    reg.counter("cgraph_fabric_async_bytes_total",
                "Async bytes sent per machine", ml)
        .inc(static_cast<double>(
            t.async_bytes.load(std::memory_order_relaxed)));
    // Delivery outcomes: exact per-attempt accounting, meaningful (and
    // non-zero) once a FaultPlan is installed on the fabric.
    const struct {
      const char* name;
      const char* help;
      std::uint64_t value;
    } outcomes[] = {
        {"cgraph_fabric_delivered_packets_total",
         "Mailbox deposits (duplicates included) per sending machine",
         t.delivered_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_dropped_packets_total",
         "Transmission attempts dropped by the fault layer",
         t.dropped_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_duplicated_packets_total",
         "Attempts delivered twice by the fault layer",
         t.duplicated_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_reordered_packets_total",
         "Attempts delivered ahead of earlier undrained traffic",
         t.reordered_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_delayed_packets_total",
         "Attempts held in the receiver's limbo queue",
         t.delayed_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_retried_packets_total",
         "Retransmission attempts (staged retry loop + async ack timeouts)",
         t.retried_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_delivery_failed_packets_total",
         "Packets abandoned after the bounded retry budget",
         t.delivery_failed_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_ack_packets_total",
         "Acknowledgement frames sent by the reliable async protocol",
         t.ack_packets.load(std::memory_order_relaxed)},
        {"cgraph_fabric_dedup_suppressed_packets_total",
         "Duplicate deliveries suppressed by receiver dedup filters",
         t.dedup_suppressed_packets.load(std::memory_order_relaxed)},
    };
    for (const auto& o : outcomes) {
      reg.counter(o.name, o.help, ml).inc(static_cast<double>(o.value));
    }
  }
  if (!telemetry_.supersteps.empty()) {
    reg.gauge("cgraph_straggler_ratio",
              "Mean max/mean machine step time of the latest run")
        .set(telemetry_.straggler_ratio());
  }
}

}  // namespace cgraph
