#include "net/cluster.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace cgraph {

void SyncBarrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    if (completion_) completion_();
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lk, [&] { return generation_ != gen; });
  }
}

MachineContext::MachineContext(Cluster& cluster, PartitionId id)
    : cluster_(cluster), id_(id) {}

PartitionId MachineContext::num_machines() const {
  return cluster_.num_machines();
}

void MachineContext::send(PartitionId to, std::uint32_t tag, Packet payload) {
  step_packets_ += 1;
  step_bytes_ += payload.size();
  cluster_.fabric_.send_superstep(id_, to, tag, std::move(payload),
                                  superstep_);
}

void MachineContext::send_async(PartitionId to, std::uint32_t tag,
                                Packet payload) {
  // Async sends are charged immediately: the sender pays injection cost.
  cluster_.clocks_[id_].charge_comm(cluster_.cost_model_, 1, payload.size());
  cluster_.fabric_.send_now(id_, to, tag, std::move(payload));
}

std::vector<Envelope> MachineContext::recv_staged() {
  // Messages staged under superstep s-1 become visible in superstep s.
  CGRAPH_DCHECK(superstep_ > 0);
  return cluster_.fabric_.mailbox(id_).drain_superstep(superstep_ - 1);
}

std::vector<Envelope> MachineContext::recv_async() {
  return cluster_.fabric_.mailbox(id_).drain_now();
}

void MachineContext::barrier() {
  // Comm cost for this superstep's BSP sends is paid at the barrier, which
  // models overlap-free exchange (conservative, like a Pregel superstep).
  cluster_.clocks_[id_].charge_comm(cluster_.cost_model_, step_packets_,
                                    step_bytes_);
  step_packets_ = 0;
  step_bytes_ = 0;
  cluster_.barrier_.arrive_and_wait();
  ++superstep_;
}

void MachineContext::charge_compute(std::uint64_t edges,
                                    std::uint64_t vertices) {
  cluster_.clocks_[id_].charge_compute(cluster_.cost_model_, edges, vertices);
}

SimClock& MachineContext::clock() { return cluster_.clocks_[id_]; }

Cluster::Cluster(PartitionId num_machines, CostModel cost_model)
    : fabric_(num_machines),
      cost_model_(cost_model),
      clocks_(num_machines),
      barrier_(num_machines, [this] {
        // BSP step end: every clock advances to the slowest machine, plus
        // the global synchronization cost.
        double max_ns = 0;
        for (const SimClock& c : clocks_) max_ns = std::max(max_ns, c.nanos());
        max_ns += cost_model_.ns_per_barrier;
        for (SimClock& c : clocks_) c.advance_to(max_ns);
      }) {
  CGRAPH_CHECK(num_machines > 0);
}

void Cluster::run(const std::function<void(MachineContext&)>& body) {
  const PartitionId n = num_machines();
  if (n == 1) {
    MachineContext ctx(*this, 0);
    body(ctx);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (PartitionId i = 0; i < n; ++i) {
    threads.emplace_back([this, &body, i] {
      MachineContext ctx(*this, i);
      body(ctx);
    });
  }
  for (auto& t : threads) t.join();
}

double Cluster::sim_seconds() const {
  double max_ns = 0;
  for (const SimClock& c : clocks_) max_ns = std::max(max_ns, c.nanos());
  return max_ns * 1e-9;
}

}  // namespace cgraph
