// The simulated cluster: N machines (threads), a shared fabric, and a BSP
// barrier that also advances the simulated clocks (all machines step to the
// slowest one plus the barrier cost — the BSP superstep time).
//
// Engines are written against MachineContext exactly as they would be
// against an MPI rank: local compute, explicit sends, collective barriers.
// Swapping this layer for real MPI only changes the transport.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "net/checkpoint.hpp"
#include "net/cost_model.hpp"
#include "net/fabric.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace cgraph {

/// Per-machine telemetry accumulated by MachineContext::barrier().
/// `barrier_wait_sim_seconds` is the simulated idle time waiting for the
/// slowest machine (how far the barrier advanced this clock, barrier cost
/// excluded); `barrier_wait_wall_seconds` is host time blocked in the
/// barrier primitive.
struct MachineTelemetry {
  std::uint64_t supersteps = 0;
  double barrier_wait_sim_seconds = 0;
  double barrier_wait_wall_seconds = 0;
};

/// Per-superstep telemetry recorded by the barrier completion callback.
struct SuperstepTelemetry {
  /// Sum over machines of simulated idle time at this barrier.
  double barrier_wait_sim_seconds = 0;
  /// Max/mean machine step time (1.0 = balanced; higher = stragglers).
  double straggler_ratio = 0;
};

struct ClusterTelemetry {
  std::vector<MachineTelemetry> machines;
  std::vector<SuperstepTelemetry> supersteps;

  /// Mean straggler ratio across recorded supersteps (0 if none).
  [[nodiscard]] double straggler_ratio() const;
};

/// Reusable N-party barrier with a completion callback executed by exactly
/// one (the last-arriving) thread while the others wait.
class SyncBarrier {
 public:
  explicit SyncBarrier(std::size_t parties,
                       std::function<void()> completion = nullptr)
      : parties_(parties), completion_(std::move(completion)) {}

  void arrive_and_wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t waiting_ = 0;
  std::uint64_t generation_ = 0;
  std::function<void()> completion_;
};

class Cluster;

/// An async send that exhausted its retry budget without an ack. Surfaced
/// to the engine (see MachineContext::take_failed_async) so it can degrade
/// gracefully — e.g. release termination-detection credits — instead of
/// wedging on traffic that will never arrive.
struct FailedSend {
  PartitionId to = kInvalidPartition;
  std::uint32_t tag = 0;
  Packet payload;
};

/// Internal control-flow signal for crash-stop machine failure: thrown out
/// of MachineContext::barrier() / tick_crash_point() on every machine when
/// the FaultPlan schedules a crash, caught by Cluster::run, which restores
/// from the latest checkpoint and re-executes the body. Engines never see
/// it (it unwinds straight through their loops by design).
struct MachineCrash {
  PartitionId machine = kInvalidPartition;
  std::uint64_t superstep = 0;
};

/// Fail-stop of a whole replica cluster, thrown out of Cluster::run() when
/// an armed halt fires. Unlike MachineCrash (one machine dies, the cluster
/// recovers itself), a ReplicaDead escapes run(): the replica is gone and
/// stays gone, and the caller (the ReplicaRouter) fails the in-flight work
/// over to a surviving replica via export_resume_package()/arm_resume().
struct ReplicaDead {
  /// Barrier count at which the halt fired (supersteps completed).
  std::uint64_t superstep = 0;
};

/// Whole-replica kill schedule (Cluster::arm_halt): the replica-level
/// analogue of a FaultPlan crash entry. Deterministic in the superstep
/// count, so replica-kill sweeps are reproducible.
struct HaltSpec {
  /// Fire at the first completed barrier >= this count.
  std::uint64_t at_superstep = 1;
  /// Optional death-mid-checkpoint-write simulation: machines with
  /// id >= partial_from skip the store write at exactly `partial_step`,
  /// leaving a partial (incomplete) cut behind for the survivor to
  /// discard. kInvalidPartition disables the partial-write simulation.
  PartitionId partial_from = kInvalidPartition;
  std::uint64_t partial_step = 0;
};

/// Everything a surviving replica needs to adopt a dead replica's run: the
/// donor's checkpoint store with the partial tail already discarded, the
/// cluster snapshot at the last complete cut (or the baseline when the
/// donor never completed a cut), and the cut step itself.
struct ClusterResumePackage {
  PartitionId machines = 0;
  std::uint64_t step = 0;  // last complete barrier cut (0 = from scratch)
  ClusterSnapshot snapshot;
  CheckpointStore::Contents store;
};

/// Knobs for crash recovery (Cluster::set_recovery).
struct RecoveryOptions {
  /// Checkpoint every `checkpoint_interval` supersteps (engine loop
  /// iterations offer a checkpoint; this gate decides whether to take it).
  std::uint64_t checkpoint_interval = 1;
  /// When non-empty, mirror every machine checkpoint to
  /// `<dir>/machine_<id>.ckpt` (stable-storage story; see CheckpointStore).
  std::string checkpoint_dir;
};

/// Counters surfaced as cgraph_recovery_* through publish_metrics.
struct RecoveryStats {
  std::uint64_t crashes = 0;
  std::uint64_t supersteps_replayed = 0;
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_bytes = 0;
  double checkpoint_seconds = 0;
  double restore_seconds = 0;
  /// Maintained by the scheduler: queries whose batch was touched by a
  /// crash and therefore re-executed (the failover unit is the batch).
  std::uint64_t queries_reexecuted = 0;
};

/// Per-run hooks for Cluster::run. `on_restore` fires once per recovery,
/// after cluster state is rolled back and before the body is re-entered —
/// engines reset their shared cross-machine accumulators there.
/// `link_replay` selects the restore mode: true (staged/BSP engines)
/// restores link sequence/attempt counters from the barrier snapshot so the
/// replay re-issues identical sequence numbers and fault decisions; false
/// (the async engine, whose poll schedule is not replayable) resets
/// delivery state entirely and relies on monotone re-relaxation.
struct RunHooks {
  std::function<void()> on_restore;
  bool link_replay = true;
};

/// One unacked async send awaiting its ack (or a retry timeout).
struct PendingSend {
  PartitionId to;
  std::uint32_t tag;
  Packet payload;  // retained for retransmission
  std::uint64_t seq;
  /// True once any transmission attempt reached the receiver's mailbox
  /// (the fabric's failure-detector signal). A deposited packet WILL be
  /// applied — only its acks can still be lost — so it must never be
  /// reported as failed, or credit-tracking engines would double-release.
  bool ever_deposited = false;
  std::uint32_t polls_since_send = 0;
  std::uint32_t attempts = 1;
};

/// Reliable-async protocol state for one machine. Owned by the Cluster and
/// persistent across runs (a MachineContext is a per-run view into it), so
/// engines MUST clear it at run start via Cluster::reset_protocol_state():
/// a stale unacked send would retransmit under the new run's sequence
/// numbering and poison the receiver's dedup window, and a stale failure
/// would release termination credits that belong to a previous batch.
/// Only touched from the owning machine's thread during a run.
struct AsyncProtocolState {
  std::vector<PendingSend> pending;
  std::vector<FailedSend> failed;
  DedupFilter dedup;

  void clear() {
    pending.clear();
    failed.clear();
    dedup = DedupFilter{};
  }
};

/// Per-machine execution handle passed to the machine body.
class MachineContext {
 public:
  /// Async retransmission backoff: attempt n waits
  /// min(kRetryMaxPolls, kRetryBasePolls << (n-1)) polls plus a
  /// deterministic jitter in [0, kRetryJitterPolls], hashed pure from
  /// (fault seed, link, attempt) — see retry_backoff_polls(). Bounded
  /// exponential backoff spreads retransmission bursts across links while
  /// keeping chaos replays bit-exact (no global RNG state involved).
  static constexpr std::uint32_t kRetryBasePolls = 2;
  static constexpr std::uint32_t kRetryMaxPolls = 10;
  static constexpr std::uint32_t kRetryJitterPolls = 3;
  /// Transmission attempts per async packet before it is declared failed.
  static constexpr std::uint32_t kMaxAsyncAttempts = 24;

  /// Polls to wait before retransmitting `attempt` (1-based) on the
  /// directed link `from -> to` under fault seed `seed`. Pure function of
  /// its arguments: a restored replay re-computes identical timeouts.
  [[nodiscard]] static std::uint32_t retry_backoff_polls(std::uint64_t seed,
                                                         PartitionId from,
                                                         PartitionId to,
                                                         std::uint32_t attempt);

  MachineContext(Cluster& cluster, PartitionId id);

  [[nodiscard]] PartitionId id() const { return id_; }
  [[nodiscard]] PartitionId num_machines() const;
  [[nodiscard]] std::uint64_t superstep() const { return superstep_; }
  [[nodiscard]] Cluster& cluster() { return cluster_; }

  /// BSP send: visible to `to` after the next barrier.
  void send(PartitionId to, std::uint32_t tag, Packet payload);
  /// Reliable async send: visible to `to` via its recv_async() (immediately
  /// when the fabric is clean). The packet is sequence-numbered and held
  /// until acked; recv_async() retransmits on timeout and the receiver
  /// dedups, so delivery is exactly-once up to kMaxAsyncAttempts.
  void send_async(PartitionId to, std::uint32_t tag, Packet payload);

  /// Drain messages staged for the current superstep (those sent during the
  /// previous superstep, before the last barrier).
  std::vector<Envelope> recv_staged();
  /// Drain asynchronously-delivered data messages. Also runs the delivery
  /// protocol: acks each data packet, suppresses duplicates, consumes
  /// incoming acks, and retransmits timed-out unacked sends.
  std::vector<Envelope> recv_async();

  /// True while any async send is awaiting an ack. A quiescing engine that
  /// stops polling with pending sends simply abandons them (the data may
  /// well have arrived — only the acks are outstanding).
  [[nodiscard]] bool has_pending_async() const {
    return !proto_.pending.empty();
  }

  /// Async sends that permanently failed since the last call: every
  /// transmission attempt in the retry budget was dropped, so the receiver
  /// never saw the packet. (A send whose data got through but whose acks
  /// keep getting lost is abandoned silently instead — the payload was
  /// delivered, so it is not a failure.) Payload ownership moves to the
  /// caller, which can release termination credits or re-route.
  std::vector<FailedSend> take_failed_async();

  /// Synchronize all machines; charges this machine's accumulated comm cost
  /// and advances every clock to the slowest machine. Increments superstep.
  /// Throws MachineCrash (on every machine — they all park at the same
  /// barrier) when the FaultPlan schedules a crash at this superstep.
  void barrier();

  /// Crash point for barrier-free (async) engines: call once per poll-loop
  /// iteration. Consumes a scheduled crash for (machine, tick) and throws
  /// MachineCrash when any machine's crash has been flagged. Ticks depend
  /// on the wall schedule, so async recovery is monotone, not replay-based
  /// (see RunHooks::link_replay).
  void tick_crash_point();

  /// Offer a checkpoint of this machine's engine state. Engines call this
  /// at the top of their superstep loop — a consistent cut: no staged
  /// packet is in flight there. The checkpoint is actually taken only when
  /// recovery is enabled and the configured interval has elapsed since the
  /// machine's last checkpoint (the gate is deterministic in the superstep
  /// count, so all machines checkpoint at the same steps). `save` receives
  /// a PacketWriter and serializes the engine's partition state into it.
  /// Returns true when a checkpoint was taken.
  bool maybe_checkpoint(const std::function<void(PacketWriter&)>& save);

  /// At body entry: the engine's partition state from this machine's
  /// latest checkpoint, when the body is being re-entered after a crash.
  /// Also restores superstep() and the async tick to their checkpointed
  /// values. Returns nullopt on a fresh (or baseline-restarted) run — the
  /// body initializes from scratch then.
  std::optional<Packet> restore_checkpoint();

  /// Charge local compute work to the simulated clock.
  void charge_compute(std::uint64_t edges, std::uint64_t vertices = 0);

  /// This machine's intra-machine compute pool, or nullptr when the
  /// cluster runs engines serially (compute_threads <= 1). Engines hand it
  /// to parallel_ranges(), which degrades to an inline call on nullptr.
  [[nodiscard]] ThreadPool* pool();

  [[nodiscard]] SimClock& clock();

 private:
  Cluster& cluster_;
  PartitionId id_;
  std::uint64_t superstep_ = 0;
  std::uint64_t tick_ = 0;  // async poll-loop iterations (crash schedule)
  std::uint64_t step_packets_ = 0;
  std::uint64_t step_bytes_ = 0;
  // Interval gate for maybe_checkpoint: progress point of the last
  // checkpoint this machine took (or restored from).
  bool has_last_ckpt_ = false;
  std::uint64_t last_ckpt_step_ = 0;
  std::uint64_t last_ckpt_tick_ = 0;
  /// Cluster-owned, persistent across runs; see AsyncProtocolState.
  AsyncProtocolState& proto_;
};

class Cluster {
 public:
  explicit Cluster(PartitionId num_machines, CostModel cost_model = {});

  [[nodiscard]] PartitionId num_machines() const {
    return fabric_.num_machines();
  }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] const CostModel& cost_model() const { return cost_model_; }
  [[nodiscard]] SimClock& clock(PartitionId id) { return clocks_[id]; }

  /// Intra-machine parallelism for engine hot loops: each machine gets a
  /// private ThreadPool of (threads - 1) workers, so `threads` counts the
  /// machine thread itself. 0 selects one thread per hardware core; 1
  /// (the default, unless $CGRAPH_THREADS overrides it) keeps engines
  /// serial. Must not be called while run() is executing.
  void set_compute_threads(std::size_t threads);
  /// The configured knob value (0 = hardware), not the resolved count.
  [[nodiscard]] std::size_t compute_threads() const {
    return compute_threads_;
  }
  /// Machine `id`'s pool, or nullptr when engines run serially.
  [[nodiscard]] ThreadPool* compute_pool(PartitionId id);

  /// Execute `body(ctx)` on every machine concurrently; returns when all
  /// machines finish. Clocks and traffic counters persist across runs until
  /// reset_clocks() / fabric().reset_counters(). When recovery is enabled
  /// and the FaultPlan crashes a machine, the whole cluster rolls back to
  /// the latest checkpoint and the body is re-entered (bounded attempts).
  void run(const std::function<void(MachineContext&)>& body);
  void run(const std::function<void(MachineContext&)>& body,
           const RunHooks& hooks);

  // -- Crash recovery ----------------------------------------------------

  /// Restarts of one run() before recovery is declared non-convergent.
  static constexpr std::uint32_t kMaxRecoveryAttempts = 256;

  /// Enable superstep checkpointing + crash recovery for subsequent runs.
  void set_recovery(RecoveryOptions opts);
  [[nodiscard]] bool recovery_enabled() const { return recovery_enabled_; }
  [[nodiscard]] const RecoveryOptions& recovery_options() const {
    return recovery_opts_;
  }
  [[nodiscard]] const RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }
  void reset_recovery_stats() { recovery_stats_ = RecoveryStats{}; }
  /// Scheduler bookkeeping: queries re-executed because their batch was
  /// touched by a crash.
  void add_queries_reexecuted(std::uint64_t n) {
    recovery_stats_.queries_reexecuted += n;
  }
  /// Read access for tests (e.g. checkpoint-file roundtrips).
  [[nodiscard]] const CheckpointStore& checkpoint_store() const {
    return store_;
  }

  // -- Replica fail-stop (replication layer) -----------------------------

  /// Arm a whole-replica kill: the next run() throws ReplicaDead at the
  /// first completed barrier >= spec.at_superstep and the cluster is
  /// permanently halted. Optionally simulates dying mid-checkpoint-write
  /// (see HaltSpec). Must be called while no run() is executing.
  void arm_halt(HaltSpec spec);
  [[nodiscard]] bool halt_armed() const { return halt_armed_; }
  /// True once a halt fired: the replica is dead and run() must not be
  /// called again.
  [[nodiscard]] bool halted() const { return halted_; }

  /// Export this (dead) replica's last complete cut for adoption by a
  /// survivor: the partial checkpoint tail — blobs newer than the last cut
  /// at which every machine saved — is discarded here, never shipped.
  [[nodiscard]] ClusterResumePackage export_resume_package() const;
  /// Install a dead replica's package: the next run() resumes from the
  /// donor's cut (machine bodies pick the blobs up via
  /// restore_checkpoint()) instead of starting fresh. Requires recovery to
  /// be enabled and a matching machine count.
  void arm_resume(ClusterResumePackage pkg);

  /// Clear every machine's persistent reliable-async protocol state
  /// (pending retransmissions, surfaced failures, dedup windows). Engines
  /// call this alongside fabric().reset_delivery_state() at run start; a
  /// previous run's leftovers would corrupt the new run (stale seqs poison
  /// dedup, stale failures double-release credits).
  void reset_protocol_state() {
    for (auto& p : proto_) p->clear();
  }
  [[nodiscard]] AsyncProtocolState& protocol_state(PartitionId id) {
    return *proto_[id];
  }

  /// Max simulated time across machines (the BSP makespan).
  [[nodiscard]] double sim_seconds() const;

  void reset_clocks() {
    for (auto& c : clocks_) c.reset();
    step_start_ns_ = 0;
  }

  /// Barrier/superstep telemetry since the last reset_telemetry(). Safe to
  /// read once run() has returned.
  [[nodiscard]] const ClusterTelemetry& telemetry() const {
    return telemetry_;
  }
  void reset_telemetry();

  /// Publish per-machine superstep/barrier/fabric counters and the mean
  /// straggler ratio into `registry` (cgraph_machine_*, cgraph_fabric_*,
  /// cgraph_straggler_ratio).
  void publish_metrics(obs::MetricsRegistry& registry) const;

 private:
  friend class MachineContext;

  /// Build pools_ to match compute_threads_ (no-op when already built).
  void ensure_compute_pools();

  /// Per-run() setup: reset the crash/checkpoint runtime and capture the
  /// step-0 baseline snapshot when recovery is enabled.
  void begin_run();
  /// Launch the body on all machines once; true iff a crash unwound it.
  bool run_once(const std::function<void(MachineContext&)>& body);
  /// Roll cluster state back to the latest common checkpoint (or the
  /// baseline) after a crash, per the run's RunHooks mode.
  void restore_from_checkpoint(const RunHooks& hooks);
  /// Barrier-completion hook: snapshot cluster state for this superstep
  /// and evaluate the crash schedule for every machine.
  void on_barrier_complete();
  /// Consume-at-most-once crash schedule evaluation for one (machine,
  /// step-or-tick) point. True when this call flagged a crash.
  bool consume_crash(PartitionId machine, std::uint64_t step);

  Fabric fabric_;
  CostModel cost_model_;
  std::vector<SimClock> clocks_;
  /// Configured intra-machine thread knob (0 = hardware) and the lazily
  /// built per-machine pools realizing it. Pools are created on the first
  /// run() after (re)configuration so idle Cluster objects stay cheap.
  std::size_t compute_threads_ = 1;
  std::vector<std::unique_ptr<ThreadPool>> pools_;
  // Written by the barrier completion callback (single-threaded) and by
  // each machine for its own wall/superstep fields; distinct fields, and
  // reads only happen after run() joins.
  ClusterTelemetry telemetry_;
  double step_start_ns_ = 0;  // clock value all machines shared last barrier
  SyncBarrier barrier_;

  /// Persistent per-machine reliable-async protocol state (address-stable;
  /// sized once in the constructor). See AsyncProtocolState.
  std::vector<std::unique_ptr<AsyncProtocolState>> proto_;

  // -- Crash/checkpoint runtime -----------------------------------------
  bool recovery_enabled_ = false;
  RecoveryOptions recovery_opts_;
  RecoveryStats recovery_stats_;
  CheckpointStore store_;
  /// Barriers completed in the current run (the snapshot/crash-schedule
  /// superstep index); rewound to the restore step on recovery.
  std::uint64_t barrier_count_ = 0;
  /// telemetry_.supersteps length at run entry, so a staged replay can
  /// truncate back to (start + restore step) and keep per-level telemetry
  /// indices aligned with the re-executed levels.
  std::size_t telemetry_supersteps_at_run_start_ = 0;
  /// Crash flag: set (once) under crash_mu_ by the barrier completion
  /// callback or a tick crash point; observed by every machine, which
  /// throws MachineCrash. Cleared by the restore path.
  std::atomic<bool> crash_pending_{false};
  PartitionId crashed_machine_ = kInvalidPartition;
  std::uint64_t crash_superstep_ = 0;
  /// Crash events already fired this run — each fires exactly once, so the
  /// replay makes it past the crash point. Runtime state, deliberately NOT
  /// in the (const, shared) FaultPlan.
  std::mutex crash_mu_;
  std::unordered_set<std::uint64_t> consumed_crashes_;

  // -- Replica fail-stop runtime -----------------------------------------
  // halt_armed_/halt_spec_ are written outside runs (arm_halt) and cleared
  // by the barrier completion callback while every machine thread is
  // parked, so machine-thread reads (maybe_checkpoint) never race them.
  bool halt_armed_ = false;
  HaltSpec halt_spec_;
  bool halt_fired_ = false;  // set by the completion callback, read by run()
  bool halted_ = false;      // sticky: this replica is dead
  std::unique_ptr<ClusterResumePackage> resume_pending_;
};

}  // namespace cgraph
