// The simulated cluster: N machines (threads), a shared fabric, and a BSP
// barrier that also advances the simulated clocks (all machines step to the
// slowest one plus the barrier cost — the BSP superstep time).
//
// Engines are written against MachineContext exactly as they would be
// against an MPI rank: local compute, explicit sends, collective barriers.
// Swapping this layer for real MPI only changes the transport.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/cost_model.hpp"
#include "net/fabric.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace cgraph {

/// Per-machine telemetry accumulated by MachineContext::barrier().
/// `barrier_wait_sim_seconds` is the simulated idle time waiting for the
/// slowest machine (how far the barrier advanced this clock, barrier cost
/// excluded); `barrier_wait_wall_seconds` is host time blocked in the
/// barrier primitive.
struct MachineTelemetry {
  std::uint64_t supersteps = 0;
  double barrier_wait_sim_seconds = 0;
  double barrier_wait_wall_seconds = 0;
};

/// Per-superstep telemetry recorded by the barrier completion callback.
struct SuperstepTelemetry {
  /// Sum over machines of simulated idle time at this barrier.
  double barrier_wait_sim_seconds = 0;
  /// Max/mean machine step time (1.0 = balanced; higher = stragglers).
  double straggler_ratio = 0;
};

struct ClusterTelemetry {
  std::vector<MachineTelemetry> machines;
  std::vector<SuperstepTelemetry> supersteps;

  /// Mean straggler ratio across recorded supersteps (0 if none).
  [[nodiscard]] double straggler_ratio() const;
};

/// Reusable N-party barrier with a completion callback executed by exactly
/// one (the last-arriving) thread while the others wait.
class SyncBarrier {
 public:
  explicit SyncBarrier(std::size_t parties,
                       std::function<void()> completion = nullptr)
      : parties_(parties), completion_(std::move(completion)) {}

  void arrive_and_wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t waiting_ = 0;
  std::uint64_t generation_ = 0;
  std::function<void()> completion_;
};

class Cluster;

/// An async send that exhausted its retry budget without an ack. Surfaced
/// to the engine (see MachineContext::take_failed_async) so it can degrade
/// gracefully — e.g. release termination-detection credits — instead of
/// wedging on traffic that will never arrive.
struct FailedSend {
  PartitionId to = kInvalidPartition;
  std::uint32_t tag = 0;
  Packet payload;
};

/// Per-machine execution handle passed to the machine body.
class MachineContext {
 public:
  /// recv_async() polls between retransmissions of an unacked packet.
  static constexpr std::uint32_t kRetryAfterPolls = 3;
  /// Transmission attempts per async packet before it is declared failed.
  static constexpr std::uint32_t kMaxAsyncAttempts = 24;

  MachineContext(Cluster& cluster, PartitionId id);

  [[nodiscard]] PartitionId id() const { return id_; }
  [[nodiscard]] PartitionId num_machines() const;
  [[nodiscard]] std::uint64_t superstep() const { return superstep_; }
  [[nodiscard]] Cluster& cluster() { return cluster_; }

  /// BSP send: visible to `to` after the next barrier.
  void send(PartitionId to, std::uint32_t tag, Packet payload);
  /// Reliable async send: visible to `to` via its recv_async() (immediately
  /// when the fabric is clean). The packet is sequence-numbered and held
  /// until acked; recv_async() retransmits on timeout and the receiver
  /// dedups, so delivery is exactly-once up to kMaxAsyncAttempts.
  void send_async(PartitionId to, std::uint32_t tag, Packet payload);

  /// Drain messages staged for the current superstep (those sent during the
  /// previous superstep, before the last barrier).
  std::vector<Envelope> recv_staged();
  /// Drain asynchronously-delivered data messages. Also runs the delivery
  /// protocol: acks each data packet, suppresses duplicates, consumes
  /// incoming acks, and retransmits timed-out unacked sends.
  std::vector<Envelope> recv_async();

  /// True while any async send is awaiting an ack. A quiescing engine that
  /// stops polling with pending sends simply abandons them (the data may
  /// well have arrived — only the acks are outstanding).
  [[nodiscard]] bool has_pending_async() const { return !pending_.empty(); }

  /// Async sends that permanently failed since the last call: every
  /// transmission attempt in the retry budget was dropped, so the receiver
  /// never saw the packet. (A send whose data got through but whose acks
  /// keep getting lost is abandoned silently instead — the payload was
  /// delivered, so it is not a failure.) Payload ownership moves to the
  /// caller, which can release termination credits or re-route.
  std::vector<FailedSend> take_failed_async();

  /// Synchronize all machines; charges this machine's accumulated comm cost
  /// and advances every clock to the slowest machine. Increments superstep.
  void barrier();

  /// Charge local compute work to the simulated clock.
  void charge_compute(std::uint64_t edges, std::uint64_t vertices = 0);

  /// This machine's intra-machine compute pool, or nullptr when the
  /// cluster runs engines serially (compute_threads <= 1). Engines hand it
  /// to parallel_ranges(), which degrades to an inline call on nullptr.
  [[nodiscard]] ThreadPool* pool();

  [[nodiscard]] SimClock& clock();

 private:
  /// One unacked async send awaiting its ack (or a retry timeout).
  struct PendingSend {
    PartitionId to;
    std::uint32_t tag;
    Packet payload;  // retained for retransmission
    std::uint64_t seq;
    /// True once any transmission attempt reached the receiver's mailbox
    /// (the fabric's failure-detector signal). A deposited packet WILL be
    /// applied — only its acks can still be lost — so it must never be
    /// reported as failed, or credit-tracking engines would double-release.
    bool ever_deposited = false;
    std::uint32_t polls_since_send = 0;
    std::uint32_t attempts = 1;
  };

  Cluster& cluster_;
  PartitionId id_;
  std::uint64_t superstep_ = 0;
  std::uint64_t step_packets_ = 0;
  std::uint64_t step_bytes_ = 0;
  // Reliable-async protocol state. Only touched from this machine's thread.
  std::vector<PendingSend> pending_;
  std::vector<FailedSend> failed_;
  DedupFilter dedup_;
};

class Cluster {
 public:
  explicit Cluster(PartitionId num_machines, CostModel cost_model = {});

  [[nodiscard]] PartitionId num_machines() const {
    return fabric_.num_machines();
  }
  [[nodiscard]] Fabric& fabric() { return fabric_; }
  [[nodiscard]] const CostModel& cost_model() const { return cost_model_; }
  [[nodiscard]] SimClock& clock(PartitionId id) { return clocks_[id]; }

  /// Intra-machine parallelism for engine hot loops: each machine gets a
  /// private ThreadPool of (threads - 1) workers, so `threads` counts the
  /// machine thread itself. 0 selects one thread per hardware core; 1
  /// (the default, unless $CGRAPH_THREADS overrides it) keeps engines
  /// serial. Must not be called while run() is executing.
  void set_compute_threads(std::size_t threads);
  /// The configured knob value (0 = hardware), not the resolved count.
  [[nodiscard]] std::size_t compute_threads() const {
    return compute_threads_;
  }
  /// Machine `id`'s pool, or nullptr when engines run serially.
  [[nodiscard]] ThreadPool* compute_pool(PartitionId id);

  /// Execute `body(ctx)` on every machine concurrently; returns when all
  /// machines finish. Clocks and traffic counters persist across runs until
  /// reset_clocks() / fabric().reset_counters().
  void run(const std::function<void(MachineContext&)>& body);

  /// Max simulated time across machines (the BSP makespan).
  [[nodiscard]] double sim_seconds() const;

  void reset_clocks() {
    for (auto& c : clocks_) c.reset();
    step_start_ns_ = 0;
  }

  /// Barrier/superstep telemetry since the last reset_telemetry(). Safe to
  /// read once run() has returned.
  [[nodiscard]] const ClusterTelemetry& telemetry() const {
    return telemetry_;
  }
  void reset_telemetry();

  /// Publish per-machine superstep/barrier/fabric counters and the mean
  /// straggler ratio into `registry` (cgraph_machine_*, cgraph_fabric_*,
  /// cgraph_straggler_ratio).
  void publish_metrics(obs::MetricsRegistry& registry) const;

 private:
  friend class MachineContext;

  /// Build pools_ to match compute_threads_ (no-op when already built).
  void ensure_compute_pools();

  Fabric fabric_;
  CostModel cost_model_;
  std::vector<SimClock> clocks_;
  /// Configured intra-machine thread knob (0 = hardware) and the lazily
  /// built per-machine pools realizing it. Pools are created on the first
  /// run() after (re)configuration so idle Cluster objects stay cheap.
  std::size_t compute_threads_ = 1;
  std::vector<std::unique_ptr<ThreadPool>> pools_;
  // Written by the barrier completion callback (single-threaded) and by
  // each machine for its own wall/superstep fields; distinct fields, and
  // reads only happen after run() joins.
  ClusterTelemetry telemetry_;
  double step_start_ns_ = 0;  // clock value all machines shared last barrier
  SyncBarrier barrier_;
};

}  // namespace cgraph
