// Fault injection for the simulated interconnect (chaos testing layer).
//
// A FaultPlan decides, per transmission attempt on a directed link (i, j),
// whether the packet is delivered cleanly or suffers a fault: dropped,
// duplicated, reordered ahead of earlier undrained packets, or delayed in a
// limbo queue at the receiver. Decisions are a pure function of
// (seed, from, to, attempt_index) plus an explicit trigger table, so a plan
// is thread-safe, replayable, and independent of wall-clock scheduling:
// pushing the same packet script through the same plan twice yields the
// identical fault sequence (see test_chaos.cpp).
//
// The runtime copes with these faults via two protocols:
//   * BSP (staged) sends retransmit inside the barrier window — the fabric
//     re-decides with fresh attempt indices until delivery or a bounded
//     attempt cap (the barrier "absorbs" the retries, like an MPI exchange
//     that completes before the superstep ends).
//   * Async sends carry per-link sequence numbers; receivers ack, dedup by
//     (sender, seq), and senders retry on poll-count timeouts (cluster.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/types.hpp"
#include "net/serialize.hpp"
#include "util/rng.hpp"

namespace cgraph {

enum class FaultAction : std::uint8_t {
  kDeliver = 0,
  kDrop,
  kDuplicate,
  kReorder,
  kDelay,
};

[[nodiscard]] const char* fault_action_name(FaultAction a);

/// Probabilistic fault mix for one directed link (or the default for all
/// links). Probabilities are evaluated in order drop, duplicate, reorder,
/// delay against a single uniform draw, so their sum must stay <= 1.
struct LinkFaultSpec {
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double delay = 0.0;
  /// Receiver drain_now() polls a delayed packet sits out before delivery.
  std::uint32_t delay_polls = 2;

  [[nodiscard]] bool faultless() const {
    return drop == 0 && duplicate == 0 && reorder == 0 && delay == 0;
  }
};

/// Deterministic trigger: apply `action` to attempt number `nth` (0-based,
/// counted per directed link) on link (from, to). Triggers override the
/// probabilistic mix for that attempt, which makes "drop the 3rd packet
/// machine 0 sends to machine 2" an exact, replayable scenario.
struct FaultTrigger {
  PartitionId from = 0;
  PartitionId to = 0;
  std::uint64_t nth = 0;
  FaultAction action = FaultAction::kDrop;
};

/// One decision the fault layer took (non-deliver only; clean deliveries
/// are the overwhelming majority and are reconstructible from counters).
struct FaultEvent {
  PartitionId from = 0;
  PartitionId to = 0;
  std::uint64_t attempt = 0;  // per-link attempt index the decision used
  FaultAction action = FaultAction::kDeliver;

  [[nodiscard]] bool operator==(const FaultEvent& o) const {
    return from == o.from && to == o.to && attempt == o.attempt &&
           action == o.action;
  }
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Fault mix applied to links without a per-link override.
  void set_default_link(const LinkFaultSpec& spec) { default_ = spec; }
  void set_link(PartitionId from, PartitionId to, const LinkFaultSpec& spec) {
    links_[link_key(from, to)] = spec;
  }
  void add_trigger(const FaultTrigger& t) {
    triggers_[trigger_key(t.from, t.to, t.nth)] = t.action;
  }

  [[nodiscard]] const LinkFaultSpec& link_spec(PartitionId from,
                                               PartitionId to) const {
    const auto it = links_.find(link_key(from, to));
    return it == links_.end() ? default_ : it->second;
  }

  /// Fate of transmission attempt `attempt` on link (from, to). Pure and
  /// thread-safe: same inputs always yield the same action.
  [[nodiscard]] FaultAction decide(PartitionId from, PartitionId to,
                                   std::uint64_t attempt) const;

  // -- Crash-stop machine failure schedule -------------------------------
  //
  // Crashes are evaluated by the Cluster at superstep barriers (staged
  // engines) or poll ticks (the async engine), not by the fabric: a crash
  // kills a whole machine, not a packet. Like link decisions, the schedule
  // is pure in (seed, machine, superstep) so a crashing run replays
  // bit-exactly. The Cluster tracks which crash events have already fired
  // (each fires once) — that consumed-set is runtime state and lives there,
  // keeping the plan const-shareable across threads.

  /// Kill `machine` when it reaches superstep `at_superstep` (1-based count
  /// of completed barriers, matching MachineContext::superstep()).
  void add_crash(PartitionId machine, std::uint64_t at_superstep) {
    crashes_.insert(crash_key(machine, at_superstep));
  }
  /// Additionally crash any (machine, superstep) with probability `p`,
  /// decided by a seeded hash independent of the link-fault draws.
  void set_crash_probability(double p) { crash_probability_ = p; }

  [[nodiscard]] bool has_crash_faults() const {
    return !crashes_.empty() || crash_probability_ > 0;
  }

  /// Pure crash decision for (machine, superstep): explicit schedule first,
  /// then the probabilistic draw. Mixing constants are distinct from the
  /// link-fault hash so crash and link decisions never correlate.
  [[nodiscard]] bool crash_decision(PartitionId machine,
                                    std::uint64_t superstep) const;

  /// Human-readable one-liner (seed + mix) printed by chaos tests so a
  /// failing run can be replayed from the log alone.
  [[nodiscard]] std::string describe() const;

 private:
  static std::uint64_t crash_key(PartitionId machine, std::uint64_t superstep) {
    // Superstep counts in any sane run stay far below 2^32.
    return (static_cast<std::uint64_t>(machine) << 32) | superstep;
  }

  static std::uint64_t link_key(PartitionId from, PartitionId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }
  static std::uint64_t trigger_key(PartitionId from, PartitionId to,
                                   std::uint64_t nth) {
    // Attempt indices in any sane run stay far below 2^40.
    return (static_cast<std::uint64_t>(from) << 52) |
           (static_cast<std::uint64_t>(to) << 40) | nth;
  }

  std::uint64_t seed_ = 0;
  LinkFaultSpec default_;
  std::unordered_map<std::uint64_t, LinkFaultSpec> links_;
  std::unordered_map<std::uint64_t, FaultAction> triggers_;
  std::unordered_set<std::uint64_t> crashes_;
  double crash_probability_ = 0.0;
};

/// Receiver-side exactly-once filter: tracks per-sender sequence numbers
/// already applied, with a contiguous watermark so memory stays bounded by
/// the reorder window rather than the message count. Engines consult it
/// before applying a message so duplicated (or retried-after-delivery)
/// packets are idempotent. Single-threaded per receiving machine.
class DedupFilter {
 public:
  /// True exactly once per (from, seq); later calls return false.
  bool accept(PartitionId from, std::uint64_t seq) {
    Window& w = windows_[from];
    if (w.has_watermark && seq <= w.watermark) return false;
    if (!w.pending.insert(seq).second) return false;
    // Advance the contiguous prefix. Sequence numbers start at 0 per link
    // per run (Fabric::reset_delivery_state), so the watermark can chase
    // the front and erase the dense prefix.
    if (!w.has_watermark && w.pending.count(0) != 0) {
      w.has_watermark = true;
      w.watermark = 0;
      w.pending.erase(0);
    }
    if (w.has_watermark) {
      while (w.pending.erase(w.watermark + 1) != 0) ++w.watermark;
    }
    return true;
  }

  [[nodiscard]] std::uint64_t suppressed() const { return suppressed_; }
  void count_suppressed() { ++suppressed_; }

  /// Checkpoint support: the filter's watermarks + pending sets are part of
  /// a machine's recoverable state — restoring them alongside the link
  /// sequence counters keeps exactly-once intact across a replay.
  void serialize(PacketWriter& w) const {
    w.write<std::uint64_t>(suppressed_);
    w.write<std::uint64_t>(windows_.size());
    for (const auto& [from, win] : windows_) {
      w.write<PartitionId>(from);
      w.write<std::uint8_t>(win.has_watermark ? 1 : 0);
      w.write<std::uint64_t>(win.watermark);
      w.write<std::uint64_t>(win.pending.size());
      for (const std::uint64_t seq : win.pending) w.write<std::uint64_t>(seq);
    }
  }
  void deserialize(PacketReader& r) {
    windows_.clear();
    suppressed_ = r.read<std::uint64_t>();
    const auto nwin = r.read<std::uint64_t>();
    for (std::uint64_t i = 0; i < nwin; ++i) {
      const auto from = r.read<PartitionId>();
      Window& w = windows_[from];
      w.has_watermark = r.read<std::uint8_t>() != 0;
      w.watermark = r.read<std::uint64_t>();
      const auto npending = r.read<std::uint64_t>();
      for (std::uint64_t j = 0; j < npending; ++j) {
        w.pending.insert(r.read<std::uint64_t>());
      }
    }
  }

 private:
  struct Window {
    bool has_watermark = false;
    std::uint64_t watermark = 0;
    std::unordered_set<std::uint64_t> pending;
  };
  std::unordered_map<PartitionId, Window> windows_;
  std::uint64_t suppressed_ = 0;
};

}  // namespace cgraph
