#include "net/fault.hpp"

#include <sstream>

namespace cgraph {

const char* fault_action_name(FaultAction a) {
  switch (a) {
    case FaultAction::kDeliver:
      return "deliver";
    case FaultAction::kDrop:
      return "drop";
    case FaultAction::kDuplicate:
      return "duplicate";
    case FaultAction::kReorder:
      return "reorder";
    case FaultAction::kDelay:
      return "delay";
  }
  return "?";
}

FaultAction FaultPlan::decide(PartitionId from, PartitionId to,
                              std::uint64_t attempt) const {
  const auto trig = triggers_.find(trigger_key(from, to, attempt));
  if (trig != triggers_.end()) return trig->second;

  const LinkFaultSpec& spec = link_spec(from, to);
  if (spec.faultless()) return FaultAction::kDeliver;

  // One uniform draw per attempt, derived from (seed, link, attempt) so the
  // decision is independent of thread interleaving and replayable.
  SplitMix64 mix(seed_ ^ (0x9e3779b97f4a7c15ULL * (link_key(from, to) + 1)) ^
                 (attempt * 0xbf58476d1ce4e5b9ULL));
  const double u =
      static_cast<double>(mix.next() >> 11) * 0x1.0p-53;  // [0, 1)

  double edge = spec.drop;
  if (u < edge) return FaultAction::kDrop;
  edge += spec.duplicate;
  if (u < edge) return FaultAction::kDuplicate;
  edge += spec.reorder;
  if (u < edge) return FaultAction::kReorder;
  edge += spec.delay;
  if (u < edge) return FaultAction::kDelay;
  return FaultAction::kDeliver;
}

bool FaultPlan::crash_decision(PartitionId machine,
                               std::uint64_t superstep) const {
  if (crashes_.count(crash_key(machine, superstep)) != 0) return true;
  if (crash_probability_ <= 0) return false;

  // Same pure-hash scheme as link decisions but with distinct mixing
  // constants, so a crash draw never aliases a drop/duplicate draw made
  // from the same seed.
  SplitMix64 mix(seed_ ^
                 (0xd6e8feb86659fd93ULL * (crash_key(machine, superstep) + 1)) ^
                 (superstep * 0xa3b195354a39b70dULL));
  const double u = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  return u < crash_probability_;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "FaultPlan{seed=" << seed_ << ", default={drop=" << default_.drop
     << " dup=" << default_.duplicate << " reorder=" << default_.reorder
     << " delay=" << default_.delay << " delay_polls=" << default_.delay_polls
     << "}, link_overrides=" << links_.size()
     << ", triggers=" << triggers_.size() << ", crashes=" << crashes_.size()
     << ", crash_p=" << crash_probability_ << "}";
  return os.str();
}

}  // namespace cgraph
