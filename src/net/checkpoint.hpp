// Superstep checkpoint storage for crash-stop recovery.
//
// Superstep barriers are natural consistent cut points (Pregel-style): when
// the barrier completion callback runs, every machine thread is parked
// inside arrive_and_wait, no staged packet is in flight between engine loop
// iterations, and the per-link sequence/attempt counters are quiescent. The
// Cluster captures a ClusterSnapshot (link state + simulated clocks) there,
// and each machine serializes its partition state into a MachineCheckpoint
// blob at the top of its engine loop (MachineContext::maybe_checkpoint).
//
// On a crash the cluster rolls every machine back to the latest *complete*
// checkpointed step and re-runs the engine body; the seeded FaultPlan plus
// the restored link attempt counters make the replay bit-exact (see
// DESIGN.md "Recovery model"). The store keeps a short per-machine history
// of blobs rather than just the newest one: a replica that dies in the
// middle of a checkpoint write leaves some machines one step ahead of the
// others, and the surviving replica must be able to discard that partial
// tail and adopt the last cut at which *every* machine has a blob. Blobs
// live in memory; an optional directory mirrors the newest blob to disk
// (machine_<id>.ckpt) so a real deployment's stable-storage story can be
// exercised and round-tripped in tests.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "net/fabric.hpp"
#include "net/serialize.hpp"

namespace cgraph {

/// Cluster-wide state captured at one superstep barrier: everything outside
/// the machines' own partition state that the replay must re-seed.
struct ClusterSnapshot {
  Fabric::LinkSnapshot links;
  std::vector<double> clock_ns;  // per-machine simulated clocks
  double step_start_ns = 0;      // shared post-barrier clock value
};

/// One machine's checkpoint: the engine-defined partition state blob plus
/// the header the runtime needs to resume (superstep / async tick / clock).
struct MachineCheckpoint {
  std::uint64_t step = 0;   // superstep_ at capture (barriers passed)
  std::uint64_t tick = 0;   // async poll tick at capture (async engines)
  double clock_ns = 0;      // simulated clock at capture
  Packet state;             // engine payload (frontiers, values, dedup, ...)
};

class CheckpointStore {
 public:
  /// Everything one replica's store holds, as a movable value: the
  /// replication layer exports this from a dead replica (after discarding
  /// the partial tail) and imports it into the survivor so the adopted run
  /// resumes from the donor's last complete cut.
  struct Contents {
    std::vector<std::map<std::uint64_t, MachineCheckpoint>> machines;
    std::map<std::uint64_t, ClusterSnapshot> snapshots;
    ClusterSnapshot baseline;
  };

  /// Forget everything and size for `n` machines. Called at run start; the
  /// step-0 baseline snapshot is installed separately via set_baseline.
  void reset(PartitionId n);

  /// Enable the on-disk mirror: every save_machine also writes
  /// `<dir>/machine_<id>.ckpt` (newest blob only). Empty string disables.
  void set_dir(std::string dir) { dir_ = std::move(dir); }

  /// Snapshot of cluster state at run entry (before any barrier). Restoring
  /// to it with no machine blobs is a from-scratch restart of the body.
  void set_baseline(ClusterSnapshot snap);
  [[nodiscard]] ClusterSnapshot baseline() const;

  void save_cluster_snapshot(std::uint64_t step, ClusterSnapshot snap);
  [[nodiscard]] std::optional<ClusterSnapshot> cluster_snapshot(
      std::uint64_t step) const;

  /// Store machine `id`'s checkpoint in its history (pruning entries that
  /// can no longer be a restore target) and mirror the newest blob to disk
  /// when a directory is configured. Returns blob bytes written.
  std::size_t save_machine(PartitionId id, MachineCheckpoint ckpt);

  /// Machine `id`'s newest blob (may be part of a partial, not-yet-complete
  /// cut), or nullopt if it never saved one.
  [[nodiscard]] std::optional<MachineCheckpoint> machine(PartitionId id) const;

  /// Machine `id`'s blob at exactly `step`, or nullopt.
  [[nodiscard]] std::optional<MachineCheckpoint> machine_at(
      PartitionId id, std::uint64_t step) const;

  /// Step of machine `id`'s newest blob, or nullopt if it never saved one.
  [[nodiscard]] std::optional<std::uint64_t> last_saved(PartitionId id) const;

  /// Latest step S such that *every* machine has a blob at exactly S — the
  /// last complete barrier cut — or 0 (the baseline) when no such step
  /// exists. Blobs newer than S form a partial cut (a checkpoint write that
  /// was interrupted) and are never restore targets.
  [[nodiscard]] std::uint64_t latest_complete_step() const;

  /// Historic alias for latest_complete_step(): with the deterministic
  /// interval gate all machines save at the same steps, so on an intact
  /// replica "common" and "complete" coincide.
  [[nodiscard]] std::uint64_t latest_common_step() const {
    return latest_complete_step();
  }

  /// Drop every machine blob and cluster snapshot with step > `step`: the
  /// partial-cut discard a survivor performs before adopting a dead
  /// replica's store.
  void discard_after(std::uint64_t step);

  /// Move-out / install the full store contents (replication adoption).
  [[nodiscard]] Contents export_contents() const;
  void import_contents(Contents contents);

  /// Total machine blob entries across all histories — the boundedness
  /// invariant: at most one entry per machine below the latest complete
  /// cut (or per machine total when no cut has completed), plus the
  /// in-flight partial tail.
  [[nodiscard]] std::size_t total_blob_entries() const;

  /// Retained cluster snapshots (same boundedness argument).
  [[nodiscard]] std::size_t num_cluster_snapshots() const;

  /// Read a mirrored checkpoint file back (test/diagnostic helper).
  [[nodiscard]] static std::optional<MachineCheckpoint> read_file(
      const std::string& path);

 private:
  std::size_t write_file_locked(PartitionId id, const MachineCheckpoint& c);
  [[nodiscard]] std::uint64_t latest_complete_step_locked() const;
  void prune_locked();

  mutable std::mutex mu_;
  std::string dir_;
  std::vector<std::map<std::uint64_t, MachineCheckpoint>> machines_;
  std::map<std::uint64_t, ClusterSnapshot> snapshots_;
  ClusterSnapshot baseline_;
};

}  // namespace cgraph
