#include "net/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/assert.hpp"

namespace cgraph {
namespace {

// On-disk mirror format: magic, header fields, then the raw blob bytes.
constexpr char kCkptMagic[8] = {'C', 'G', 'C', 'K', 'P', 'T', '0', '1'};

}  // namespace

void CheckpointStore::reset(PartitionId n) {
  std::lock_guard<std::mutex> lk(mu_);
  machines_.assign(n, std::nullopt);
  snapshots_.clear();
  baseline_ = ClusterSnapshot{};
}

void CheckpointStore::set_baseline(ClusterSnapshot snap) {
  std::lock_guard<std::mutex> lk(mu_);
  baseline_ = std::move(snap);
}

ClusterSnapshot CheckpointStore::baseline() const {
  std::lock_guard<std::mutex> lk(mu_);
  return baseline_;
}

void CheckpointStore::save_cluster_snapshot(std::uint64_t step,
                                            ClusterSnapshot snap) {
  std::lock_guard<std::mutex> lk(mu_);
  snapshots_[step] = std::move(snap);
  prune_snapshots_locked();
}

std::optional<ClusterSnapshot> CheckpointStore::cluster_snapshot(
    std::uint64_t step) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = snapshots_.find(step);
  if (it == snapshots_.end()) return std::nullopt;
  return it->second;
}

std::size_t CheckpointStore::save_machine(PartitionId id,
                                          MachineCheckpoint ckpt) {
  std::lock_guard<std::mutex> lk(mu_);
  CGRAPH_DCHECK(id < machines_.size());
  const std::size_t bytes = ckpt.state.size();
  machines_[id] = std::move(ckpt);
  if (!dir_.empty()) write_file_locked(id, *machines_[id]);
  return bytes;
}

std::optional<MachineCheckpoint> CheckpointStore::machine(
    PartitionId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  CGRAPH_DCHECK(id < machines_.size());
  return machines_[id];
}

std::optional<std::uint64_t> CheckpointStore::last_saved(PartitionId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  CGRAPH_DCHECK(id < machines_.size());
  if (!machines_[id]) return std::nullopt;
  return machines_[id]->step;
}

std::uint64_t CheckpointStore::latest_common_step() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t common = ~std::uint64_t{0};
  for (const auto& m : machines_) {
    if (!m) return 0;
    common = std::min(common, m->step);
  }
  return machines_.empty() ? 0 : common;
}

std::optional<MachineCheckpoint> CheckpointStore::read_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kCkptMagic, sizeof(magic)) != 0) {
    return std::nullopt;
  }
  MachineCheckpoint c;
  std::uint64_t nbytes = 0;
  in.read(reinterpret_cast<char*>(&c.step), sizeof(c.step));
  in.read(reinterpret_cast<char*>(&c.tick), sizeof(c.tick));
  in.read(reinterpret_cast<char*>(&c.clock_ns), sizeof(c.clock_ns));
  in.read(reinterpret_cast<char*>(&nbytes), sizeof(nbytes));
  if (!in) return std::nullopt;
  c.state.resize(nbytes);
  if (nbytes > 0) {
    in.read(reinterpret_cast<char*>(c.state.data()),
            static_cast<std::streamsize>(nbytes));
    if (!in) return std::nullopt;
  }
  return c;
}

std::size_t CheckpointStore::write_file_locked(PartitionId id,
                                               const MachineCheckpoint& c) {
  const std::string path =
      dir_ + "/machine_" + std::to_string(id) + ".ckpt";
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best-effort; open checks
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CGRAPH_CHECK_MSG(static_cast<bool>(out),
                   "cannot open checkpoint file for writing");
  const std::uint64_t nbytes = c.state.size();
  out.write(kCkptMagic, sizeof(kCkptMagic));
  out.write(reinterpret_cast<const char*>(&c.step), sizeof(c.step));
  out.write(reinterpret_cast<const char*>(&c.tick), sizeof(c.tick));
  out.write(reinterpret_cast<const char*>(&c.clock_ns), sizeof(c.clock_ns));
  out.write(reinterpret_cast<const char*>(&nbytes), sizeof(nbytes));
  if (nbytes > 0) {
    out.write(reinterpret_cast<const char*>(c.state.data()),
              static_cast<std::streamsize>(nbytes));
  }
  CGRAPH_CHECK_MSG(static_cast<bool>(out), "checkpoint file write failed");
  return sizeof(kCkptMagic) + 3 * sizeof(std::uint64_t) + 8 + c.state.size();
}

void CheckpointStore::prune_snapshots_locked() {
  // Snapshots older than the latest common machine blob can never be a
  // restore target again (restores go to latest_common_step or baseline 0).
  std::uint64_t common = ~std::uint64_t{0};
  for (const auto& m : machines_) {
    if (!m) return;  // baseline restarts still possible; keep everything
    common = std::min(common, m->step);
  }
  if (machines_.empty()) return;
  snapshots_.erase(snapshots_.begin(), snapshots_.lower_bound(common));
}

}  // namespace cgraph
