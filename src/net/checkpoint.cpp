#include "net/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "util/assert.hpp"

namespace cgraph {
namespace {

// On-disk mirror format: magic, header fields, then the raw blob bytes.
constexpr char kCkptMagic[8] = {'C', 'G', 'C', 'K', 'P', 'T', '0', '1'};

}  // namespace

void CheckpointStore::reset(PartitionId n) {
  std::lock_guard<std::mutex> lk(mu_);
  machines_.assign(n, {});
  snapshots_.clear();
  baseline_ = ClusterSnapshot{};
}

void CheckpointStore::set_baseline(ClusterSnapshot snap) {
  std::lock_guard<std::mutex> lk(mu_);
  baseline_ = std::move(snap);
}

ClusterSnapshot CheckpointStore::baseline() const {
  std::lock_guard<std::mutex> lk(mu_);
  return baseline_;
}

void CheckpointStore::save_cluster_snapshot(std::uint64_t step,
                                            ClusterSnapshot snap) {
  std::lock_guard<std::mutex> lk(mu_);
  snapshots_[step] = std::move(snap);
  prune_locked();
}

std::optional<ClusterSnapshot> CheckpointStore::cluster_snapshot(
    std::uint64_t step) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = snapshots_.find(step);
  if (it == snapshots_.end()) return std::nullopt;
  return it->second;
}

std::size_t CheckpointStore::save_machine(PartitionId id,
                                          MachineCheckpoint ckpt) {
  std::lock_guard<std::mutex> lk(mu_);
  CGRAPH_DCHECK(id < machines_.size());
  const std::size_t bytes = ckpt.state.size();
  const std::uint64_t step = ckpt.step;
  machines_[id][step] = std::move(ckpt);
  if (!dir_.empty()) write_file_locked(id, machines_[id][step]);
  prune_locked();
  return bytes;
}

std::optional<MachineCheckpoint> CheckpointStore::machine(
    PartitionId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  CGRAPH_DCHECK(id < machines_.size());
  if (machines_[id].empty()) return std::nullopt;
  return machines_[id].rbegin()->second;
}

std::optional<MachineCheckpoint> CheckpointStore::machine_at(
    PartitionId id, std::uint64_t step) const {
  std::lock_guard<std::mutex> lk(mu_);
  CGRAPH_DCHECK(id < machines_.size());
  const auto it = machines_[id].find(step);
  if (it == machines_[id].end()) return std::nullopt;
  return it->second;
}

std::optional<std::uint64_t> CheckpointStore::last_saved(PartitionId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  CGRAPH_DCHECK(id < machines_.size());
  if (machines_[id].empty()) return std::nullopt;
  return machines_[id].rbegin()->first;
}

std::uint64_t CheckpointStore::latest_complete_step() const {
  std::lock_guard<std::mutex> lk(mu_);
  return latest_complete_step_locked();
}

std::uint64_t CheckpointStore::latest_complete_step_locked() const {
  if (machines_.empty()) return 0;
  // Candidate steps are those in machine 0's history (a step absent there
  // cannot be complete); walk them newest-first and return the first one
  // present in every other machine's history.
  for (auto it = machines_[0].rbegin(); it != machines_[0].rend(); ++it) {
    const std::uint64_t step = it->first;
    bool complete = true;
    for (std::size_t m = 1; m < machines_.size(); ++m) {
      if (machines_[m].find(step) == machines_[m].end()) {
        complete = false;
        break;
      }
    }
    if (complete) return step;
  }
  return 0;
}

void CheckpointStore::discard_after(std::uint64_t step) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& history : machines_) {
    history.erase(history.upper_bound(step), history.end());
  }
  snapshots_.erase(snapshots_.upper_bound(step), snapshots_.end());
}

CheckpointStore::Contents CheckpointStore::export_contents() const {
  std::lock_guard<std::mutex> lk(mu_);
  Contents c;
  c.machines = machines_;
  c.snapshots = snapshots_;
  c.baseline = baseline_;
  return c;
}

void CheckpointStore::import_contents(Contents contents) {
  std::lock_guard<std::mutex> lk(mu_);
  machines_ = std::move(contents.machines);
  snapshots_ = std::move(contents.snapshots);
  baseline_ = std::move(contents.baseline);
  // The donor trimmed its partial tail before export, but its history
  // below the adopted cut rides along — prune it so repeated failovers
  // cannot accrete dead blobs in the survivor.
  prune_locked();
}

std::size_t CheckpointStore::total_blob_entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const auto& history : machines_) n += history.size();
  return n;
}

std::size_t CheckpointStore::num_cluster_snapshots() const {
  std::lock_guard<std::mutex> lk(mu_);
  return snapshots_.size();
}

std::optional<MachineCheckpoint> CheckpointStore::read_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kCkptMagic, sizeof(magic)) != 0) {
    return std::nullopt;
  }
  MachineCheckpoint c;
  std::uint64_t nbytes = 0;
  in.read(reinterpret_cast<char*>(&c.step), sizeof(c.step));
  in.read(reinterpret_cast<char*>(&c.tick), sizeof(c.tick));
  in.read(reinterpret_cast<char*>(&c.clock_ns), sizeof(c.clock_ns));
  in.read(reinterpret_cast<char*>(&nbytes), sizeof(nbytes));
  if (!in) return std::nullopt;
  c.state.resize(nbytes);
  if (nbytes > 0) {
    in.read(reinterpret_cast<char*>(c.state.data()),
            static_cast<std::streamsize>(nbytes));
    if (!in) return std::nullopt;
  }
  return c;
}

std::size_t CheckpointStore::write_file_locked(PartitionId id,
                                               const MachineCheckpoint& c) {
  const std::string path =
      dir_ + "/machine_" + std::to_string(id) + ".ckpt";
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best-effort; open checks
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CGRAPH_CHECK_MSG(static_cast<bool>(out),
                   "cannot open checkpoint file for writing");
  const std::uint64_t nbytes = c.state.size();
  out.write(kCkptMagic, sizeof(kCkptMagic));
  out.write(reinterpret_cast<const char*>(&c.step), sizeof(c.step));
  out.write(reinterpret_cast<const char*>(&c.tick), sizeof(c.tick));
  out.write(reinterpret_cast<const char*>(&c.clock_ns), sizeof(c.clock_ns));
  out.write(reinterpret_cast<const char*>(&nbytes), sizeof(nbytes));
  if (nbytes > 0) {
    out.write(reinterpret_cast<const char*>(c.state.data()),
              static_cast<std::streamsize>(nbytes));
  }
  CGRAPH_CHECK_MSG(static_cast<bool>(out), "checkpoint file write failed");
  return sizeof(kCkptMagic) + 3 * sizeof(std::uint64_t) + 8 + c.state.size();
}

void CheckpointStore::prune_locked() {
  // Blobs and snapshots older than the latest complete cut can never be a
  // restore target again (restores go to latest_complete_step or baseline
  // 0); newer-than-complete entries are the partial tail and must be kept
  // until the cut they belong to completes or a survivor discards them.
  const std::uint64_t complete = latest_complete_step_locked();
  if (complete == 0) {
    // No complete cut yet: either the first cut is still in flight, or an
    // async engine is saving at per-machine progress values that never
    // line up into one. The only live reads here are each machine's
    // *newest* blob (async resume) and the baseline (staged restart); a
    // blob below its own machine's newest can never complete a cut later
    // either, because saves are monotone and some machine is already past
    // it. Everything but the newest entry per machine is garbage — the
    // early-return this branch used to take let async histories (and the
    // per-barrier snapshot map) grow without bound across long runs.
    std::uint64_t min_newest = ~0ULL;
    for (auto& history : machines_) {
      if (history.size() > 1) {
        history.erase(history.begin(), std::prev(history.end()));
      }
      min_newest = std::min(
          min_newest,
          history.empty() ? std::uint64_t{0} : history.rbegin()->first);
    }
    if (!machines_.empty() && min_newest > 0 && min_newest != ~0ULL) {
      // Snapshots below every machine's newest save belong to cuts that
      // are provably dead (incomplete and passed by all machines).
      snapshots_.erase(snapshots_.begin(), snapshots_.lower_bound(min_newest));
    }
    return;
  }
  for (auto& history : machines_) {
    history.erase(history.begin(), history.lower_bound(complete));
  }
  snapshots_.erase(snapshots_.begin(), snapshots_.lower_bound(complete));
}

}  // namespace cgraph
