// Simulated cluster interconnect (stands in for the paper's MPI/socket
// layer). Routes byte packets between machine mailboxes and keeps exact
// per-machine traffic counters that feed the CostModel.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/types.hpp"
#include "net/mailbox.hpp"
#include "net/serialize.hpp"
#include "util/assert.hpp"

namespace cgraph {

/// Traffic counters for one machine (sent side), split by delivery mode so
/// telemetry can attribute wire volume to BSP exchanges vs async pushes.
/// Atomics because helper threads inside a machine may send concurrently.
struct TrafficCounters {
  std::atomic<std::uint64_t> staged_packets{0};
  std::atomic<std::uint64_t> staged_bytes{0};
  std::atomic<std::uint64_t> async_packets{0};
  std::atomic<std::uint64_t> async_bytes{0};

  void record_staged(std::size_t payload_bytes) {
    staged_packets.fetch_add(1, std::memory_order_relaxed);
    staged_bytes.fetch_add(payload_bytes, std::memory_order_relaxed);
  }
  void record_async(std::size_t payload_bytes) {
    async_packets.fetch_add(1, std::memory_order_relaxed);
    async_bytes.fetch_add(payload_bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t packets() const {
    return staged_packets.load(std::memory_order_relaxed) +
           async_packets.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return staged_bytes.load(std::memory_order_relaxed) +
           async_bytes.load(std::memory_order_relaxed);
  }
  void reset() {
    staged_packets.store(0, std::memory_order_relaxed);
    staged_bytes.store(0, std::memory_order_relaxed);
    async_packets.store(0, std::memory_order_relaxed);
    async_bytes.store(0, std::memory_order_relaxed);
  }
};

class Fabric {
 public:
  explicit Fabric(PartitionId num_machines)
      : mailboxes_(num_machines), sent_(num_machines) {
    for (auto& m : mailboxes_) m = std::make_unique<Mailbox>();
    for (auto& c : sent_) c = std::make_unique<TrafficCounters>();
  }

  [[nodiscard]] PartitionId num_machines() const {
    return static_cast<PartitionId>(mailboxes_.size());
  }

  /// BSP send: delivered when the receiver drains `superstep`.
  void send_superstep(PartitionId from, PartitionId to, std::uint32_t tag,
                      Packet payload, std::uint64_t superstep) {
    CGRAPH_DCHECK(to < mailboxes_.size());
    sent_[from]->record_staged(payload.size());
    mailboxes_[to]->push_superstep({from, tag, std::move(payload)},
                                   superstep);
  }

  /// Async send: visible to the receiver's drain_now() immediately.
  void send_now(PartitionId from, PartitionId to, std::uint32_t tag,
                Packet payload) {
    CGRAPH_DCHECK(to < mailboxes_.size());
    sent_[from]->record_async(payload.size());
    mailboxes_[to]->push_now({from, tag, std::move(payload)});
  }

  [[nodiscard]] Mailbox& mailbox(PartitionId id) {
    CGRAPH_DCHECK(id < mailboxes_.size());
    return *mailboxes_[id];
  }

  [[nodiscard]] TrafficCounters& sent_counters(PartitionId id) {
    return *sent_[id];
  }
  [[nodiscard]] const TrafficCounters& sent_counters(PartitionId id) const {
    return *sent_[id];
  }

  /// Total bytes sent across all machines since construction/reset.
  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t total = 0;
    for (const auto& c : sent_) total += c->bytes();
    return total;
  }
  [[nodiscard]] std::uint64_t total_packets() const {
    std::uint64_t total = 0;
    for (const auto& c : sent_) total += c->packets();
    return total;
  }

  void reset_counters() {
    for (auto& c : sent_) c->reset();
  }

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<TrafficCounters>> sent_;
};

}  // namespace cgraph
