// Simulated cluster interconnect (stands in for the paper's MPI/socket
// layer). Routes byte packets between machine mailboxes and keeps exact
// per-machine traffic counters that feed the CostModel.
//
// An optional FaultPlan (net/fault.hpp) sits on the send path and can
// drop, duplicate, reorder, or delay individual transmission attempts:
//   * Staged (BSP) sends retransmit inside the send call — modelling an
//     ack/timeout exchange absorbed by the superstep barrier — up to
//     kMaxStagedAttempts before the packet is declared delivery_failed.
//   * Async sends get exactly one attempt; reliability comes from the
//     sequence/ack/retry protocol in MachineContext (net/cluster.cpp),
//     which calls resend_now()/send_ack() here.
// Every attempt's fate is counted (delivered/dropped/duplicated/...) so
// telemetry reconciles exactly even under fault plans, and every
// non-clean decision is recorded in a replayable fault log.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/types.hpp"
#include "net/fault.hpp"
#include "net/mailbox.hpp"
#include "net/serialize.hpp"
#include "util/assert.hpp"
#include "util/spinlock.hpp"

namespace cgraph {

/// Traffic counters for one machine, split by delivery mode so telemetry
/// can attribute wire volume to BSP exchanges vs async pushes. The
/// staged/async pairs count *logical* sends (once per send call,
/// retransmissions excluded); the delivery-outcome counters below count
/// individual transmission attempts and mailbox deposits, so under a fault
/// plan the books still balance:
///   attempts  = staged + async + ack + retried
///   delivered = attempts - dropped + duplicated
/// Atomics because helper threads inside a machine may send concurrently.
struct TrafficCounters {
  std::atomic<std::uint64_t> staged_packets{0};
  std::atomic<std::uint64_t> staged_bytes{0};
  std::atomic<std::uint64_t> async_packets{0};
  std::atomic<std::uint64_t> async_bytes{0};
  // Delivery outcomes (sender-attributed, i.e. on the sending machine).
  std::atomic<std::uint64_t> delivered_packets{0};
  std::atomic<std::uint64_t> dropped_packets{0};
  std::atomic<std::uint64_t> duplicated_packets{0};
  std::atomic<std::uint64_t> reordered_packets{0};
  std::atomic<std::uint64_t> delayed_packets{0};
  std::atomic<std::uint64_t> retried_packets{0};
  std::atomic<std::uint64_t> delivery_failed_packets{0};
  std::atomic<std::uint64_t> ack_packets{0};
  // Receiver-attributed: duplicate deliveries suppressed by dedup filters.
  std::atomic<std::uint64_t> dedup_suppressed_packets{0};

  void record_staged(std::size_t payload_bytes) {
    staged_packets.fetch_add(1, std::memory_order_relaxed);
    staged_bytes.fetch_add(payload_bytes, std::memory_order_relaxed);
  }
  void record_async(std::size_t payload_bytes) {
    async_packets.fetch_add(1, std::memory_order_relaxed);
    async_bytes.fetch_add(payload_bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t packets() const {
    return staged_packets.load(std::memory_order_relaxed) +
           async_packets.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return staged_bytes.load(std::memory_order_relaxed) +
           async_bytes.load(std::memory_order_relaxed);
  }
  /// Transmission attempts this machine made (logical sends + acks +
  /// retransmissions). Each attempt lands in delivered or dropped.
  [[nodiscard]] std::uint64_t attempts() const {
    return packets() + ack_packets.load(std::memory_order_relaxed) +
           retried_packets.load(std::memory_order_relaxed);
  }
  void reset() {
    for (auto* a :
         {&staged_packets, &staged_bytes, &async_packets, &async_bytes,
          &delivered_packets, &dropped_packets, &duplicated_packets,
          &reordered_packets, &delayed_packets, &retried_packets,
          &delivery_failed_packets, &ack_packets,
          &dedup_suppressed_packets}) {
      a->store(0, std::memory_order_relaxed);
    }
  }
};

class Fabric {
 public:
  /// Retransmissions a staged send makes before giving up. High enough
  /// that any drop rate a chaos plan uses (<= ~50%) fails with negligible
  /// probability; a deliberately dead link (drop = 1.0) exhausts it and
  /// surfaces delivery_failed instead of wedging the barrier.
  static constexpr std::uint32_t kMaxStagedAttempts = 24;

  explicit Fabric(PartitionId num_machines)
      : mailboxes_(num_machines),
        sent_(num_machines),
        links_(static_cast<std::size_t>(num_machines) * num_machines) {
    for (auto& m : mailboxes_) m = std::make_unique<Mailbox>();
    for (auto& c : sent_) c = std::make_unique<TrafficCounters>();
    for (auto& l : links_) l = std::make_unique<LinkState>();
  }

  [[nodiscard]] PartitionId num_machines() const {
    return static_cast<PartitionId>(mailboxes_.size());
  }

  /// Install (or clear, with nullptr) the fault plan consulted on every
  /// subsequent transmission attempt. The plan is shared and const: one
  /// plan can drive many fabrics/runs deterministically.
  void install_fault_plan(std::shared_ptr<const FaultPlan> plan) {
    plan_ = std::move(plan);
  }
  [[nodiscard]] const FaultPlan* fault_plan() const { return plan_.get(); }

  /// BSP send: delivered when the receiver drains `superstep`. Returns
  /// false only if the fault layer permanently dropped the packet
  /// (delivery_failed); callers normally ignore this — a real sender only
  /// learns of the failure through the counters.
  bool send_superstep(PartitionId from, PartitionId to, std::uint32_t tag,
                      Packet payload, std::uint64_t superstep) {
    CGRAPH_DCHECK(to < mailboxes_.size());
    TrafficCounters& tc = *sent_[from];
    tc.record_staged(payload.size());
    Envelope env{from, tag, std::move(payload), next_seq(from, to),
                 EnvelopeKind::kData};
    // Ack/timeout retransmit absorbed by the barrier: keep attempting
    // until delivered or the bounded-retry budget is exhausted.
    for (std::uint32_t att = 0;; ++att) {
      const FaultAction action = next_action(from, to);
      switch (action) {
        case FaultAction::kDrop:
          tc.dropped_packets.fetch_add(1, std::memory_order_relaxed);
          if (att + 1 >= kMaxStagedAttempts) {
            tc.delivery_failed_packets.fetch_add(1,
                                                 std::memory_order_relaxed);
            return false;
          }
          tc.retried_packets.fetch_add(1, std::memory_order_relaxed);
          continue;
        case FaultAction::kDuplicate:
          tc.duplicated_packets.fetch_add(1, std::memory_order_relaxed);
          tc.delivered_packets.fetch_add(2, std::memory_order_relaxed);
          mailboxes_[to]->push_superstep(env, superstep);  // copy
          mailboxes_[to]->push_superstep(std::move(env), superstep);
          return true;
        case FaultAction::kReorder:
          tc.reordered_packets.fetch_add(1, std::memory_order_relaxed);
          tc.delivered_packets.fetch_add(1, std::memory_order_relaxed);
          mailboxes_[to]->push_superstep_front(std::move(env), superstep);
          return true;
        case FaultAction::kDelay:
          // A late packet still lands before the barrier lifts (the
          // exchange waits for it); only the counters notice.
          tc.delayed_packets.fetch_add(1, std::memory_order_relaxed);
          tc.delivered_packets.fetch_add(1, std::memory_order_relaxed);
          mailboxes_[to]->push_superstep(std::move(env), superstep);
          return true;
        case FaultAction::kDeliver:
          tc.delivered_packets.fetch_add(1, std::memory_order_relaxed);
          mailboxes_[to]->push_superstep(std::move(env), superstep);
          return true;
      }
    }
  }

  /// Outcome of one async transmission attempt. `deposited` is the
  /// transport-level failure-detector signal: true iff the attempt reached
  /// the receiver's mailbox in some form (normal, duplicated, reordered,
  /// or delayed), false iff the fault layer dropped it.
  struct AsyncSendResult {
    std::uint64_t seq = 0;
    bool deposited = false;
  };

  /// Async send: visible to the receiver's drain_now() immediately (unless
  /// faulted). Exactly one attempt; the caller's ack/retry protocol
  /// recovers from drops. Returns the sequence number assigned (so the
  /// sender can match the eventual ack) and the attempt's fate.
  AsyncSendResult send_now(PartitionId from, PartitionId to,
                           std::uint32_t tag, Packet payload) {
    CGRAPH_DCHECK(to < mailboxes_.size());
    sent_[from]->record_async(payload.size());
    const std::uint64_t seq = next_seq(from, to);
    const bool deposited =
        transmit_now(from, to,
                     Envelope{from, tag, std::move(payload), seq,
                              EnvelopeKind::kData});
    return {seq, deposited};
  }

  /// Retransmission of an async packet (same sequence number, fresh fault
  /// decision). Counted under retried, not as a new logical send. Returns
  /// whether this attempt was deposited (see AsyncSendResult).
  bool resend_now(PartitionId from, PartitionId to, std::uint32_t tag,
                  Packet payload, std::uint64_t seq) {
    sent_[from]->retried_packets.fetch_add(1, std::memory_order_relaxed);
    return transmit_now(from, to,
                        Envelope{from, tag, std::move(payload), seq,
                                 EnvelopeKind::kData});
  }

  /// Acknowledge receipt of sequence number `acked_seq` back to `to` (the
  /// original sender). Acks ride the same faulty links: a lost ack causes
  /// a retransmission, which the receiver's dedup filter absorbs.
  void send_ack(PartitionId from, PartitionId to, std::uint64_t acked_seq) {
    sent_[from]->ack_packets.fetch_add(1, std::memory_order_relaxed);
    transmit_now(from, to,
                 Envelope{from, 0, Packet{}, acked_seq, EnvelopeKind::kAck});
  }

  void record_dedup_suppressed(PartitionId receiver) {
    sent_[receiver]->dedup_suppressed_packets.fetch_add(
        1, std::memory_order_relaxed);
  }
  void record_delivery_failed(PartitionId sender) {
    sent_[sender]->delivery_failed_packets.fetch_add(
        1, std::memory_order_relaxed);
  }

  [[nodiscard]] Mailbox& mailbox(PartitionId id) {
    CGRAPH_DCHECK(id < mailboxes_.size());
    return *mailboxes_[id];
  }

  [[nodiscard]] TrafficCounters& sent_counters(PartitionId id) {
    return *sent_[id];
  }
  [[nodiscard]] const TrafficCounters& sent_counters(PartitionId id) const {
    return *sent_[id];
  }

  /// Total bytes sent across all machines since construction/reset.
  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t total = 0;
    for (const auto& c : sent_) total += c->bytes();
    return total;
  }
  [[nodiscard]] std::uint64_t total_packets() const {
    std::uint64_t total = 0;
    for (const auto& c : sent_) total += c->packets();
    return total;
  }
  [[nodiscard]] std::uint64_t total_delivery_failed() const {
    std::uint64_t total = 0;
    for (const auto& c : sent_)
      total += c->delivery_failed_packets.load(std::memory_order_relaxed);
    return total;
  }

  void reset_counters() {
    for (auto& c : sent_) c->reset();
  }

  /// Reset per-link sequence/attempt counters, purge every mailbox (stale
  /// duplicates from a previous run must not leak into the next one), and
  /// clear the fault log. Engines call this at run start so sequence
  /// numbers start at 0 per link per run and the log describes one run.
  void reset_delivery_state() {
    for (auto& l : links_) {
      l->seq.store(0, std::memory_order_relaxed);
      l->attempts.store(0, std::memory_order_relaxed);
    }
    for (auto& m : mailboxes_) m->clear_all();
    std::lock_guard<SpinLock> lk(log_mu_);
    fault_log_.clear();
  }

  /// Non-deliver decisions taken since the last reset_delivery_state(),
  /// in per-link attempt order (global order across links is unspecified).
  [[nodiscard]] std::vector<FaultEvent> fault_log() const {
    std::lock_guard<SpinLock> lk(log_mu_);
    return fault_log_;
  }

  /// Per-link (seq, attempts) pairs in row-major (from * N + to) order.
  /// Captured at superstep barriers as part of a cluster-wide checkpoint so
  /// a replay after a crash re-issues the same sequence numbers and fault
  /// decisions as the original execution.
  struct LinkSnapshot {
    std::vector<std::uint64_t> seqs;
    std::vector<std::uint64_t> attempts;
  };

  [[nodiscard]] LinkSnapshot snapshot_links() const {
    LinkSnapshot snap;
    snap.seqs.reserve(links_.size());
    snap.attempts.reserve(links_.size());
    for (const auto& l : links_) {
      snap.seqs.push_back(l->seq.load(std::memory_order_relaxed));
      snap.attempts.push_back(l->attempts.load(std::memory_order_relaxed));
    }
    return snap;
  }

  /// Restore link sequence/attempt counters to a snapshot and purge all
  /// mailboxes (in-flight packets die with the crash). The fault log is
  /// deliberately kept: replayed attempts re-log their decisions, so after
  /// a recovery the log contains the pre-crash prefix plus the replay —
  /// a faithful record of every decision actually taken.
  void restore_links(const LinkSnapshot& snap) {
    CGRAPH_CHECK(snap.seqs.size() == links_.size());
    for (std::size_t i = 0; i < links_.size(); ++i) {
      links_[i]->seq.store(snap.seqs[i], std::memory_order_relaxed);
      links_[i]->attempts.store(snap.attempts[i], std::memory_order_relaxed);
    }
    for (auto& m : mailboxes_) m->clear_all();
  }

 private:
  struct LinkState {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> attempts{0};
  };

  [[nodiscard]] LinkState& link(PartitionId from, PartitionId to) {
    return *links_[static_cast<std::size_t>(from) * mailboxes_.size() + to];
  }

  std::uint64_t next_seq(PartitionId from, PartitionId to) {
    return link(from, to).seq.fetch_add(1, std::memory_order_relaxed);
  }

  /// Consume one per-link attempt index and decide this attempt's fate.
  FaultAction next_action(PartitionId from, PartitionId to) {
    const std::uint64_t attempt =
        link(from, to).attempts.fetch_add(1, std::memory_order_relaxed);
    if (!plan_) return FaultAction::kDeliver;
    const FaultAction action = plan_->decide(from, to, attempt);
    if (action != FaultAction::kDeliver) {
      std::lock_guard<SpinLock> lk(log_mu_);
      fault_log_.push_back({from, to, attempt, action});
    }
    return action;
  }

  /// One async transmission attempt (data or ack) through the fault layer.
  /// Returns true iff the envelope was deposited into the receiver's
  /// mailbox (in any form), false iff the attempt was dropped.
  bool transmit_now(PartitionId from, PartitionId to, Envelope env) {
    TrafficCounters& tc = *sent_[from];
    switch (next_action(from, to)) {
      case FaultAction::kDrop:
        tc.dropped_packets.fetch_add(1, std::memory_order_relaxed);
        return false;
      case FaultAction::kDuplicate:
        tc.duplicated_packets.fetch_add(1, std::memory_order_relaxed);
        tc.delivered_packets.fetch_add(2, std::memory_order_relaxed);
        mailboxes_[to]->push_now(env);  // copy
        mailboxes_[to]->push_now(std::move(env));
        return true;
      case FaultAction::kReorder:
        tc.reordered_packets.fetch_add(1, std::memory_order_relaxed);
        tc.delivered_packets.fetch_add(1, std::memory_order_relaxed);
        mailboxes_[to]->push_now_front(std::move(env));
        return true;
      case FaultAction::kDelay: {
        const std::uint32_t polls =
            plan_ ? plan_->link_spec(from, to).delay_polls : 1;
        tc.delayed_packets.fetch_add(1, std::memory_order_relaxed);
        tc.delivered_packets.fetch_add(1, std::memory_order_relaxed);
        mailboxes_[to]->push_delayed(std::move(env), polls);
        return true;
      }
      case FaultAction::kDeliver:
        tc.delivered_packets.fetch_add(1, std::memory_order_relaxed);
        mailboxes_[to]->push_now(std::move(env));
        return true;
    }
    return false;  // unreachable
  }

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<TrafficCounters>> sent_;
  std::vector<std::unique_ptr<LinkState>> links_;
  std::shared_ptr<const FaultPlan> plan_;
  mutable SpinLock log_mu_;
  std::vector<FaultEvent> fault_log_;
};

}  // namespace cgraph
