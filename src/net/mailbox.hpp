// Per-machine message intake: the "incoming task buffer" of paper Fig. 4.
//
// Supports the two delivery disciplines the engines need:
//   * BSP ("sync"): packets sent during superstep s are tagged with s and
//     only drained once the receiver reaches superstep s — double buffering
//     by superstep parity, which is sufficient because barriers prevent any
//     machine from running two supersteps ahead.
//   * Async: packets are visible to drain_now() immediately.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "graph/types.hpp"
#include "net/serialize.hpp"
#include "util/spinlock.hpp"

namespace cgraph {

struct Envelope {
  PartitionId from = kInvalidPartition;
  std::uint32_t tag = 0;  // engine-defined message kind
  Packet payload;
};

class Mailbox {
 public:
  /// Deposit for BSP delivery after the superstep barrier.
  void push_superstep(Envelope env, std::uint64_t superstep) {
    std::lock_guard<SpinLock> lk(mu_);
    staged_[superstep & 1].push_back(std::move(env));
  }

  /// Deposit for immediate (async) delivery.
  void push_now(Envelope env) {
    std::lock_guard<SpinLock> lk(mu_);
    ready_.push_back(std::move(env));
  }

  /// Drain everything staged for `superstep` (call after the barrier that
  /// ends it).
  std::vector<Envelope> drain_superstep(std::uint64_t superstep) {
    std::lock_guard<SpinLock> lk(mu_);
    std::vector<Envelope> out = std::move(staged_[superstep & 1]);
    staged_[superstep & 1].clear();
    return out;
  }

  /// Drain all immediately-visible messages (async mode).
  std::vector<Envelope> drain_now() {
    std::lock_guard<SpinLock> lk(mu_);
    std::vector<Envelope> out = std::move(ready_);
    ready_.clear();
    return out;
  }

  [[nodiscard]] bool empty_now() {
    std::lock_guard<SpinLock> lk(mu_);
    return ready_.empty();
  }

 private:
  SpinLock mu_;
  std::vector<Envelope> staged_[2];
  std::vector<Envelope> ready_;
};

}  // namespace cgraph
