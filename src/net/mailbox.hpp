// Per-machine message intake: the "incoming task buffer" of paper Fig. 4.
//
// Supports the two delivery disciplines the engines need:
//   * BSP ("sync"): packets sent during superstep s are tagged with s and
//     only drained once the receiver reaches superstep s — double buffering
//     by superstep parity, which is sufficient because barriers prevent any
//     machine from running two supersteps ahead.
//   * Async: packets are visible to drain_now() immediately.
//
// The fault-injection layer (net/fault.hpp) adds two delivery variants:
// front-insertion (a "reordered" packet overtakes earlier undrained ones)
// and a limbo queue for delayed packets, which re-enter the ready queue
// after the receiver has polled a configured number of times.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "graph/types.hpp"
#include "net/serialize.hpp"
#include "util/spinlock.hpp"

namespace cgraph {

/// Delivery-protocol role of an envelope. Engines only ever see kData;
/// kAck frames are consumed inside MachineContext::recv_async().
enum class EnvelopeKind : std::uint8_t {
  kData = 0,
  kAck = 1,
};

struct Envelope {
  PartitionId from = kInvalidPartition;
  std::uint32_t tag = 0;  // engine-defined message kind
  Packet payload;
  /// Per-(from -> to) link sequence number assigned by the fabric; for
  /// kAck frames, the sequence number being acknowledged. Receivers dedup
  /// on (from, seq) so duplicated/retransmitted packets apply once.
  std::uint64_t seq = 0;
  EnvelopeKind kind = EnvelopeKind::kData;
};

class Mailbox {
 public:
  /// Deposit for BSP delivery after the superstep barrier.
  void push_superstep(Envelope env, std::uint64_t superstep) {
    std::lock_guard<SpinLock> lk(mu_);
    staged_[superstep & 1].push_back(std::move(env));
  }

  /// Fault-layer variant: insert ahead of everything already staged for
  /// `superstep`, modelling a packet that overtakes earlier traffic.
  void push_superstep_front(Envelope env, std::uint64_t superstep) {
    std::lock_guard<SpinLock> lk(mu_);
    auto& bucket = staged_[superstep & 1];
    bucket.insert(bucket.begin(), std::move(env));
  }

  /// Deposit for immediate (async) delivery.
  void push_now(Envelope env) {
    std::lock_guard<SpinLock> lk(mu_);
    ready_.push_back(std::move(env));
  }

  /// Fault-layer variant: overtakes every undrained async packet.
  void push_now_front(Envelope env) {
    std::lock_guard<SpinLock> lk(mu_);
    ready_.insert(ready_.begin(), std::move(env));
  }

  /// Fault-layer variant: withheld until the receiver has called
  /// drain_now() `polls` more times (then delivered ahead of fresh ready
  /// packets, since it is older traffic).
  void push_delayed(Envelope env, std::uint32_t polls) {
    std::lock_guard<SpinLock> lk(mu_);
    delayed_.push_back({polls, std::move(env)});
  }

  /// Drain everything staged for `superstep` (call after the barrier that
  /// ends it).
  std::vector<Envelope> drain_superstep(std::uint64_t superstep) {
    std::lock_guard<SpinLock> lk(mu_);
    std::vector<Envelope> out = std::move(staged_[superstep & 1]);
    staged_[superstep & 1].clear();
    return out;
  }

  /// Drain all immediately-visible messages (async mode). Each call also
  /// ages the delayed queue by one poll and releases expired packets.
  std::vector<Envelope> drain_now() {
    std::lock_guard<SpinLock> lk(mu_);
    std::vector<Envelope> out;
    if (!delayed_.empty()) {
      for (auto it = delayed_.begin(); it != delayed_.end();) {
        if (it->polls_left == 0 || --it->polls_left == 0) {
          out.push_back(std::move(it->env));
          it = delayed_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (out.empty()) {
      out = std::move(ready_);
    } else {
      out.insert(out.end(), std::make_move_iterator(ready_.begin()),
                 std::make_move_iterator(ready_.end()));
    }
    ready_.clear();
    return out;
  }

  [[nodiscard]] bool empty_now() {
    std::lock_guard<SpinLock> lk(mu_);
    return ready_.empty() && delayed_.empty();
  }

  /// Discard everything (delivery-state reset between engine runs).
  void clear_all() {
    std::lock_guard<SpinLock> lk(mu_);
    staged_[0].clear();
    staged_[1].clear();
    ready_.clear();
    delayed_.clear();
  }

 private:
  struct Delayed {
    std::uint32_t polls_left;
    Envelope env;
  };

  SpinLock mu_;
  std::vector<Envelope> staged_[2];
  std::vector<Envelope> ready_;
  std::deque<Delayed> delayed_;
};

}  // namespace cgraph
