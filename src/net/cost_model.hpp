// Analytic cluster cost model.
//
// The host for this reproduction is a single machine, so multi-machine
// scalability (paper Figs. 10-12) cannot show up in wall-clock time.
// Instead every machine carries a simulated clock: compute advances it by
// work performed (edges scanned, vertices updated), communication by an
// alpha-beta model (per-message latency + per-byte transfer), and barriers
// synchronize all clocks to the slowest machine — exactly the BSP time
// T = sum_supersteps [ max_machines(compute_i + comm_i) + barrier ].
//
// Work and byte counters are exact (they come from the real execution);
// only the constants below are assumed. Defaults approximate the paper's
// testbed: 2.6 GHz Xeon (~1.5 ns per scanned edge after cache effects) and
// a 10 GbE-class fabric (~25 us latency, ~1 GB/s effective per flow).
#pragma once

#include <cstdint>

namespace cgraph {

struct CostModel {
  double ns_per_edge = 1.5;         // per edge scanned in compute
  double ns_per_vertex = 4.0;       // per vertex state update
  double ns_per_byte = 1.0;         // network transfer (≈1 GB/s per flow)
  double ns_per_packet = 25000.0;   // per-message latency (alpha)
  double ns_per_barrier = 50000.0;  // global synchronization cost

  /// Compute-side charge for a batch of scanned edges / touched vertices.
  [[nodiscard]] double compute_ns(std::uint64_t edges,
                                  std::uint64_t vertices) const {
    return ns_per_edge * static_cast<double>(edges) +
           ns_per_vertex * static_cast<double>(vertices);
  }

  /// Communication-side charge for packets sent by one machine.
  [[nodiscard]] double comm_ns(std::uint64_t packets,
                               std::uint64_t bytes) const {
    return ns_per_packet * static_cast<double>(packets) +
           ns_per_byte * static_cast<double>(bytes);
  }
};

/// Per-machine simulated clock; owned by exactly one machine thread, so no
/// synchronization is needed on the hot path.
class SimClock {
 public:
  void charge_compute(const CostModel& cm, std::uint64_t edges,
                      std::uint64_t vertices = 0) {
    ns_ += cm.compute_ns(edges, vertices);
  }
  void charge_comm(const CostModel& cm, std::uint64_t packets,
                   std::uint64_t bytes) {
    ns_ += cm.comm_ns(packets, bytes);
  }
  void charge_ns(double ns) { ns_ += ns; }

  /// Force the clock forward (used by the barrier to sync to the max).
  void advance_to(double ns) {
    if (ns > ns_) ns_ = ns;
  }

  /// Rewind/overwrite the clock (used by crash recovery to restore a
  /// machine to the simulated time recorded in its checkpoint).
  void set_nanos(double ns) { ns_ = ns; }

  [[nodiscard]] double nanos() const { return ns_; }
  [[nodiscard]] double seconds() const { return ns_ * 1e-9; }
  void reset() { ns_ = 0; }

 private:
  double ns_ = 0;
};

}  // namespace cgraph
