// Packet serialization. The paper's deployment uses MPI/sockets; here every
// inter-machine message is serialized into a byte packet so the simulated
// fabric can account for real wire volume (the cost model charges per byte
// and per packet, like an alpha-beta network model).
//
// Writer/Reader handle trivially-copyable records with explicit bounds
// checking on the read side; a malformed packet aborts rather than reading
// out of bounds.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace cgraph {

using Packet = std::vector<std::byte>;

class PacketWriter {
 public:
  PacketWriter() = default;

  template <typename T>
  void write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t pos = buf_.size();
    buf_.resize(pos + sizeof(T));
    std::memcpy(buf_.data() + pos, &value, sizeof(T));
  }

  template <typename T>
  void write_span(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    write<std::uint64_t>(values.size());
    if (values.empty()) return;  // memcpy from a null span is UB even at n=0
    const std::size_t pos = buf_.size();
    buf_.resize(pos + values.size_bytes());
    std::memcpy(buf_.data() + pos, values.data(), values.size_bytes());
  }

  void reserve(std::size_t bytes) { buf_.reserve(bytes); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] bool empty() const { return buf_.empty(); }

  /// Move the accumulated bytes out; the writer is reusable afterwards.
  Packet take() { return std::move(buf_); }

 private:
  Packet buf_;
};

class PacketReader {
 public:
  explicit PacketReader(std::span<const std::byte> data) : data_(data) {}
  explicit PacketReader(const Packet& p) : data_(p) {}
  // A reader only views the packet; constructing from a temporary would
  // dangle immediately.
  explicit PacketReader(Packet&&) = delete;

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    CGRAPH_CHECK_MSG(pos_ + sizeof(T) <= data_.size(),
                     "packet underflow while decoding");
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> read_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = read<std::uint64_t>();
    // Divide instead of multiplying so a hostile length can't overflow the
    // bounds check.
    CGRAPH_CHECK_MSG(n <= (data_.size() - pos_) / sizeof(T),
                     "packet underflow while decoding vector");
    std::vector<T> out(n);
    if (n == 0) return out;
    std::memcpy(out.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return out;
  }

  [[nodiscard]] bool exhausted() const { return pos_ >= data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace cgraph
