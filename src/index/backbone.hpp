// ReachBackbone-style gate index over the condensation DAG — the index
// tier's positive oracle (DESIGN.md §13).
//
// A small set of high-centrality components ("gates", chosen by a degree
// product × component size score — the cheap betweenness proxy) is fully
// resolved: one backward and one forward BFS per gate mark, for every
// component, which gates it reaches (out-gates) and which gates reach it
// (in-gates), as G-bit rows. The gate-to-gate transitive closure is
// materialized as the gate rows of that table. A probe is then one AND
// sweep: out-gates(s) ∩ in-gates(t) ≠ ∅ exhibits a witness path
// s →* g →* t, proving reachability. Empty intersection proves nothing —
// the pair may be reachable via non-gate vertices only.
//
// Construction is BFS order-independent (bit OR is commutative) and
// seed-free, so the gate table is a pure function of the DAG.
#pragma once

#include <cstdint>
#include <vector>

#include "index/scc.hpp"
#include "util/bitops.hpp"

namespace cgraph {

struct BackboneOptions {
  /// Gates to select (clamped to the component count). More gates widen
  /// positive coverage at G bits per component per direction.
  std::uint32_t num_gates = 16;
};

class GateIndex {
 public:
  void build(const SccCondensation& scc, const BackboneOptions& opts);

  [[nodiscard]] bool empty() const { return num_gates_ == 0; }
  [[nodiscard]] std::uint32_t num_gates() const { return num_gates_; }
  [[nodiscard]] std::size_t words_per_row() const { return words_; }
  [[nodiscard]] const std::vector<VertexId>& gates() const { return gates_; }
  [[nodiscard]] std::uint64_t build_edges_walked() const {
    return build_edges_walked_;
  }

  /// True => comp u provably reaches comp v through some gate. False =>
  /// inconclusive.
  [[nodiscard]] bool proves_reachable(VertexId u, VertexId v) const {
    const Word* out = out_gates_.data() + u * words_;
    const Word* in = in_gates_.data() + v * words_;
    for (std::size_t w = 0; w < words_; ++w) {
      if ((out[w] & in[w]) != 0) return true;
    }
    return false;
  }

  /// Gate-to-gate transitive closure rows (gate ordinal -> G-bit row of
  /// gate ordinals it reaches, itself included).
  [[nodiscard]] const std::vector<Word>& gate_closure() const {
    return gate_closure_;
  }
  [[nodiscard]] const std::vector<Word>& out_gate_rows() const {
    return out_gates_;
  }
  [[nodiscard]] const std::vector<Word>& in_gate_rows() const {
    return in_gates_;
  }

  [[nodiscard]] std::size_t memory_bytes() const {
    return (out_gates_.size() + in_gates_.size() + gate_closure_.size()) *
               sizeof(Word) +
           gates_.size() * sizeof(VertexId);
  }

 private:
  std::uint32_t num_gates_ = 0;
  std::size_t words_ = 0;
  std::uint64_t build_edges_walked_ = 0;
  std::vector<VertexId> gates_;      // component ids, score-descending
  std::vector<Word> out_gates_;      // [component][gate bit]: c reaches g
  std::vector<Word> in_gates_;       // [component][gate bit]: g reaches c
  std::vector<Word> gate_closure_;   // [gate ordinal][gate bit]
};

}  // namespace cgraph
