#include "index/reach_index.hpp"

#include <algorithm>

#include "net/cost_model.hpp"
#include "util/assert.hpp"

namespace cgraph {

const char* to_string(IndexMode mode) {
  switch (mode) {
    case IndexMode::kOff:
      return "off";
    case IndexMode::kGrail:
      return "grail";
    case IndexMode::kGates:
      return "gates";
    case IndexMode::kFull:
      return "full";
  }
  return "unknown";
}

std::optional<IndexMode> parse_index_mode(std::string_view s) {
  if (s == "off") return IndexMode::kOff;
  if (s == "grail") return IndexMode::kGrail;
  if (s == "gates") return IndexMode::kGates;
  if (s == "full") return IndexMode::kFull;
  return std::nullopt;
}

const char* to_string(IndexVerdict verdict) {
  switch (verdict) {
    case IndexVerdict::kReachable:
      return "reachable";
    case IndexVerdict::kUnreachable:
      return "unreachable";
    case IndexVerdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

ReachIndex ReachIndex::build(const Graph& graph, const IndexOptions& opts) {
  ReachIndex idx;
  idx.opts_ = opts;
  if (opts.mode == IndexMode::kOff) return idx;

  idx.scc_ = condense(graph);
  const bool want_labels =
      opts.mode == IndexMode::kGrail || opts.mode == IndexMode::kFull;
  const bool want_gates =
      opts.mode == IndexMode::kGates || opts.mode == IndexMode::kFull;
  if (want_labels) {
    idx.labels_.build(idx.scc_, {opts.num_labels, opts.seed});
  }
  if (want_gates) {
    idx.gates_.build(idx.scc_, {opts.num_gates});
  }

  IndexBuildStats& st = idx.stats_;
  st.num_components = idx.scc_.num_components;
  st.largest_component =
      idx.scc_.component_size.empty()
          ? 0
          : *std::max_element(idx.scc_.component_size.begin(),
                              idx.scc_.component_size.end());
  st.dag_edges = idx.scc_.num_dag_edges();
  st.num_labels = want_labels ? idx.labels_.num_labels() : 0;
  st.num_gates = want_gates ? idx.gates_.num_gates() : 0;
  st.label_bytes = idx.labels_.memory_bytes();
  st.gate_bytes = idx.gates_.memory_bytes();

  // Construction is offline but not free: charge the Tarjan pass over the
  // raw graph plus every DAG edge the label/gate builders walked, under
  // the same CostModel the cluster's simulated clocks use.
  const CostModel cm;
  const double ns =
      cm.compute_ns(graph.num_edges(), graph.num_vertices()) +
      cm.compute_ns(idx.labels_.build_edges_walked(),
                    want_labels ? idx.scc_.num_components : 0) +
      cm.compute_ns(idx.gates_.build_edges_walked(),
                    want_gates ? idx.scc_.num_components : 0);
  st.build_sim_seconds = ns * 1e-9;
  return idx;
}

IndexVerdict ReachIndex::query(VertexId s, VertexId t, Depth k,
                               bool constrained) const {
  // Constrained queries carry semantics (weight/label budgets) the index
  // does not model; answering them here would be unsound by construction.
  if (constrained) return IndexVerdict::kUnknown;
  // The zero-hop path s == t is reachable for every k >= 0 regardless of
  // index mode, build state, or epoch — answering it up front keeps the
  // trivially-reachable self query out of the label machinery (and out of
  // the traversal engine when the index is off, empty, or stale).
  if (s == t) return IndexVerdict::kReachable;
  if (opts_.mode == IndexMode::kOff || scc_.num_vertices == 0) {
    return IndexVerdict::kUnknown;
  }
  CGRAPH_CHECK(s < scc_.num_vertices && t < scc_.num_vertices);
  // A superseded snapshot can no longer prove anything about the live
  // graph: inserts break kUnreachable, deletes break kReachable. Fall
  // back to traversal until the offline rebuild.
  if (stale()) return IndexVerdict::kUnknown;

  const VertexId cs = scc_.component[s];
  const VertexId ct = scc_.component[t];
  const bool unbounded = k == kUnvisitedDepth;

  if (cs == ct) {
    // Same SCC: a path exists, but its length is unknown (the SCC's
    // diameter is not indexed) — only the unbounded query may conclude.
    return unbounded ? IndexVerdict::kReachable : IndexVerdict::kUnknown;
  }
  // Component ids are reverse topological (scc.hpp): any path s -> t
  // implies comp(t) < comp(s). Sound for every k.
  if (ct > cs) return IndexVerdict::kUnreachable;

  const bool use_labels = !labels_.empty() &&
                          (opts_.mode == IndexMode::kGrail ||
                           opts_.mode == IndexMode::kFull);
  if (use_labels && !labels_.maybe_reaches(cs, ct)) {
    return IndexVerdict::kUnreachable;  // sound for every k
  }

  const bool use_gates = !gates_.empty() &&
                         (opts_.mode == IndexMode::kGates ||
                          opts_.mode == IndexMode::kFull);
  if (use_gates && unbounded && gates_.proves_reachable(cs, ct)) {
    return IndexVerdict::kReachable;  // witness path, length unbounded
  }
  return IndexVerdict::kUnknown;
}

double ReachIndex::probe_sim_seconds() const {
  if (opts_.mode == IndexMode::kOff) return 0;
  // Two component-map lookups + per-label interval compares (charged as
  // vertex touches) and one AND sweep over the gate words (charged as
  // edge-sized word ops) — a pure function of index shape.
  const CostModel cm;
  const double ns =
      cm.ns_per_vertex *
          (2.0 + 2.0 * static_cast<double>(labels_.num_labels())) +
      cm.ns_per_edge * 2.0 * static_cast<double>(gates_.words_per_row());
  return ns * 1e-9;
}

namespace {

inline std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  // SplitMix64 finalizer over a running combine: order-sensitive and
  // avalanche-complete, cheap enough for full-array fingerprints.
  std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t ReachIndex::fingerprint() const {
  std::uint64_t h = 0x1d8e4e27c47d124fULL;
  h = mix64(h, static_cast<std::uint64_t>(opts_.mode));
  h = mix64(h, built_epoch_);
  h = mix64(h, scc_.num_vertices);
  h = mix64(h, scc_.num_components);
  for (const VertexId c : scc_.component) h = mix64(h, c);
  for (const VertexId t : scc_.dag_targets) h = mix64(h, t);
  for (const std::uint32_t b : labels_.begins()) h = mix64(h, b);
  for (const std::uint32_t e : labels_.posts()) h = mix64(h, e);
  for (const VertexId g : gates_.gates()) h = mix64(h, g);
  for (const Word w : gates_.out_gate_rows()) h = mix64(h, w);
  for (const Word w : gates_.in_gate_rows()) h = mix64(h, w);
  for (const Word w : gates_.gate_closure()) h = mix64(h, w);
  return h;
}

void publish_index_metrics(obs::MetricsRegistry& registry,
                           const ReachIndex& index) {
  registry
      .gauge("cgraph_index_build_seconds",
             "Modeled offline construction cost of the reachability index")
      .set(index.stats().build_sim_seconds);
  registry
      .gauge("cgraph_index_memory_bytes",
             "Resident bytes of the reachability index structures")
      .set(static_cast<double>(index.memory_bytes()));
}

}  // namespace cgraph
