// GRAIL-style randomized interval labels over the condensation DAG —
// the index tier's O(k) negative filter (DESIGN.md §13).
//
// One label set is one randomized DFS of the DAG: every component gets an
// interval [begin, post] where post is its DFS post-order rank and begin
// is the minimum begin over all its out-neighbors (its reachable-set
// floor). If u reaches v then interval(v) ⊆ interval(u) in EVERY label
// set, so a single non-containment proves unreachability; containment in
// all k sets proves nothing (false positives shrink as k grows, they never
// become unsound). Randomizing root and child visit order across label
// sets decorrelates the false-positive regions.
//
// Determinism: all randomness flows from (seed, label ordinal) through
// SplitMix64, so identical inputs produce byte-identical labels on every
// machine, thread count, and replay — the property the crash-recovery
// differential suite pins.
#pragma once

#include <cstdint>
#include <vector>

#include "index/scc.hpp"

namespace cgraph {

struct GrailOptions {
  /// Independent randomized label sets (the paper-standard k; word-boundary
  /// values 1/2/5 are covered by tests).
  std::uint32_t num_labels = 2;
  std::uint64_t seed = 42;
};

class GrailLabels {
 public:
  /// Build labels over the condensation. Records the DAG edges walked so
  /// the caller can charge construction to the simulated cost model.
  void build(const SccCondensation& scc, const GrailOptions& opts);

  [[nodiscard]] bool empty() const { return num_components_ == 0; }
  [[nodiscard]] std::uint32_t num_labels() const { return num_labels_; }
  [[nodiscard]] std::uint64_t build_edges_walked() const {
    return build_edges_walked_;
  }

  /// False => comp u provably does NOT reach comp v (some label set's
  /// interval containment fails). True => inconclusive.
  [[nodiscard]] bool maybe_reaches(VertexId u, VertexId v) const {
    for (std::uint32_t l = 0; l < num_labels_; ++l) {
      const std::uint32_t* b = begin_.data() + l * num_components_;
      const std::uint32_t* e = post_.data() + l * num_components_;
      if (!(b[u] <= b[v] && e[v] <= e[u])) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t memory_bytes() const {
    return (begin_.size() + post_.size()) * sizeof(std::uint32_t);
  }

  /// Raw label arrays (label-major), for fingerprinting.
  [[nodiscard]] const std::vector<std::uint32_t>& begins() const {
    return begin_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& posts() const {
    return post_;
  }

 private:
  std::uint32_t num_labels_ = 0;
  VertexId num_components_ = 0;
  std::uint64_t build_edges_walked_ = 0;
  std::vector<std::uint32_t> begin_;  // [label][component]
  std::vector<std::uint32_t> post_;   // [label][component]
};

}  // namespace cgraph
