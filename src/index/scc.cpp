#include "index/scc.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "util/assert.hpp"

namespace cgraph {

namespace {

constexpr std::uint32_t kUnset = ~std::uint32_t{0};

struct Frame {
  VertexId v = 0;
  std::size_t edge = 0;  // next out-neighbor to examine
};

}  // namespace

SccCondensation condense(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  SccCondensation scc;
  scc.num_vertices = n;
  scc.component.assign(n, kInvalidVertex);

  std::vector<std::uint32_t> index(n, kUnset);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<VertexId> stack;
  std::vector<Frame> frames;
  std::uint32_t next_index = 0;

  for (VertexId root = 0; root < n; ++root) {
    if (index[root] != kUnset) continue;
    frames.push_back({root, 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const VertexId v = f.v;
      if (f.edge == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      const auto nbrs = graph.out_neighbors(v);
      bool descended = false;
      while (f.edge < nbrs.size()) {
        const VertexId w = nbrs[f.edge++];
        if (index[w] == kUnset) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;

      if (lowlink[v] == index[v]) {
        const VertexId cid = scc.num_components++;
        VertexId members = 0;
        while (true) {
          const VertexId u = stack.back();
          stack.pop_back();
          on_stack[u] = false;
          scc.component[u] = cid;
          ++members;
          if (u == v) break;
        }
        scc.component_size.push_back(members);
      }
      frames.pop_back();
      if (!frames.empty()) {
        lowlink[frames.back().v] =
            std::min(lowlink[frames.back().v], lowlink[v]);
      }
    }
  }
  CGRAPH_CHECK(stack.empty());

  // Condensation DAG: project every cross-component edge, then dedup.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < n; ++u) {
    const VertexId cu = scc.component[u];
    for (const VertexId w : graph.out_neighbors(u)) {
      const VertexId cw = scc.component[w];
      if (cu != cw) edges.emplace_back(cu, cw);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  const VertexId c = scc.num_components;
  scc.dag_offsets.assign(c + 1, 0);
  scc.dag_targets.reserve(edges.size());
  for (const auto& [from, to] : edges) ++scc.dag_offsets[from + 1];
  for (VertexId i = 0; i < c; ++i) {
    scc.dag_offsets[i + 1] += scc.dag_offsets[i];
  }
  for (const auto& [from, to] : edges) {
    // Tarjan pop order is reverse topological: successors pop first.
    CGRAPH_DCHECK(to < from);
    scc.dag_targets.push_back(to);
  }

  scc.rev_offsets.assign(c + 1, 0);
  for (const auto& [from, to] : edges) ++scc.rev_offsets[to + 1];
  for (VertexId i = 0; i < c; ++i) {
    scc.rev_offsets[i + 1] += scc.rev_offsets[i];
  }
  std::vector<EdgeIndex> cursor(scc.rev_offsets.begin(),
                                scc.rev_offsets.end() - 1);
  scc.rev_sources.resize(edges.size());
  for (const auto& [from, to] : edges) {
    scc.rev_sources[cursor[to]++] = from;
  }
  return scc;
}

}  // namespace cgraph
