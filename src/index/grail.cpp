#include "index/grail.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cgraph {

namespace {

struct Frame {
  VertexId c = 0;
  std::size_t child = 0;  // next entry in the label's sorted adjacency
};

}  // namespace

void GrailLabels::build(const SccCondensation& scc, const GrailOptions& opts) {
  num_components_ = scc.num_components;
  num_labels_ = std::max<std::uint32_t>(1, opts.num_labels);
  begin_.assign(static_cast<std::size_t>(num_labels_) * num_components_, 0);
  post_.assign(static_cast<std::size_t>(num_labels_) * num_components_, 0);
  build_edges_walked_ = 0;
  const VertexId n = num_components_;
  if (n == 0) return;

  std::vector<std::uint64_t> prio(n);
  std::vector<VertexId> order(n);
  std::vector<VertexId> children(scc.dag_targets.size());
  std::vector<bool> visited(n);
  std::vector<Frame> frames;

  for (std::uint32_t l = 0; l < num_labels_; ++l) {
    std::uint32_t* b = begin_.data() + static_cast<std::size_t>(l) * n;
    std::uint32_t* e = post_.data() + static_cast<std::size_t>(l) * n;

    // Per-label random priorities drive both root and child visit order;
    // seeded, so the whole labelling is a pure function of (DAG, seed, l).
    SplitMix64 sm(opts.seed + 0x9e3779b97f4a7c15ULL * (l + 1));
    for (VertexId c = 0; c < n; ++c) prio[c] = sm.next();

    std::iota(order.begin(), order.end(), VertexId{0});
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId c) {
      return prio[a] != prio[c] ? prio[a] < prio[c] : a < c;
    });

    // One sorted adjacency copy per label (child visit order), reused by
    // every DFS of this label.
    std::copy(scc.dag_targets.begin(), scc.dag_targets.end(),
              children.begin());
    for (VertexId c = 0; c < n; ++c) {
      std::sort(children.begin() + static_cast<std::ptrdiff_t>(
                                       scc.dag_offsets[c]),
                children.begin() + static_cast<std::ptrdiff_t>(
                                       scc.dag_offsets[c + 1]),
                [&](VertexId a, VertexId d) {
                  return prio[a] != prio[d] ? prio[a] < prio[d] : a < d;
                });
    }

    std::fill(visited.begin(), visited.end(), false);
    std::uint32_t post_counter = 0;

    for (const VertexId root : order) {
      if (visited[root]) continue;
      frames.push_back({root, static_cast<std::size_t>(
                                  scc.dag_offsets[root])});
      visited[root] = true;
      while (!frames.empty()) {
        Frame& f = frames.back();
        const VertexId c = f.c;
        const std::size_t end =
            static_cast<std::size_t>(scc.dag_offsets[c + 1]);
        bool descended = false;
        while (f.child < end) {
          const VertexId w = children[f.child++];
          ++build_edges_walked_;
          if (!visited[w]) {
            visited[w] = true;
            frames.push_back(
                {w, static_cast<std::size_t>(scc.dag_offsets[w])});
            descended = true;
            break;
          }
        }
        if (descended) continue;

        // Finish c: every out-neighbor is already finished (the DAG has no
        // back edges), so their begins are final.
        e[c] = post_counter++;
        std::uint32_t lo = e[c];
        for (const VertexId w : scc.dag_out(c)) {
          lo = std::min(lo, b[w]);
        }
        b[c] = lo;
        frames.pop_back();
      }
    }
    CGRAPH_CHECK(post_counter == n);
  }
}

}  // namespace cgraph
