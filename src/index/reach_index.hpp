// Reachability index tier: three-verdict point-query oracle in front of
// the MS-BFS traversal engines (DESIGN.md §13, ROADMAP item 2).
//
// A point query asks "does source reach target (within k hops)?". The
// index answers from precomputed read-only state in O(labels + gate
// words) — no traversal, no batch slot:
//
//   kUnreachable  — GRAIL interval labels (or the reverse-topological
//                   component order) prove NO path exists at all; sound
//                   for every hop bound k, since globally unreachable
//                   implies unreachable within k hops.
//   kReachable    — the gate closure exhibits a witness path s →* g →* t,
//                   or s and t share an SCC, or s == t. Witness paths
//                   carry no length bound, so (except for s == t) this
//                   verdict is only issued for unbounded queries
//                   (k == kUnvisitedDepth); bounded queries stay unknown.
//   kUnknown      — neither side concluded; the caller falls back to the
//                   traversal engine. Label-constrained queries are always
//                   unknown: a weight budget is not indexed, so the fast
//                   path must never answer them (see algo/constrained_reach).
//
// The index never changes an answer — it only short-circuits queries whose
// answer is provable — and it is immutable after build, so crash-recovery
// replay composes with it unchanged. All randomness (GRAIL label shuffles)
// flows from IndexOptions::seed; fingerprint() pins byte-identical state
// across rebuilds, machines, thread counts, and crash replays.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "graph/graph.hpp"
#include "graph/mutation.hpp"
#include "index/backbone.hpp"
#include "index/grail.hpp"
#include "index/scc.hpp"
#include "obs/metrics.hpp"

namespace cgraph {

/// Which index structures to build/consult (--index=off|grail|gates|full).
enum class IndexMode : std::uint8_t {
  kOff,    // no index; every point query falls back to traversal
  kGrail,  // negative filter only (interval labels + topological order)
  kGates,  // positive oracle only (gate closure + SCC membership)
  kFull,   // both
};

[[nodiscard]] const char* to_string(IndexMode mode);
[[nodiscard]] std::optional<IndexMode> parse_index_mode(std::string_view s);

/// Three-verdict answer of an index probe (see the contract above).
enum class IndexVerdict : std::uint8_t {
  kReachable,
  kUnreachable,
  kUnknown,
};

[[nodiscard]] const char* to_string(IndexVerdict verdict);

struct IndexOptions {
  IndexMode mode = IndexMode::kFull;
  /// GRAIL label sets (kGrail/kFull). More labels cut false "maybe"s.
  std::uint32_t num_labels = 2;
  /// Backbone gates (kGates/kFull). More gates widen positive coverage.
  std::uint32_t num_gates = 16;
  /// Seed for the randomized label shuffles; the sole source of index
  /// randomness (determinism argument in DESIGN.md §13).
  std::uint64_t seed = 42;
};

struct IndexBuildStats {
  VertexId num_components = 0;
  VertexId largest_component = 0;
  std::uint64_t dag_edges = 0;
  std::uint32_t num_labels = 0;
  std::uint32_t num_gates = 0;
  std::uint64_t label_bytes = 0;
  std::uint64_t gate_bytes = 0;
  /// Modeled offline construction cost under the cluster CostModel (the
  /// number reported as cgraph_index_build_seconds).
  double build_sim_seconds = 0;
};

class ReachIndex {
 public:
  /// Default-constructed index is mode kOff: every probe returns kUnknown.
  ReachIndex() = default;

  static ReachIndex build(const Graph& graph, const IndexOptions& opts = {});

  /// Probe the index for "does s reach t within k hops?". Never traverses.
  /// `constrained` marks a label-/weight-constrained query: the index has
  /// no constraint knowledge, so these are unconditionally kUnknown.
  [[nodiscard]] IndexVerdict query(VertexId s, VertexId t,
                                   Depth k = kUnvisitedDepth,
                                   bool constrained = false) const;

  /// Deterministic simulated cost of one probe (component lookups +
  /// per-label interval compares + one gate-word AND sweep under the
  /// default CostModel) — what the service charges an index-answered
  /// query instead of a traversal makespan.
  [[nodiscard]] double probe_sim_seconds() const;

  /// Content hash over every index array. Equal inputs (graph, options)
  /// produce equal fingerprints on any machine/thread count/replay; the
  /// recovery suite asserts this across crash-replayed runs.
  [[nodiscard]] std::uint64_t fingerprint() const;

  [[nodiscard]] IndexMode mode() const { return opts_.mode; }
  [[nodiscard]] const IndexOptions& options() const { return opts_; }
  [[nodiscard]] const IndexBuildStats& stats() const { return stats_; }
  [[nodiscard]] const SccCondensation& scc() const { return scc_; }
  [[nodiscard]] const GrailLabels& labels() const { return labels_; }
  [[nodiscard]] const GateIndex& gates() const { return gates_; }

  [[nodiscard]] std::size_t memory_bytes() const {
    return scc_.memory_bytes() + labels_.memory_bytes() +
           gates_.memory_bytes();
  }

  // ---- epoch invalidation (DESIGN.md §15) ----
  //
  // The index is built against one snapshot epoch. Once the graph moves
  // past it (observe_epoch reports a newer epoch), every conclusive
  // verdict except the epoch-invariant s == t flips to kUnknown — the
  // service's traversal fallback then answers against live shards — until
  // an offline rebuild publishes a fresh index via set_built_epoch.

  /// Snapshot epoch the labels/gates were computed against.
  [[nodiscard]] Epoch built_epoch() const { return built_epoch_; }

  /// Stamp the snapshot epoch of the current structures (after build or
  /// an offline rebuild). Also raises the observed epoch to match.
  void set_built_epoch(Epoch epoch) {
    built_epoch_ = epoch;
    observe_epoch(epoch);
  }

  /// Tell the index the graph reached `epoch` (monotonic max; callable
  /// from any thread — probes read it with relaxed atomics).
  void observe_epoch(Epoch epoch) const {
    Epoch cur = observed_epoch_->load(std::memory_order_relaxed);
    while (epoch > cur &&
           !observed_epoch_->compare_exchange_weak(
               cur, epoch, std::memory_order_relaxed)) {
    }
  }

  /// True when the observed graph epoch superseded the built snapshot.
  [[nodiscard]] bool stale() const {
    return observed_epoch_->load(std::memory_order_relaxed) > built_epoch_;
  }

 private:
  IndexOptions opts_{.mode = IndexMode::kOff};
  SccCondensation scc_;
  GrailLabels labels_;
  GateIndex gates_;
  IndexBuildStats stats_;
  Epoch built_epoch_ = 0;
  // Shared (not per-copy): supersession is a fact about the graph, and
  // keeping it behind a pointer preserves the index's value semantics.
  std::shared_ptr<std::atomic<Epoch>> observed_epoch_ =
      std::make_shared<std::atomic<Epoch>>(0);
};

/// Publish the index's build-side series (cgraph_index_build_seconds,
/// cgraph_index_memory_bytes) into `registry`. The probe-side counters
/// (cgraph_index_{hit,miss,fallback}_total) are owned by the service
/// front end that issues the probes.
void publish_index_metrics(obs::MetricsRegistry& registry,
                           const ReachIndex& index);

}  // namespace cgraph
