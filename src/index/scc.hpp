// Strongly-connected-component condensation — the substrate of the
// reachability index tier (DESIGN.md §13).
//
// Reachability is invariant under SCC contraction: s reaches t in G iff
// comp(s) reaches comp(t) in the condensation DAG. Both index structures
// (GRAIL interval labels, backbone gates) are therefore built over the
// condensation, which is typically far smaller than the raw graph and —
// being acyclic — admits interval labelling at all.
//
// Component ids are assigned in Tarjan pop order, which is a *reverse
// topological order* of the condensation: every DAG edge c -> d satisfies
// d < c. The index query layer exploits this as a free O(1) negative
// filter (comp(t) > comp(s) proves unreachability) and the tests assert it
// as a structural invariant.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace cgraph {

/// Condensation of a directed graph: vertex -> component map plus the
/// component DAG in CSR (out-edges) and CSC (in-edges) form, deduplicated
/// and self-loop-free.
struct SccCondensation {
  VertexId num_vertices = 0;
  VertexId num_components = 0;
  /// Per-vertex component id, in reverse topological order (see header).
  std::vector<VertexId> component;
  /// Per-component member count.
  std::vector<VertexId> component_size;

  // Condensation DAG, forward (CSR) and reverse (CSC).
  std::vector<EdgeIndex> dag_offsets;  // num_components + 1
  std::vector<VertexId> dag_targets;
  std::vector<EdgeIndex> rev_offsets;  // num_components + 1
  std::vector<VertexId> rev_sources;

  [[nodiscard]] std::span<const VertexId> dag_out(VertexId c) const {
    return {dag_targets.data() + dag_offsets[c],
            static_cast<std::size_t>(dag_offsets[c + 1] - dag_offsets[c])};
  }
  [[nodiscard]] std::span<const VertexId> dag_in(VertexId c) const {
    return {rev_sources.data() + rev_offsets[c],
            static_cast<std::size_t>(rev_offsets[c + 1] - rev_offsets[c])};
  }
  [[nodiscard]] EdgeIndex num_dag_edges() const {
    return static_cast<EdgeIndex>(dag_targets.size());
  }

  [[nodiscard]] std::size_t memory_bytes() const {
    return component.size() * sizeof(VertexId) +
           component_size.size() * sizeof(VertexId) +
           (dag_offsets.size() + rev_offsets.size()) * sizeof(EdgeIndex) +
           (dag_targets.size() + rev_sources.size()) * sizeof(VertexId);
  }
};

/// Compute the condensation with an iterative Tarjan pass (explicit frame
/// stack — no recursion, so deep chains cannot overflow the C++ stack).
/// Deterministic: the result depends only on the graph, never on seeds or
/// thread counts.
SccCondensation condense(const Graph& graph);

}  // namespace cgraph
