#include "index/backbone.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace cgraph {

void GateIndex::build(const SccCondensation& scc,
                      const BackboneOptions& opts) {
  const VertexId n = scc.num_components;
  num_gates_ = 0;
  words_ = 0;
  build_edges_walked_ = 0;
  gates_.clear();
  out_gates_.clear();
  in_gates_.clear();
  gate_closure_.clear();
  if (n == 0 || opts.num_gates == 0) return;

  // Score = (out_deg + 1)(in_deg + 1) * |SCC| — components that both
  // absorb and emit many DAG edges (and stand for many raw vertices) are
  // the likeliest path waypoints. Deterministic tie-break on id.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  auto score = [&](VertexId c) -> std::uint64_t {
    const std::uint64_t out_deg = scc.dag_offsets[c + 1] - scc.dag_offsets[c];
    const std::uint64_t in_deg = scc.rev_offsets[c + 1] - scc.rev_offsets[c];
    return (out_deg + 1) * (in_deg + 1) *
           static_cast<std::uint64_t>(scc.component_size[c]);
  };
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const std::uint64_t sa = score(a), sb = score(b);
    return sa != sb ? sa > sb : a < b;
  });

  num_gates_ = std::min<std::uint32_t>(opts.num_gates, n);
  gates_.assign(order.begin(), order.begin() + num_gates_);
  words_ = words_for_bits(num_gates_);
  out_gates_.assign(static_cast<std::size_t>(n) * words_, 0);
  in_gates_.assign(static_cast<std::size_t>(n) * words_, 0);

  std::vector<bool> seen(n);
  std::vector<VertexId> queue;
  queue.reserve(n);

  for (std::uint32_t i = 0; i < num_gates_; ++i) {
    const VertexId g = gates_[i];
    const Word bit = Word{1} << (i % kWordBits);
    const std::size_t word = i / kWordBits;

    // Backward BFS: every component that reaches g gets out-gate bit i.
    std::fill(seen.begin(), seen.end(), false);
    queue.clear();
    queue.push_back(g);
    seen[g] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId c = queue[head];
      out_gates_[static_cast<std::size_t>(c) * words_ + word] |= bit;
      for (const VertexId p : scc.dag_in(c)) {
        ++build_edges_walked_;
        if (!seen[p]) {
          seen[p] = true;
          queue.push_back(p);
        }
      }
    }

    // Forward BFS: every component g reaches gets in-gate bit i.
    std::fill(seen.begin(), seen.end(), false);
    queue.clear();
    queue.push_back(g);
    seen[g] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId c = queue[head];
      in_gates_[static_cast<std::size_t>(c) * words_ + word] |= bit;
      for (const VertexId s : scc.dag_out(c)) {
        ++build_edges_walked_;
        if (!seen[s]) {
          seen[s] = true;
          queue.push_back(s);
        }
      }
    }
  }

  // Gate-to-gate closure: gate i's row is just its component's out-gate
  // row (which gates i reaches, itself included).
  gate_closure_.resize(static_cast<std::size_t>(num_gates_) * words_);
  for (std::uint32_t i = 0; i < num_gates_; ++i) {
    const Word* src = out_gates_.data() +
                      static_cast<std::size_t>(gates_[i]) * words_;
    std::copy(src, src + words_,
              gate_closure_.data() + static_cast<std::size_t>(i) * words_);
  }
}

}  // namespace cgraph
