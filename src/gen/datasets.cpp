#include "gen/datasets.hpp"

#include "gen/rmat.hpp"
#include "util/assert.hpp"

namespace cgraph {

const std::vector<DatasetSpec>& table1_datasets() {
  // Edge factors mirror the paper's ratios:
  //   Orkut       117.2M / 3.07M  = 38.1
  //   Friendster  1.806B / 65.6M  = 27.5
  //   FRS-72B     72.2B  / 131.2M = 550 -> capped at 64 (memory), noted in
  //               EXPERIMENTS.md; the skew still dominates k-hop behaviour.
  //   FRS-100B    106.6B / 984.1M = 108 -> capped at 64 likewise.
  static const std::vector<DatasetSpec> specs = {
      {"OR-100M", "Orkut social network (SNAP)", 3072441ULL, 117185083ULL,
       /*scale=*/15, /*edge_factor=*/38.1, /*seed=*/101},
      {"FR-1B", "Friendster social network (SNAP)", 65608366ULL,
       1806067135ULL, /*scale=*/17, /*edge_factor=*/27.5, /*seed=*/202},
      {"FRS-72B", "Friendster-Synthetic, Graph500 x2", 131216732ULL,
       72224268540ULL, /*scale=*/18, /*edge_factor=*/48.0, /*seed=*/303},
      {"FRS-100B", "Friendster-Synthetic, Graph500 x15", 984125490ULL,
       106557960965ULL, /*scale=*/19, /*edge_factor=*/36.0, /*seed=*/404},
  };
  return specs;
}

const DatasetSpec& dataset_spec(const std::string& name) {
  for (const DatasetSpec& s : table1_datasets()) {
    if (s.name == name) return s;
  }
  CGRAPH_CHECK_MSG(false, "unknown dataset name");
  CGRAPH_UNREACHABLE();
}

Graph make_dataset(const DatasetSpec& spec, int scale_shift,
                   bool build_in_edges) {
  RmatParams p;
  const int eff = static_cast<int>(spec.scale) - scale_shift;
  CGRAPH_CHECK_MSG(eff >= 4, "scale_shift leaves too small a graph");
  p.scale = static_cast<unsigned>(eff);
  p.edge_factor = spec.edge_factor;
  p.seed = spec.seed;
  EdgeList edges = generate_rmat(p);

  Graph::BuildOptions opts;
  opts.build_in_edges = build_in_edges;
  return Graph::build(std::move(edges), VertexId{1} << p.scale, opts);
}

Graph make_dataset(const std::string& name, int scale_shift,
                   bool build_in_edges) {
  return make_dataset(dataset_spec(name), scale_shift, build_in_edges);
}

}  // namespace cgraph
