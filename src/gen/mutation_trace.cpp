#include "gen/mutation_trace.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "util/assert.hpp"

namespace cgraph {

namespace {

struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t bounded(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

}  // namespace

MutationTrace generate_mutation_trace(const Graph& base,
                                      const MutationTraceOptions& opts) {
  CGRAPH_CHECK(base.num_vertices() >= 2);
  SplitMix64 rng{opts.seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL};
  const VertexId n = base.num_vertices();

  // Live-edge model for delete targeting: base edges are live unless a
  // trace op deleted them; trace inserts become live. Last write wins,
  // exactly mirroring the delta-set visibility rule.
  std::map<std::pair<VertexId, VertexId>, bool> overrides;
  std::vector<std::pair<VertexId, VertexId>> inserted;  // live trace inserts

  const auto base_has = [&](VertexId s, VertexId t) {
    const auto nbrs = base.out_neighbors(s);
    return std::binary_search(nbrs.begin(), nbrs.end(), t);
  };

  MutationTrace trace;
  trace.epochs.resize(opts.num_epochs);
  for (std::size_t ep = 0; ep < opts.num_epochs; ++ep) {
    std::vector<MutationOp>& batch = trace.epochs[ep];
    batch.reserve(opts.ops_per_epoch);
    for (std::size_t i = 0; i < opts.ops_per_epoch; ++i) {
      const bool want_delete = rng.unit() < opts.delete_fraction;
      if (want_delete) {
        // Prefer a live trace insert half the time; otherwise sample a
        // base edge that is still live. Bounded retries keep generation
        // O(ops) even on sparse graphs; a failed draw degrades to insert.
        MutationOp op{MutationKind::kDeleteEdge, 0, 0};
        bool found = false;
        if (!inserted.empty() && (rng.next() & 1) != 0) {
          const std::size_t j = rng.bounded(inserted.size());
          op.src = inserted[j].first;
          op.dst = inserted[j].second;
          inserted.erase(inserted.begin() + static_cast<std::ptrdiff_t>(j));
          found = true;
        } else {
          for (int attempt = 0; attempt < 32 && !found; ++attempt) {
            const auto v = static_cast<VertexId>(rng.bounded(n));
            const auto deg = base.out_degree(v);
            if (deg == 0) continue;
            const auto t = base.out_neighbors(
                v)[static_cast<std::size_t>(rng.bounded(deg))];
            const auto it = overrides.find({v, t});
            if (it != overrides.end() && !it->second) continue;  // dead
            op.src = v;
            op.dst = t;
            found = true;
          }
        }
        if (found) {
          overrides[{op.src, op.dst}] = false;
          batch.push_back(op);
          continue;
        }
      }
      // Insert: a random non-self pair. Re-inserting an existing edge is
      // legal (idempotent under last-write-wins) but usually avoided so
      // inserts actually grow the reachable set.
      MutationOp op{MutationKind::kInsertEdge, 0, 0};
      for (int attempt = 0; attempt < 32; ++attempt) {
        op.src = static_cast<VertexId>(rng.bounded(n));
        op.dst = static_cast<VertexId>(rng.bounded(n));
        if (op.src == op.dst) continue;
        const auto it = overrides.find({op.src, op.dst});
        const bool live = it != overrides.end()
                              ? it->second
                              : base_has(op.src, op.dst);
        if (!live || attempt == 31) break;
      }
      if (op.src == op.dst) op.dst = (op.src + 1) % n;
      overrides[{op.src, op.dst}] = true;
      inserted.push_back({op.src, op.dst});
      batch.push_back(op);
    }
  }
  return trace;
}

EdgeList apply_mutation_trace(const Graph& base, const MutationTrace& trace,
                              std::size_t upto_epochs) {
  CGRAPH_CHECK(upto_epochs <= trace.epochs.size());
  std::map<std::pair<VertexId, VertexId>, bool> overrides;
  for (std::size_t ep = 0; ep < upto_epochs; ++ep) {
    for (const MutationOp& op : trace.epochs[ep]) {
      overrides[{op.src, op.dst}] = op.kind == MutationKind::kInsertEdge;
    }
  }
  EdgeList el;
  for (VertexId v = 0; v < base.num_vertices(); ++v) {
    for (VertexId t : base.out_neighbors(v)) {
      const auto it = overrides.find({v, t});
      if (it != overrides.end() && !it->second) continue;  // deleted
      el.add(v, t);
    }
  }
  for (const auto& [edge, present] : overrides) {
    if (present && !std::binary_search(base.out_neighbors(edge.first).begin(),
                                       base.out_neighbors(edge.first).end(),
                                       edge.second)) {
      el.add(edge.first, edge.second);
    }
  }
  return el;
}

void apply_trace_epoch(std::span<SubgraphShard> shards,
                       const MutationTrace& trace, std::size_t epoch_index) {
  CGRAPH_CHECK(epoch_index < trace.epochs.size());
  apply_mutations(shards, trace.epochs[epoch_index],
                  static_cast<Epoch>(epoch_index + 1));
}

}  // namespace cgraph
