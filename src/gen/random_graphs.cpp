#include "gen/random_graphs.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cgraph {

EdgeList generate_uniform(VertexId n, EdgeIndex m, std::uint64_t seed) {
  CGRAPH_CHECK(n > 0);
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(m);
  for (EdgeIndex i = 0; i < m; ++i) {
    const auto s = static_cast<VertexId>(rng.next_bounded(n));
    const auto t = static_cast<VertexId>(rng.next_bounded(n));
    edges.add(s, t);
  }
  return edges;
}

EdgeList generate_watts_strogatz(VertexId n, unsigned k, double beta,
                                 std::uint64_t seed) {
  CGRAPH_CHECK(n > 2);
  CGRAPH_CHECK_MSG(k % 2 == 0 && k > 0, "k must be positive and even");
  CGRAPH_CHECK(beta >= 0.0 && beta <= 1.0);
  Xoshiro256 rng(seed);

  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * k);
  // Ring lattice: connect each vertex to its k/2 clockwise neighbors, then
  // rewire the far endpoint with probability beta.
  for (VertexId v = 0; v < n; ++v) {
    for (unsigned j = 1; j <= k / 2; ++j) {
      VertexId t = static_cast<VertexId>((v + j) % n);
      if (rng.next_double() < beta) {
        // Rewire to a uniform non-self target.
        do {
          t = static_cast<VertexId>(rng.next_bounded(n));
        } while (t == v);
      }
      edges.add(v, t);
      edges.add(t, v);
    }
  }
  return edges;
}

void assign_random_weights(EdgeList& edges, float lo, float hi,
                           std::uint64_t seed) {
  CGRAPH_CHECK(hi > lo);
  Xoshiro256 rng(seed);
  for (Edge& e : edges.edges()) {
    e.weight = lo + static_cast<float>(rng.next_double()) * (hi - lo);
  }
}

}  // namespace cgraph
