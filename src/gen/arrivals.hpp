// Open-loop arrival processes for the online query service.
//
// The offline harness (run_concurrent_queries) assumes every query is
// present at t=0; a serving system sees queries *arrive*. These generators
// stamp the usual random k-hop workload with simulated arrival times:
// Poisson (exponential inter-arrival gaps at a configured rate, the
// standard open-loop load model) or an explicit timestamp trace. Both are
// seeded and fully deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "query/query.hpp"

namespace cgraph {

struct PoissonArrivalParams {
  /// Mean arrival rate in queries per simulated second.
  double rate_qps = 100.0;
  std::size_t count = 100;
  Depth k = 3;
  std::uint64_t seed = 1;
  /// Sources are drawn uniformly from vertices with out-degree >= this
  /// (mirrors make_random_queries).
  EdgeIndex min_degree = 1;
  /// Offset added to every arrival (first arrival lands one gap later).
  double start_sim_seconds = 0;
  /// Fraction of arrivals issued as point reachability queries (a target
  /// vertex drawn uniformly, hop bound point_k) instead of k-hop
  /// aggregates — the workload the index tier (src/index/) fast-paths.
  double point_fraction = 0;
  /// Hop bound stamped on point queries. Defaults to unbounded so the
  /// index's positive verdicts apply (DESIGN.md §13 contract).
  Depth point_k = kUnvisitedDepth;
};

/// Poisson arrival stream: `count` k-hop queries whose inter-arrival gaps
/// are i.i.d. Exponential(rate_qps). Query ids are submission indices.
std::vector<TimedQuery> make_poisson_arrivals(const Graph& graph,
                                              const PoissonArrivalParams& p);

/// Trace-driven arrivals: one randomly rooted k-hop query per timestamp in
/// `arrival_seconds` (must be nondecreasing — replay of a recorded trace).
std::vector<TimedQuery> make_trace_arrivals(
    const Graph& graph, std::span<const double> arrival_seconds, Depth k,
    std::uint64_t seed = 1, EdgeIndex min_degree = 1);

}  // namespace cgraph
