// Seeded, deterministically replayable edge-mutation traces (DESIGN.md
// §15). A trace is a sequence of epochs, each a batch of insert/delete
// ops drawn from a SplitMix64 stream: inserts pick fresh vertex pairs,
// deletes pick edges that are actually live (base edges not yet deleted,
// or earlier trace inserts), so delete-heavy traces exercise tombstones
// rather than no-ops. The same (base graph, options) always yields the
// same trace on every machine, thread count, and crash replay — which is
// what lets the chaos/crash/replica suites extend to mutating runs and
// compare against a serial reference applying the identical trace.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/graph.hpp"
#include "graph/mutation.hpp"
#include "graph/shard.hpp"

namespace cgraph {

struct MutationTraceOptions {
  std::uint64_t seed = 1;
  std::size_t num_epochs = 4;
  std::size_t ops_per_epoch = 16;
  /// Fraction of ops that are deletes (of currently-live edges).
  double delete_fraction = 0.0;
};

struct MutationTrace {
  /// epochs[i] is the batch applied at Epoch i + 1 (epoch 0 = base graph).
  std::vector<std::vector<MutationOp>> epochs;

  [[nodiscard]] std::size_t num_ops() const {
    std::size_t n = 0;
    for (const auto& e : epochs) n += e.size();
    return n;
  }
};

[[nodiscard]] MutationTrace generate_mutation_trace(
    const Graph& base, const MutationTraceOptions& opts);

/// Serial reference: the base graph's edge list with the first
/// `upto_epochs` trace batches applied, last-write-wins per edge. Rebuild
/// a Graph from it to get the ground-truth view at that epoch.
[[nodiscard]] EdgeList apply_mutation_trace(const Graph& base,
                                            const MutationTrace& trace,
                                            std::size_t upto_epochs);

/// Apply trace batch `epoch_index` (0-based) to the shards at
/// Epoch epoch_index + 1.
void apply_trace_epoch(std::span<SubgraphShard> shards,
                       const MutationTrace& trace, std::size_t epoch_index);

}  // namespace cgraph
