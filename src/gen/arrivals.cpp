#include "gen/arrivals.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cgraph {
namespace {

/// Same root-sampling rule as make_random_queries (query/scheduler.hpp):
/// uniform vertices, low-degree roots resampled while attempts remain.
/// Re-implemented here so cgraph_gen stays independent of cgraph_query.
std::vector<VertexId> sample_roots(const Graph& graph, std::size_t count,
                                   Xoshiro256& rng, EdgeIndex min_degree) {
  CGRAPH_CHECK(graph.num_vertices() > 0);
  std::vector<VertexId> roots;
  roots.reserve(count);
  std::size_t attempts = 0;
  const std::size_t max_attempts = count * 1000 + 1000;
  while (roots.size() < count) {
    const auto v =
        static_cast<VertexId>(rng.next_bounded(graph.num_vertices()));
    ++attempts;
    if (graph.out_degree(v) < min_degree && attempts < max_attempts) {
      continue;
    }
    roots.push_back(v);
  }
  return roots;
}

}  // namespace

std::vector<TimedQuery> make_poisson_arrivals(const Graph& graph,
                                              const PoissonArrivalParams& p) {
  CGRAPH_CHECK_MSG(p.rate_qps > 0, "arrival rate must be positive");
  Xoshiro256 rng(p.seed);
  const auto roots = sample_roots(graph, p.count, rng, p.min_degree);

  std::vector<TimedQuery> arrivals;
  arrivals.reserve(p.count);
  double t = p.start_sim_seconds;
  for (std::size_t i = 0; i < p.count; ++i) {
    // Exponential(rate) gap; 1 - u in (0, 1] keeps log() finite.
    const double u = rng.next_double();
    t += -std::log1p(-u) / p.rate_qps;
    KHopQuery q{static_cast<QueryId>(i), roots[i], p.k};
    if (p.point_fraction > 0 && rng.next_double() < p.point_fraction) {
      q.target =
          static_cast<VertexId>(rng.next_bounded(graph.num_vertices()));
      q.k = p.point_k;
    }
    arrivals.push_back({q, t});
  }
  return arrivals;
}

std::vector<TimedQuery> make_trace_arrivals(
    const Graph& graph, std::span<const double> arrival_seconds, Depth k,
    std::uint64_t seed, EdgeIndex min_degree) {
  Xoshiro256 rng(seed);
  const auto roots =
      sample_roots(graph, arrival_seconds.size(), rng, min_degree);
  std::vector<TimedQuery> arrivals;
  arrivals.reserve(arrival_seconds.size());
  for (std::size_t i = 0; i < arrival_seconds.size(); ++i) {
    CGRAPH_CHECK_MSG(i == 0 || arrival_seconds[i] >= arrival_seconds[i - 1],
                     "arrival trace must be nondecreasing");
    arrivals.push_back(
        {{static_cast<QueryId>(i), roots[i], k}, arrival_seconds[i]});
  }
  return arrivals;
}

}  // namespace cgraph
