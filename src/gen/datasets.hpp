// Named dataset registry mirroring the paper's Table 1 at laptop scale.
//
// The paper evaluates Orkut (117 M edges), Friendster (1.8 B) and two
// Graph500-scaled Friendster synthetics (72 B / 106 B edges). This host
// cannot hold those, so each dataset is reproduced as an R-MAT graph whose
// *edge/vertex ratio matches the original* and whose absolute size is
// scaled down by a constant documented per entry. Every experiment harness
// resolves datasets through this registry, so the scale factor is recorded
// in one place.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace cgraph {

struct DatasetSpec {
  std::string name;          // registry key, e.g. "OR-100M"
  std::string description;   // paper dataset it stands in for
  std::uint64_t paper_vertices = 0;
  std::uint64_t paper_edges = 0;
  unsigned scale = 14;       // log2 vertices of the scaled analogue
  double edge_factor = 16.0; // preserves the paper's edge/vertex ratio
  std::uint64_t seed = 1;
};

/// All Table-1 datasets, ordered as in the paper.
const std::vector<DatasetSpec>& table1_datasets();

/// Look up a spec by name ("OR-100M", "FR-1B", "FRS-72B", "FRS-100B").
/// Aborts on unknown name.
const DatasetSpec& dataset_spec(const std::string& name);

/// Generate the scaled analogue graph for a spec. `scale_shift` lowers the
/// R-MAT scale further (for quick test runs): effective scale =
/// spec.scale - scale_shift.
Graph make_dataset(const DatasetSpec& spec, int scale_shift = 0,
                   bool build_in_edges = true);

/// Convenience: generate by registry name.
Graph make_dataset(const std::string& name, int scale_shift = 0,
                   bool build_in_edges = true);

}  // namespace cgraph
