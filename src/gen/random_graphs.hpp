// Classical random graph models used in tests and the hop-plot experiment.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace cgraph {

/// G(n, m): exactly m directed edges drawn uniformly (with replacement,
/// duplicates later removed by the builder).
EdgeList generate_uniform(VertexId n, EdgeIndex m, std::uint64_t seed = 1);

/// Watts–Strogatz small-world graph: ring of n vertices, each connected to
/// k nearest neighbors (k even), each edge rewired with probability beta.
/// Produces the short-path-length profile behind the paper's Fig. 1 hop
/// plot. Output is a directed edge list containing both directions.
EdgeList generate_watts_strogatz(VertexId n, unsigned k, double beta,
                                 std::uint64_t seed = 1);

/// Random weights in [lo, hi) assigned to every edge in place (for the SDN
/// latency-constrained example).
void assign_random_weights(EdgeList& edges, float lo, float hi,
                           std::uint64_t seed = 1);

}  // namespace cgraph
