#include "gen/rmat.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cgraph {

EdgeList generate_rmat(const RmatParams& p) {
  CGRAPH_CHECK(p.scale > 0 && p.scale < 32);
  const double psum = p.a + p.b + p.c + p.d;
  CGRAPH_CHECK_MSG(std::abs(psum - 1.0) < 1e-9,
                   "R-MAT quadrant probabilities must sum to 1");

  const auto n = static_cast<std::uint64_t>(1) << p.scale;
  const auto m = static_cast<std::uint64_t>(
      p.edge_factor * static_cast<double>(n));

  Xoshiro256 rng(p.seed);

  std::vector<VertexId> perm;
  if (p.permute_ids) {
    perm.resize(n);
    std::iota(perm.begin(), perm.end(), VertexId{0});
    // Fisher-Yates with the same deterministic stream.
    for (std::uint64_t i = n - 1; i > 0; --i) {
      const std::uint64_t j = rng.next_bounded(i + 1);
      std::swap(perm[i], perm[j]);
    }
  }

  EdgeList edges;
  edges.reserve(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint64_t src = 0, dst = 0;
    for (unsigned level = 0; level < p.scale; ++level) {
      const double r = rng.next_double();
      // Noise per level (standard Graph500 "smoothing"): wiggle the
      // quadrant split +-5% so the degree distribution is not lattice-like.
      const double noise = 0.95 + 0.1 * rng.next_double();
      const double a = p.a * noise;
      const double ab = a + p.b * noise;
      const double abc = ab + p.c * noise;
      const double total = abc + p.d * noise;
      const double x = r * total;
      src <<= 1;
      dst <<= 1;
      if (x < a) {
        // top-left: no bits set
      } else if (x < ab) {
        dst |= 1;
      } else if (x < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    VertexId s = static_cast<VertexId>(src);
    VertexId t = static_cast<VertexId>(dst);
    if (p.permute_ids) {
      s = perm[s];
      t = perm[t];
    }
    edges.add(s, t);
  }
  return edges;
}

}  // namespace cgraph
