// Graph500-style Kronecker (R-MAT) generator.
//
// The paper's semi-synthetic graphs (FRS-72B / FRS-100B) come from the
// Graph 500 generator seeded with Friendster's edge/vertex ratio. This is
// the same recursive-quadrant sampler: each edge picks one of four
// quadrants per scale level with probabilities (a, b, c, d), giving the
// skewed degree distribution and small effective diameter that drive k-hop
// frontier growth.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace cgraph {

struct RmatParams {
  /// log2 of the vertex count.
  unsigned scale = 16;
  /// Average edges per vertex (Graph500 default is 16).
  double edge_factor = 16.0;
  /// Quadrant probabilities; Graph500 uses (0.57, 0.19, 0.19, 0.05).
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  std::uint64_t seed = 1;
  /// Permute vertex ids so the heavy quadrant is not id-correlated (the
  /// Graph500 spec shuffles labels; range partitions stay balanced).
  bool permute_ids = true;
};

/// Generate the edge list; vertex ids are in [0, 2^scale).
EdgeList generate_rmat(const RmatParams& params);

}  // namespace cgraph
