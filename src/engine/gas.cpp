#include "engine/gas.hpp"

#include <atomic>
#include <mutex>

#include "net/serialize.hpp"
#include "obs/event_tracer.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cgraph {
namespace {

constexpr std::uint32_t kScatterTag = 0x53435456;  // 'SCTV'

struct ScatterRecord {
  VertexId vertex;
  double value;
};

}  // namespace

GasResult run_gas(Cluster& cluster, const std::vector<SubgraphShard>& shards,
                  const RangePartition& partition, const GasProgram& program,
                  std::uint64_t iterations, Epoch snapshot_epoch) {
  CGRAPH_CHECK(shards.size() == cluster.num_machines());
  const VertexId num_vertices = shards.empty()
                                    ? 0
                                    : shards[0].num_global_vertices();
  // Pin the snapshot the whole run reads (DESIGN.md §15); see
  // run_distributed_msbfs for the isolation argument.
  const Epoch epoch = snapshot_epoch == kEpochHead
                          ? current_epoch(std::span<const SubgraphShard>(
                                shards.data(), shards.size()))
                          : snapshot_epoch;

  GasResult result;
  result.values.assign(num_vertices, 0.0);
  result.stats.per_iteration_sim_seconds.assign(iterations, 0.0);
  std::mutex iter_time_mu;
  std::atomic<std::uint64_t> ptasks_total{0};
  std::atomic<std::uint64_t> stealwait_ns_total{0};

  cluster.reset_clocks();
  cluster.fabric().reset_counters();
  cluster.fabric().reset_delivery_state();
  cluster.reset_protocol_state();

  // Crash recovery: the per-iteration scatter/gather planes are re-derived
  // from `value` every iteration, so the checkpoint only carries the vertex
  // values (plus dedup + telemetry partials). The shared accumulators are
  // published post-loop (all-or-none — crashes fire only at barriers), so
  // on a rollback they just restart from zero.
  RunHooks hooks;
  hooks.on_restore = [&] {
    ptasks_total.store(0, std::memory_order_relaxed);
    stealwait_ns_total.store(0, std::memory_order_relaxed);
  };

  WallTimer wall;
  cluster.run([&](MachineContext& mc) {
    const SubgraphShard& shard = shards[mc.id()];
    const VertexRange range = shard.local_range();
    const VertexId nlocal = range.size();
    // Intra-machine compute pool (nullptr = serial), sized by
    // Cluster::set_compute_threads / $CGRAPH_THREADS.
    ThreadPool* pool = mc.pool();
    std::uint64_t my_ptasks = 0;
    double my_steal = 0;

    // Scatter records are assignments (last write wins, values identical
    // within an iteration), so duplicates are harmless — the filter keeps
    // the per-run delivery accounting exact under fault plans.
    DedupFilter dedup;

    // Delta edge-sets overlaying the tiled base structures (DESIGN.md
    // §15). With no uncompacted events every gate below is dead and the
    // run is byte-for-byte the frozen path.
    const DeltaEdgeSet& dout = shard.delta_out();
    const DeltaEdgeSet& din = shard.delta_in();
    const bool mutating = shard.has_mutations();

    // --- Setup: mirror lists. For each remote machine q, which local
    // vertices have at least one out-edge into q's range (and therefore
    // must push their scatter value to q each iteration).
    std::vector<std::vector<VertexId>> mirrors(mc.num_machines());
    {
      std::vector<PartitionId> last_sent(nlocal, kInvalidPartition);
      for (const EdgeSet& es : shard.out_sets().sets()) {
        const VertexRange sr = es.src_range();
        for (VertexId v = sr.begin; v < sr.end; ++v) {
          for (VertexId t : es.neighbors(v)) {
            const PartitionId q = partition.owner(t);
            if (q == mc.id()) continue;
            // Dedup consecutive hits cheaply; exact dedup below.
            if (last_sent[v - range.begin] != q) {
              mirrors[q].push_back(v);
              last_sent[v - range.begin] = q;
            }
          }
        }
      }
      // Delta-inserted boundary edges add mirror entries too. Deleted
      // base edges are left in place: pushing a value nobody gathers is
      // harmless (gather walks the merged parent list, which excludes
      // tombstoned edges), and it keeps this setup scan append-only.
      if (mutating) {
        for (VertexId v = range.begin; v < range.end; ++v) {
          if (!dout.has_events(v)) continue;
          dout.for_each_extra(v, epoch, [&](VertexId t) {
            const PartitionId q = partition.owner(t);
            if (q != mc.id()) mirrors[q].push_back(v);
          });
        }
      }
      for (auto& list : mirrors) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
      }
    }

    // Out-degrees at the pinned epoch: scatter (and init_value) divide by
    // the live degree, so vertices with delta events get theirs recounted
    // through the merged view — required for bit-exactness against the
    // equivalent frozen graph.
    std::vector<EdgeIndex> degrees(shard.out_degrees().begin(),
                                   shard.out_degrees().end());
    if (mutating) {
      for (VertexId v = range.begin; v < range.end; ++v) {
        if (!dout.has_events(v)) continue;
        EdgeIndex d = 0;
        shard.for_each_out_neighbor_at(v, epoch, [&](VertexId) { ++d; });
        degrees[v - range.begin] = d;
      }
    }

    // Local state: vertex values, local scatter values, and a dense cache
    // of remote scatter values (indexed by global id; only boundary slots
    // are ever written).
    std::vector<double> value(nlocal);
    std::vector<double> scatter_local(nlocal);
    std::vector<double> scatter_remote(num_vertices, 0.0);

    std::uint64_t start_iter = 0;
    if (auto ckpt = mc.restore_checkpoint()) {
      // Re-entering after a crash: resume from the checkpointed iteration.
      // Clocks and link state were rolled back by the cluster, so the
      // replayed iterations are bit-exact.
      PacketReader pr(*ckpt);
      start_iter = pr.read<std::uint64_t>();
      my_ptasks = pr.read<std::uint64_t>();
      my_steal = pr.read<double>();
      dedup.deserialize(pr);
      const auto vals = pr.read_vector<double>();
      CGRAPH_CHECK(vals.size() == value.size());
      std::copy(vals.begin(), vals.end(), value.begin());
      const auto ck_epoch = pr.read<std::uint64_t>();
      const auto ck_fp = pr.read<std::uint64_t>();
      CGRAPH_CHECK_MSG(ck_epoch == epoch &&
                           ck_fp == shard.mutation_fingerprint(epoch),
                       "checkpoint delta tail mismatch: a restored run "
                       "must see the snapshot the blob was cut against");
    } else {
      for (VertexId i = 0; i < nlocal; ++i) {
        value[i] = program.init_value(range.begin + i, degrees[i],
                                      num_vertices);
      }
    }

    double last_sim = mc.clock().seconds();
    for (std::uint64_t iter = start_iter; iter < iterations; ++iter) {
      // Top of iteration = the consistent cut: staged mailboxes are empty
      // and `value` is the machine's whole recoverable state.
      mc.maybe_checkpoint([&](PacketWriter& pw) {
        pw.write<std::uint64_t>(iter);
        pw.write<std::uint64_t>(my_ptasks);
        pw.write<double>(my_steal);
        dedup.serialize(pw);
        pw.write_span<double>({value.data(), value.size()});
        // Delta tail: the snapshot this blob was cut against (see the
        // bit-parallel engine's checkpoint for the adoption argument).
        pw.write<std::uint64_t>(epoch);
        pw.write<std::uint64_t>(shard.mutation_fingerprint(epoch));
      });

      const bool tracing = obs::tracing_enabled();
      const double scan_sim_t0 = tracing ? mc.clock().seconds() : 0.0;
      WallTimer phase_wall;
      // --- Scatter phase: compute outgoing contribution per local vertex.
      // Each slot is written by exactly one pool thread.
      const ParallelForStats scatter_stats = parallel_ranges(
          pool, nlocal, [&](std::size_t ib, std::size_t ie) {
            for (std::size_t i = ib; i < ie; ++i) {
              scatter_local[i] = program.scatter(value[i], degrees[i]);
            }
          });
      mc.charge_compute(/*edges=*/0, /*vertices=*/nlocal);

      // --- Push boundary values to the partitions that gather from them.
      for (PartitionId q = 0; q < mc.num_machines(); ++q) {
        if (mirrors[q].empty()) continue;
        PacketWriter w;
        std::vector<ScatterRecord> records;
        records.reserve(mirrors[q].size());
        for (VertexId v : mirrors[q]) {
          records.push_back({v, scatter_local[v - range.begin]});
        }
        w.write_span(std::span<const ScatterRecord>(records));
        mc.send(q, kScatterTag, w.take());
      }
      if (tracing) {
        // Scatter = the "scan" half of a GAS iteration.
        obs::TraceEvent ev;
        ev.phase = obs::TraceEventPhase::kSuperstepScan;
        ev.kind = obs::TraceEventKind::kSpan;
        ev.machine = static_cast<std::int32_t>(mc.id());
        ev.level = static_cast<std::int32_t>(iter);
        ev.sim_seconds = scan_sim_t0;
        ev.sim_dur_seconds = mc.clock().seconds() - scan_sim_t0;
        ev.wall_dur_ns = phase_wall.nanos();
        ev.a = static_cast<double>(nlocal);
        obs::trace(ev);
      }
      mc.barrier();

      const double commit_sim_t0 = tracing ? mc.clock().seconds() : 0.0;
      phase_wall.reset();
      for (Envelope& env : mc.recv_staged()) {
        CGRAPH_CHECK(env.tag == kScatterTag);
        if (!dedup.accept(env.from, env.seq)) {
          mc.cluster().fabric().record_dedup_suppressed(mc.id());
          continue;
        }
        PacketReader r(env.payload);
        for (const ScatterRecord& rec : r.read_vector<ScatterRecord>()) {
          scatter_remote[rec.vertex] = rec.value;
        }
      }

      // --- Gather + apply, fully local thanks to the CSC (or its tiled
      // edge-set view when the shard was built with vertical
      // consolidation). Pool threads claim vertex ranges; each vertex's
      // float fold runs wholly on one thread in edge order, so values are
      // bit-identical for any thread count.
      std::atomic<std::uint64_t> edges_acc{0};
      auto incoming_of = [&](VertexId p) {
        return range.contains(p) ? scatter_local[p - range.begin]
                                 : scatter_remote[p];
      };
      // Vertices with in-side delta events fold over the merged parent
      // list (base minus tombstones plus inserts, globally sorted — the
      // same order a compacted rebuild would walk), so FP sums stay
      // bit-identical to the equivalent frozen graph.
      auto gather_merged = [&](std::size_t i, std::uint64_t& chunk_edges) {
        double sum = program.gather_init();
        shard.for_each_in_parent_at(
            range.begin + static_cast<VertexId>(i), epoch, [&](VertexId p) {
              sum = program.gather(sum, incoming_of(p));
              ++chunk_edges;
            });
        value[i] = program.apply(sum, value[i], num_vertices);
      };
      ParallelForStats gather_stats;
      if (shard.has_in_sets()) {
        gather_stats = parallel_ranges(
            pool, nlocal, [&](std::size_t ib, std::size_t ie) {
              std::uint64_t chunk_edges = 0;
              for (std::size_t i = ib; i < ie; ++i) {
                const VertexId vg = range.begin + static_cast<VertexId>(i);
                if (mutating && din.has_events(vg)) {
                  gather_merged(i, chunk_edges);
                  continue;
                }
                double sum = program.gather_init();
                shard.in_sets().for_each_neighbor(
                    vg,
                    [&](VertexId p) {
                      sum = program.gather(sum, incoming_of(p));
                      ++chunk_edges;
                    });
                value[i] = program.apply(sum, value[i], num_vertices);
              }
              edges_acc.fetch_add(chunk_edges, std::memory_order_relaxed);
            });
      } else {
        gather_stats = parallel_ranges(
            pool, nlocal, [&](std::size_t ib, std::size_t ie) {
              std::uint64_t chunk_edges = 0;
              for (std::size_t i = ib; i < ie; ++i) {
                if (mutating &&
                    din.has_events(range.begin +
                                   static_cast<VertexId>(i))) {
                  gather_merged(i, chunk_edges);
                  continue;
                }
                double sum = program.gather_init();
                for (VertexId p :
                     shard.in_csr().neighbors(static_cast<VertexId>(i))) {
                  sum = program.gather(sum, incoming_of(p));
                }
                chunk_edges += shard.in_csr().degree(
                    static_cast<VertexId>(i));
                value[i] = program.apply(sum, value[i], num_vertices);
              }
              edges_acc.fetch_add(chunk_edges, std::memory_order_relaxed);
            });
      }
      mc.charge_compute(edges_acc.load(std::memory_order_relaxed), nlocal);
      my_ptasks += scatter_stats.tasks + gather_stats.tasks;
      my_steal +=
          scatter_stats.join_wait_seconds + gather_stats.join_wait_seconds;
      if (tracing) {
        // Gather+apply = the "commit" half of a GAS iteration.
        obs::TraceEvent ev;
        ev.phase = obs::TraceEventPhase::kSuperstepCommit;
        ev.kind = obs::TraceEventKind::kSpan;
        ev.machine = static_cast<std::int32_t>(mc.id());
        ev.level = static_cast<std::int32_t>(iter);
        ev.sim_seconds = commit_sim_t0;
        ev.sim_dur_seconds = mc.clock().seconds() - commit_sim_t0;
        ev.wall_dur_ns = phase_wall.nanos();
        ev.a = static_cast<double>(edges_acc.load(std::memory_order_relaxed));
        obs::trace(ev);
      }
      mc.barrier();  // iteration boundary: everyone advances together

      if (mc.id() == 0) {
        // After a barrier all clocks equal the max, so reading our own
        // clock is race-free and equals the cluster makespan so far.
        const double now = mc.clock().seconds();
        std::lock_guard<std::mutex> lk(iter_time_mu);
        result.stats.per_iteration_sim_seconds[iter] = now - last_sim;
        last_sim = now;
      }
    }

    // Publish final values: each machine owns a disjoint range.
    for (VertexId i = 0; i < nlocal; ++i) {
      result.values[range.begin + i] = value[i];
    }
    ptasks_total.fetch_add(my_ptasks, std::memory_order_relaxed);
    stealwait_ns_total.fetch_add(
        static_cast<std::uint64_t>(my_steal * 1e9),
        std::memory_order_relaxed);
  }, hooks);

  result.stats.iterations = iterations;
  result.stats.wall_seconds = wall.seconds();
  result.stats.sim_seconds = cluster.sim_seconds();
  result.stats.packets = cluster.fabric().total_packets();
  result.stats.bytes = cluster.fabric().total_bytes();
  result.stats.parallel_tasks =
      ptasks_total.load(std::memory_order_relaxed);
  result.stats.steal_wait_seconds =
      static_cast<double>(
          stealwait_ns_total.load(std::memory_order_relaxed)) *
      1e-9;
  return result;
}

}  // namespace cgraph
