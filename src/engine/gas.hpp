// Gather-Apply-Scatter vertex programming interface (paper §3.4, Listing 3)
// and its distributed BSP executor.
//
// The executor follows the paper's "local read" discipline: every vertex's
// in-edges are stored locally (CSC in the shard), so the gather phase never
// generates traffic by itself; instead, each iteration starts with a push
// of scatter values to the partitions that need them (the boundary-value
// synchronization of §3.3), after which gather+apply run entirely locally.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/partition.hpp"
#include "graph/shard.hpp"
#include "net/cluster.hpp"

namespace cgraph {

/// Vertex program in GAS form. All values are doubles, which covers the
/// iterative-computation workloads the paper targets (PageRank et al.).
class GasProgram {
 public:
  virtual ~GasProgram() = default;

  /// Initial vertex value.
  virtual double init_value(VertexId v, EdgeIndex out_degree,
                            VertexId num_vertices) const = 0;
  /// Identity element of the gather fold.
  virtual double gather_init() const { return 0.0; }
  /// Fold one inbound message into the running sum.
  virtual double gather(double sum, double incoming) const = 0;
  /// Produce the new vertex value from the folded sum.
  virtual double apply(double sum, double old_value,
                       VertexId num_vertices) const = 0;
  /// Message value a vertex contributes along each out-edge.
  virtual double scatter(double value, EdgeIndex out_degree) const = 0;
};

struct GasStats {
  std::uint64_t iterations = 0;
  double wall_seconds = 0;
  double sim_seconds = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::vector<double> per_iteration_sim_seconds;
  /// Intra-machine pool chunks executed across all scatter and gather
  /// phases (summed over machines and iterations); one chunk per phase per
  /// machine per iteration means the run was serial.
  std::uint64_t parallel_tasks = 0;
  /// Host seconds machine threads spent joining their compute pools.
  double steal_wait_seconds = 0;
};

struct GasResult {
  std::vector<double> values;  // indexed by global vertex id
  GasStats stats;
};

/// Run `iterations` synchronous GAS supersteps over the sharded graph.
/// Inside each machine the scatter and gather+apply phases parallelize
/// per vertex over the Cluster's compute pool (set_compute_threads /
/// $CGRAPH_THREADS); each vertex's gather fold runs wholly on one thread
/// in edge order, so values are bit-identical for any thread count.
/// `snapshot_epoch` pins the mutation snapshot the whole run reads
/// (kEpochHead = the shards' epoch at entry): gather folds walk the
/// merged base+delta parent lists in the same globally sorted order a
/// compacted rebuild would produce, and scatter divides by the live
/// out-degree at that epoch, so values are bit-identical to running on
/// the equivalent frozen graph.
GasResult run_gas(Cluster& cluster, const std::vector<SubgraphShard>& shards,
                  const RangePartition& partition, const GasProgram& program,
                  std::uint64_t iterations, Epoch snapshot_epoch = kEpochHead);

}  // namespace cgraph
