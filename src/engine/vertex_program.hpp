// Vertex-centric programming model (Pregel-style), the second model the
// paper's framework supports ("Our framework supports both the
// vertex-centric and partition-centric models", §3.3).
//
// A VertexProgram defines compute() for a single vertex. The engine runs
// it superstep-by-superstep on top of the partition-centric runtime: each
// machine iterates its active local vertices, delivers per-vertex message
// lists, and routes sends through the same batched fabric. Vertex state is
// a user type V stored densely per local vertex.
//
// Compared to the partition-centric model this needs more supersteps (the
// paper's stated reason for preferring partition-centric for traversals)
// but is the natural fit for value-iteration algorithms like SSSP and
// label-propagation connected components (see src/algo/).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "engine/bsp_engine.hpp"
#include "graph/shard.hpp"
#include "net/cluster.hpp"

namespace cgraph {

/// Per-vertex view handed to VertexProgram::compute.
template <typename V, typename M>
class VertexHandle {
 public:
  VertexHandle(VertexId id, V& value, bool& halted,
               std::vector<std::pair<VertexId, M>>& out,
               const SubgraphShard& shard)
      : id_(id), value_(value), halted_(halted), out_(out), shard_(shard) {}

  [[nodiscard]] VertexId id() const { return id_; }
  [[nodiscard]] V& value() { return value_; }
  [[nodiscard]] const V& value() const { return value_; }

  /// Out-neighbors (global ids) of this vertex.
  template <typename Fn>
  void for_each_out_neighbor(Fn&& fn) const {
    shard_.out_sets().for_each_neighbor(id_, std::forward<Fn>(fn));
  }

  /// Weighted out-edge scan: fn(target, weight).
  template <typename Fn>
  void for_each_out_edge(Fn&& fn) const {
    shard_.out_sets().for_each_edge(id_, std::forward<Fn>(fn));
  }

  [[nodiscard]] EdgeIndex out_degree() const {
    return shard_.out_degree(id_);
  }

  /// In-neighbors (global parent ids) of this vertex, from the shard CSC.
  /// Requires the shard to be built with in-edges (the default).
  template <typename Fn>
  void for_each_in_neighbor(Fn&& fn) const {
    CGRAPH_DCHECK(shard_.has_in_edges());
    const VertexId local = id_ - shard_.local_range().begin;
    for (VertexId p : shard_.in_csr().neighbors(local)) fn(p);
  }

  /// The hosting shard (for algorithms needing the CSC or edge-set stats).
  [[nodiscard]] const SubgraphShard& shard() const { return shard_; }

  /// Queue a message to any vertex (local or remote) by global id.
  void send(VertexId target, const M& msg) { out_.emplace_back(target, msg); }

  /// Send `msg` along every out-edge.
  void send_to_neighbors(const M& msg) {
    for_each_out_neighbor([&](VertexId t) { out_.emplace_back(t, msg); });
  }

  /// Deactivate until a message arrives (Pregel vote-to-halt).
  void vote_to_halt() { halted_ = true; }

 private:
  VertexId id_;
  V& value_;
  bool& halted_;
  std::vector<std::pair<VertexId, M>>& out_;
  const SubgraphShard& shard_;
};

/// User algorithm: initial value + per-superstep compute.
template <typename V, typename M>
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// Initial value for every vertex.
  virtual V init(VertexId v, const SubgraphShard& shard) const = 0;

  /// True if the vertex starts active (receives an empty message list in
  /// superstep 0); inactive vertices wake only on messages.
  virtual bool initially_active(VertexId v) const = 0;

  /// One superstep for one active vertex; `messages` are those delivered
  /// this superstep.
  virtual void compute(VertexHandle<V, M>& vertex,
                       std::span<const M> messages,
                       std::uint64_t superstep) const = 0;
};

struct VertexRunStats {
  std::uint64_t supersteps = 0;
  double wall_seconds = 0;
  double sim_seconds = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

template <typename V>
struct VertexRunResult {
  std::vector<V> values;  // indexed by global vertex id
  VertexRunStats stats;
};

/// Execute a vertex program to quiescence (all halted, no messages).
template <typename V, typename M>
VertexRunResult<V> run_vertex_program(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition, const VertexProgram<V, M>& program,
    std::uint64_t max_supersteps = 1'000'000) {
  CGRAPH_CHECK(shards.size() == cluster.num_machines());
  const VertexId num_vertices = shards[0].num_global_vertices();

  VertexRunResult<V> result;
  result.values.resize(num_vertices);

  // Adapter: one partition-centric program hosting the vertex loop.
  struct Host final : PartitionProgram<M> {
    const VertexProgram<V, M>& prog;
    std::vector<V>& global_values;
    std::vector<V> values;           // per local vertex
    std::vector<std::uint8_t> halted;  // per local vertex (1 = halted)
    std::vector<std::vector<M>> inbox;  // per local vertex, this superstep
    std::vector<std::pair<VertexId, M>> out;

    explicit Host(const VertexProgram<V, M>& p, std::vector<V>& gv)
        : prog(p), global_values(gv) {}

    void init(PartitionContext<M>& ctx) override {
      const VertexRange range = ctx.local_vertices();
      values.reserve(range.size());
      halted.resize(range.size());
      inbox.resize(range.size());
      for (VertexId v = range.begin; v < range.end; ++v) {
        values.push_back(prog.init(v, ctx.shard()));
        halted[v - range.begin] = prog.initially_active(v) ? 0 : 1;
      }
    }

    void compute(PartitionContext<M>& ctx) override {
      const VertexRange range = ctx.local_vertices();
      // Deliver this superstep's messages; arrival reactivates.
      for (const auto& msg : ctx.incoming()) {
        const VertexId i = msg.target - range.begin;
        inbox[i].push_back(msg.payload);
        halted[i] = 0;
      }

      std::uint64_t vertices_run = 0;
      for (VertexId v = range.begin; v < range.end; ++v) {
        const VertexId i = v - range.begin;
        if (halted[i]) continue;
        ++vertices_run;
        out.clear();
        bool halt_vote = false;
        VertexHandle<V, M> handle(v, values[i], halt_vote, out, ctx.shard());
        prog.compute(handle, std::span<const M>(inbox[i]),
                     ctx.machine().superstep() / 2);  // 2 barriers/superstep
        halted[i] = halt_vote ? 1 : 0;
        for (const auto& [target, payload] : out) {
          ctx.send_to(target, payload);
        }
        inbox[i].clear();
      }
      ctx.charge_compute(/*edges=*/0, vertices_run);

      // The partition halts when every vertex halted; pending sends keep
      // the engine alive via has_pending_sends().
      bool all_halted = true;
      for (const std::uint8_t h : halted) {
        if (h == 0) {
          all_halted = false;
          break;
        }
      }
      if (all_halted) {
        ctx.vote_to_halt();
      } else {
        ctx.activate();
      }
    }

    void finish(PartitionContext<M>& ctx) override {
      const VertexRange range = ctx.local_vertices();
      for (VertexId v = range.begin; v < range.end; ++v) {
        global_values[v] = values[v - range.begin];
      }
    }

    // Crash recovery: at the top-of-superstep cut every per-vertex inbox
    // is empty (messages are delivered and consumed inside compute()), so
    // the host state is exactly (values, halted). Only offered when V is
    // trivially copyable — a V with pointers can't be blitted to a blob.
    [[nodiscard]] bool supports_checkpoint() const override {
      return std::is_trivially_copyable_v<V>;
    }
    void checkpoint(PacketWriter& w) const override {
      if constexpr (std::is_trivially_copyable_v<V>) {
        w.write_span(std::span<const V>(values));
        w.write_span(std::span<const std::uint8_t>(halted));
      }
    }
    void restore(PacketReader& r) override {
      if constexpr (std::is_trivially_copyable_v<V>) {
        values = r.template read_vector<V>();
        halted = r.template read_vector<std::uint8_t>();
        inbox.assign(values.size(), std::vector<M>{});
      }
    }
  };

  const BspStats bsp = run_partition_programs<M>(
      cluster, shards, partition,
      [&](PartitionId) {
        return std::make_unique<Host>(program, result.values);
      },
      max_supersteps);

  result.stats.supersteps = bsp.supersteps;
  result.stats.wall_seconds = bsp.wall_seconds;
  result.stats.sim_seconds = bsp.sim_seconds;
  result.stats.packets = bsp.packets;
  result.stats.bytes = bsp.bytes;
  return result;
}

}  // namespace cgraph
