// BSP driver for partition-centric programs (paper Fig. 4 workflow):
//
//   loop: compute on local subgraph -> flush outboxes -> barrier ->
//         drain incoming task buffer -> halt check
//
// until every partition voted to halt and no messages are in flight.
#pragma once

#include <functional>
#include <memory>

#include "engine/partition_context.hpp"
#include "net/cluster.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace cgraph {

template <typename M>
class PartitionProgram {
 public:
  virtual ~PartitionProgram() = default;
  /// Called once before the first superstep.
  virtual void init(PartitionContext<M>&) {}
  /// Called every superstep. Read incoming() for delivered messages.
  virtual void compute(PartitionContext<M>&) = 0;
  /// Called once after global quiescence.
  virtual void finish(PartitionContext<M>&) {}

  // ---- crash recovery (optional) --------------------------------------
  // A program that opts in serializes its whole per-partition state; the
  // engine then checkpoints it at superstep boundaries and, after a crash,
  // calls restore() instead of init(). Programs that do not opt in fall
  // back to a from-scratch restart when a machine crashes (still correct,
  // just no replay savings).
  [[nodiscard]] virtual bool supports_checkpoint() const { return false; }
  virtual void checkpoint(PacketWriter&) const {}
  virtual void restore(PacketReader&) {}
};

struct BspStats {
  std::uint64_t supersteps = 0;
  double wall_seconds = 0;   // host wall-clock for the whole run
  double sim_seconds = 0;    // simulated cluster makespan (cost model)
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

/// Run one program instance per machine until quiescence. The factory is
/// invoked once per machine (on that machine's thread).
template <typename M>
BspStats run_partition_programs(
    Cluster& cluster, const std::vector<SubgraphShard>& shards,
    const RangePartition& partition,
    const std::function<std::unique_ptr<PartitionProgram<M>>(PartitionId)>&
        factory,
    std::uint64_t max_supersteps = 1'000'000) {
  CGRAPH_CHECK(shards.size() == cluster.num_machines());

  ActivityBoard board(cluster.num_machines());
  std::atomic<std::uint64_t> superstep_count{0};

  cluster.reset_clocks();
  cluster.reset_telemetry();
  cluster.fabric().reset_counters();
  cluster.fabric().reset_delivery_state();
  cluster.reset_protocol_state();

  // Crash recovery: superstep_count is published post-loop (all-or-none),
  // so a rollback just clears it. The ActivityBoard needs no checkpoint —
  // every machine re-posts its flag each superstep before anyone reads it.
  RunHooks hooks;
  hooks.on_restore = [&] {
    superstep_count.store(0, std::memory_order_relaxed);
  };

  obs::TraceSpan span("bsp_run");
  WallTimer wall;
  cluster.run([&](MachineContext& mc) {
    PartitionContext<M> ctx(mc, shards[mc.id()], partition);
    std::unique_ptr<PartitionProgram<M>> program = factory(mc.id());

    std::uint64_t steps = 0;
    bool restored = false;
    if (program->supports_checkpoint()) {
      if (auto ckpt = mc.restore_checkpoint()) {
        // Re-entering after a crash: restore the engine-level context
        // (incoming buffer, halt vote, dedup windows) and the program's
        // own state instead of re-running init().
        PacketReader pr(*ckpt);
        steps = pr.read<std::uint64_t>();
        ctx.restore_state(pr);
        program->restore(pr);
        restored = true;
      }
    }
    if (!restored) program->init(ctx);

    for (; steps < max_supersteps; ++steps) {
      // Top of superstep = the consistent cut: outboxes and loopback are
      // empty (flushed / swapped into incoming last superstep), staged
      // mailboxes drained. `incoming` is the only in-flight data and
      // travels inside the checkpoint.
      if (program->supports_checkpoint()) {
        mc.maybe_checkpoint([&](PacketWriter& pw) {
          pw.write<std::uint64_t>(steps);
          ctx.checkpoint_state(pw);
          program->checkpoint(pw);
        });
      }

      program->compute(ctx);

      // Active if the program did not halt, or it queued messages whose
      // delivery must wake someone next superstep.
      board.post(mc.id(), !ctx.halted() || ctx.has_pending_sends());
      ctx.flush_sends();
      ctx.barrier();

      ctx.collect_incoming();
      if (!ctx.incoming().empty()) ctx.activate();

      // All machines read the same snapshot of the board here: posts only
      // happen after the *next* barrier, so this read/second-barrier pair
      // makes the halt decision globally consistent (the real system pays
      // the same price as a termination allreduce).
      const bool keep_running = board.any_active();
      ctx.barrier();
      if (!keep_running) {
        ++steps;
        break;
      }
    }
    program->finish(ctx);

    if (mc.id() == 0) {
      superstep_count.store(steps, std::memory_order_relaxed);
    }
  }, hooks);

  BspStats stats;
  stats.wall_seconds = wall.seconds();
  stats.sim_seconds = cluster.sim_seconds();
  stats.supersteps = superstep_count.load(std::memory_order_relaxed);
  stats.packets = cluster.fabric().total_packets();
  stats.bytes = cluster.fabric().total_bytes();
  cluster.publish_metrics(obs::MetricsRegistry::global());
  return stats;
}

}  // namespace cgraph
