// PageRank in the paper's GAS formulation (Listing 3):
//   Gather:  sum += v.val
//   Apply:   v.val = 0.15 + 0.85 * sum
//   Scatter: v.val / v.outdegree
// (the paper's unnormalized variant; ranks converge to the same ordering
// as the 1/N-normalized form).
#pragma once

#include "engine/gas.hpp"
#include "graph/graph.hpp"

namespace cgraph {

class PageRankProgram final : public GasProgram {
 public:
  explicit PageRankProgram(double damping = 0.85) : damping_(damping) {}

  double init_value(VertexId, EdgeIndex, VertexId) const override {
    return 1.0;
  }
  double gather(double sum, double incoming) const override {
    return sum + incoming;
  }
  double apply(double sum, double, VertexId) const override {
    return (1.0 - damping_) + damping_ * sum;
  }
  double scatter(double value, EdgeIndex out_degree) const override {
    return out_degree == 0 ? 0.0 : value / static_cast<double>(out_degree);
  }

 private:
  double damping_;
};

/// Distributed PageRank over a sharded graph (paper's iterative workload).
GasResult run_pagerank(Cluster& cluster,
                       const std::vector<SubgraphShard>& shards,
                       const RangePartition& partition,
                       std::uint64_t iterations, double damping = 0.85);

/// Single-threaded reference implementation used to validate the
/// distributed engine bit-for-bit (same traversal order semantics).
std::vector<double> pagerank_serial(const Graph& graph,
                                    std::uint64_t iterations,
                                    double damping = 0.85);

}  // namespace cgraph
