#include "engine/pagerank.hpp"

namespace cgraph {

GasResult run_pagerank(Cluster& cluster,
                       const std::vector<SubgraphShard>& shards,
                       const RangePartition& partition,
                       std::uint64_t iterations, double damping) {
  PageRankProgram program(damping);
  return run_gas(cluster, shards, partition, program, iterations);
}

std::vector<double> pagerank_serial(const Graph& graph,
                                    std::uint64_t iterations,
                                    double damping) {
  const VertexId n = graph.num_vertices();
  std::vector<double> value(n, 1.0);
  std::vector<double> contrib(n, 0.0);
  for (std::uint64_t iter = 0; iter < iterations; ++iter) {
    for (VertexId v = 0; v < n; ++v) {
      const EdgeIndex d = graph.out_degree(v);
      contrib[v] = d == 0 ? 0.0 : value[v] / static_cast<double>(d);
    }
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (VertexId p : graph.in_neighbors(v)) sum += contrib[p];
      value[v] = (1.0 - damping) + damping * sum;
    }
  }
  return value;
}

}  // namespace cgraph
