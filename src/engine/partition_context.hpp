// Partition-centric programming model (paper §3.4, Listing 1).
//
// A PartitionProgram runs one instance per machine. Each superstep the
// engine calls compute(); the program reads its shard, sends messages to
// vertices anywhere in the graph by global id (sendTo), and votes to halt
// when locally quiescent. The engine terminates when every partition has
// voted to halt and no messages are in flight — Pregel semantics at
// partition granularity (fewer supersteps than vertex-centric, as the
// paper notes, because local traversal runs to completion inside one
// superstep).
//
// Messages are typed (template parameter M, trivially copyable) and are
// batched per destination machine into one packet per superstep, which is
// what a real MPI backend would do.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/partition.hpp"
#include "graph/shard.hpp"
#include "net/cluster.hpp"
#include "net/serialize.hpp"
#include "util/assert.hpp"

namespace cgraph {

/// Wire record for vertex-addressed messages.
template <typename M>
struct VertexMessage {
  VertexId target;
  M payload;
};

/// Shared halt-detection board: each machine posts whether it is still
/// active; the engine ANDs after a barrier. Lives in bsp_engine.cpp.
class ActivityBoard {
 public:
  explicit ActivityBoard(PartitionId n) : flags_(n) {
    for (auto& f : flags_) f.store(1, std::memory_order_relaxed);
  }
  void post(PartitionId id, bool active) {
    flags_[id].store(active ? 1 : 0, std::memory_order_release);
  }
  [[nodiscard]] bool any_active() const {
    for (const auto& f : flags_)
      if (f.load(std::memory_order_acquire)) return true;
    return false;
  }

 private:
  std::vector<std::atomic<std::uint8_t>> flags_;
};

template <typename M>
class PartitionContext {
  static_assert(std::is_trivially_copyable_v<M>,
                "message payloads must be POD for wire serialization");

 public:
  static constexpr std::uint32_t kVertexMsgTag = 0x564d5347;  // 'VMSG'

  PartitionContext(MachineContext& mc, const SubgraphShard& shard,
                   const RangePartition& partition)
      : mc_(mc),
        shard_(shard),
        partition_(partition),
        outboxes_(mc.num_machines()) {}

  // ---- Listing 1 surface ----------------------------------------------

  [[nodiscard]] PartitionId partition_id() const { return shard_.id(); }

  [[nodiscard]] bool is_local_vertex(VertexId v) const {
    return shard_.is_local(v);
  }

  /// Boundary vertices: remote vertices adjacent to this partition.
  [[nodiscard]] bool is_boundary_vertex(VertexId v) const {
    if (shard_.is_local(v)) return false;
    const auto& b = shard_.boundary_out();
    return std::binary_search(b.begin(), b.end(), v);
  }

  /// has-vertex in the Listing 1 sense: known to this partition (local or
  /// boundary).
  [[nodiscard]] bool has_vertex(VertexId v) const {
    return is_local_vertex(v) || is_boundary_vertex(v);
  }

  [[nodiscard]] const VertexRange& local_vertices() const {
    return shard_.local_range();
  }
  [[nodiscard]] const std::vector<VertexId>& boundary_vertices() const {
    return shard_.boundary_out();
  }
  [[nodiscard]] VertexId num_all_vertices() const {
    return shard_.num_global_vertices();
  }

  /// Queue a message to the owner partition of `target`; delivered after
  /// the next superstep barrier. Local targets short-circuit (no wire
  /// traffic), matching the paper's "all edges of a vertex are local" note.
  void send_to(VertexId target, const M& payload) {
    const PartitionId owner = partition_.owner(target);
    if (owner == shard_.id()) {
      local_loopback_.push_back({target, payload});
    } else {
      outboxes_[owner].push_back({target, payload});
    }
  }

  void vote_to_halt() { halted_ = true; }
  void activate() { halted_ = false; }
  [[nodiscard]] bool halted() const { return halted_; }

  /// Superstep barrier (engine also calls this between phases).
  void barrier() { mc_.barrier(); }

  // ---- engine-side surface --------------------------------------------

  [[nodiscard]] const SubgraphShard& shard() const { return shard_; }
  [[nodiscard]] const RangePartition& partition() const { return partition_; }
  [[nodiscard]] MachineContext& machine() { return mc_; }

  /// Messages delivered to this partition for the current superstep.
  [[nodiscard]] const std::vector<VertexMessage<M>>& incoming() const {
    return incoming_;
  }

  /// Charge compute work to the simulated clock.
  void charge_compute(std::uint64_t edges, std::uint64_t vertices = 0) {
    mc_.charge_compute(edges, vertices);
  }

  /// Flush queued sends as one packet per destination machine.
  void flush_sends() {
    for (PartitionId to = 0; to < outboxes_.size(); ++to) {
      auto& box = outboxes_[to];
      if (box.empty()) continue;
      PacketWriter w;
      w.write_span(std::span<const VertexMessage<M>>(box));
      mc_.send(to, kVertexMsgTag, w.take());
      box.clear();
    }
  }

  /// Collect the messages staged for this superstep (remote packets plus
  /// the local loopback queue). Message application is combiner-defined and
  /// generally NOT idempotent (e.g. summed PageRank contributions), so a
  /// packet duplicated by a faulty fabric must be applied exactly once —
  /// duplicates are filtered by (sender, sequence) before decoding.
  void collect_incoming() {
    incoming_.clear();
    incoming_.swap(local_loopback_);
    for (Envelope& env : mc_.recv_staged()) {
      CGRAPH_CHECK(env.tag == kVertexMsgTag);
      if (!dedup_.accept(env.from, env.seq)) {
        mc_.cluster().fabric().record_dedup_suppressed(mc_.id());
        continue;
      }
      PacketReader r(env.payload);
      auto msgs = r.template read_vector<VertexMessage<M>>();
      incoming_.insert(incoming_.end(), msgs.begin(), msgs.end());
    }
  }

  /// Checkpoint support (crash recovery): at the top-of-superstep cut the
  /// outboxes and loopback queue are empty, so the engine-level state is
  /// exactly (incoming, halted, dedup windows).
  void checkpoint_state(PacketWriter& w) const {
    w.write_span(std::span<const VertexMessage<M>>(incoming_));
    w.write<std::uint8_t>(halted_ ? 1 : 0);
    dedup_.serialize(w);
  }
  void restore_state(PacketReader& r) {
    incoming_ = r.template read_vector<VertexMessage<M>>();
    halted_ = r.read<std::uint8_t>() != 0;
    dedup_.deserialize(r);
    local_loopback_.clear();
    for (auto& box : outboxes_) box.clear();
  }

  /// True when this partition has deferred work: queued sends or loopback
  /// messages (used for halt detection before the flush).
  [[nodiscard]] bool has_pending_sends() const {
    if (!local_loopback_.empty()) return true;
    for (const auto& box : outboxes_)
      if (!box.empty()) return true;
    return false;
  }

 private:
  MachineContext& mc_;
  const SubgraphShard& shard_;
  const RangePartition& partition_;
  std::vector<std::vector<VertexMessage<M>>> outboxes_;  // one per machine
  std::vector<VertexMessage<M>> local_loopback_;
  std::vector<VertexMessage<M>> incoming_;
  DedupFilter dedup_;
  bool halted_ = false;
};

}  // namespace cgraph
