// Tiny command-line option parser shared by examples and bench harnesses.
// Supports `--key=value`, `--key value`, and boolean `--flag` forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cgraph {

class Options {
 public:
  Options(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

  /// Non-option positional arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace cgraph
