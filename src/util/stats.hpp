// Response-time statistics used by every benchmark harness: running
// mean/variance, exact percentiles over a retained sample vector, and
// boxplot five-number summaries (paper Fig. 8).
#pragma once

#include <cstddef>
#include <vector>

namespace cgraph {

/// Welford running mean/variance; O(1) memory, numerically stable.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, min_ = 0.0, max_ = 0.0;
};

/// Five-number summary for boxplots plus mean, as in paper Fig. 8.
struct BoxplotSummary {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
  std::size_t count = 0;
};

/// Exact percentile of a sample set (linear interpolation between ranks).
/// `p` in [0, 100]. The input vector is copied and sorted. Degenerate
/// inputs return defined values: 0 for an empty set, the sample itself
/// for a single-element set (never NaN).
double percentile(std::vector<double> samples, double p);

/// In-place variant for repeated percentile queries: sort once, query many.
double percentile_sorted(const std::vector<double>& sorted, double p);

/// Compute a boxplot summary over samples.
BoxplotSummary boxplot(std::vector<double> samples);

/// Fraction of samples <= threshold (empirical CDF point).
double cdf_at(const std::vector<double>& sorted, double threshold);

}  // namespace cgraph
