#include "util/histogram.hpp"

#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace cgraph {

Histogram::Histogram(double lo, double hi, std::size_t nbins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(nbins)),
      counts_(nbins + 1, 0) {
  CGRAPH_CHECK(hi > lo);
  CGRAPH_CHECK(nbins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++counts_[0];
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(bin, counts_.size() - 1)];
}

double Histogram::bin_upper(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::percent(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return 100.0 * static_cast<double>(counts_[i]) /
         static_cast<double>(total_);
}

double Histogram::cumulative_percent(std::size_t i) const {
  if (total_ == 0) return 0.0;
  std::size_t cum = 0;
  for (std::size_t b = 0; b <= i && b < counts_.size(); ++b) cum += counts_[b];
  return 100.0 * static_cast<double>(cum) / static_cast<double>(total_);
}

void Histogram::merge(const Histogram& other) {
  CGRAPH_CHECK_MSG(lo_ == other.lo_ && hi_ == other.hi_ &&
                       counts_.size() == other.counts_.size(),
                   "histogram merge requires identical bin geometry");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return lo_;
  CGRAPH_CHECK(p > 0.0 && p <= 100.0);
  const double rank = p / 100.0 * static_cast<double>(total_);
  std::size_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t prev = cum;
    cum += counts_[i];
    if (static_cast<double>(cum) < rank) continue;
    if (i == nbins()) return hi_;  // overflow bin: upper edge unknown
    const double lower = lo_ + width_ * static_cast<double>(i);
    if (counts_[i] == 0) return lower;
    const double frac =
        (rank - static_cast<double>(prev)) / static_cast<double>(counts_[i]);
    return lower + width_ * frac;
  }
  return hi_;
}

std::string Histogram::to_string(const std::string& unit) const {
  std::string out;
  char buf[128];
  for (std::size_t i = 0; i < nbins(); ++i) {
    std::snprintf(buf, sizeof buf, "  <=%8.4f%s  %6.1f%%   cum %6.1f%%\n",
                  bin_upper(i), unit.c_str(), percent(i),
                  cumulative_percent(i));
    out += buf;
  }
  if (counts_.back() > 0) {
    std::snprintf(buf, sizeof buf, "  > %8.4f%s  %6.1f%%   cum  100.0%%\n",
                  hi_, unit.c_str(), percent(nbins()));
    out += buf;
  }
  return out;
}

}  // namespace cgraph
