#include "util/thread_pool.hpp"

#include <cstdlib>

namespace cgraph {

std::size_t resolve_compute_threads(std::size_t threads) {
  if (threads != 0) return threads;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

std::size_t default_compute_threads() {
  static const std::size_t resolved = [] {
    const char* env = std::getenv("CGRAPH_THREADS");
    if (env == nullptr || *env == '\0') return std::size_t{1};
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env) return std::size_t{1};  // unparsable -> serial
    return resolve_compute_threads(static_cast<std::size_t>(v));
  }();
  return resolved;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace cgraph
