// Deterministic, fast random number generation.
//
// Benchmarks and graph generators must be reproducible across runs, so all
// randomness flows through SplitMix64 (seeding) and Xoshiro256** (streams).
// Both are tiny, fast, and of well-studied statistical quality — a good fit
// for graph generation where std::mt19937_64 is needlessly slow.
#pragma once

#include <cstdint>

namespace cgraph {

/// SplitMix64: used to expand a single 64-bit seed into independent state
/// words. Passes BigCrush when used directly as a generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator. One instance per thread/stream;
/// never shared across threads (no internal synchronization by design).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). 53 bits of randomness.
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next()) *
            static_cast<unsigned __int128>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Jump ahead 2^128 steps: produces a non-overlapping stream, used to give
  /// each worker thread an independent generator from one master seed.
  void jump() {
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::uint64_t t[4] = {0, 0, 0, 0};
    for (std::uint64_t jump_word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump_word & (1ULL << b)) {
          t[0] ^= s_[0];
          t[1] ^= s_[1];
          t[2] ^= s_[2];
          t[3] ^= s_[3];
        }
        next();
      }
    }
    s_[0] = t[0];
    s_[1] = t[1];
    s_[2] = t[2];
    s_[3] = t[3];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace cgraph
