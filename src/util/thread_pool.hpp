// Work-sharing thread pool behind the intra-machine compute engine: every
// simulated machine runs its per-level hot loops (edge-set scans, frontier
// commits, GAS gather/apply) through one of these, and the concurrent-query
// front end and Titan-like baseline use it for session parallelism.
//
// Three entry points:
//   submit(fn)                  -> queue one task, get a std::future
//   parallel_for(n, fn)         -> block loop parallelism over [0, n)
//   parallel_ranges(pool, ...)  -> contiguous-range decomposition helper
//                                  that degrades to a serial call when the
//                                  pool is absent
//
// The pool is deliberately simple: a single mutex-protected deque. Edge-set
// grained tasks are large enough (LLC-sized tiles) that queue contention is
// negligible compared to the work per task.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "util/timer.hpp"

namespace cgraph {

/// What one parallel_for / parallel_ranges call actually did. Engines fold
/// these into per-level telemetry (`parallel_tasks`, `steal_wait`).
struct ParallelForStats {
  /// Chunks executed, the calling thread's own chunk included. 0 for an
  /// empty range, 1 means the loop ran serially.
  std::size_t tasks = 0;
  /// Host seconds the calling thread spent blocked waiting for pool
  /// workers to finish their chunks after completing its own share — the
  /// join-side analogue of steal wait in a work-stealing runtime.
  double join_wait_seconds = 0;
};

/// Resolve a thread-count knob to an actual thread count: 0 selects
/// std::thread::hardware_concurrency() (min 1), anything else is taken
/// as-is.
std::size_t resolve_compute_threads(std::size_t threads);

/// Process-wide default for intra-machine compute threads, read once from
/// $CGRAPH_THREADS: unset or unparsable means 1 (serial engines, the
/// pre-threading behaviour); "0" means one thread per hardware core; any
/// other integer is used directly. Cluster and msbfs_batch pick this up so
/// test suites and CI can thread every engine without code changes.
std::size_t default_compute_threads();

class ThreadPool {
 public:
  /// \param threads Worker-thread count; 0 selects hardware_concurrency
  ///                (min 1). parallel_for additionally uses the calling
  ///                thread, so a pool built with N workers gives (N+1)-way
  ///                loop parallelism.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (the calling thread is not counted).
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Queue a task; the returned future yields its result (or rethrows the
  /// exception the task exited with).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n), distributing contiguous chunks over the
  /// pool. Blocks until all iterations complete; the calling thread works
  /// on the first chunk, so a pool of size 1 still gets 2-way progress.
  ///
  /// Exception safety: every chunk is always joined before this returns,
  /// even when a body throws — the first exception (the calling thread's
  /// own chunk wins ties) is rethrown only after all workers have
  /// finished, so no worker is left running a body whose captures have
  /// gone out of scope.
  ///
  /// \param min_chunk Lower bound on iterations per chunk, for bodies too
  ///                  cheap to amortize a queue hop.
  /// \return Chunk count and join-side wait time for telemetry.
  template <typename Fn>
  ParallelForStats parallel_for(std::size_t n, Fn&& fn,
                                std::size_t min_chunk = 1) {
    ParallelForStats stats;
    if (n == 0) return stats;
    const std::size_t nthreads = workers_.size() + 1;
    std::size_t chunk = (n + nthreads - 1) / nthreads;
    if (chunk < min_chunk) chunk = min_chunk;

    std::vector<std::future<void>> futs;
    std::size_t begin = std::min(chunk, n);  // the caller takes [0, chunk)
    while (begin < n) {
      const std::size_t end = std::min(begin + chunk, n);
      futs.push_back(submit([&fn, begin, end] {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }));
      begin = end;
    }
    stats.tasks = futs.size() + 1;

    std::exception_ptr first_error;
    try {
      const std::size_t my_end = std::min(chunk, n);
      for (std::size_t i = 0; i < my_end; ++i) fn(i);
    } catch (...) {
      first_error = std::current_exception();
    }
    WallTimer wait;
    for (auto& f : futs) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    stats.join_wait_seconds = wait.seconds();
    if (first_error) std::rethrow_exception(first_error);
    return stats;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Split [0, n) into contiguous ranges (about `ranges_per_thread` per
/// participating thread, for load balance when per-index work is skewed)
/// and run body(begin, end) for each over the pool. With a null pool —
/// the serial configuration — body(0, n) runs inline on the caller, so
/// engine code has exactly one code path for threads == 1 and threads > 1.
template <typename Body>
ParallelForStats parallel_ranges(ThreadPool* pool, std::size_t n,
                                 Body&& body,
                                 std::size_t ranges_per_thread = 4) {
  ParallelForStats stats;
  if (n == 0) return stats;
  if (pool == nullptr || pool->size() == 0) {
    body(std::size_t{0}, n);
    stats.tasks = 1;
    return stats;
  }
  const std::size_t parts_wanted =
      (pool->size() + 1) * (ranges_per_thread > 0 ? ranges_per_thread : 1);
  const std::size_t chunk = (n + parts_wanted - 1) / parts_wanted;
  const std::size_t parts = (n + chunk - 1) / chunk;
  return pool->parallel_for(parts, [&body, chunk, n](std::size_t p) {
    const std::size_t begin = p * chunk;
    body(begin, std::min(begin + chunk, n));
  });
}

}  // namespace cgraph
