// Work-sharing thread pool used by the intra-partition compute engine
// (parallel edge-set scans) and by the concurrent-query front end.
//
// Two entry points:
//   submit(fn)            -> queue one task, get a std::future
//   parallel_for(n, fn)   -> block-cyclic loop parallelism over [0, n)
//
// The pool is deliberately simple: a single mutex-protected deque. Edge-set
// grained tasks are large enough (LLC-sized tiles) that queue contention is
// negligible compared to the work per task.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cgraph {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Queue a task; the returned future yields its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n), distributing contiguous chunks over the
  /// pool. Blocks until all iterations complete. The calling thread also
  /// works, so a pool of size 1 still gets 2-way progress.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn, std::size_t min_chunk = 1) {
    if (n == 0) return;
    const std::size_t nthreads = workers_.size() + 1;
    std::size_t chunk = (n + nthreads - 1) / nthreads;
    if (chunk < min_chunk) chunk = min_chunk;

    std::vector<std::future<void>> futs;
    std::size_t begin = chunk;  // the caller takes [0, chunk)
    while (begin < n) {
      const std::size_t end = std::min(begin + chunk, n);
      futs.push_back(submit([&fn, begin, end] {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }));
      begin = end;
    }
    const std::size_t my_end = std::min(chunk, n);
    for (std::size_t i = 0; i < my_end; ++i) fn(i);
    for (auto& f : futs) f.get();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace cgraph
