#include "util/options.hpp"

#include <cstdlib>
#include <cstring>

namespace cgraph {

Options::Options(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        kv_[arg] = argv[++i];
      } else {
        kv_[arg] = "true";
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Options::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Options::get(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace cgraph
