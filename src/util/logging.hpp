// Leveled logging to stderr. Benchmarks default to WARN so figure output on
// stdout stays clean; set CGRAPH_LOG=debug|info|warn|error to override.
//
// Thread-safe: each line is formatted into a local buffer (timestamp +
// machine-id prefix) and emitted with a single write(2), so concurrent
// Cluster::run worker threads never interleave mid-line.
#pragma once

#include <cstdarg>

namespace cgraph {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; initialized from $CGRAPH_LOG on first use.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Tag this thread's log lines with a simulated-machine id (Cluster::run
/// sets it for each worker; -1 clears the tag).
void set_thread_machine(int machine_id);

/// printf-style logging; drops messages below the configured level.
void log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace cgraph

#define CGRAPH_LOG_DEBUG(...) ::cgraph::log(::cgraph::LogLevel::kDebug, __VA_ARGS__)
#define CGRAPH_LOG_INFO(...) ::cgraph::log(::cgraph::LogLevel::kInfo, __VA_ARGS__)
#define CGRAPH_LOG_WARN(...) ::cgraph::log(::cgraph::LogLevel::kWarn, __VA_ARGS__)
#define CGRAPH_LOG_ERROR(...) ::cgraph::log(::cgraph::LogLevel::kError, __VA_ARGS__)
