// Bit-level primitives behind the MS-BFS style concurrent traversal engine
// (paper §3.5): word-packed per-query frontier/visited bitmaps and the
// iteration helpers used to walk set bits cheaply.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace cgraph {

using Word = std::uint64_t;
inline constexpr std::size_t kWordBits = 64;

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t words_for_bits(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}

/// Invoke `fn(index)` for every set bit in `word`, where indices are
/// relative to `base`. Compiles down to a tight ctz loop.
template <typename Fn>
inline void for_each_set_bit(Word word, std::size_t base, Fn&& fn) {
  while (word != 0) {
    const int bit = std::countr_zero(word);
    fn(base + static_cast<std::size_t>(bit));
    word &= word - 1;  // clear lowest set bit
  }
}

/// Population count over a word row: one hardware popcount per 64 bits,
/// never a per-bit loop. This is the primitive behind the frontier-density
/// (scout-count) accessors the direction-optimizing heuristic reads every
/// level, so its cost must stay O(words).
[[nodiscard]] inline std::uint64_t popcount_words(const Word* words,
                                                  std::size_t count) {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < count; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(words[w]));
  }
  return total;
}

/// Fixed-size bitmap over a contiguous word array. Single-writer unless the
/// atomic_* methods are used. This is the storage behind per-query frontier
/// and visited state in the bit-parallel engine.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t nbits)
      : nbits_(nbits), words_(words_for_bits(nbits), 0) {}

  void resize(std::size_t nbits) {
    nbits_ = nbits;
    words_.assign(words_for_bits(nbits), 0);
  }

  [[nodiscard]] std::size_t size_bits() const { return nbits_; }
  [[nodiscard]] std::size_t size_words() const { return words_.size(); }
  [[nodiscard]] bool empty_storage() const { return words_.empty(); }

  void set(std::size_t i) {
    CGRAPH_DCHECK(i < nbits_);
    words_[i / kWordBits] |= Word{1} << (i % kWordBits);
  }

  void clear_bit(std::size_t i) {
    CGRAPH_DCHECK(i < nbits_);
    words_[i / kWordBits] &= ~(Word{1} << (i % kWordBits));
  }

  [[nodiscard]] bool test(std::size_t i) const {
    CGRAPH_DCHECK(i < nbits_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  /// Atomically set bit i; returns true if this call flipped it 0->1.
  /// Used when multiple edge-set workers discover the same vertex.
  bool atomic_test_and_set(std::size_t i) {
    CGRAPH_DCHECK(i < nbits_);
    auto* w = reinterpret_cast<std::atomic<Word>*>(&words_[i / kWordBits]);
    const Word mask = Word{1} << (i % kWordBits);
    const Word old = w->fetch_or(mask, std::memory_order_acq_rel);
    return (old & mask) == 0;
  }

  void clear_all() { std::fill(words_.begin(), words_.end(), Word{0}); }

  [[nodiscard]] bool any() const {
    for (Word w : words_)
      if (w != 0) return true;
    return false;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (Word w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  [[nodiscard]] Word word(std::size_t wi) const { return words_[wi]; }
  Word& word(std::size_t wi) { return words_[wi]; }
  [[nodiscard]] const Word* data() const { return words_.data(); }
  Word* data() { return words_.data(); }

  /// a |= b. Sizes must match.
  void or_with(const Bitmap& other) {
    CGRAPH_DCHECK(other.words_.size() == words_.size());
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// a &= ~b (remove bits present in `other`). Sizes must match.
  void and_not(const Bitmap& other) {
    CGRAPH_DCHECK(other.words_.size() == words_.size());
    for (std::size_t i = 0; i < words_.size(); ++i)
      words_[i] &= ~other.words_[i];
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      for_each_set_bit(words_[wi], wi * kWordBits, fn);
    }
  }

  void swap(Bitmap& other) noexcept {
    words_.swap(other.words_);
    std::swap(nbits_, other.nbits_);
  }

 private:
  std::size_t nbits_ = 0;
  std::vector<Word> words_;
};

/// Per-vertex query-batch bit rows, the core MS-BFS layout (paper Fig. 6):
/// row r holds one bit per query in the batch, so a full row fits in one or
/// two machine words and a whole batch of queries is advanced with a handful
/// of bitwise ops per vertex. Batch width is fixed at construction and
/// bounded by kMaxBatchWords*64 queries.
class QueryBitRows {
 public:
  static constexpr std::size_t kMaxBatchWords = 8;  // up to 512 queries/batch

  QueryBitRows() = default;

  /// nrows = number of vertices; nqueries = concurrent queries in the batch.
  QueryBitRows(std::size_t nrows, std::size_t nqueries)
      : nrows_(nrows),
        nqueries_(nqueries),
        words_per_row_(words_for_bits(nqueries)) {
    CGRAPH_CHECK_MSG(words_per_row_ <= kMaxBatchWords,
                     "query batch exceeds QueryBitRows capacity");
    bits_.assign(nrows_ * words_per_row_, 0);
  }

  [[nodiscard]] std::size_t rows() const { return nrows_; }
  [[nodiscard]] std::size_t queries() const { return nqueries_; }
  [[nodiscard]] std::size_t words_per_row() const { return words_per_row_; }

  [[nodiscard]] const Word* row(std::size_t r) const {
    CGRAPH_DCHECK(r < nrows_);
    return bits_.data() + r * words_per_row_;
  }
  Word* row(std::size_t r) {
    CGRAPH_DCHECK(r < nrows_);
    return bits_.data() + r * words_per_row_;
  }

  void set(std::size_t r, std::size_t q) {
    CGRAPH_DCHECK(q < nqueries_);
    row(r)[q / kWordBits] |= Word{1} << (q % kWordBits);
  }

  [[nodiscard]] bool test(std::size_t r, std::size_t q) const {
    CGRAPH_DCHECK(q < nqueries_);
    return (row(r)[q / kWordBits] >> (q % kWordBits)) & 1u;
  }

  /// True if any query bit is set in row r.
  [[nodiscard]] bool row_any(std::size_t r) const {
    const Word* p = row(r);
    for (std::size_t w = 0; w < words_per_row_; ++w)
      if (p[w] != 0) return true;
    return false;
  }

  void clear_row(std::size_t r) {
    Word* p = row(r);
    for (std::size_t w = 0; w < words_per_row_; ++w) p[w] = 0;
  }

  void clear_all() { std::fill(bits_.begin(), bits_.end(), Word{0}); }

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (Word w : bits_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  void swap(QueryBitRows& other) noexcept {
    bits_.swap(other.bits_);
    std::swap(nrows_, other.nrows_);
    std::swap(nqueries_, other.nqueries_);
    std::swap(words_per_row_, other.words_per_row_);
  }

  /// Raw word-array access for checkpoint serialization: the whole plane
  /// as one contiguous span of rows * words_per_row words.
  [[nodiscard]] const Word* data() const { return bits_.data(); }
  Word* data() { return bits_.data(); }
  [[nodiscard]] std::size_t size_words() const { return bits_.size(); }

  /// Bytes the plane actually reserves (capacity, not size — the honest
  /// number for long-running footprint accounting).
  [[nodiscard]] std::size_t capacity_bytes() const {
    return bits_.capacity() * sizeof(Word);
  }

  /// Free the plane's storage entirely (0 rows afterwards).
  void release() {
    std::vector<Word>().swap(bits_);
    nrows_ = 0;
    nqueries_ = 0;
    words_per_row_ = 0;
  }

 private:
  std::size_t nrows_ = 0;
  std::size_t nqueries_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<Word> bits_;
};

}  // namespace cgraph
