#include "util/logging.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace cgraph {
namespace {

std::atomic<int> g_level{-1};  // -1 = not yet initialized
thread_local int g_machine = -1;

LogLevel init_from_env() {
  const char* env = std::getenv("CGRAPH_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarn;
}

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(init_from_env());
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_thread_machine(int machine_id) { g_machine = machine_id; }

void log(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;

  // Format the entire line locally and emit it with one write(2): worker
  // threads logging concurrently produce whole, ordered-enough lines
  // instead of interleaved fragments.
  char buf[1024];
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  int n;
  if (g_machine >= 0) {
    n = std::snprintf(buf, sizeof buf, "[cgraph %02d:%02d:%02d.%03ld m%d %s] ",
                      tm.tm_hour, tm.tm_min, tm.tm_sec, ts.tv_nsec / 1000000,
                      g_machine, level_name(level));
  } else {
    n = std::snprintf(buf, sizeof buf, "[cgraph %02d:%02d:%02d.%03ld %s] ",
                      tm.tm_hour, tm.tm_min, tm.tm_sec, ts.tv_nsec / 1000000,
                      level_name(level));
  }
  if (n < 0) return;
  auto len = static_cast<std::size_t>(n);

  va_list args;
  va_start(args, fmt);
  const int m = std::vsnprintf(buf + len, sizeof buf - len - 1, fmt, args);
  va_end(args);
  if (m > 0) {
    // vsnprintf returns the would-be length; on truncation it wrote only
    // capacity - 1 chars (the last byte is its NUL). Advance by what was
    // written so the '\n' lands after the text, never past the NUL.
    len += std::min(static_cast<std::size_t>(m), sizeof buf - len - 2);
  }
  buf[len++] = '\n';

  // One write per line; partial writes are not retried (stderr is either a
  // terminal or a pipe, where lines this short land atomically).
  [[maybe_unused]] const ssize_t written = ::write(2, buf, len);
}

}  // namespace cgraph
