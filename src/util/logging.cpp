#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace cgraph {
namespace {

std::atomic<int> g_level{-1};  // -1 = not yet initialized
std::mutex g_io_mu;

LogLevel init_from_env() {
  const char* env = std::getenv("CGRAPH_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarn;
}

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(init_from_env());
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lk(g_io_mu);
  std::fprintf(stderr, "[cgraph %s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace cgraph
