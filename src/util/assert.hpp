// Lightweight runtime checking macros used across C-Graph.
//
// CGRAPH_CHECK   - always-on invariant check; aborts with a message.
// CGRAPH_DCHECK  - debug-only check (compiled out in NDEBUG builds).
// CGRAPH_UNREACHABLE - marks code paths that must never execute.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cgraph {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "CGRAPH_CHECK failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace cgraph

#define CGRAPH_CHECK(expr)                                        \
  do {                                                            \
    if (!(expr)) [[unlikely]]                                     \
      ::cgraph::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define CGRAPH_CHECK_MSG(expr, msg)                           \
  do {                                                        \
    if (!(expr)) [[unlikely]]                                 \
      ::cgraph::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define CGRAPH_DCHECK(expr) ((void)0)
#else
#define CGRAPH_DCHECK(expr) CGRAPH_CHECK(expr)
#endif

#define CGRAPH_UNREACHABLE() \
  ::cgraph::check_failed("unreachable", __FILE__, __LINE__, nullptr)
