// Fixed-bin histogram used by the figure harnesses (paper Figs. 9, 11, 12
// plot response-time histograms / CDFs with 0.2 s bins).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cgraph {

class Histogram {
 public:
  /// Bins cover [lo, hi) in `nbins` equal-width bins; values below lo land
  /// in bin 0, values >= hi land in the overflow bin (index nbins).
  Histogram(double lo, double hi, std::size_t nbins);

  void add(double x);

  [[nodiscard]] std::size_t nbins() const { return counts_.size() - 1; }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Count in bin i (i == nbins() is the overflow bin).
  [[nodiscard]] std::size_t count(std::size_t i) const { return counts_[i]; }
  /// Inclusive upper edge of bin i.
  [[nodiscard]] double bin_upper(std::size_t i) const;
  /// Percentage of samples in bin i.
  [[nodiscard]] double percent(std::size_t i) const;
  /// Cumulative percentage of samples in bins [0, i].
  [[nodiscard]] double cumulative_percent(std::size_t i) const;

  /// Render rows "<=X.Xs  NN%  cum MM%" suitable for figure output.
  [[nodiscard]] std::string to_string(const std::string& unit = "s") const;

  /// Fold another histogram with identical bin geometry into this one
  /// (used to combine per-shard / per-batch histograms before reporting).
  void merge(const Histogram& other);

  /// Value at percentile p in (0, 100], reconstructed from the bins by
  /// linear interpolation inside the containing bin. Values in the
  /// overflow bin report hi; an empty histogram reports lo.
  [[nodiscard]] double percentile(double p) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;  // nbins + 1 (overflow)
  std::size_t total_ = 0;
};

}  // namespace cgraph
