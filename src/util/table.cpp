#include "util/table.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace cgraph {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CGRAPH_CHECK(!headers_.empty());
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  CGRAPH_CHECK_MSG(cells.size() == headers_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string sep = "+";
  for (std::size_t w : widths) {
    sep.append(w + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string AsciiTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string AsciiTable::humanize(unsigned long long v) {
  char buf[32];
  if (v >= 1000000000ULL) {
    std::snprintf(buf, sizeof buf, "%.2fB", static_cast<double>(v) / 1e9);
  } else if (v >= 1000000ULL) {
    std::snprintf(buf, sizeof buf, "%.2fM", static_cast<double>(v) / 1e6);
  } else if (v >= 1000ULL) {
    std::snprintf(buf, sizeof buf, "%.2fK", static_cast<double>(v) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu", v);
  }
  return buf;
}

}  // namespace cgraph
