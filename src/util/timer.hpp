// Wall-clock timers and a scoped timing helper.
//
// All benchmark harnesses report times gathered through WallTimer so the
// clock source is uniform (steady_clock; immune to NTP adjustments).
#pragma once

#include <chrono>
#include <cstdint>

namespace cgraph {

/// Monotonic wall-clock timer with microsecond resolution.
class WallTimer {
 public:
  using Clock = std::chrono::steady_clock;

  WallTimer() : start_(Clock::now()) {}

  /// Restart the timer; subsequent readings are relative to now.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Elapsed time in microseconds.
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

  /// Elapsed integral nanoseconds (for accumulation without fp error).
  [[nodiscard]] std::int64_t nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple start/stop intervals.
/// Useful for separating compute time from communication time inside a
/// superstep loop without allocating a timer per phase.
class StopWatch {
 public:
  void start() { t_.reset(); running_ = true; }

  /// Stops the watch and folds the interval into the running total.
  void stop() {
    if (running_) {
      total_ns_ += t_.nanos();
      running_ = false;
    }
  }

  /// Total accumulated seconds across all intervals.
  [[nodiscard]] double seconds() const {
    return static_cast<double>(total_ns_) * 1e-9;
  }

  [[nodiscard]] std::int64_t nanos() const { return total_ns_; }

  void reset() {
    total_ns_ = 0;
    running_ = false;
  }

 private:
  WallTimer t_;
  std::int64_t total_ns_ = 0;
  bool running_ = false;
};

}  // namespace cgraph
