#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace cgraph {

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile_sorted(const std::vector<double>& sorted, double p) {
  CGRAPH_CHECK(p >= 0.0 && p <= 100.0);
  // Degenerate series get defined values instead of a crash or NaN: an
  // empty series reports 0, a single sample reports that sample.
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, p);
}

BoxplotSummary boxplot(std::vector<double> samples) {
  BoxplotSummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.q1 = percentile_sorted(samples, 25.0);
  s.median = percentile_sorted(samples, 50.0);
  s.q3 = percentile_sorted(samples, 75.0);
  double sum = 0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  return s;
}

double cdf_at(const std::vector<double>& sorted, double threshold) {
  if (sorted.empty()) return 0.0;
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), threshold);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

}  // namespace cgraph
