// Minimal ASCII table renderer for the benchmark harnesses, so every
// reproduced table/figure prints in a consistent aligned format.
#pragma once

#include <string>
#include <vector>

namespace cgraph {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// All rows must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// printf-style numeric formatting helpers for cells.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_int(long long v);
  /// 1234567 -> "1.23M" style humanized count.
  static std::string humanize(unsigned long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cgraph
