// Small test-and-test-and-set spinlock for very short critical sections
// (message outbox appends). Satisfies Lockable so it composes with
// std::lock_guard / std::scoped_lock.
#pragma once

#include <atomic>

namespace cgraph {

class SpinLock {
 public:
  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Spin on a relaxed load to avoid cache-line ping-pong while held.
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() noexcept {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace cgraph
