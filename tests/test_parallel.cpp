// Differential tests for intra-machine parallelism: every engine must
// produce bit-identical results for any compute-thread count (see
// DESIGN.md "Threading model" — all cross-thread writes are bitwise ORs
// or single-owner slots, and float folds keep their serial order), with
// and without an active fault plan, and the scheduler's threads option
// must surface pool activity in the run telemetry.
#include <gtest/gtest.h>

#include <memory>

#include "cgraph/cgraph.hpp"
#include "net/fault.hpp"
#include "query/khop_program.hpp"
#include "util/rng.hpp"

namespace cgraph {
namespace {

Graph make_graph(std::uint64_t seed, VertexId n = 400, EdgeIndex m = 2400) {
  return Graph::build(generate_uniform(n, m, seed));
}

std::vector<KHopQuery> make_queries(const Graph& g, std::size_t count,
                                    std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < count; ++i) {
    queries.push_back(
        {i, static_cast<VertexId>(rng.next_bounded(g.num_vertices())),
         static_cast<Depth>(1 + rng.next_bounded(5))});
  }
  return queries;
}

TEST(ParallelMsBfsBatch, BitExactAcrossThreadCounts) {
  const Graph g = make_graph(11);
  const auto queries = make_queries(g, 70, 12);
  const auto serial = msbfs_batch(g, queries, /*threads=*/1);
  for (const std::size_t threads : {2u, 4u, 7u}) {
    const auto parallel = msbfs_batch(g, queries, threads);
    EXPECT_EQ(parallel.visited, serial.visited) << threads << " threads";
    EXPECT_EQ(parallel.levels, serial.levels) << threads << " threads";
    EXPECT_EQ(parallel.total_levels, serial.total_levels);
    EXPECT_EQ(parallel.edges_scanned, serial.edges_scanned);
  }
}

TEST(ParallelMsBfsBatch, ReportsPoolTasksInLevelTrace) {
  const Graph g = make_graph(13);
  const auto queries = make_queries(g, 40, 14);
  const auto r = msbfs_batch(g, queries, /*threads=*/4);
  ASSERT_FALSE(r.level_trace.empty());
  for (const auto& lt : r.level_trace) {
    // Scan phase + commit phase, each at least one chunk.
    EXPECT_GE(lt.parallel_tasks, 2u);
    EXPECT_GE(lt.steal_wait_seconds, 0.0);
  }
}

TEST(ParallelDistributedMsBfs, BitExactAcrossThreadCounts) {
  const Graph g = make_graph(21);
  const auto part = RangePartition::balanced_by_edges(g, 3);
  const auto shards = build_shards(g, part);
  const auto queries = make_queries(g, 30, 22);

  Cluster cluster(3);
  cluster.set_compute_threads(1);
  const auto serial = run_distributed_msbfs(cluster, shards, part, queries);

  cluster.set_compute_threads(4);
  const auto parallel = run_distributed_msbfs(cluster, shards, part, queries);

  EXPECT_EQ(parallel.visited, serial.visited);
  EXPECT_EQ(parallel.levels, serial.levels);
  EXPECT_EQ(parallel.total_levels, serial.total_levels);
  EXPECT_EQ(parallel.edges_scanned, serial.edges_scanned);
  ASSERT_FALSE(parallel.level_trace.empty());
  for (std::size_t l = 0; l < parallel.level_trace.size(); ++l) {
    EXPECT_EQ(parallel.level_trace[l].frontier_vertices,
              serial.level_trace[l].frontier_vertices);
    EXPECT_EQ(parallel.level_trace[l].edges_scanned,
              serial.level_trace[l].edges_scanned);
    // Threaded levels record at least as many pool chunks as serial ones
    // (serial = exactly one chunk per phase per machine).
    EXPECT_GE(parallel.level_trace[l].parallel_tasks,
              serial.level_trace[l].parallel_tasks);
    EXPECT_GT(parallel.level_trace[l].parallel_tasks, 0u);
  }
}

TEST(ParallelDistributedKhop, BitExactAcrossThreadCounts) {
  const Graph g = make_graph(31);
  const auto part = RangePartition::balanced_by_edges(g, 4);
  const auto shards = build_shards(g, part);
  const auto queries = make_queries(g, 25, 32);

  Cluster cluster(4);
  cluster.set_compute_threads(1);
  const auto serial = run_distributed_khop(cluster, shards, part, queries);

  cluster.set_compute_threads(4);
  const auto parallel = run_distributed_khop(cluster, shards, part, queries);

  EXPECT_EQ(parallel.visited, serial.visited);
  EXPECT_EQ(parallel.levels, serial.levels);
  EXPECT_EQ(parallel.total_levels, serial.total_levels);
  EXPECT_EQ(parallel.edges_scanned, serial.edges_scanned);
}

TEST(ParallelPageRank, ValuesBitIdenticalAcrossThreadCounts) {
  const Graph g = make_graph(41);
  const auto part = RangePartition::balanced_by_edges(g, 3);
  const auto shards = build_shards(g, part);

  Cluster cluster(3);
  cluster.set_compute_threads(1);
  const auto serial = run_pagerank(cluster, shards, part, 15);
  EXPECT_GT(serial.stats.parallel_tasks, 0u);

  cluster.set_compute_threads(4);
  const auto parallel = run_pagerank(cluster, shards, part, 15);

  // Each vertex's gather fold runs wholly on one thread in edge order, so
  // agreement is bitwise, far tighter than the 1e-9 contract.
  ASSERT_EQ(parallel.values.size(), serial.values.size());
  for (std::size_t v = 0; v < serial.values.size(); ++v) {
    EXPECT_EQ(parallel.values[v], serial.values[v]) << "vertex " << v;
    EXPECT_NEAR(parallel.values[v], serial.values[v], 1e-9);
  }
  EXPECT_GE(parallel.stats.parallel_tasks, serial.stats.parallel_tasks);
}

// Same probabilistic fault mix as the chaos suite: reliability protocols
// and intra-machine parallelism must compose without changing answers.
TEST(ParallelUnderFaults, EnginesMatchSerialReference) {
  const std::uint64_t seed = 7;
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  FaultPlan plan_proto(seed);
  LinkFaultSpec mix;
  mix.drop = 0.05 + 0.15 * rng.next_double();
  mix.duplicate = 0.10 * rng.next_double();
  mix.reorder = 0.10 * rng.next_double();
  mix.delay = 0.05 * rng.next_double();
  mix.delay_polls = 1 + static_cast<std::uint32_t>(rng.next_bounded(3));
  plan_proto.set_default_link(mix);
  const auto plan = std::make_shared<FaultPlan>(plan_proto);

  const Graph g = make_graph(51, 220, 1100);
  const auto part = RangePartition::balanced_by_edges(g, 3);
  const auto shards = build_shards(g, part);
  const auto queries = make_queries(g, 12, 52);
  std::vector<std::uint64_t> expected;
  for (const auto& q : queries) {
    expected.push_back(khop_reach_count(g, q.source, q.k));
  }

  Cluster cluster(3);
  cluster.set_compute_threads(4);
  cluster.fabric().install_fault_plan(plan);
  SCOPED_TRACE(plan->describe());

  const auto bits = run_distributed_msbfs(cluster, shards, part, queries);
  EXPECT_EQ(bits.visited, expected) << "threaded msbfs under faults";

  const auto queue = run_distributed_khop(cluster, shards, part, queries);
  EXPECT_EQ(queue.visited, expected) << "threaded sync khop under faults";

  EXPECT_EQ(cluster.fabric().total_delivery_failed(), 0u);
}

TEST(ParallelScheduler, ThreadsOptionDrivesPoolsAndTelemetry) {
  const Graph g = make_graph(61);
  const auto part = RangePartition::balanced_by_edges(g, 3);
  const auto shards = build_shards(g, part);
  const auto queries = make_queries(g, 40, 62);

  Cluster cluster(3);
  obs::MetricsRegistry registry;

  SchedulerOptions serial_opts;
  serial_opts.threads = 1;
  serial_opts.metrics = &registry;
  const auto serial =
      run_concurrent_queries(cluster, shards, part, queries, serial_opts);
  EXPECT_EQ(cluster.compute_threads(), 1u);

  SchedulerOptions par_opts;
  par_opts.threads = 4;
  par_opts.metrics = &registry;
  const auto parallel =
      run_concurrent_queries(cluster, shards, part, queries, par_opts);
  EXPECT_EQ(cluster.compute_threads(), 4u);

  ASSERT_EQ(parallel.queries.size(), serial.queries.size());
  for (std::size_t i = 0; i < serial.queries.size(); ++i) {
    EXPECT_EQ(parallel.queries[i].visited, serial.queries[i].visited);
  }

  // The run telemetry carries per-level pool counters into the registry
  // (cgraph_superstep_parallel_tasks_total).
  std::uint64_t tasks = 0;
  for (const auto& bt : parallel.telemetry.batches) {
    for (const auto& lt : bt.levels) tasks += lt.parallel_tasks;
  }
  EXPECT_GT(tasks, 0u);
  const std::string page = registry.to_prometheus();
  EXPECT_NE(page.find("cgraph_superstep_parallel_tasks_total"),
            std::string::npos);
  EXPECT_NE(page.find("cgraph_superstep_steal_wait_seconds_total"),
            std::string::npos);
}

}  // namespace
}  // namespace cgraph
