// Unit tests for util: RNG determinism/streams, stats, histogram, table,
// options parsing, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/histogram.hpp"
#include "util/logging.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cgraph {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_bounded(17), 17u);
  }
}

TEST(Rng, BoundedZeroReturnsZero) {
  Xoshiro256 rng(7);
  EXPECT_EQ(rng.next_bounded(0), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 10;
  int counts[kBuckets] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_bounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, JumpProducesDisjointStream) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a.next());
  int overlap = 0;
  for (int i = 0; i < 1000; ++i) {
    if (first.count(b.next())) ++overlap;
  }
  EXPECT_EQ(overlap, 0);
}

TEST(SplitMix, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Percentile, ExactValues) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 90), 9.0);
}

TEST(Percentile, SingleSample) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100), 7.0);
}

TEST(Boxplot, FiveNumberSummary) {
  const BoxplotSummary b = boxplot({1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_DOUBLE_EQ(b.min, 1);
  EXPECT_DOUBLE_EQ(b.median, 5);
  EXPECT_DOUBLE_EQ(b.max, 9);
  EXPECT_DOUBLE_EQ(b.mean, 5);
  EXPECT_EQ(b.count, 9u);
}

TEST(Boxplot, EmptyInputIsZeroed) {
  const BoxplotSummary b = boxplot({});
  EXPECT_EQ(b.count, 0u);
  EXPECT_DOUBLE_EQ(b.mean, 0);
}

TEST(CdfAt, Fractions) {
  std::vector<double> sorted{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(cdf_at(sorted, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(sorted, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(sorted, 10.0), 1.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 2.0, 10);
  h.add(0.05);   // bin 0
  h.add(0.25);   // bin 1
  h.add(1.99);   // bin 9
  h.add(5.0);    // overflow
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(10), 1u);
  EXPECT_DOUBLE_EQ(h.percent(0), 25.0);
  EXPECT_DOUBLE_EQ(h.cumulative_percent(9), 75.0);
}

TEST(Histogram, NegativeValuesClampToFirstBin) {
  Histogram h(0.0, 1.0, 4);
  h.add(-3.0);
  EXPECT_EQ(h.count(0), 1u);
}

TEST(Histogram, MergeSumsIdenticalGeometry) {
  Histogram a(0.0, 2.0, 10);
  Histogram b(0.0, 2.0, 10);
  a.add(0.05);
  a.add(5.0);  // overflow
  b.add(0.05);
  b.add(1.99);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(9), 1u);
  EXPECT_EQ(a.count(10), 1u);
  EXPECT_EQ(b.total(), 2u);  // source untouched
}

TEST(Histogram, PercentileInterpolatesWithinBin) {
  Histogram h(0.0, 10.0, 10);
  // 100 samples uniform over [0, 10): percentile ~= value.
  for (int i = 0; i < 100; ++i) h.add(i * 0.1);
  EXPECT_NEAR(h.percentile(50), 5.0, 0.2);
  EXPECT_NEAR(h.percentile(90), 9.0, 0.2);
  EXPECT_NEAR(h.percentile(100), 10.0, 0.2);

  Histogram empty(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);  // lo for empty

  Histogram over(0.0, 1.0, 4);
  over.add(9.0);
  EXPECT_DOUBLE_EQ(over.percentile(50), 1.0);  // overflow reports hi
}

TEST(Histogram, PercentileMonotone) {
  Histogram h(0.0, 4.0, 8);
  h.add(0.3);
  h.add(1.1);
  h.add(1.2);
  h.add(3.7);
  double prev = 0.0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 100.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(AsciiTable, RendersAlignedRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22222 |"), std::string::npos);
}

TEST(AsciiTable, Humanize) {
  EXPECT_EQ(AsciiTable::humanize(999), "999");
  EXPECT_EQ(AsciiTable::humanize(1500), "1.50K");
  EXPECT_EQ(AsciiTable::humanize(117185083ULL), "117.19M");
  EXPECT_EQ(AsciiTable::humanize(106557960965ULL), "106.56B");
}

TEST(Options, ParsesKeyValueForms) {
  const char* argv[] = {"prog",       "positional", "--alpha=3",
                        "--beta",     "4",          "--gamma=x",
                        "--flag"};
  Options o(7, const_cast<char**>(argv));
  EXPECT_EQ(o.get_int("alpha", 0), 3);
  EXPECT_EQ(o.get_int("beta", 0), 4);
  EXPECT_TRUE(o.get_bool("flag", false));
  EXPECT_EQ(o.get("gamma"), "x");
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "positional");
  EXPECT_EQ(o.get_double("missing", 2.5), 2.5);
}

TEST(Options, BareFlagConsumesNextBareToken) {
  // Documented ambiguity of the --key value form: a bare token after a
  // bare --key is taken as its value.
  const char* argv[] = {"prog", "--flag", "positional"};
  Options o(3, const_cast<char**>(argv));
  EXPECT_EQ(o.get("flag"), "positional");
  EXPECT_TRUE(o.positional().empty());
}

TEST(Logging, LevelGatesOutput) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  CGRAPH_LOG_INFO("should be suppressed %d", 1);
  CGRAPH_LOG_ERROR("should appear %d", 2);
  const std::string err = ::testing::internal::GetCapturedStderr();
  set_log_level(original);
  EXPECT_EQ(err.find("suppressed"), std::string::npos);
  EXPECT_NE(err.find("should appear 2"), std::string::npos);
  EXPECT_NE(err.find("ERROR"), std::string::npos);
}

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForReportsStats) {
  ThreadPool pool(3);
  const ParallelForStats stats =
      pool.parallel_for(1000, [](std::size_t) {});
  // Caller chunk + up to one chunk per worker.
  EXPECT_GE(stats.tasks, 1u);
  EXPECT_LE(stats.tasks, 4u);
  EXPECT_GE(stats.join_wait_seconds, 0.0);
  EXPECT_EQ(pool.parallel_for(0, [](std::size_t) {}).tasks, 0u);
}

TEST(ThreadPool, ParallelForPropagatesWorkerException) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  // Index 900 lands in a worker chunk (caller takes the first chunk).
  EXPECT_THROW(pool.parallel_for(1000,
                                 [&](std::size_t i) {
                                   executed.fetch_add(1);
                                   if (i == 900) {
                                     throw std::runtime_error("worker boom");
                                   }
                                 }),
               std::runtime_error);
  EXPECT_GT(executed.load(), 0);
}

TEST(ThreadPool, ParallelForPropagatesCallerException) {
  ThreadPool pool(3);
  // Index 0 is always in the calling thread's chunk. All worker futures
  // must still be joined before the rethrow (no dangling captures).
  EXPECT_THROW(pool.parallel_for(1000,
                                 [&](std::size_t i) {
                                   if (i == 0) {
                                     throw std::runtime_error("caller boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, PoolUsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  std::atomic<int> hits{0};
  pool.parallel_for(100, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPool, ParallelRangesCoversExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  const ParallelForStats stats = parallel_ranges(
      &pool, 1000, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GE(stats.tasks, 1u);
}

TEST(ThreadPool, ParallelRangesNullPoolRunsSerially) {
  std::vector<int> hits(100, 0);
  const ParallelForStats stats = parallel_ranges(
      nullptr, 100, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
      });
  EXPECT_EQ(stats.tasks, 1u);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ResolveComputeThreads) {
  EXPECT_EQ(resolve_compute_threads(3), 3u);
  EXPECT_GE(resolve_compute_threads(0), 1u);  // 0 = hardware concurrency
}

TEST(Timer, StopwatchAccumulates) {
  StopWatch w;
  w.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  w.stop();
  const double first = w.seconds();
  EXPECT_GT(first, 0.004);
  w.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  w.stop();
  EXPECT_GT(w.seconds(), first);
}

}  // namespace
}  // namespace cgraph
