// Tests for the asynchronous k-hop engine: exact agreement with the BSP
// engines (including the depth-relaxation corner cases), termination, and
// its barrier-free execution profile.
#include <gtest/gtest.h>

#include <tuple>

#include "gen/rmat.hpp"
#include "graph/shard.hpp"
#include "query/async_khop.hpp"
#include "query/bfs.hpp"
#include "query/msbfs.hpp"

namespace cgraph {
namespace {

Graph make_graph(unsigned scale, double ef, std::uint64_t seed) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = ef;
  p.seed = seed;
  return Graph::build(generate_rmat(p), VertexId{1} << scale);
}

class AsyncSweep
    : public ::testing::TestWithParam<std::tuple<PartitionId, Depth>> {};

TEST_P(AsyncSweep, MatchesSerialReference) {
  const auto [machines, k] = GetParam();
  const Graph g = make_graph(9, 5, 73);
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);
  Cluster cluster(machines);

  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 10; ++i) {
    queries.push_back({i, static_cast<VertexId>((i * 71) % g.num_vertices()),
                       k});
  }
  const auto r = run_async_khop(cluster, shards, part, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r.visited[i],
              khop_reach_count(g, queries[i].source, queries[i].k))
        << "machines=" << machines << " k=" << int(k) << " query=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AsyncSweep,
    ::testing::Combine(::testing::Values<PartitionId>(1, 2, 3, 6),
                       ::testing::Values<Depth>(1, 3, 5)));

TEST(AsyncKhop, DepthRelaxationCornerCase) {
  // Diamond with a long and a short path to vertex 3:
  //   0 -> 1 -> 2 -> 3 -> 4   and   0 -> 3
  // With k = 2: 3 is reachable at depth 1 (short path), and 4 at depth 2
  // via 3. An engine that visits 3 first through the long path (depth 3)
  // and never re-expands would miss 4.
  EdgeList el;
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 3);
  el.add(3, 4);
  el.add(0, 3);
  const Graph g = Graph::build(std::move(el), 5);
  const auto part = RangePartition::balanced_by_vertices(5, 2);
  const auto shards = build_shards(g, part);
  Cluster cluster(2);
  const KHopQuery q{0, 0, 2};
  const auto r = run_async_khop(cluster, shards, part, std::span(&q, 1));
  EXPECT_EQ(r.visited[0], khop_reach_count(g, 0, 2));  // {1, 3, 2, 4} = 4
}

TEST(AsyncKhop, AgreesWithBspEngine) {
  const Graph g = make_graph(9, 7, 79);
  const auto part = RangePartition::balanced_by_edges(g, 3);
  const auto shards = build_shards(g, part);
  Cluster cluster(3);
  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 16; ++i) {
    queries.push_back({i, static_cast<VertexId>((i * 131) % g.num_vertices()),
                       static_cast<Depth>(1 + i % 5)});
  }
  const auto async_r = run_async_khop(cluster, shards, part, queries);
  const auto bsp_r = run_distributed_msbfs(cluster, shards, part, queries);
  EXPECT_EQ(async_r.visited, bsp_r.visited);
}

TEST(AsyncKhop, FullBfsReachability) {
  const Graph g = make_graph(8, 8, 83);
  const auto part = RangePartition::balanced_by_edges(g, 2);
  const auto shards = build_shards(g, part);
  Cluster cluster(2);
  const KHopQuery q{0, 5, kUnvisitedDepth};
  const auto r = run_async_khop(cluster, shards, part, std::span(&q, 1));
  const auto depth = bfs_levels(g, 5);
  std::uint64_t expected = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v != 5 && depth[v] != kUnvisitedDepth) ++expected;
  }
  EXPECT_EQ(r.visited[0], expected);
}

TEST(AsyncKhop, TerminatesOnIsolatedSources) {
  EdgeList el;
  el.add(0, 1);
  const Graph g = Graph::build(std::move(el), 8);  // 2..7 isolated
  const auto part = RangePartition::balanced_by_vertices(8, 4);
  const auto shards = build_shards(g, part);
  Cluster cluster(4);
  std::vector<KHopQuery> queries{{0, 7, 3}, {1, 6, 3}};
  const auto r = run_async_khop(cluster, shards, part, queries);
  EXPECT_EQ(r.visited[0], 0u);
  EXPECT_EQ(r.visited[1], 0u);
}

TEST(AsyncKhop, LevelsReflectMaxDepthReached) {
  EdgeList el;
  for (VertexId v = 0; v + 1 < 6; ++v) el.add(v, v + 1);
  const Graph g = Graph::build(std::move(el), 6);
  const auto part = RangePartition::balanced_by_vertices(6, 2);
  const auto shards = build_shards(g, part);
  Cluster cluster(2);
  const KHopQuery q{0, 0, 4};
  const auto r = run_async_khop(cluster, shards, part, std::span(&q, 1));
  EXPECT_EQ(r.visited[0], 4u);
  EXPECT_EQ(r.levels[0], 4u);
}

}  // namespace
}  // namespace cgraph
