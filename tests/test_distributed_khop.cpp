// Correctness tests for the queue-based distributed k-hop engine (paper
// Listing 2) and its equivalence with the bit-parallel engine.
#include <gtest/gtest.h>

#include <tuple>

#include "gen/rmat.hpp"
#include "graph/shard.hpp"
#include "query/bfs.hpp"
#include "query/distributed_khop.hpp"
#include "query/khop_program.hpp"
#include "query/msbfs.hpp"

namespace cgraph {
namespace {

Graph make_test_graph(unsigned scale, double edge_factor,
                      std::uint64_t seed) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  return Graph::build(generate_rmat(p), VertexId{1} << scale);
}

class KhopSweep
    : public ::testing::TestWithParam<std::tuple<PartitionId, Depth>> {};

TEST_P(KhopSweep, MatchesSerialReference) {
  const auto [machines, k] = GetParam();
  const Graph g = make_test_graph(9, 5, 41);
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);
  Cluster cluster(machines);

  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 12; ++i) {
    queries.push_back({i, static_cast<VertexId>((i * 53) % g.num_vertices()),
                       k});
  }
  const MsBfsBatchResult r =
      run_distributed_khop(cluster, shards, part, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r.visited[i],
              khop_reach_count(g, queries[i].source, queries[i].k))
        << "machines=" << machines << " k=" << int(k) << " query=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KhopSweep,
    ::testing::Combine(::testing::Values<PartitionId>(1, 2, 4, 7),
                       ::testing::Values<Depth>(1, 3, 5)));

TEST(KhopVsMsBfs, IdenticalResults) {
  const Graph g = make_test_graph(9, 7, 43);
  const auto part = RangePartition::balanced_by_edges(g, 3);
  const auto shards = build_shards(g, part);
  Cluster cluster(3);
  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 24; ++i) {
    queries.push_back({i, static_cast<VertexId>((i * 101) % g.num_vertices()),
                       static_cast<Depth>(1 + i % 4)});
  }
  const auto queue_r = run_distributed_khop(cluster, shards, part, queries);
  const auto bits_r = run_distributed_msbfs(cluster, shards, part, queries);
  EXPECT_EQ(queue_r.visited, bits_r.visited);
  EXPECT_EQ(queue_r.levels, bits_r.levels);
}

TEST(KhopVsMsBfs, BitParallelScansFewerEdges) {
  // The paper's reason for §3.5: without bit-ops the engine re-scans
  // shared subgraphs once per query.
  const Graph g = make_test_graph(10, 10, 47);
  const auto part = RangePartition::balanced_by_edges(g, 2);
  const auto shards = build_shards(g, part);
  Cluster cluster(2);
  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 64; ++i) {
    queries.push_back({i, static_cast<VertexId>((i * 13) % g.num_vertices()),
                       3});
  }
  const auto queue_r = run_distributed_khop(cluster, shards, part, queries);
  const auto bits_r = run_distributed_msbfs(cluster, shards, part, queries);
  EXPECT_LT(bits_r.edges_scanned, queue_r.edges_scanned / 4);
}

TEST(KhopListingProgram, PartitionCentricApiMatchesReference) {
  // Paper Listing 2 written against the Listing 1 API (KhopProgram) must
  // agree with both the serial reference and the production engine.
  const Graph g = make_test_graph(9, 6, 53);
  const auto part = RangePartition::balanced_by_edges(g, 4);
  const auto shards = build_shards(g, part);
  Cluster cluster(4);
  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 10; ++i) {
    queries.push_back({i, static_cast<VertexId>((i * 61) % g.num_vertices()),
                       static_cast<Depth>(i % 5)});
  }
  const auto via_program = run_khop_program(cluster, shards, part, queries);
  const auto via_engine =
      run_distributed_khop(cluster, shards, part, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(via_program[i],
              khop_reach_count(g, queries[i].source, queries[i].k))
        << "query " << i;
    EXPECT_EQ(via_program[i], via_engine.visited[i]) << "query " << i;
  }
}

TEST(Khop, IsolatedSourceFinishesImmediately) {
  EdgeList el;
  el.add(0, 1);
  const Graph g = Graph::build(std::move(el), 4);  // 2, 3 isolated
  const auto part = RangePartition::balanced_by_vertices(4, 2);
  const auto shards = build_shards(g, part);
  Cluster cluster(2);
  const KHopQuery q{0, 3, 3};
  const auto r = run_distributed_khop(cluster, shards, part,
                                      std::span(&q, 1));
  EXPECT_EQ(r.visited[0], 0u);
  EXPECT_EQ(r.levels[0], 1u);
}

TEST(Khop, CrossPartitionChain) {
  // A chain spanning every partition: forces one remote hop per level.
  EdgeList el;
  for (VertexId v = 0; v + 1 < 9; ++v) el.add(v, v + 1);
  const Graph g = Graph::build(std::move(el), 9);
  const auto part = RangePartition::balanced_by_vertices(9, 3);
  const auto shards = build_shards(g, part);
  Cluster cluster(3);
  const KHopQuery q{0, 0, 8};
  const auto r = run_distributed_khop(cluster, shards, part,
                                      std::span(&q, 1));
  EXPECT_EQ(r.visited[0], 8u);
  EXPECT_EQ(r.levels[0], 8u);
}

}  // namespace
}  // namespace cgraph
