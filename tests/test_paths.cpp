// Tests for path recording: parent-tree validity, shortest-hop property,
// reconstruction, and the result-footprint accounting behind Fig. 12.
#include <gtest/gtest.h>

#include <unordered_set>

#include "gen/rmat.hpp"
#include "graph/shard.hpp"
#include "query/bfs.hpp"
#include "query/paths.hpp"

namespace cgraph {
namespace {

struct Deployment {
  Graph graph;
  RangePartition partition;
  std::vector<SubgraphShard> shards;
  Cluster cluster;
  Deployment(Graph g, PartitionId machines)
      : graph(std::move(g)),
        partition(RangePartition::balanced_by_edges(graph, machines)),
        shards(build_shards(graph, partition)),
        cluster(machines) {}
};

Graph rmat(unsigned scale, double ef, std::uint64_t seed) {
  return Graph::build(generate_rmat({.scale = scale, .edge_factor = ef,
                                     .seed = seed}),
                      VertexId{1} << scale);
}

TEST(Paths, VisitedCountsMatchPlainEngine) {
  Deployment d(rmat(9, 6, 17), 3);
  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 12; ++i) {
    queries.push_back({i, static_cast<VertexId>(i * 29), 3});
  }
  const auto r =
      run_distributed_khop_paths(d.cluster, d.shards, d.partition, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r.base.visited[i],
              khop_reach_count(d.graph, queries[i].source, queries[i].k));
    // One parent entry per visited vertex.
    EXPECT_EQ(r.parents[i].size(), r.base.visited[i]);
  }
}

TEST(Paths, ParentsAreRealEdges) {
  Deployment d(rmat(8, 5, 19), 2);
  const KHopQuery q{0, 1, 3};
  const auto r = run_distributed_khop_paths(d.cluster, d.shards, d.partition,
                                            std::span(&q, 1));
  for (const auto& [v, p] : r.parents[0]) {
    EXPECT_TRUE(d.graph.out_csr().has_edge(p, v))
        << "claimed parent edge " << p << "->" << v << " does not exist";
  }
}

TEST(Paths, EveryVisitedVertexHasExactlyOneParent) {
  Deployment d(rmat(8, 6, 23), 3);
  const KHopQuery q{0, 0, 4};
  const auto r = run_distributed_khop_paths(d.cluster, d.shards, d.partition,
                                            std::span(&q, 1));
  std::unordered_set<VertexId> seen;
  for (const auto& [v, p] : r.parents[0]) {
    EXPECT_TRUE(seen.insert(v).second) << "vertex " << v << " has 2 parents";
    EXPECT_NE(v, q.source);
  }
}

TEST(Paths, ReconstructedPathsAreShortest) {
  Deployment d(rmat(8, 5, 29), 2);
  const KHopQuery q{0, 2, 4};
  const auto r = run_distributed_khop_paths(d.cluster, d.shards, d.partition,
                                            std::span(&q, 1));
  const auto depth = bfs_levels(d.graph, q.source, q.k);
  int checked = 0;
  for (const auto& [v, p] : r.parents[0]) {
    const auto path = reconstruct_path(r.parents[0], q.source, v);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), q.source);
    EXPECT_EQ(path.back(), v);
    // BFS parent trees give minimum-hop paths.
    EXPECT_EQ(path.size() - 1, depth[v]) << "vertex " << v;
    // Every hop must be a real edge.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(d.graph.out_csr().has_edge(path[i], path[i + 1]));
    }
    if (++checked >= 50) break;  // bounded verification
  }
  EXPECT_GT(checked, 0);
}

TEST(Paths, UnreachableTargetGivesEmptyPath) {
  EdgeList el;
  el.add(0, 1);
  Deployment d(Graph::build(std::move(el), 4), 2);
  const KHopQuery q{0, 0, 3};
  const auto r = run_distributed_khop_paths(d.cluster, d.shards, d.partition,
                                            std::span(&q, 1));
  EXPECT_TRUE(reconstruct_path(r.parents[0], 0, 3).empty());
  EXPECT_EQ(reconstruct_path(r.parents[0], 0, 0),
            (std::vector<VertexId>{0}));
}

TEST(Paths, ResultBytesGrowLinearlyWithQueryCount) {
  // The Fig. 12 memory statement: retained found-path bytes scale with the
  // number of queries.
  Deployment d(rmat(9, 8, 31), 2);
  auto run_with = [&](std::size_t count) {
    std::vector<KHopQuery> queries;
    for (QueryId i = 0; i < count; ++i) {
      queries.push_back(
          {i, static_cast<VertexId>((i * 7) % d.graph.num_vertices()), 3});
    }
    return run_distributed_khop_paths(d.cluster, d.shards, d.partition,
                                      queries)
        .result_bytes();
  };
  const std::size_t b8 = run_with(8);
  const std::size_t b32 = run_with(32);
  EXPECT_GT(b32, b8 * 2);
}

TEST(Paths, CrossPartitionParentRecorded) {
  // Chain across partitions: parents must be recorded by the *owner* of
  // the discovered vertex even when the parent is remote.
  EdgeList el;
  for (VertexId v = 0; v + 1 < 6; ++v) el.add(v, v + 1);
  Deployment d(Graph::build(std::move(el), 6), 3);
  const KHopQuery q{0, 0, 5};
  const auto r = run_distributed_khop_paths(d.cluster, d.shards, d.partition,
                                            std::span(&q, 1));
  const auto path = reconstruct_path(r.parents[0], 0, 5);
  EXPECT_EQ(path, (std::vector<VertexId>{0, 1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace cgraph
