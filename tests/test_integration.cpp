// End-to-end integration tests: the full pipeline (generate/load ->
// partition -> shard -> concurrent queries + iterative compute) exercised
// through the public umbrella header, the way examples and downstream
// users consume the library.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cgraph/cgraph.hpp"
#include "util/rng.hpp"

namespace cgraph {
namespace {

TEST(Integration, TextFileToConcurrentQueries) {
  // Write a small SNAP-style edge list, load it (re-indexing sparse raw
  // ids), shard it, query it, and verify against the serial reference.
  const auto path =
      std::filesystem::temp_directory_path() / "cg_integration.txt";
  {
    std::ofstream out(path);
    out << "# tiny web graph\n";
    Xoshiro256 rng(12);
    for (int i = 0; i < 4000; ++i) {
      // Sparse raw ids (multiples of 10) exercise re-indexing.
      out << rng.next_bounded(500) * 10 << ' ' << rng.next_bounded(500) * 10
          << '\n';
    }
  }
  const LoadResult loaded = load_edge_list_text(path.string());
  std::filesystem::remove(path);
  ASSERT_GT(loaded.num_vertices, 0u);
  const Graph g = Graph::build(EdgeList(loaded.edges.edges()),
                               loaded.num_vertices);

  const auto part = RangePartition::balanced_by_edges(g, 3);
  const auto shards = build_shards(g, part);
  Cluster cluster(3);
  const auto queries = make_random_queries(g, 40, 3, 21);
  const auto run = run_concurrent_queries(cluster, shards, part, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(run.queries[i].visited,
              khop_reach_count(g, queries[i].source, queries[i].k));
  }
}

TEST(Integration, AllEnginesAgreeOnOneWorkload) {
  // The same batch through every traversal engine the library ships.
  RmatParams p;
  p.scale = 9;
  p.edge_factor = 6;
  p.seed = 91;
  const Graph g = Graph::build(generate_rmat(p), VertexId{1} << p.scale);
  const auto part = RangePartition::balanced_by_edges(g, 4);
  const auto shards = build_shards(g, part);
  Cluster cluster(4);
  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 20; ++i) {
    queries.push_back({i, static_cast<VertexId>((i * 37) % g.num_vertices()),
                       static_cast<Depth>(1 + i % 4)});
  }

  const auto bits = run_distributed_msbfs(cluster, shards, part, queries);
  const auto queue = run_distributed_khop(cluster, shards, part, queries);
  const auto async = run_async_khop(cluster, shards, part, queries);
  const auto single = msbfs_batch(g, queries);

  EXPECT_EQ(bits.visited, queue.visited);
  EXPECT_EQ(bits.visited, async.visited);
  EXPECT_EQ(bits.visited, single.visited);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(bits.visited[i],
              khop_reach_count(g, queries[i].source, queries[i].k));
  }
}

TEST(Integration, QueriesAndPageRankShareOneDeployment) {
  // One sharded deployment must serve both workload classes back-to-back
  // (the paper's mixed traversal + iterative use case).
  const Graph g = make_dataset("OR-100M", /*scale_shift=*/5);
  const auto part = RangePartition::balanced_by_edges(g, 3);
  const auto shards = build_shards(g, part);
  Cluster cluster(3);

  const auto queries = make_random_queries(g, 30, 3, 77);
  const auto qrun = run_concurrent_queries(cluster, shards, part, queries);
  EXPECT_EQ(qrun.queries.size(), 30u);

  const GasResult pr = run_pagerank(cluster, shards, part, 5);
  const auto ref = pagerank_serial(g, 5);
  for (VertexId v = 0; v < g.num_vertices(); v += 97) {
    EXPECT_NEAR(pr.values[v], ref[v], 1e-9);
  }

  // And again queries after PageRank: engine state must not leak.
  const auto qrun2 = run_concurrent_queries(cluster, shards, part, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(qrun.queries[i].visited, qrun2.queries[i].visited);
  }
}

TEST(Integration, WeightedPipelineSsspAndKhop) {
  EdgeList el = generate_rmat({.scale = 9, .edge_factor = 5, .seed = 14});
  assign_random_weights(el, 1.0f, 3.0f, 15);
  GraphBuildOptions gopts;
  gopts.with_weights = true;
  const Graph g = Graph::build(std::move(el), VertexId{1} << 9, gopts);
  const auto part = RangePartition::balanced_by_edges(g, 2);
  const auto shards = build_shards(g, part);
  Cluster cluster(2);

  const SsspResult sssp = run_sssp(cluster, shards, part, 0);
  const auto ref = sssp_serial(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); v += 13) {
    if (ref[v] != kUnreachable) {
      EXPECT_NEAR(sssp.distance[v], ref[v], 1e-9);
    }
  }

  // Weighted shards still answer unweighted reachability correctly.
  const KHopQuery q{0, 0, 3};
  const auto r = run_distributed_msbfs(cluster, shards, part,
                                       std::span(&q, 1));
  EXPECT_EQ(r.visited[0], khop_reach_count(g, 0, 3));
}

TEST(Integration, DeterministicAcrossRuns) {
  const Graph g = make_dataset("FR-1B", /*scale_shift=*/6,
                               /*build_in_edges=*/false);
  const auto part = RangePartition::balanced_by_edges(g, 3);
  ShardOptions sopt;
  sopt.build_in_edges = false;
  const auto shards = build_shards(g, part, sopt);
  Cluster cluster(3);
  const auto queries = make_random_queries(g, 25, 3, 3);
  const auto a = run_concurrent_queries(cluster, shards, part, queries);
  const auto b = run_concurrent_queries(cluster, shards, part, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].visited, b.queries[i].visited);
    EXPECT_EQ(a.queries[i].levels, b.queries[i].levels);
  }
  EXPECT_EQ(a.total_edges_scanned, b.total_edges_scanned);
}

}  // namespace
}  // namespace cgraph
