// Tests for the baselines: KvStore semantics, TitanLike correctness (same
// answers as the reference, just slower) and GeminiLike serialization.
#include <gtest/gtest.h>

#include "baseline/geminilike.hpp"
#include "baseline/kvstore.hpp"
#include "baseline/titanlike.hpp"
#include "gen/rmat.hpp"
#include "query/bfs.hpp"
#include "util/timer.hpp"

namespace cgraph {
namespace {

KvStoreOptions fast_store() {
  KvStoreOptions o;
  o.read_latency_us = 0;  // keep unit tests quick
  o.write_latency_us = 0;
  return o;
}

Graph make_graph(unsigned scale = 8, std::uint64_t seed = 71) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 6;
  p.seed = seed;
  return Graph::build(generate_rmat(p), VertexId{1} << scale);
}

TEST(KvStore, PutGetRoundTrip) {
  KvStore store(fast_store());
  store.put("a", {1, 2, 3});
  const auto v = store.get("a");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_FALSE(store.get("missing").has_value());
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStore, OverwriteReplaces) {
  KvStore store(fast_store());
  store.put("k", {1});
  store.put("k", {2});
  EXPECT_EQ(store.get("k")->at(0), 2);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStore, CountsReads) {
  KvStore store(fast_store());
  store.put("k", {1});
  (void)store.get("k");
  (void)store.get("k");
  (void)store.get("nope");
  EXPECT_EQ(store.reads_performed(), 3u);
}

TEST(KvStore, ReadLatencyIsCharged) {
  KvStoreOptions o;
  o.read_latency_us = 2000;  // 2 ms
  o.write_latency_us = 0;
  KvStore store(o);
  store.put("k", {1});
  WallTimer t;
  (void)store.get("k");
  EXPECT_GT(t.millis(), 1.0);
}

TitanLikeOptions fast_titan() {
  TitanLikeOptions o;
  o.storage = fast_store();
  o.per_query_overhead_ms = 0;
  o.session_threads = 4;
  return o;
}

TEST(TitanLike, KhopMatchesReference) {
  const Graph g = make_graph();
  TitanLikeDb db(fast_titan());
  db.load(g);
  for (VertexId src : {0u, 17u, 99u}) {
    for (Depth k : {1, 2, 3}) {
      const QueryResult r = db.khop({0, src, static_cast<Depth>(k)});
      EXPECT_EQ(r.visited, khop_reach_count(g, src, static_cast<Depth>(k)))
          << "src=" << src << " k=" << k;
    }
  }
}

TEST(TitanLike, ConcurrentQueriesAllAnswered) {
  const Graph g = make_graph();
  TitanLikeDb db(fast_titan());
  db.load(g);
  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 16; ++i) {
    queries.push_back({i, static_cast<VertexId>(i * 7), 2});
  }
  const auto results = db.run_concurrent(queries);
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(results[i].id, queries[i].id);
    EXPECT_EQ(results[i].visited,
              khop_reach_count(g, queries[i].source, queries[i].k));
    EXPECT_GE(results[i].wall_seconds, 0.0);
  }
}

TEST(TitanLike, StorageOverheadMakesItSlower) {
  const Graph g = make_graph(8);
  TitanLikeOptions slow = fast_titan();
  slow.storage.read_latency_us = 20;
  TitanLikeDb fast_db(fast_titan()), slow_db(slow);
  fast_db.load(g);
  slow_db.load(g);
  const KHopQuery q{0, 0, 3};
  const double fast_t = fast_db.khop(q).wall_seconds;
  const double slow_t = slow_db.khop(q).wall_seconds;
  EXPECT_GT(slow_t, fast_t);
}

TEST(TitanLike, PageRankIterationRuns) {
  const Graph g = make_graph(7);
  TitanLikeDb db(fast_titan());
  db.load(g);
  EXPECT_GT(db.pagerank_iteration_seconds(), 0.0);
}

TEST(GeminiLike, ExecMatchesReference) {
  const Graph g = make_graph();
  GeminiLikeEngine engine(g);
  for (VertexId src : {3u, 50u}) {
    const auto exec = engine.execute({0, src, 3});
    EXPECT_EQ(exec.visited, khop_reach_count(g, src, 3));
    EXPECT_GT(exec.sim_seconds, 0.0);
  }
}

TEST(GeminiLike, SerializedResponsesStack) {
  const Graph g = make_graph();
  GeminiLikeEngine engine(g);
  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 10; ++i) {
    queries.push_back({i, static_cast<VertexId>(i * 11), 3});
  }
  const auto results = engine.run_serialized(queries);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i].sim_seconds, results[i - 1].sim_seconds);
    EXPECT_GE(results[i].wall_seconds, results[i - 1].wall_seconds);
  }
  // Total time is linear-ish in query count (the Fig. 13 behaviour): the
  // last response dwarfs the first.
  EXPECT_GT(results.back().sim_seconds, results.front().sim_seconds * 5);
}

TEST(GeminiLike, DirectionOptimizationPreservesResults) {
  // A dense graph pushes the engine into bottom-up mode mid-traversal;
  // results must match the top-down-only reference exactly.
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 24;
  p.seed = 99;
  const Graph g = Graph::build(generate_rmat(p), VertexId{1} << p.scale);
  ASSERT_TRUE(g.has_in_edges());
  GeminiLikeEngine engine(g);
  for (VertexId src : {0u, 13u, 500u}) {
    for (Depth k : {2, 4, 8}) {
      EXPECT_EQ(engine.execute({0, src, static_cast<Depth>(k)}).visited,
                khop_reach_count(g, src, static_cast<Depth>(k)))
          << "src=" << src << " k=" << k;
    }
  }
}

TEST(GeminiLike, MoreMachinesReduceSimTime) {
  // Needs a graph big enough that per-level compute dwarfs the per-level
  // communication latency, otherwise extra machines rightly lose.
  RmatParams p;
  p.scale = 14;
  p.edge_factor = 16;
  p.seed = 71;
  const Graph g = Graph::build(generate_rmat(p), VertexId{1} << p.scale);
  GeminiLikeOptions one, three;
  // Fix the traversal strategy so the machine count is the only variable:
  // bottom-up early exits shrink compute until fixed comm costs dominate.
  one.direction_optimizing = false;
  three.direction_optimizing = false;
  three.machines = 3;
  GeminiLikeEngine e1(g, one), e3(g, three);
  const KHopQuery q{0, 1, 4};
  EXPECT_EQ(e1.execute(q).visited, e3.execute(q).visited);
  EXPECT_LT(e3.execute(q).sim_seconds, e1.execute(q).sim_seconds);
}

}  // namespace
}  // namespace cgraph
