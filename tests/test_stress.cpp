// Stress and corner-case tests: concurrency hammering on the fabric,
// engine reuse, extreme batch widths, and degenerate query parameters.
#include <gtest/gtest.h>

#include <thread>

#include "cgraph/cgraph.hpp"
#include "util/rng.hpp"

namespace cgraph {
namespace {

TEST(Stress, MailboxConcurrentPushersAndDrainer) {
  Mailbox mb;
  constexpr int kPushers = 4;
  constexpr int kPerPusher = 2000;
  std::atomic<bool> stop{false};
  std::atomic<int> drained{0};

  std::thread drainer([&] {
    while (!stop.load(std::memory_order_acquire) || !mb.empty_now()) {
      drained.fetch_add(static_cast<int>(mb.drain_now().size()),
                        std::memory_order_relaxed);
    }
    drained.fetch_add(static_cast<int>(mb.drain_now().size()),
                      std::memory_order_relaxed);
  });
  {
    std::vector<std::thread> pushers;
    for (int p = 0; p < kPushers; ++p) {
      pushers.emplace_back([&, p] {
        for (int i = 0; i < kPerPusher; ++i) {
          mb.push_now({static_cast<PartitionId>(p), 0, Packet(8)});
        }
      });
    }
    for (auto& t : pushers) t.join();
  }
  stop.store(true, std::memory_order_release);
  drainer.join();
  EXPECT_EQ(drained.load(), kPushers * kPerPusher);
}

TEST(Stress, ManySuperstepsKeepClocksConsistent) {
  CostModel cm;
  cm.ns_per_barrier = 10.0;
  Cluster cluster(4, cm);
  constexpr int kSteps = 500;
  cluster.run([&](MachineContext& mc) {
    Xoshiro256 rng(mc.id() + 1);
    for (int s = 0; s < kSteps; ++s) {
      mc.charge_compute(rng.next_bounded(1000));
      mc.barrier();
    }
  });
  // All clocks were repeatedly synchronized to the max; the makespan is at
  // least the barrier cost times the step count.
  EXPECT_GE(cluster.sim_seconds(), kSteps * 10.0 * 1e-9);
  for (PartitionId m = 0; m < 4; ++m) {
    EXPECT_DOUBLE_EQ(cluster.clock(m).seconds(), cluster.sim_seconds());
  }
}

TEST(Stress, ClusterReusedAcrossManyEngineRuns) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 6;
  p.seed = 3;
  const Graph g = Graph::build(generate_rmat(p), VertexId{1} << p.scale);
  const auto part = RangePartition::balanced_by_edges(g, 3);
  const auto shards = build_shards(g, part);
  Cluster cluster(3);

  const auto queries = make_random_queries(g, 8, 3, 5);
  std::vector<std::uint64_t> first;
  for (int round = 0; round < 10; ++round) {
    const auto r = run_distributed_msbfs(cluster, shards, part, queries);
    if (round == 0) {
      first = r.visited;
    } else {
      EXPECT_EQ(r.visited, first) << "round " << round;
    }
  }
}

TEST(Stress, FullWidthBatch512Queries) {
  RmatParams p;
  p.scale = 9;
  p.edge_factor = 6;
  p.seed = 7;
  const Graph g = Graph::build(generate_rmat(p), VertexId{1} << p.scale);
  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 512; ++i) {
    queries.push_back({i, static_cast<VertexId>((i * 3) % g.num_vertices()),
                       2});
  }
  const auto r = msbfs_batch(g, queries);
  // Spot-check a sample against the reference.
  for (std::size_t i = 0; i < queries.size(); i += 37) {
    EXPECT_EQ(r.visited[i],
              khop_reach_count(g, queries[i].source, queries[i].k));
  }
}

TEST(Stress, SchedulerBatchWidthInvariance) {
  RmatParams p;
  p.scale = 9;
  p.edge_factor = 5;
  p.seed = 9;
  const Graph g = Graph::build(generate_rmat(p), VertexId{1} << p.scale);
  const auto part = RangePartition::balanced_by_edges(g, 2);
  const auto shards = build_shards(g, part);
  Cluster cluster(2);
  const auto queries = make_random_queries(g, 70, 3, 11);

  std::vector<std::uint64_t> reference;
  for (const std::size_t width : {1u, 16u, 64u, 512u}) {
    SchedulerOptions opts;
    opts.batch_width = width;
    const auto run =
        run_concurrent_queries(cluster, shards, part, queries, opts);
    std::vector<std::uint64_t> visited;
    for (const auto& q : run.queries) visited.push_back(q.visited);
    if (reference.empty()) {
      reference = visited;
    } else {
      EXPECT_EQ(visited, reference) << "width " << width;
    }
  }
}

TEST(Stress, ZeroHopQueriesAnswerImmediately) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 4;
  p.seed = 13;
  const Graph g = Graph::build(generate_rmat(p), VertexId{1} << p.scale);
  const auto part = RangePartition::balanced_by_edges(g, 2);
  const auto shards = build_shards(g, part);
  Cluster cluster(2);
  std::vector<KHopQuery> queries{{0, 5, 0}, {1, 9, 0}};
  const auto r = run_distributed_msbfs(cluster, shards, part, queries);
  EXPECT_EQ(r.visited[0], 0u);  // k = 0 reaches nothing beyond the source
  EXPECT_EQ(r.visited[1], 0u);
}

TEST(Stress, SingleVertexGraph) {
  EdgeList el;
  const Graph g = Graph::build(std::move(el), 1);
  const auto part = RangePartition::balanced_by_vertices(1, 1);
  const auto shards = build_shards(g, part);
  Cluster cluster(1);
  const KHopQuery q{0, 0, 3};
  const auto r = run_distributed_msbfs(cluster, shards, part,
                                       std::span(&q, 1));
  EXPECT_EQ(r.visited[0], 0u);
}

TEST(Stress, ManyMoreMachinesThanWork) {
  // 9 machines, 12 vertices: several shards are nearly empty but the
  // protocol must still terminate and agree with the reference.
  EdgeList el;
  for (VertexId v = 0; v + 1 < 12; ++v) el.add(v, v + 1);
  const Graph g = Graph::build(std::move(el), 12);
  const auto part = RangePartition::balanced_by_vertices(12, 9);
  const auto shards = build_shards(g, part);
  Cluster cluster(9);
  const KHopQuery q{0, 0, 11};
  const auto r = run_distributed_khop(cluster, shards, part,
                                      std::span(&q, 1));
  EXPECT_EQ(r.visited[0], 11u);
}

TEST(Stress, AsyncEngineRepeatedRunsTerminate) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 5;
  p.seed = 17;
  const Graph g = Graph::build(generate_rmat(p), VertexId{1} << p.scale);
  const auto part = RangePartition::balanced_by_edges(g, 3);
  const auto shards = build_shards(g, part);
  Cluster cluster(3);
  const auto queries = make_random_queries(g, 6, 3, 19);
  for (int round = 0; round < 5; ++round) {
    const auto r = run_async_khop(cluster, shards, part, queries);
    EXPECT_EQ(r.visited.size(), queries.size());
  }
}

}  // namespace
}  // namespace cgraph
