// Tests for the serial BFS/k-hop reference and the hop-plot computation
// (paper Fig. 1 metrics).
#include <gtest/gtest.h>

#include "gen/random_graphs.hpp"
#include "query/bfs.hpp"

namespace cgraph {
namespace {

Graph sample() {
  //      0 -> 1 -> 2 -> 3
  //      0 -> 4    2 -> 5
  EdgeList el;
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 3);
  el.add(0, 4);
  el.add(2, 5);
  return Graph::build(std::move(el), 7);  // vertex 6 isolated
}

TEST(Bfs, LevelsFromSource) {
  const auto d = bfs_levels(sample(), 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[4], 1);
  EXPECT_EQ(d[2], 2);
  EXPECT_EQ(d[3], 3);
  EXPECT_EQ(d[5], 3);
  EXPECT_EQ(d[6], kUnvisitedDepth);
}

TEST(Bfs, DepthBoundStopsExpansion) {
  const auto d = bfs_levels(sample(), 0, /*max_depth=*/2);
  EXPECT_EQ(d[2], 2);
  EXPECT_EQ(d[3], kUnvisitedDepth);
  EXPECT_EQ(d[5], kUnvisitedDepth);
}

TEST(Bfs, KhopCountExcludesSource) {
  const Graph g = sample();
  EXPECT_EQ(khop_reach_count(g, 0, 1), 2u);  // 1, 4
  EXPECT_EQ(khop_reach_count(g, 0, 2), 3u);  // + 2
  EXPECT_EQ(khop_reach_count(g, 0, 3), 5u);  // + 3, 5
  EXPECT_EQ(khop_reach_count(g, 0, 10), 5u);
  EXPECT_EQ(khop_reach_count(g, 6, 3), 0u);  // isolated source
}

TEST(Bfs, KhopSetInDiscoveryOrder) {
  const auto order = khop_reach_set(sample(), 0, 3);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 4u);
  EXPECT_EQ(order[2], 2u);
  // Level 3: 3 and 5 in adjacency order.
  EXPECT_EQ(order[3], 3u);
  EXPECT_EQ(order[4], 5u);
}

TEST(Bfs, SelfOnlyGraph) {
  EdgeList el;
  el.add(0, 1);
  const Graph g = Graph::build(std::move(el), 2);
  const auto d = bfs_levels(g, 1);
  EXPECT_EQ(d[1], 0);
  EXPECT_EQ(d[0], kUnvisitedDepth);
}

TEST(HopPlot, CycleGraphHasKnownDistances) {
  // Directed cycle of 6: distances from any vertex are 1..5.
  EdgeList el;
  for (VertexId v = 0; v < 6; ++v) el.add(v, (v + 1) % 6);
  const Graph g = Graph::build(std::move(el), 6);
  const HopPlot plot = compute_hop_plot(g, /*samples=*/6, /*seed=*/3);
  EXPECT_EQ(plot.diameter, 5);
  // Exactly one vertex at each distance -> cumulative steps of 1/5.
  ASSERT_GE(plot.cumulative.size(), 6u);
  EXPECT_NEAR(plot.cumulative[1], 0.2, 1e-12);
  EXPECT_NEAR(plot.cumulative[5], 1.0, 1e-12);
  EXPECT_NEAR(plot.effective_diameter_50, 2.5, 1e-9);
}

TEST(HopPlot, SmallWorldHasSmallEffectiveDiameter) {
  // The Fig. 1 property: a small-world graph's 90-percentile effective
  // diameter is far below its worst-case diameter.
  const EdgeList el = generate_watts_strogatz(2000, 8, 0.1, 42);
  const Graph g = Graph::build(EdgeList(el.edges()), 2000);
  const HopPlot plot = compute_hop_plot(g, /*samples=*/20, /*seed=*/7);
  EXPECT_GT(plot.diameter, 0);
  EXPECT_LE(plot.effective_diameter_90, plot.diameter);
  EXPECT_LE(plot.effective_diameter_50, plot.effective_diameter_90);
  EXPECT_LT(plot.effective_diameter_90, 10.0);
}

TEST(HopPlot, EmptyGraphSafe) {
  const Graph g;
  const HopPlot plot = compute_hop_plot(g, 5);
  EXPECT_TRUE(plot.cumulative.empty());
}

TEST(HopPlot, CumulativeIsMonotone) {
  const EdgeList el = generate_watts_strogatz(500, 6, 0.2, 11);
  const Graph g = Graph::build(EdgeList(el.edges()), 500);
  const HopPlot plot = compute_hop_plot(g, 10, 13);
  for (std::size_t i = 1; i < plot.cumulative.size(); ++i) {
    EXPECT_GE(plot.cumulative[i], plot.cumulative[i - 1]);
  }
  EXPECT_NEAR(plot.cumulative.back(), 1.0, 1e-12);
}

}  // namespace
}  // namespace cgraph
