// Randomized differential tests: many random graphs (varied size, density,
// shape) pushed through every traversal engine and checked against the
// serial reference. Catches partition-boundary, termination, and frontier
// corner cases that targeted tests miss.
#include <gtest/gtest.h>

#include <memory>

#include "cgraph/cgraph.hpp"
#include "net/fault.hpp"
#include "util/rng.hpp"

namespace cgraph {
namespace {

struct FuzzCase {
  std::uint64_t seed;
};

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, AllEnginesMatchReference) {
  Xoshiro256 rng(GetParam());

  // Random graph shape: size, density, generator, self-loops kept or not.
  const VertexId n = 16 + static_cast<VertexId>(rng.next_bounded(600));
  const EdgeIndex m = 1 + rng.next_bounded(static_cast<std::uint64_t>(n) * 6);
  EdgeList edges;
  switch (rng.next_bounded(3)) {
    case 0:
      edges = generate_uniform(n, m, rng.next());
      break;
    case 1: {
      RmatParams p;
      p.scale = 5 + static_cast<unsigned>(rng.next_bounded(5));
      p.edge_factor = 1.0 + static_cast<double>(rng.next_bounded(8));
      p.seed = rng.next();
      edges = generate_rmat(p);
      break;
    }
    default:
      edges = generate_watts_strogatz(
          std::max<VertexId>(n, 8), 4,
          0.3 * rng.next_double(), rng.next());
      break;
  }
  GraphBuildOptions gopts;
  gopts.remove_self_loops = rng.next_bounded(2) == 0;
  const Graph g = Graph::build(std::move(edges), gopts);
  if (g.num_vertices() == 0) return;

  const auto machines =
      static_cast<PartitionId>(1 + rng.next_bounded(7));
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);
  Cluster cluster(machines);

  std::vector<KHopQuery> queries;
  const std::size_t q_count = 1 + rng.next_bounded(12);
  for (QueryId i = 0; i < q_count; ++i) {
    queries.push_back(
        {i, static_cast<VertexId>(rng.next_bounded(g.num_vertices())),
         static_cast<Depth>(rng.next_bounded(8))});
  }

  std::vector<std::uint64_t> expected;
  for (const auto& q : queries) {
    expected.push_back(khop_reach_count(g, q.source, q.k));
  }

  const auto bits = run_distributed_msbfs(cluster, shards, part, queries);
  EXPECT_EQ(bits.visited, expected) << "msbfs, seed " << GetParam();

  const auto queue = run_distributed_khop(cluster, shards, part, queries);
  EXPECT_EQ(queue.visited, expected) << "khop, seed " << GetParam();

  const auto async = run_async_khop(cluster, shards, part, queries);
  EXPECT_EQ(async.visited, expected) << "async, seed " << GetParam();

  const auto single = msbfs_batch(g, queries);
  EXPECT_EQ(single.visited, expected) << "single, seed " << GetParam();

  const auto paths =
      run_distributed_khop_paths(cluster, shards, part, queries);
  EXPECT_EQ(paths.base.visited, expected) << "paths, seed " << GetParam();

  GeminiLikeEngine gemini(g);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(gemini.execute(queries[i]).visited, expected[i])
        << "gemini, seed " << GetParam() << " query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

class PageRankFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageRankFuzz, DistributedMatchesSerial) {
  Xoshiro256 rng(GetParam() * 7919);
  const VertexId n = 32 + static_cast<VertexId>(rng.next_bounded(400));
  const EdgeIndex m = 1 + rng.next_bounded(static_cast<std::uint64_t>(n) * 4);
  const Graph g = Graph::build(generate_uniform(n, m, rng.next()));
  if (g.num_vertices() == 0) return;
  const auto machines = static_cast<PartitionId>(1 + rng.next_bounded(5));
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);
  Cluster cluster(machines);
  const GasResult dist = run_pagerank(cluster, shards, part, 6);
  const auto serial = pagerank_serial(g, 6);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(dist.values[v], serial[v], 1e-9)
        << "seed " << GetParam() << " vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageRankFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

class ChaosFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// Graph shape AND fault plan are randomized together: the reliability
// protocols must hold on any topology, not just the chaos suite's fixed
// shapes. Mirrors EngineFuzz with a seeded FaultPlan installed; the plan's
// describe() line lands in the failure output for replay.
TEST_P(ChaosFuzz, EnginesMatchReferenceUnderRandomFaults) {
  Xoshiro256 rng(GetParam() * 0x9e3779b97f4a7c15ULL);

  const VertexId n = 16 + static_cast<VertexId>(rng.next_bounded(300));
  const EdgeIndex m = 1 + rng.next_bounded(static_cast<std::uint64_t>(n) * 5);
  EdgeList edges;
  switch (rng.next_bounded(3)) {
    case 0:
      edges = generate_uniform(n, m, rng.next());
      break;
    case 1: {
      RmatParams p;
      p.scale = 5 + static_cast<unsigned>(rng.next_bounded(4));
      p.edge_factor = 1.0 + static_cast<double>(rng.next_bounded(6));
      p.seed = rng.next();
      edges = generate_rmat(p);
      break;
    }
    default:
      edges = generate_watts_strogatz(
          std::max<VertexId>(n, 8), 4,
          0.3 * rng.next_double(), rng.next());
      break;
  }
  const Graph g = Graph::build(std::move(edges));
  if (g.num_vertices() == 0) return;

  const auto machines = static_cast<PartitionId>(2 + rng.next_bounded(5));
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);
  Cluster cluster(machines);

  auto plan = std::make_shared<FaultPlan>(GetParam());
  LinkFaultSpec mix;
  mix.drop = 0.20 * rng.next_double();
  mix.duplicate = 0.10 * rng.next_double();
  mix.reorder = 0.10 * rng.next_double();
  mix.delay = 0.05 * rng.next_double();
  mix.delay_polls = 1 + static_cast<std::uint32_t>(rng.next_bounded(3));
  plan->set_default_link(mix);
  // A few links get a distinct (often harsher) override.
  for (int i = 0; i < 2; ++i) {
    LinkFaultSpec link = mix;
    link.drop = 0.35 * rng.next_double();
    plan->set_link(
        static_cast<PartitionId>(rng.next_bounded(machines)),
        static_cast<PartitionId>(rng.next_bounded(machines)), link);
  }
  SCOPED_TRACE(plan->describe());
  cluster.fabric().install_fault_plan(plan);

  std::vector<KHopQuery> queries;
  const std::size_t q_count = 1 + rng.next_bounded(8);
  for (QueryId i = 0; i < q_count; ++i) {
    queries.push_back(
        {i, static_cast<VertexId>(rng.next_bounded(g.num_vertices())),
         static_cast<Depth>(rng.next_bounded(7))});
  }
  std::vector<std::uint64_t> expected;
  for (const auto& q : queries) {
    expected.push_back(khop_reach_count(g, q.source, q.k));
  }

  // Direction policy is fuzzed along with the fault plan: a random forced
  // mode or the hybrid heuristic with randomized alpha/beta thresholds
  // (spanning always-push through eager-pull), all of which must answer
  // identically under any fault mix.
  DirectionOptions direction;
  switch (rng.next_bounded(4)) {
    case 0:
      direction.mode = TraversalDirection::kPush;
      break;
    case 1:
      direction.mode = TraversalDirection::kPull;
      break;
    default:
      direction.mode = TraversalDirection::kHybrid;
      direction.alpha = 0.25 * (1u << rng.next_bounded(16));
      direction.beta = 0.25 * (1u << rng.next_bounded(16));
      break;
  }
  SCOPED_TRACE(std::string("direction=") + to_string(direction.mode) +
               " alpha=" + std::to_string(direction.alpha) + " beta=" +
               std::to_string(direction.beta));

  const auto bits =
      run_distributed_msbfs(cluster, shards, part, queries, direction);
  EXPECT_EQ(bits.visited, expected) << "msbfs, seed " << GetParam();

  const auto queue = run_distributed_khop(cluster, shards, part, queries);
  EXPECT_EQ(queue.visited, expected) << "khop, seed " << GetParam();

  const auto async = run_async_khop(cluster, shards, part, queries);
  EXPECT_EQ(async.visited, expected) << "async, seed " << GetParam();

  EXPECT_EQ(cluster.fabric().total_delivery_failed(), 0u)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFuzz,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace cgraph
