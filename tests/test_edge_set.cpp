// Unit and property tests for the edge-set grid (paper §3.2).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "gen/rmat.hpp"
#include "graph/edge_set.hpp"
#include "graph/graph.hpp"

namespace cgraph {
namespace {

std::vector<Edge> grid_edges() {
  return {{0, 1, 1.f}, {0, 5, 1.f}, {1, 2, 1.f}, {2, 7, 1.f}, {3, 0, 1.f}};
}

TEST(EdgeSetGrid, PreservesAllEdges) {
  const auto edges = grid_edges();
  const auto grid = EdgeSetGrid::build({0, 4}, 8, edges);
  EXPECT_EQ(grid.num_edges(), edges.size());

  std::multiset<std::pair<VertexId, VertexId>> expected, got;
  for (const Edge& e : edges) expected.insert({e.src, e.dst});
  for (VertexId s = 0; s < 4; ++s) {
    grid.for_each_neighbor(s, [&](VertexId t) { got.insert({s, t}); });
  }
  EXPECT_EQ(expected, got);
}

TEST(EdgeSetGrid, RowRangesPartitionSourceRange) {
  const auto edges = grid_edges();
  const auto grid = EdgeSetGrid::build({0, 4}, 8, edges);
  ASSERT_GE(grid.num_rows(), 1u);
  EXPECT_EQ(grid.row_range(0).begin, 0u);
  EXPECT_EQ(grid.row_range(grid.num_rows() - 1).end, 4u);
  for (std::size_t r = 0; r + 1 < grid.num_rows(); ++r) {
    EXPECT_EQ(grid.row_range(r).end, grid.row_range(r + 1).begin);
  }
}

TEST(EdgeSetGrid, BlocksRespectDstRanges) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 4;
  const EdgeList el = generate_rmat(params);
  const VertexId n = VertexId{1} << params.scale;

  EdgeSetOptions opts;
  opts.target_bytes = 4096;  // force many blocks
  opts.consolidate = false;
  const auto grid = EdgeSetGrid::build({0, n}, n, el.edges(), opts);
  EXPECT_GT(grid.num_sets(), 4u);
  for (const EdgeSet& es : grid.sets()) {
    for (VertexId s = es.src_range().begin; s < es.src_range().end; ++s) {
      for (VertexId t : es.neighbors(s)) {
        EXPECT_TRUE(es.dst_range().contains(t));
      }
    }
  }
}

TEST(EdgeSetGrid, ConsolidationMergesTinyBlocks) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 2;  // sparse -> many tiny blocks
  const EdgeList el = generate_rmat(params);
  const VertexId n = VertexId{1} << params.scale;

  EdgeSetOptions plain;
  plain.target_bytes = 2048;
  plain.consolidate = false;
  EdgeSetOptions merged = plain;
  merged.consolidate = true;
  merged.min_edges_per_set = 128;

  const auto g1 = EdgeSetGrid::build({0, n}, n, el.edges(), plain);
  const auto g2 = EdgeSetGrid::build({0, n}, n, el.edges(), merged);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_LT(g2.num_sets(), g1.num_sets());
  // Consolidation must not lower the smallest block below... it must raise
  // the average block population.
  EXPECT_GT(g2.stats().avg_edges_per_set, g1.stats().avg_edges_per_set);
}

TEST(EdgeSetGrid, ConsolidationPreservesEdgeMultiset) {
  RmatParams params;
  params.scale = 9;
  params.edge_factor = 3;
  const EdgeList el = generate_rmat(params);
  const VertexId n = VertexId{1} << params.scale;

  EdgeSetOptions merged;
  merged.target_bytes = 2048;
  merged.min_edges_per_set = 256;
  const auto grid = EdgeSetGrid::build({0, n}, n, el.edges(), merged);

  std::map<std::pair<VertexId, VertexId>, int> expected, got;
  for (const Edge& e : el) ++expected[{e.src, e.dst}];
  for (VertexId s = 0; s < n; ++s) {
    grid.for_each_neighbor(s, [&](VertexId t) { ++got[{s, t}]; });
  }
  EXPECT_EQ(expected, got);
}

TEST(EdgeSetGrid, NeighborsSortedWithinBlock) {
  const auto edges = grid_edges();
  const auto grid = EdgeSetGrid::build({0, 4}, 8, edges);
  for (const EdgeSet& es : grid.sets()) {
    for (VertexId s = es.src_range().begin; s < es.src_range().end; ++s) {
      const auto nbrs = es.neighbors(s);
      EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    }
  }
}

TEST(EdgeSetGrid, WeightsSurviveTiling) {
  std::vector<Edge> edges{{0, 3, 30.f}, {0, 1, 10.f}, {1, 2, 20.f}};
  EdgeSetOptions opts;
  opts.with_weights = true;
  const auto grid = EdgeSetGrid::build({0, 2}, 4, edges, opts);
  float sum = 0;
  for (const EdgeSet& es : grid.sets()) {
    ASSERT_TRUE(es.has_weights());
    for (VertexId s = es.src_range().begin; s < es.src_range().end; ++s) {
      for (float w : es.weights_of(s)) sum += w;
    }
  }
  EXPECT_FLOAT_EQ(sum, 60.f);
}

TEST(EdgeSetGrid, ForEachEdgeReportsWeights) {
  std::vector<Edge> edges{{0, 3, 30.f}, {0, 1, 10.f}, {1, 2, 20.f}};
  EdgeSetOptions opts;
  opts.with_weights = true;
  const auto grid = EdgeSetGrid::build({0, 2}, 4, edges, opts);
  std::map<std::pair<VertexId, VertexId>, float> got;
  for (VertexId s = 0; s < 2; ++s) {
    grid.for_each_edge(s, [&](VertexId t, Weight w) { got[{s, t}] = w; });
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_FLOAT_EQ((got[{0, 3}]), 30.f);
  EXPECT_FLOAT_EQ((got[{0, 1}]), 10.f);
  EXPECT_FLOAT_EQ((got[{1, 2}]), 20.f);
}

TEST(EdgeSetGrid, ForEachEdgeDefaultsWeightOne) {
  const auto edges = grid_edges();
  const auto grid = EdgeSetGrid::build({0, 4}, 8, edges);
  grid.for_each_edge(0, [&](VertexId, Weight w) { EXPECT_EQ(w, 1.0f); });
}

TEST(EdgeSetGrid, EmptySourceRange) {
  const auto grid = EdgeSetGrid::build({5, 5}, 8, {});
  EXPECT_EQ(grid.num_edges(), 0u);
  EXPECT_EQ(grid.num_sets(), 0u);
}

TEST(EdgeSetGrid, RowOfFindsCorrectRow) {
  RmatParams params;
  params.scale = 9;
  params.edge_factor = 6;
  const EdgeList el = generate_rmat(params);
  const VertexId n = VertexId{1} << params.scale;
  EdgeSetOptions opts;
  opts.target_bytes = 4096;
  const auto grid = EdgeSetGrid::build({0, n}, n, el.edges(), opts);
  for (VertexId v = 0; v < n; v += 37) {
    const std::size_t r = grid.row_of(v);
    EXPECT_TRUE(grid.row_range(r).contains(v));
  }
}

TEST(EdgeSetGridDeathTest, SourceOutsideRangeAborts) {
  std::vector<Edge> edges{{9, 1, 1.f}};
  EXPECT_DEATH(EdgeSetGrid::build({0, 4}, 10, edges),
               "edge source outside");
}

}  // namespace
}  // namespace cgraph
