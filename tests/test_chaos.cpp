// Chaos suite: every traversal engine is run on a fabric with an installed
// FaultPlan (seeded probabilistic drop/duplicate/reorder/delay, plus
// deterministic triggers) and must still agree bit-exactly with the
// fault-free serial reference — the reliability protocols (staged
// bounded-retry, async seq/ack/retry + receiver dedup) make the faults
// invisible to results. Each test prints the plan's describe() line so a
// failing run can be reproduced from the log alone; determinism of the
// fault sequence itself is asserted by the replay tests at the bottom.
#include <gtest/gtest.h>

#include <memory>

#include "cgraph/cgraph.hpp"
#include "net/fault.hpp"
#include "query/khop_program.hpp"
#include "util/rng.hpp"

namespace cgraph {
namespace {

/// Seeded probabilistic fault mix. The per-action rates are drawn from the
/// seed and deliberately kept at a combined ~35% so staged retries succeed
/// well inside the attempt budget (failure would need 24 consecutive
/// drops: p^24 <= 1e-12).
FaultPlan make_plan(std::uint64_t seed) {
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  FaultPlan plan(seed);
  LinkFaultSpec mix;
  mix.drop = 0.05 + 0.15 * rng.next_double();
  mix.duplicate = 0.10 * rng.next_double();
  mix.reorder = 0.10 * rng.next_double();
  mix.delay = 0.05 * rng.next_double();
  mix.delay_polls = 1 + static_cast<std::uint32_t>(rng.next_bounded(3));
  plan.set_default_link(mix);
  return plan;
}

/// Sum the per-attempt delivery outcome counters over all machines and
/// check the reconciliation identities the telemetry layer relies on.
void expect_counters_reconcile(const Fabric& fabric, PartitionId machines) {
  std::uint64_t attempts = 0, delivered = 0, dropped = 0, duplicated = 0;
  for (PartitionId i = 0; i < machines; ++i) {
    const TrafficCounters& t = fabric.sent_counters(i);
    attempts += t.attempts();
    delivered += t.delivered_packets.load(std::memory_order_relaxed);
    dropped += t.dropped_packets.load(std::memory_order_relaxed);
    duplicated += t.duplicated_packets.load(std::memory_order_relaxed);
  }
  EXPECT_EQ(delivered, attempts - dropped + duplicated);
}

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

// All four engine families (MS-BFS, sync k-hop, async k-hop, the
// partition-program BSP path) under one seeded fault plan, against the
// fault-free serial reference.
TEST_P(ChaosSweep, EnginesMatchReferenceUnderFaults) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);

  const VertexId n = 24 + static_cast<VertexId>(rng.next_bounded(260));
  const EdgeIndex m = 1 + rng.next_bounded(static_cast<std::uint64_t>(n) * 5);
  const Graph g = Graph::build(generate_uniform(n, m, rng.next()));
  ASSERT_GT(g.num_vertices(), 0u);

  const auto machines = static_cast<PartitionId>(2 + rng.next_bounded(4));
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);
  Cluster cluster(machines);

  const auto plan = std::make_shared<FaultPlan>(make_plan(seed));
  SCOPED_TRACE(plan->describe());
  cluster.fabric().install_fault_plan(plan);

  std::vector<KHopQuery> queries;
  const std::size_t q_count = 1 + rng.next_bounded(10);
  for (QueryId i = 0; i < q_count; ++i) {
    queries.push_back(
        {i, static_cast<VertexId>(rng.next_bounded(g.num_vertices())),
         static_cast<Depth>(1 + rng.next_bounded(6))});
  }
  std::vector<std::uint64_t> expected;
  for (const auto& q : queries) {
    expected.push_back(khop_reach_count(g, q.source, q.k));
  }

  const auto bits = run_distributed_msbfs(cluster, shards, part, queries);
  EXPECT_EQ(bits.visited, expected) << "msbfs under faults";

  const auto queue = run_distributed_khop(cluster, shards, part, queries);
  EXPECT_EQ(queue.visited, expected) << "sync khop under faults";

  const auto async = run_async_khop(cluster, shards, part, queries);
  EXPECT_EQ(async.visited, expected) << "async khop under faults";

  const auto program = run_khop_program(cluster, shards, part, queries);
  EXPECT_EQ(program, expected) << "partition-program khop under faults";

  EXPECT_EQ(cluster.fabric().total_delivery_failed(), 0u)
      << "probabilistic mixes must stay inside the retry budget";
  expect_counters_reconcile(cluster.fabric(), machines);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 25));

class PageRankChaos : public ::testing::TestWithParam<std::uint64_t> {};

// BSP PageRank (GAS engine) under faults: scatter packets are dropped,
// duplicated, and reordered, yet every iteration's exchange must complete
// losslessly. Tolerance matches the fault-free fuzz suite (float summation
// order is nondeterministic even on a clean fabric).
TEST_P(PageRankChaos, MatchesSerialUnderFaults) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed * 7919);
  const VertexId n = 32 + static_cast<VertexId>(rng.next_bounded(220));
  const EdgeIndex m = 1 + rng.next_bounded(static_cast<std::uint64_t>(n) * 4);
  const Graph g = Graph::build(generate_uniform(n, m, rng.next()));
  ASSERT_GT(g.num_vertices(), 0u);
  const auto machines = static_cast<PartitionId>(2 + rng.next_bounded(4));
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);

  Cluster cluster(machines);
  const auto plan = std::make_shared<FaultPlan>(make_plan(seed));
  SCOPED_TRACE(plan->describe());
  cluster.fabric().install_fault_plan(plan);

  const GasResult dist = run_pagerank(cluster, shards, part, 6);
  const auto serial = pagerank_serial(g, 6);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NEAR(dist.values[v], serial[v], 1e-9) << "vertex " << v;
  }
  EXPECT_EQ(cluster.fabric().total_delivery_failed(), 0u);
  expect_counters_reconcile(cluster.fabric(), machines);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageRankChaos,
                         ::testing::Range<std::uint64_t>(1, 9));

// A duplicate-heavy plan must leave results untouched and show up in the
// receiver-side suppression counters — proof the dedup filters (not luck)
// carry the exactly-once guarantee.
TEST(Chaos, DuplicateStormIsSuppressed) {
  Xoshiro256 rng(404);
  const Graph g = Graph::build(generate_uniform(160, 800, rng.next()));
  const PartitionId machines = 4;
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);
  Cluster cluster(machines);

  auto plan = std::make_shared<FaultPlan>(404);
  LinkFaultSpec mix;
  mix.duplicate = 0.5;
  plan->set_default_link(mix);
  SCOPED_TRACE(plan->describe());
  cluster.fabric().install_fault_plan(plan);

  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 6; ++i) {
    queries.push_back(
        {i, static_cast<VertexId>(rng.next_bounded(g.num_vertices())), 4});
  }
  std::vector<std::uint64_t> expected;
  for (const auto& q : queries) {
    expected.push_back(khop_reach_count(g, q.source, q.k));
  }

  EXPECT_EQ(run_distributed_khop(cluster, shards, part, queries).visited,
            expected);
  EXPECT_EQ(run_async_khop(cluster, shards, part, queries).visited,
            expected);

  std::uint64_t duplicated = 0;
  std::uint64_t suppressed = 0;
  for (PartitionId i = 0; i < machines; ++i) {
    const TrafficCounters& t = cluster.fabric().sent_counters(i);
    duplicated += t.duplicated_packets.load(std::memory_order_relaxed);
    suppressed += t.dedup_suppressed_packets.load(std::memory_order_relaxed);
  }
  EXPECT_GT(duplicated, 0u);
  EXPECT_GT(suppressed, 0u);
}

// Delay-only plan: async packets sit in the receiver's limbo queue for a
// few polls; termination detection must wait them out, not quiesce early.
TEST(Chaos, DelayedAsyncDeliveryStaysExact) {
  Xoshiro256 rng(77);
  const Graph g = Graph::build(generate_uniform(200, 1000, rng.next()));
  const PartitionId machines = 3;
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);
  Cluster cluster(machines);

  auto plan = std::make_shared<FaultPlan>(77);
  LinkFaultSpec mix;
  mix.delay = 0.4;
  mix.delay_polls = 3;
  plan->set_default_link(mix);
  SCOPED_TRACE(plan->describe());
  cluster.fabric().install_fault_plan(plan);

  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 5; ++i) {
    queries.push_back(
        {i, static_cast<VertexId>(rng.next_bounded(g.num_vertices())), 5});
  }
  std::vector<std::uint64_t> expected;
  for (const auto& q : queries) {
    expected.push_back(khop_reach_count(g, q.source, q.k));
  }
  EXPECT_EQ(run_async_khop(cluster, shards, part, queries).visited,
            expected);

  std::uint64_t delayed = 0;
  for (PartitionId i = 0; i < machines; ++i) {
    delayed += cluster.fabric().sent_counters(i).delayed_packets.load(
        std::memory_order_relaxed);
  }
  EXPECT_GT(delayed, 0u);
}

// Deterministic trigger: "drop the 3rd packet machine 0 sends to machine
// 1". The staged retry loop recovers (attempt 3 redelivers), the counters
// record exactly one drop + one retry, and the fault log pins the event to
// per-link attempt index 2.
TEST(Chaos, TriggerDropsExactlyTheNthAttempt) {
  Fabric fabric(2);
  auto plan = std::make_shared<FaultPlan>(1);
  plan->add_trigger({0, 1, 2, FaultAction::kDrop});
  fabric.install_fault_plan(plan);

  for (int p = 0; p < 5; ++p) {
    PacketWriter w;
    w.write_span(std::span<const int>(&p, 1));
    EXPECT_TRUE(fabric.send_superstep(0, 1, 7, w.take(), 0));
  }
  const auto delivered = fabric.mailbox(1).drain_superstep(0);
  ASSERT_EQ(delivered.size(), 5u);
  // Sequence numbers survive the retransmission: still 0..4 in order.
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    EXPECT_EQ(delivered[i].seq, i);
  }

  const TrafficCounters& t = fabric.sent_counters(0);
  EXPECT_EQ(t.dropped_packets.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(t.retried_packets.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(t.delivered_packets.load(std::memory_order_relaxed), 5u);

  const auto log = fabric.fault_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_TRUE((log[0] == FaultEvent{0, 1, 2, FaultAction::kDrop}));
}

/// Push a fixed packet script through `fabric` and return the fault log.
std::vector<FaultEvent> run_script(Fabric& fabric) {
  fabric.reset_delivery_state();
  fabric.reset_counters();
  for (int round = 0; round < 6; ++round) {
    for (PartitionId from = 0; from < fabric.num_machines(); ++from) {
      for (PartitionId to = 0; to < fabric.num_machines(); ++to) {
        if (from == to) continue;
        PacketWriter w;
        w.write_span(std::span<const int>(&round, 1));
        if (round % 2 == 0) {
          fabric.send_superstep(from, to, 1, w.take(), round);
        } else {
          fabric.send_now(from, to, 2, w.take());
        }
      }
    }
    for (PartitionId id = 0; id < fabric.num_machines(); ++id) {
      fabric.mailbox(id).drain_now();
      fabric.mailbox(id).drain_superstep(round);
    }
  }
  return fabric.fault_log();
}

// Replay determinism: the same packet script through the same plan — on
// the same fabric after a delivery-state reset, and on a brand-new fabric
// — produces the identical packet-level fault sequence. This is what makes
// a printed seed a full repro of a chaos run.
TEST(Chaos, FaultSequenceReplaysIdentically) {
  auto plan = std::make_shared<FaultPlan>(20260805);
  LinkFaultSpec mix;
  mix.drop = 0.2;
  mix.duplicate = 0.1;
  mix.reorder = 0.1;
  mix.delay = 0.05;
  plan->set_default_link(mix);

  Fabric a(4);
  a.install_fault_plan(plan);
  const auto log1 = run_script(a);
  const auto log2 = run_script(a);  // same fabric, state reset
  Fabric b(4);
  b.install_fault_plan(plan);
  const auto log3 = run_script(b);  // fresh fabric, same plan

  ASSERT_FALSE(log1.empty()) << plan->describe();
  EXPECT_EQ(log1, log2);
  EXPECT_EQ(log1, log3);

  // A different seed must disagree (sanity that the log isn't vacuous).
  auto other = std::make_shared<FaultPlan>(1);
  other->set_default_link(mix);
  Fabric c(4);
  c.install_fault_plan(other);
  EXPECT_NE(log1, run_script(c));
}

// Graceful degradation: a link that drops everything ("dead link") must
// not wedge the async engine's termination barrier. The sender exhausts
// its bounded retry budget, surfaces delivery_failed, releases the
// termination credits, and the run completes with possibly-partial
// results.
TEST(Chaos, DeadAsyncLinkDegradesInsteadOfWedging) {
  Xoshiro256 rng(9);
  const Graph g = Graph::build(generate_uniform(120, 700, rng.next()));
  const PartitionId machines = 2;
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);
  Cluster cluster(machines);

  auto plan = std::make_shared<FaultPlan>(9);
  LinkFaultSpec dead;
  dead.drop = 1.0;
  plan->set_link(0, 1, dead);  // data 0->1 never arrives; acks 1->0 do
  SCOPED_TRACE(plan->describe());
  cluster.fabric().install_fault_plan(plan);

  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 4; ++i) {
    queries.push_back(
        {i, static_cast<VertexId>(rng.next_bounded(g.num_vertices())), 6});
  }
  std::vector<std::uint64_t> expected;
  for (const auto& q : queries) {
    expected.push_back(khop_reach_count(g, q.source, q.k));
  }

  // Completion (not wall-clock) is the assertion: the run terminates.
  const auto r = run_async_khop(cluster, shards, part, queries);
  ASSERT_EQ(r.visited.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_LE(r.visited[i], expected[i]) << "query " << i;
  }
  EXPECT_GT(cluster.fabric().total_delivery_failed(), 0u)
      << "the dead link must surface as delivery_failed, not hang";
}

// Regression: the reliable-async protocol state (pending retransmissions,
// surfaced failures, dedup windows) is owned by the Cluster and persists
// across runs; a run on a degraded fabric used to leave stale entries that
// poisoned the NEXT run on the same cluster (retransmits under the new
// run's sequence numbering, failure reports releasing the new run's
// termination credits). After the dead-link run, a clean run on the same
// cluster must be exact and report zero failures.
TEST(Chaos, AsyncProtocolStateResetsBetweenRuns) {
  Xoshiro256 rng(9);
  const Graph g = Graph::build(generate_uniform(120, 700, rng.next()));
  const PartitionId machines = 2;
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);
  Cluster cluster(machines);

  auto plan = std::make_shared<FaultPlan>(9);
  LinkFaultSpec dead;
  dead.drop = 1.0;
  plan->set_link(0, 1, dead);
  cluster.fabric().install_fault_plan(plan);

  std::vector<KHopQuery> queries;
  for (QueryId i = 0; i < 4; ++i) {
    queries.push_back(
        {i, static_cast<VertexId>(rng.next_bounded(g.num_vertices())), 6});
  }
  std::vector<std::uint64_t> expected;
  for (const auto& q : queries) {
    expected.push_back(khop_reach_count(g, q.source, q.k));
  }

  // Degraded run: completes with partial results and leftover protocol
  // state (unacked pending sends, undrained failure reports).
  (void)run_async_khop(cluster, shards, part, queries);
  EXPECT_GT(cluster.fabric().total_delivery_failed(), 0u);

  // Same cluster, healed fabric: the new run must start from a clean
  // protocol slate and produce the exact reference answers.
  cluster.fabric().install_fault_plan(nullptr);
  const auto healed = run_async_khop(cluster, shards, part, queries);
  EXPECT_EQ(healed.visited, expected);
  EXPECT_EQ(cluster.fabric().total_delivery_failed(), 0u)
      << "stale failures from the degraded run must not leak into this one";
}

// Same dead link under the staged protocol: send_superstep burns its
// bounded attempts, reports failure to the caller, and the BSP barrier
// still lifts.
TEST(Chaos, DeadStagedLinkSurfacesDeliveryFailed) {
  Fabric fabric(2);
  auto plan = std::make_shared<FaultPlan>(3);
  LinkFaultSpec dead;
  dead.drop = 1.0;
  plan->set_link(0, 1, dead);
  fabric.install_fault_plan(plan);

  PacketWriter w;
  const int v = 42;
  w.write_span(std::span<const int>(&v, 1));
  EXPECT_FALSE(fabric.send_superstep(0, 1, 7, w.take(), 0));
  EXPECT_TRUE(fabric.mailbox(1).drain_superstep(0).empty());

  const TrafficCounters& t = fabric.sent_counters(0);
  EXPECT_EQ(t.delivery_failed_packets.load(std::memory_order_relaxed), 1u);
  EXPECT_EQ(t.dropped_packets.load(std::memory_order_relaxed),
            Fabric::kMaxStagedAttempts);
  EXPECT_EQ(t.retried_packets.load(std::memory_order_relaxed),
            Fabric::kMaxStagedAttempts - 1);
}

// DedupFilter unit coverage: exactly-once per (sender, seq), tolerant of
// out-of-order arrival, with an advancing watermark.
TEST(Chaos, DedupFilterAcceptsExactlyOnce) {
  DedupFilter f;
  EXPECT_TRUE(f.accept(0, 0));
  EXPECT_FALSE(f.accept(0, 0));
  EXPECT_TRUE(f.accept(0, 2));  // gap: held in the pending window
  EXPECT_TRUE(f.accept(0, 1));  // fills the gap, watermark jumps to 2
  EXPECT_FALSE(f.accept(0, 1));
  EXPECT_FALSE(f.accept(0, 2));
  EXPECT_TRUE(f.accept(1, 0));  // independent per-sender windows
  EXPECT_TRUE(f.accept(0, 3));
  EXPECT_FALSE(f.accept(0, 3));
}

}  // namespace
}  // namespace cgraph
