// Unit tests for CSR/CSC construction and lookup.
#include <gtest/gtest.h>

#include "graph/csr.hpp"

namespace cgraph {
namespace {

std::vector<Edge> diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  return {{0, 1, 1.f}, {0, 2, 2.f}, {1, 3, 3.f}, {2, 3, 4.f}};
}

TEST(Csr, BasicDegreesAndNeighbors) {
  const auto edges = diamond();
  const Csr csr = Csr::from_edges(4, edges);
  EXPECT_EQ(csr.num_vertices(), 4u);
  EXPECT_EQ(csr.num_edges(), 4u);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.degree(3), 0u);
  const auto n0 = csr.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
}

TEST(Csr, ReversedBuildsCsc) {
  const auto edges = diamond();
  const Csr csc = Csr::from_edges_reversed(4, edges);
  EXPECT_EQ(csc.degree(3), 2u);  // in-degree of 3
  EXPECT_EQ(csc.degree(0), 0u);
  const auto p3 = csc.neighbors(3);
  ASSERT_EQ(p3.size(), 2u);
  EXPECT_EQ(p3[0], 1u);
  EXPECT_EQ(p3[1], 2u);
}

TEST(Csr, WeightsStayParallelAfterRowSort) {
  // Insert out of order so the per-row sort has to permute weights too.
  std::vector<Edge> edges{{0, 3, 30.f}, {0, 1, 10.f}, {0, 2, 20.f}};
  const Csr csr = Csr::from_edges(4, edges, /*with_weights=*/true);
  const auto n = csr.neighbors(0);
  const auto w = csr.weights(0);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0], 1u);
  EXPECT_EQ(w[0], 10.f);
  EXPECT_EQ(n[1], 2u);
  EXPECT_EQ(w[1], 20.f);
  EXPECT_EQ(n[2], 3u);
  EXPECT_EQ(w[2], 30.f);
}

TEST(Csr, HasEdgeBisection) {
  const Csr csr = Csr::from_edges(4, diamond());
  EXPECT_TRUE(csr.has_edge(0, 1));
  EXPECT_TRUE(csr.has_edge(2, 3));
  EXPECT_FALSE(csr.has_edge(1, 0));
  EXPECT_FALSE(csr.has_edge(3, 0));
}

TEST(Csr, EmptyGraph) {
  const Csr csr = Csr::from_edges(0, {});
  EXPECT_EQ(csr.num_vertices(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
}

TEST(Csr, IsolatedVerticesHaveZeroDegree) {
  std::vector<Edge> edges{{2, 5, 1.f}};
  const Csr csr = Csr::from_edges(8, edges);
  for (VertexId v : {0u, 1u, 3u, 4u, 5u, 6u, 7u}) {
    EXPECT_EQ(csr.degree(v), 0u) << "vertex " << v;
  }
  EXPECT_EQ(csr.degree(2), 1u);
}

TEST(Csr, MemoryBytesIsPlausible) {
  const Csr csr = Csr::from_edges(4, diamond());
  EXPECT_GE(csr.memory_bytes(),
            4 * sizeof(VertexId) + 5 * sizeof(EdgeIndex));
}

TEST(Csr, RectangularAdjacency) {
  // 2 rows, targets up to 99: the shard CSC shape.
  std::vector<Edge> edges{{0, 90, 1.f}, {1, 5, 1.f}, {0, 7, 1.f}};
  const Csr csr = Csr::from_edges_rect(2, 100, edges);
  EXPECT_EQ(csr.num_vertices(), 2u);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.neighbors(0)[0], 7u);
  EXPECT_EQ(csr.neighbors(0)[1], 90u);
  EXPECT_EQ(csr.neighbors(1)[0], 5u);
}

TEST(CsrDeathTest, RectRejectsColumnOverflow) {
  std::vector<Edge> edges{{0, 100, 1.f}};
  EXPECT_DEATH(Csr::from_edges_rect(2, 100, edges), "out of vertex range");
}

TEST(CsrDeathTest, OutOfRangeEndpointAborts) {
  std::vector<Edge> edges{{0, 9, 1.f}};
  EXPECT_DEATH(Csr::from_edges(4, edges), "out of vertex range");
}

}  // namespace
}  // namespace cgraph
