// Unit tests for graph text/binary I/O and ingestion re-indexing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/io.hpp"

namespace cgraph {
namespace {

TEST(Io, ParseReindexesDensely) {
  const auto r = parse_edge_list("100 200\n200 300\n100 300\n");
  EXPECT_EQ(r.num_vertices, 3u);
  EXPECT_EQ(r.edges.size(), 3u);
  // First appearance order: 100 -> 0, 200 -> 1, 300 -> 2.
  EXPECT_EQ(r.edges[0].src, 0u);
  EXPECT_EQ(r.edges[0].dst, 1u);
  EXPECT_EQ(r.edges[2].dst, 2u);
  EXPECT_EQ(r.id_map.at(300), 2u);
}

TEST(Io, ParseWithoutReindexKeepsIds) {
  const auto r = parse_edge_list("5 9\n", /*reindex=*/false);
  EXPECT_EQ(r.edges[0].src, 5u);
  EXPECT_EQ(r.edges[0].dst, 9u);
  EXPECT_EQ(r.num_vertices, 10u);
}

TEST(Io, ParseSkipsCommentsAndBlanks) {
  const auto r = parse_edge_list("# SNAP header\n% konect header\n\n0 1\n");
  EXPECT_EQ(r.edges.size(), 1u);
}

TEST(Io, ParseReadsOptionalWeight) {
  const auto r = parse_edge_list("0 1 2.5\n1 2\n");
  EXPECT_FLOAT_EQ(r.edges[0].weight, 2.5f);
  EXPECT_FLOAT_EQ(r.edges[1].weight, 1.0f);
}

TEST(Io, TextFileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "cg_io_t.txt";
  {
    std::ofstream out(path);
    out << "# test\n7 8\n8 9\n";
  }
  const auto r = load_edge_list_text(path.string());
  EXPECT_EQ(r.edges.size(), 2u);
  EXPECT_EQ(r.num_vertices, 3u);
  std::filesystem::remove(path);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(load_edge_list_text("/nonexistent/nope.txt"),
               std::runtime_error);
}

TEST(Io, TextSaveRoundTrip) {
  EdgeList edges;
  edges.add(3, 1);
  edges.add(0, 2);
  const auto path = std::filesystem::temp_directory_path() / "cg_io_s.txt";
  save_edge_list_text(path.string(), edges);
  const auto r = load_edge_list_text(path.string(), /*reindex=*/false);
  std::filesystem::remove(path);
  ASSERT_EQ(r.edges.size(), 2u);
  EXPECT_EQ(r.edges[0].src, 3u);
  EXPECT_EQ(r.edges[0].dst, 1u);
  EXPECT_EQ(r.edges[1].src, 0u);
}

TEST(Io, TextSaveKeepsNonUniformWeights) {
  EdgeList edges;
  edges.add(0, 1, 2.5f);
  edges.add(1, 2, 1.0f);
  const auto path = std::filesystem::temp_directory_path() / "cg_io_w.txt";
  save_edge_list_text(path.string(), edges);
  const auto r = load_edge_list_text(path.string(), /*reindex=*/false);
  std::filesystem::remove(path);
  ASSERT_EQ(r.edges.size(), 2u);
  EXPECT_FLOAT_EQ(r.edges[0].weight, 2.5f);
  EXPECT_FLOAT_EQ(r.edges[1].weight, 1.0f);
}

TEST(Io, BinaryRoundTripExact) {
  EdgeList edges;
  edges.add(0, 1, 0.5f);
  edges.add(2, 3, 1.5f);
  const auto path = std::filesystem::temp_directory_path() / "cg_io_t.bin";
  save_edge_list_binary(path.string(), edges, 4);
  const auto r = load_edge_list_binary(path.string());
  EXPECT_EQ(r.num_vertices, 4u);
  ASSERT_EQ(r.edges.size(), 2u);
  EXPECT_EQ(r.edges[1].src, 2u);
  EXPECT_EQ(r.edges[1].dst, 3u);
  EXPECT_FLOAT_EQ(r.edges[1].weight, 1.5f);
  std::filesystem::remove(path);
}

// Hostile-input hardening: malformed edge lists must fail with a clear
// error (vertex aliasing, unsigned wraparound, and huge bogus allocations
// were all silent before).

TEST(Io, ParseRejectsNegativeIds) {
  EXPECT_THROW(parse_edge_list("0 1\n-3 2\n"), std::runtime_error);
  EXPECT_THROW(parse_edge_list("0 -1\n", /*reindex=*/false),
               std::runtime_error);
  try {
    parse_edge_list("0 1\n\n# ok\n-3 2\n");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(Io, ParseWithoutReindexRejectsOverflowingId) {
  // 2^40 survives the uint64 parse but cannot fit a 32-bit VertexId; keeping
  // it would silently truncate and alias a low vertex id.
  EXPECT_THROW(parse_edge_list("0 1099511627776\n", /*reindex=*/false),
               std::runtime_error);
  // With re-indexing the raw id is interned, so the same line is fine.
  const auto r = parse_edge_list("0 1099511627776\n", /*reindex=*/true);
  EXPECT_EQ(r.num_vertices, 2u);
}

TEST(Io, ParseStillToleratesNonNumericTokens) {
  const auto r = parse_edge_list("src dst\n0 1\nfoo bar 1.5\n");
  EXPECT_EQ(r.edges.size(), 1u);
}

TEST(Io, BinaryRejectsEdgeCountBeyondFileSize) {
  EdgeList edges;
  edges.add(0, 1);
  const auto path = std::filesystem::temp_directory_path() / "cg_io_ec.bin";
  save_edge_list_binary(path.string(), edges, 2);
  {
    // Corrupt the header's edge count (offset 16: after magic + vertex
    // count) to claim ~10^18 edges; the loader must reject it against the
    // file size instead of attempting the allocation.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16);
    const std::uint64_t absurd = std::uint64_t{1} << 60;
    f.write(reinterpret_cast<const char*>(&absurd), sizeof absurd);
  }
  try {
    load_edge_list_binary(path.string());
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds file size"),
              std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(Io, BinaryRejectsVertexCountOverflowingVertexId) {
  EdgeList edges;
  edges.add(0, 1);
  const auto path = std::filesystem::temp_directory_path() / "cg_io_vc.bin";
  save_edge_list_binary(path.string(), edges, 2);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);  // vertex count field follows the 8-byte magic
    const std::uint64_t absurd = std::uint64_t{1} << 40;
    f.write(reinterpret_cast<const char*>(&absurd), sizeof absurd);
  }
  EXPECT_THROW(load_edge_list_binary(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Io, BinaryRejectsOutOfRangeEndpoints) {
  EdgeList edges;
  edges.add(0, 5);  // endpoint 5 >= declared vertex count 2
  const auto path = std::filesystem::temp_directory_path() / "cg_io_oor.bin";
  save_edge_list_binary(path.string(), edges, 2);
  try {
    load_edge_list_binary(path.string());
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
        << e.what();
  }
  std::filesystem::remove(path);
}

TEST(Io, BinaryRejectsBadMagic) {
  const auto path = std::filesystem::temp_directory_path() / "cg_io_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTCGRAPH_______";
  }
  EXPECT_THROW(load_edge_list_binary(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Io, BinaryRejectsTruncated) {
  EdgeList edges;
  edges.add(0, 1);
  const auto path = std::filesystem::temp_directory_path() / "cg_io_tr.bin";
  save_edge_list_binary(path.string(), edges, 2);
  std::filesystem::resize_file(
      path, std::filesystem::file_size(path) - 4);
  EXPECT_THROW(load_edge_list_binary(path.string()), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cgraph
