// Tests for the observability subsystem: registry concurrency, exposition
// formats, trace spans, and reconciliation of scheduler telemetry against
// ConcurrentRunResult aggregates.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "gen/rmat.hpp"
#include "graph/shard.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "query/bfs.hpp"
#include "query/scheduler.hpp"

namespace cgraph {
namespace {

TEST(MetricsRegistry, ConcurrentCounterBumpsAreExact) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("bumps_total", "concurrent increments");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(c.value(), double(kThreads) * kPerThread);
}

TEST(MetricsRegistry, ConcurrentHandleCreationIsSafe) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      // Everyone races to create the same families and their own series.
      for (int i = 0; i < 200; ++i) {
        reg.counter("shared_total").inc();
        reg.counter("labeled_total", "",
                    {{"thread", std::to_string(t)}})
            .inc();
        reg.histogram("shared_seconds").observe(0.001 * i);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(reg.counter("shared_total").value(), kThreads * 200.0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(
        reg.counter("labeled_total", "", {{"thread", std::to_string(t)}})
            .value(),
        200.0);
  }
  EXPECT_EQ(reg.histogram("shared_seconds").count(),
            std::uint64_t{kThreads} * 200);
}

TEST(MetricsRegistry, PrometheusGoldenOutput) {
  obs::MetricsRegistry reg;
  reg.counter("requests_total", "Requests served").inc(15);
  reg.counter("requests_total", "Requests served", {{"code", "500"}}).inc(3);
  reg.gauge("queue_depth", "Items queued").set(7);
  obs::HistogramSpec spec;
  spec.lo = 0.5;
  spec.growth = 2.0;
  spec.nbins = 3;
  obs::LogHistogram& h =
      reg.histogram("latency_seconds", "Request latency", {}, spec);
  h.observe(0.4);  // bucket le=0.5
  h.observe(0.9);  // bucket le=1
  h.observe(100);  // +Inf

  const std::string expected =
      "# HELP latency_seconds Request latency\n"
      "# TYPE latency_seconds histogram\n"
      "latency_seconds_bucket{le=\"0.5\"} 1\n"
      "latency_seconds_bucket{le=\"1\"} 2\n"
      "latency_seconds_bucket{le=\"2\"} 2\n"
      "latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "latency_seconds_sum 101.3\n"
      "latency_seconds_count 3\n"
      "# HELP queue_depth Items queued\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth 7\n"
      "# HELP requests_total Requests served\n"
      "# TYPE requests_total counter\n"
      "requests_total 15\n"
      "requests_total{code=\"500\"} 3\n";
  EXPECT_EQ(reg.to_prometheus(), expected);
}

TEST(MetricsRegistry, JsonExpositionSmoke) {
  obs::MetricsRegistry reg;
  reg.counter("a_total", "with \"quotes\"").inc(2);
  reg.histogram("b_seconds").observe(0.01);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"name\":\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"help\":\"with \\\"quotes\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness proxy).
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(LogHistogram, BucketsAndPercentiles) {
  obs::HistogramSpec spec;
  spec.lo = 1.0;
  spec.growth = 2.0;
  spec.nbins = 8;  // bounds 1, 2, 4, ..., 128
  obs::LogHistogram h(spec);
  for (int i = 1; i <= 100; ++i) h.observe(double(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 5050.0, 1e-9);
  // Percentile must be monotone and within bucket resolution of the truth.
  double prev = 0;
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
    EXPECT_LE(v, 128.0);
  }
  // p50 of 1..100 is ~50, inside the (32, 64] bucket.
  EXPECT_GT(h.percentile(50), 32.0);
  EXPECT_LE(h.percentile(50), 64.0);
}

TEST(TraceSpan, RecordsIntoRegistry) {
  obs::MetricsRegistry reg;
  {
    obs::TraceSpan span("unit_test", &reg);
  }
  obs::TraceSpan finished("explicit", &reg);
  finished.finish();
  finished.finish();  // double-finish is a no-op
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("cgraph_span_seconds_bucket{span=\"unit_test\""),
            std::string::npos);
  EXPECT_NE(text.find("cgraph_span_seconds_count{span=\"explicit\"} 1"),
            std::string::npos);
}

struct Fixture {
  Graph graph;
  RangePartition partition;
  std::vector<SubgraphShard> shards;
  Cluster cluster;

  explicit Fixture(PartitionId machines, unsigned scale = 9,
                   std::uint64_t seed = 61)
      : graph([&] {
          RmatParams p;
          p.scale = scale;
          p.edge_factor = 6;
          p.seed = seed;
          return Graph::build(generate_rmat(p), VertexId{1} << scale);
        }()),
        partition(RangePartition::balanced_by_edges(graph, machines)),
        shards(build_shards(graph, partition)),
        cluster(machines) {}
};

void check_run_telemetry(const ConcurrentRunResult& run,
                         const obs::MetricsRegistry& reg, std::size_t nqueries,
                         PartitionId machines) {
  // Per-level edge counts across batches reconcile with the aggregate.
  EXPECT_EQ(run.telemetry.total_edges_scanned(), run.total_edges_scanned);
  EXPECT_EQ(run.telemetry.batches.size(), run.batches);
  ASSERT_EQ(run.telemetry.queries.size(), nqueries);

  double straggler_min = 1e18;
  for (const auto& bt : run.telemetry.batches) {
    EXPECT_FALSE(bt.levels.empty());
    ASSERT_EQ(bt.machines.size(), machines);
    std::uint64_t staged_bytes = 0;
    for (const auto& mt : bt.machines) {
      EXPECT_GT(mt.supersteps, 0u);
      staged_bytes += mt.staged_bytes;
    }
    if (machines > 1) {
      EXPECT_GT(staged_bytes, 0u);
    }
    straggler_min = std::min(straggler_min, bt.straggler_ratio);
  }
  EXPECT_GE(straggler_min, 1.0);  // max/mean per superstep is >= 1

  // Each query's wait + execute equals its reported response time.
  for (const auto& qt : run.telemetry.queries) {
    bool found = false;
    for (const auto& qr : run.queries) {
      if (qr.id != qt.id) continue;
      found = true;
      EXPECT_NEAR(qt.wait_sim_seconds + qt.execute_sim_seconds,
                  qr.sim_seconds, 1e-9);
      EXPECT_EQ(qt.visited, qr.visited);
    }
    EXPECT_TRUE(found);
  }

  const std::string text = reg.to_prometheus();
  std::ostringstream want_queries;
  want_queries << "cgraph_queries_total " << nqueries << "\n";
  EXPECT_NE(text.find(want_queries.str()), std::string::npos);
  EXPECT_NE(text.find("cgraph_query_response_seconds_count "),
            std::string::npos);
  EXPECT_NE(text.find("cgraph_superstep_edges_total{level=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cgraph_superstep_barrier_wait_seconds_total"),
            std::string::npos);
  EXPECT_NE(text.find("cgraph_machine_supersteps_total{machine=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cgraph_fabric_staged_bytes_total{machine=\"0\"}"),
            std::string::npos);
}

TEST(SchedulerTelemetry, BitParallelReconcilesWithAggregates) {
  Fixture f(2);
  const auto queries = make_random_queries(f.graph, 96, 3, 9);
  obs::MetricsRegistry reg;
  SchedulerOptions opts;
  opts.batch_width = 32;  // 3 batches
  opts.metrics = &reg;
  const auto run = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                          queries, opts);
  check_run_telemetry(run, reg, queries.size(), 2);

  // The response histogram saw every query.
  const std::string text = reg.to_prometheus();
  std::ostringstream want;
  want << "cgraph_query_response_seconds_count " << queries.size() << "\n";
  EXPECT_NE(text.find(want.str()), std::string::npos);
}

TEST(SchedulerTelemetry, QueueEngineReconcilesToo) {
  Fixture f(3);
  const auto queries = make_random_queries(f.graph, 40, 3, 11);
  obs::MetricsRegistry reg;
  SchedulerOptions opts;
  opts.batch_width = 20;
  opts.use_bit_parallel = false;
  opts.metrics = &reg;
  const auto run = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                          queries, opts);
  check_run_telemetry(run, reg, queries.size(), 3);
}

TEST(SchedulerTelemetry, FaultPlanCountersReconcileExactly) {
  Fixture f(3);
  const auto queries = make_random_queries(f.graph, 48, 3, 13);

  auto plan = std::make_shared<FaultPlan>(1337);
  LinkFaultSpec mix;
  mix.drop = 0.15;
  mix.duplicate = 0.10;
  plan->set_default_link(mix);
  f.cluster.fabric().install_fault_plan(plan);

  obs::MetricsRegistry reg;
  SchedulerOptions opts;
  opts.batch_width = 24;
  opts.metrics = &reg;
  const auto run = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                          queries, opts);

  // Results stay exact under the fault plan (the reliability protocols do
  // the work); each query's visited count matches the serial reference.
  for (const auto& qr : run.queries) {
    for (const auto& q : queries) {
      if (q.id != qr.id) continue;
      EXPECT_EQ(qr.visited, khop_reach_count(f.graph, q.source, q.k))
          << "query " << q.id;
    }
  }

  // Exact per-attempt accounting: every transmission attempt a machine
  // made in a batch landed in delivered or dropped, with duplicates
  // counted as an extra deposit.
  std::uint64_t dropped_total = 0;
  std::uint64_t suppressed_total = 0;
  for (const auto& bt : run.telemetry.batches) {
    ASSERT_EQ(bt.machines.size(), 3u);
    for (const auto& mt : bt.machines) {
      const std::uint64_t attempts = mt.staged_packets + mt.async_packets +
                                     mt.ack_packets + mt.retried_packets;
      EXPECT_EQ(mt.delivered_packets,
                attempts - mt.dropped_packets + mt.duplicated_packets)
          << "batch " << bt.index << " machine " << mt.machine;
      EXPECT_EQ(mt.delivery_failed_packets, 0u);
      dropped_total += mt.dropped_packets;
      suppressed_total += mt.dedup_suppressed_packets;
    }
  }
  // Non-vacuous: at 15% drop / 10% duplicate the fault layer must have
  // actually fired, and duplicates must have hit the dedup filters.
  EXPECT_GT(dropped_total, 0u);
  EXPECT_GT(suppressed_total, 0u);

  // The new counters reach the exposition endpoint with machine labels.
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("cgraph_fabric_dropped_packets_total{machine=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cgraph_fabric_delivered_packets_total{machine=\"0\"}"),
            std::string::npos);
  EXPECT_NE(
      text.find("cgraph_fabric_dedup_suppressed_packets_total{machine=\"0\"}"),
      std::string::npos);

  f.cluster.fabric().install_fault_plan(nullptr);
}

TEST(SchedulerTelemetry, SummaryMentionsEveryLevel) {
  Fixture f(2, /*scale=*/8);
  const auto queries = make_random_queries(f.graph, 8, 3, 5);
  obs::MetricsRegistry reg;
  SchedulerOptions opts;
  opts.metrics = &reg;
  const auto run = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                          queries, opts);
  const std::string s = run.telemetry.summary();
  for (const auto& bt : run.telemetry.batches) {
    for (const auto& lt : bt.levels) {
      EXPECT_NE(s.find("level " + std::to_string(lt.level)),
                std::string::npos);
    }
  }
}

TEST(Sink, WritesPrometheusAndJsonFiles) {
  obs::MetricsRegistry reg;
  reg.counter("file_total", "file sink test").inc(4);
  const auto dir = std::filesystem::temp_directory_path() /
                   "cgraph_obs_test" / "nested";
  const auto prom = dir / "metrics.prom";
  const auto json = dir / "metrics.json";
  std::filesystem::remove_all(dir.parent_path());

  ASSERT_TRUE(obs::write_metrics_file(prom.string(), reg));
  ASSERT_TRUE(obs::write_metrics_file(json.string(), reg));

  std::ifstream pin(prom);
  std::stringstream pbuf;
  pbuf << pin.rdbuf();
  EXPECT_EQ(pbuf.str(), reg.to_prometheus());

  std::ifstream jin(json);
  std::stringstream jbuf;
  jbuf << jin.rdbuf();
  EXPECT_EQ(jbuf.str(), reg.to_json());
  std::filesystem::remove_all(dir.parent_path());
}

// Prometheus exposition: label VALUES may contain quotes, backslashes, and
// newlines; the text format requires them escaped as \" \\ \n inside the
// quoted value (unescaped they corrupt every line that follows).
TEST(MetricsExposition, LabelValuesAreEscaped) {
  obs::MetricsRegistry reg;
  reg.counter("escaped_total", "label escaping",
              {{"path", "C:\\graphs\\\"prod\".bin"}})
      .inc();
  reg.counter("escaped_total", "label escaping", {{"path", "a\nb"}})
      .inc(2.0);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(
      text.find("escaped_total{path=\"C:\\\\graphs\\\\\\\"prod\\\".bin\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("escaped_total{path=\"a\\nb\"} 2"), std::string::npos);
  // No raw newline may survive inside a label value: every exposition line
  // must start with a comment, a metric name, or be empty.
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(line[0] == '#' || std::isalpha(line[0]) != 0)
        << "corrupt exposition line: " << line;
  }
  // JSON exposition escapes the same values.
  const std::string json = reg.to_json();
  EXPECT_EQ(json.find("\n\""), std::string::npos);
  EXPECT_NE(json.find("a\\nb"), std::string::npos);
}

// Histogram buckets under concurrent writers: cumulative bucket counts in
// the exposition snapshot must be nondecreasing in `le` and capped by the
// series count, whatever interleaving the writer threads produce.
TEST(MetricsExposition, BucketsStayMonotoneUnderConcurrentWriters) {
  obs::MetricsRegistry reg;
  obs::LogHistogram& h = reg.histogram("concurrent_seconds", "monotone");
  std::atomic<bool> stop{false};
  constexpr int kThreads = 4;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, &stop, t] {
      std::uint64_t x = 88172645463325252ull + static_cast<unsigned>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        h.observe(1e-6 * static_cast<double>(x % 1000000));
      }
    });
  }
  // Snapshot the exposition repeatedly while writers hammer the buckets.
  for (int round = 0; round < 50; ++round) {
    std::uint64_t cumulative = 0;
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i <= h.nbins(); ++i) {
      cumulative += h.bucket_count(i);
      EXPECT_GE(cumulative, prev);
      prev = cumulative;
    }
    const std::string text = reg.to_prometheus();
    EXPECT_NE(text.find("concurrent_seconds_bucket"), std::string::npos);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  // Quiesced: the cumulative +Inf bucket equals the total count exactly.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= h.nbins(); ++i) total += h.bucket_count(i);
  EXPECT_EQ(total, h.count());
}

}  // namespace
}  // namespace cgraph
