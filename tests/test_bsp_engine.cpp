// Tests for the partition-centric BSP engine (paper Listing 1 semantics):
// message routing by global vertex id, vote-to-halt termination, local
// loopback, and a small multi-superstep propagation program.
#include <gtest/gtest.h>

#include <atomic>

#include "engine/bsp_engine.hpp"
#include "gen/rmat.hpp"
#include "graph/shard.hpp"

namespace cgraph {
namespace {

Graph line_graph(VertexId n) {
  EdgeList el;
  for (VertexId v = 0; v + 1 < n; ++v) el.add(v, v + 1);
  return Graph::build(std::move(el), n);
}

struct TestSetup {
  Graph graph;
  RangePartition partition;
  std::vector<SubgraphShard> shards;
  explicit TestSetup(Graph g, PartitionId machines)
      : graph(std::move(g)),
        partition(RangePartition::balanced_by_vertices(graph.num_vertices(),
                                                       machines)),
        shards(build_shards(graph, partition)) {}
};

// Program 1: every partition halts immediately -> exactly one superstep.
struct HaltNow final : PartitionProgram<int> {
  void compute(PartitionContext<int>& ctx) override { ctx.vote_to_halt(); }
};

TEST(BspEngine, ImmediateHaltTerminatesInOneSuperstep) {
  TestSetup ts(line_graph(8), 2);
  Cluster cluster(2);
  const BspStats stats = run_partition_programs<int>(
      cluster, ts.shards, ts.partition,
      [](PartitionId) { return std::make_unique<HaltNow>(); });
  EXPECT_EQ(stats.supersteps, 1u);
  EXPECT_EQ(stats.packets, 0u);
}

// Program 2: a token is passed vertex-to-vertex down a line graph; each
// hop is one superstep. Tests cross-partition sendTo + reactivation.
struct TokenRelay final : PartitionProgram<std::uint32_t> {
  explicit TokenRelay(std::atomic<std::uint32_t>* last) : last_hop(last) {}
  std::atomic<std::uint32_t>* last_hop;

  void init(PartitionContext<std::uint32_t>& ctx) override {
    if (ctx.is_local_vertex(0)) {
      ctx.send_to(0, 0);  // kick off: deliver hop 0 to vertex 0
    }
  }

  void compute(PartitionContext<std::uint32_t>& ctx) override {
    for (const auto& msg : ctx.incoming()) {
      EXPECT_TRUE(ctx.is_local_vertex(msg.target));
      last_hop->store(msg.payload, std::memory_order_relaxed);
      const VertexId next = msg.target + 1;
      if (next < ctx.num_all_vertices()) {
        ctx.send_to(next, msg.payload + 1);
      }
    }
    ctx.vote_to_halt();
  }
};

TEST(BspEngine, TokenCrossesPartitions) {
  constexpr VertexId kN = 12;
  TestSetup ts(line_graph(kN), 3);
  Cluster cluster(3);
  std::atomic<std::uint32_t> last_hop{0};
  const BspStats stats = run_partition_programs<std::uint32_t>(
      cluster, ts.shards, ts.partition, [&](PartitionId) {
        return std::make_unique<TokenRelay>(&last_hop);
      });
  // The token visits all 12 vertices; hop count ends at 11.
  EXPECT_EQ(last_hop.load(), kN - 1);
  // One superstep per hop (plus the kick-off and drain steps).
  EXPECT_GE(stats.supersteps, static_cast<std::uint64_t>(kN));
  EXPECT_GT(stats.packets, 0u);  // it crossed machine boundaries
}

// Program 3: local loopback only — messages to local vertices must not
// touch the wire.
struct LocalEcho final : PartitionProgram<int> {
  void init(PartitionContext<int>& ctx) override {
    ctx.send_to(ctx.local_vertices().begin, 1);
  }
  void compute(PartitionContext<int>& ctx) override {
    for (const auto& msg : ctx.incoming()) {
      if (msg.payload < 3) ctx.send_to(msg.target, msg.payload + 1);
    }
    ctx.vote_to_halt();
  }
};

TEST(BspEngine, LocalMessagesBypassFabric) {
  TestSetup ts(line_graph(8), 2);
  Cluster cluster(2);
  const BspStats stats = run_partition_programs<int>(
      cluster, ts.shards, ts.partition,
      [](PartitionId) { return std::make_unique<LocalEcho>(); });
  EXPECT_EQ(stats.packets, 0u);
  EXPECT_GE(stats.supersteps, 3u);
}

TEST(BspEngine, ListingOneQueries) {
  TestSetup ts(line_graph(10), 2);
  Cluster cluster(2);

  struct Inspect final : PartitionProgram<int> {
    void compute(PartitionContext<int>& ctx) override {
      if (ctx.partition_id() == 0) {
        EXPECT_TRUE(ctx.is_local_vertex(0));
        EXPECT_FALSE(ctx.is_local_vertex(9));
        // Vertex 5 is the remote destination of local edge 4 -> 5.
        EXPECT_TRUE(ctx.is_boundary_vertex(5));
        EXPECT_FALSE(ctx.is_boundary_vertex(9));
        EXPECT_TRUE(ctx.has_vertex(5));
        EXPECT_FALSE(ctx.has_vertex(9));
        EXPECT_EQ(ctx.local_vertices().size(), 5u);
        EXPECT_EQ(ctx.boundary_vertices().size(), 1u);
        EXPECT_EQ(ctx.num_all_vertices(), 10u);
      }
      ctx.vote_to_halt();
    }
  };

  run_partition_programs<int>(
      cluster, ts.shards, ts.partition,
      [](PartitionId) { return std::make_unique<Inspect>(); });
}

TEST(BspEngine, SimTimeGrowsWithSupersteps) {
  TestSetup ts(line_graph(16), 2);
  Cluster cluster(2);
  std::atomic<std::uint32_t> sink{0};
  const BspStats stats = run_partition_programs<std::uint32_t>(
      cluster, ts.shards, ts.partition,
      [&](PartitionId) { return std::make_unique<TokenRelay>(&sink); });
  EXPECT_GT(stats.sim_seconds, 0.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

}  // namespace
}  // namespace cgraph
