// Tests for the algorithm library: SSSP, WCC, triangle counting —
// distributed engines validated against serial references across machine
// counts and graph shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/constrained_reach.hpp"
#include "algo/sssp.hpp"
#include "algo/triangles.hpp"
#include "algo/wcc.hpp"
#include "gen/random_graphs.hpp"
#include "gen/rmat.hpp"
#include "graph/shard.hpp"
#include "query/bfs.hpp"

namespace cgraph {
namespace {

Graph weighted_rmat(unsigned scale, double ef, std::uint64_t seed) {
  EdgeList el = generate_rmat({.scale = scale, .edge_factor = ef,
                               .seed = seed});
  assign_random_weights(el, 0.5f, 4.0f, seed + 1);
  GraphBuildOptions opts;
  opts.with_weights = true;
  return Graph::build(std::move(el), VertexId{1} << scale, opts);
}

// ---------------- SSSP ----------------

TEST(SsspSerial, HandCheckedDistances) {
  EdgeList el;
  el.add(0, 1, 1.0f);
  el.add(0, 2, 4.0f);
  el.add(1, 2, 2.0f);
  el.add(2, 3, 1.0f);
  GraphBuildOptions opts;
  opts.with_weights = true;
  const Graph g = Graph::build(std::move(el), 5, opts);
  const auto d = sssp_serial(g, 0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 3.0);  // via 1, not the direct 4.0 edge
  EXPECT_DOUBLE_EQ(d[3], 4.0);
  EXPECT_EQ(d[4], kUnreachable);
}

class SsspSweep : public ::testing::TestWithParam<PartitionId> {};

TEST_P(SsspSweep, DistributedMatchesDijkstra) {
  const Graph g = weighted_rmat(9, 6, 33);
  const auto part = RangePartition::balanced_by_edges(g, GetParam());
  const auto shards = build_shards(g, part);
  Cluster cluster(GetParam());
  const SsspResult r = run_sssp(cluster, shards, part, /*source=*/3);
  const auto ref = sssp_serial(g, 3);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (ref[v] == kUnreachable) {
      EXPECT_EQ(r.distance[v], kUnreachable) << "vertex " << v;
    } else {
      EXPECT_NEAR(r.distance[v], ref[v], 1e-9) << "vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Machines, SsspSweep, ::testing::Values(1, 2, 3, 5));

TEST(Sssp, UnweightedEqualsBfsDepth) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 5;
  p.seed = 44;
  const Graph g = Graph::build(generate_rmat(p), VertexId{1} << p.scale);
  const auto part = RangePartition::balanced_by_edges(g, 2);
  const auto shards = build_shards(g, part);
  Cluster cluster(2);
  const SsspResult r = run_sssp(cluster, shards, part, 0);
  const auto ref = sssp_serial(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (ref[v] != kUnreachable) {
      EXPECT_DOUBLE_EQ(r.distance[v], ref[v]);
    }
  }
}

// ---------------- WCC ----------------

TEST(WccSerial, DisjointCliques) {
  EdgeList el;
  el.add(0, 1);
  el.add(1, 2);
  el.add(3, 4);
  // 5 isolated
  const Graph g = Graph::build(std::move(el), 6);
  const auto label = wcc_serial(g);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[1], label[2]);
  EXPECT_EQ(label[3], label[4]);
  EXPECT_NE(label[0], label[3]);
  EXPECT_EQ(label[5], 5u);
}

class WccSweep : public ::testing::TestWithParam<PartitionId> {};

TEST_P(WccSweep, DistributedMatchesUnionFind) {
  RmatParams p;
  p.scale = 9;
  p.edge_factor = 2;  // sparse -> several components
  p.seed = 55;
  const Graph g = Graph::build(generate_rmat(p), VertexId{1} << p.scale);
  const auto part = RangePartition::balanced_by_edges(g, GetParam());
  const auto shards = build_shards(g, part);
  Cluster cluster(GetParam());
  const WccResult r = run_wcc(cluster, shards, part);
  const auto ref = wcc_serial(g);
  ASSERT_EQ(r.label.size(), ref.size());
  std::uint64_t ref_components = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.label[v], ref[v]) << "vertex " << v;
    if (ref[v] == v) ++ref_components;
  }
  EXPECT_EQ(r.num_components, ref_components);
}

INSTANTIATE_TEST_SUITE_P(Machines, WccSweep, ::testing::Values(1, 2, 4, 6));

TEST(Wcc, DirectedEdgesStillJoinComponents) {
  // WCC ignores direction: 0 -> 1 <- 2 is one component.
  EdgeList el;
  el.add(0, 1);
  el.add(2, 1);
  const Graph g = Graph::build(std::move(el), 3);
  const auto part = RangePartition::balanced_by_vertices(3, 3);
  const auto shards = build_shards(g, part);
  Cluster cluster(3);
  const WccResult r = run_wcc(cluster, shards, part);
  EXPECT_EQ(r.label[0], 0u);
  EXPECT_EQ(r.label[1], 0u);
  EXPECT_EQ(r.label[2], 0u);
  EXPECT_EQ(r.num_components, 1u);
}

// ---------------- Triangles ----------------

Graph symmetric_graph(EdgeList el, VertexId n) {
  GraphBuildOptions opts;
  opts.symmetrize = true;
  return Graph::build(std::move(el), n, opts);
}

TEST(TrianglesSerial, HandCounted) {
  // Triangle 0-1-2 plus a pendant edge 2-3, plus triangle 2-3-4.
  EdgeList el;
  el.add(0, 1);
  el.add(1, 2);
  el.add(0, 2);
  el.add(2, 3);
  el.add(3, 4);
  el.add(2, 4);
  const Graph g = symmetric_graph(std::move(el), 5);
  EXPECT_EQ(triangle_count_serial(g), 2u);
}

TEST(TrianglesSerial, CompleteGraphK5) {
  EdgeList el;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) el.add(u, v);
  }
  const Graph g = symmetric_graph(std::move(el), 5);
  EXPECT_EQ(triangle_count_serial(g), 10u);  // C(5,3)
}

TEST(TrianglesSerial, TriangleFreeBipartite) {
  EdgeList el;
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = 4; v < 8; ++v) el.add(u, v);
  }
  const Graph g = symmetric_graph(std::move(el), 8);
  EXPECT_EQ(triangle_count_serial(g), 0u);
}

class TriangleSweep : public ::testing::TestWithParam<PartitionId> {};

TEST_P(TriangleSweep, DistributedMatchesSerial) {
  EdgeList el = generate_rmat({.scale = 9, .edge_factor = 6, .seed = 66});
  const Graph g = symmetric_graph(std::move(el), VertexId{1} << 9);
  const auto part = RangePartition::balanced_by_edges(g, GetParam());
  const auto shards = build_shards(g, part);
  Cluster cluster(GetParam());
  const TriangleResult r = run_triangle_count(cluster, shards, part);
  EXPECT_EQ(r.triangles, triangle_count_serial(g));
  EXPECT_GT(r.sim_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Machines, TriangleSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(Triangles, CrossPartitionTriangle) {
  // Triangle spanning three partitions: every intersection is remote.
  EdgeList el;
  el.add(0, 1);
  el.add(1, 2);
  el.add(0, 2);
  const Graph g = symmetric_graph(std::move(el), 3);
  const auto part = RangePartition::balanced_by_vertices(3, 3);
  const auto shards = build_shards(g, part);
  Cluster cluster(3);
  const TriangleResult r = run_triangle_count(cluster, shards, part);
  EXPECT_EQ(r.triangles, 1u);
  EXPECT_GT(r.bytes, 0u);  // candidate sets crossed the wire
}

// ---------------- Constrained reachability ----------------

TEST(ConstrainedReach, HandChecked) {
  // 0 -1-> 1 -1-> 2 -1-> 3, plus expensive shortcut 0 -9-> 2.
  EdgeList el;
  el.add(0, 1, 1.0f);
  el.add(1, 2, 1.0f);
  el.add(2, 3, 1.0f);
  el.add(0, 2, 9.0f);
  GraphBuildOptions opts;
  opts.with_weights = true;
  const Graph g = Graph::build(std::move(el), 4, opts);

  // 2 hops, budget 10: 1 (1.0), 2 (2.0 via 1), and 3 (10.0 through the
  // expensive shortcut 0->2->3) are all admitted.
  const auto r = constrained_reach(g, 0, 2, 10.0);
  EXPECT_EQ(r.admitted, 3u);
  EXPECT_EQ(r.hop_reachable, 3u);
  EXPECT_DOUBLE_EQ(r.distance[2], 2.0);  // cheap 2-hop beats 9.0 shortcut
  EXPECT_DOUBLE_EQ(r.distance[3], 10.0);

  // 2 hops, budget 1.5: only vertex 1 fits the budget.
  const auto tight = constrained_reach(g, 0, 2, 1.5);
  EXPECT_EQ(tight.admitted, 1u);
  EXPECT_EQ(tight.hop_reachable, 3u);  // hop metric ignores the budget

  // 1 hop, budget 10: vertex 1 (1.0) and vertex 2 via the 9.0 shortcut;
  // the cheap 2-hop route to 2 exceeds the hop bound.
  const auto onehop = constrained_reach(g, 0, 1, 10.0);
  EXPECT_EQ(onehop.admitted, 2u);
  EXPECT_DOUBLE_EQ(onehop.distance[2], 9.0);

  // Hop-bound integrity: a 3-edge path must NOT be credited at 2 hops
  // even when in-round cascading could sneak it through.
  const auto nohop3 = constrained_reach(g, 0, 2, 3.5);
  // Within budget 3.5: 1 (1.0), 2 (2.0); 3's only 2-hop path costs 10.
  EXPECT_EQ(nohop3.admitted, 2u);
}

TEST(ConstrainedReach, BudgetInfinityMatchesHopReach) {
  const Graph g = weighted_rmat(9, 5, 77);
  const auto r = constrained_reach(g, 1, 3, 1e18);
  EXPECT_EQ(r.admitted, r.hop_reachable);
}

class ConstrainedSweep : public ::testing::TestWithParam<PartitionId> {};

TEST_P(ConstrainedSweep, DistributedMatchesSerial) {
  const Graph g = weighted_rmat(9, 6, 79);
  const auto part = RangePartition::balanced_by_edges(g, GetParam());
  const auto shards = build_shards(g, part);
  Cluster cluster(GetParam());
  for (const double budget : {2.0, 6.0, 20.0}) {
    const auto serial = constrained_reach(g, 4, 4, budget);
    const auto dist = run_constrained_reach(cluster, shards, part, 4, 4,
                                            budget);
    EXPECT_EQ(dist.admitted, serial.admitted) << "budget " << budget;
    EXPECT_EQ(dist.hop_reachable, serial.hop_reachable);
    for (VertexId v = 0; v < g.num_vertices(); v += 17) {
      if (serial.distance[v] != std::numeric_limits<double>::infinity()) {
        EXPECT_NEAR(dist.distance[v], serial.distance[v], 1e-9)
            << "vertex " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Machines, ConstrainedSweep,
                         ::testing::Values(1, 2, 3, 5));

TEST(ConstrainedReach, UnweightedGraphCountsHops) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 4;
  p.seed = 81;
  const Graph g = Graph::build(generate_rmat(p), VertexId{1} << p.scale);
  // Budget k with unit weights == plain k-hop reachability.
  const auto r = constrained_reach(g, 0, 3, 3.0);
  EXPECT_EQ(r.admitted, khop_reach_count(g, 0, 3));
}

}  // namespace
}  // namespace cgraph
