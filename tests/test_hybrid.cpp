// Differential suite for direction-optimizing traversal (DESIGN.md §12):
// forced-push, forced-pull, and the hybrid heuristic must produce
// bit-identical visited planes — against each other and against the serial
// BFS reference — for every thread count, batch width, fault plan, and
// crash schedule. Planes (via the engines' visited_out) are compared
// rather than just visited counts: a vertex double-counted in one mode and
// missed in another could cancel in an aggregate and hide a divergence.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gen/random_graphs.hpp"
#include "graph/shard.hpp"
#include "net/fault.hpp"
#include "query/bfs.hpp"
#include "query/msbfs.hpp"
#include "util/rng.hpp"

namespace cgraph {
namespace {

DirectionOptions dir(TraversalDirection mode) {
  DirectionOptions d;
  d.mode = mode;
  return d;
}

const TraversalDirection kAllModes[] = {TraversalDirection::kPush,
                                        TraversalDirection::kPull,
                                        TraversalDirection::kHybrid};

/// Queries with spread sources and mixed hop bounds (including k=0 when
/// width allows, the empty-traversal edge case).
std::vector<KHopQuery> make_queries(const Graph& g, std::size_t count) {
  std::vector<KHopQuery> qs;
  qs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    qs.push_back({static_cast<QueryId>(i),
                  static_cast<VertexId>((i * 37 + 5) % g.num_vertices()),
                  static_cast<Depth>(i % 6)});
  }
  return qs;
}

/// Serial reference plane: bit (v, q) set iff v is within k_q hops of
/// query q's source (the source itself included, matching seed()).
QueryBitRows reference_plane(const Graph& g,
                             std::span<const KHopQuery> queries) {
  QueryBitRows plane(g.num_vertices(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto depths = bfs_levels(g, queries[q].source, queries[q].k);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (depths[v] != kUnvisitedDepth) plane.set(v, q);
    }
  }
  return plane;
}

void expect_planes_equal(const QueryBitRows& got, const QueryBitRows& want,
                         const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.words_per_row(), want.words_per_row()) << what;
  for (std::size_t v = 0; v < got.rows(); ++v) {
    const Word* a = got.row(v);
    const Word* b = want.row(v);
    for (std::size_t w = 0; w < got.words_per_row(); ++w) {
      ASSERT_EQ(a[w], b[w]) << what << ": plane mismatch at row " << v
                            << " word " << w;
    }
  }
}

struct Bed {
  Graph g;
  PartitionId machines;
  RangePartition part;
  std::vector<SubgraphShard> shards;
};

Bed make_bed(VertexId n, EdgeIndex m, std::uint64_t seed,
             PartitionId machines) {
  Bed bed;
  bed.g = Graph::build(generate_uniform(n, m, seed));
  bed.machines = machines;
  bed.part = RangePartition::balanced_by_edges(bed.g, machines);
  bed.shards = build_shards(bed.g, bed.part);
  return bed;
}

/// Same probabilistic link-fault mix as the chaos suite (combined ~35%,
/// inside the retry budgets).
void add_link_mix(FaultPlan& plan, std::uint64_t seed) {
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  LinkFaultSpec mix;
  mix.drop = 0.05 + 0.15 * rng.next_double();
  mix.duplicate = 0.10 * rng.next_double();
  mix.reorder = 0.10 * rng.next_double();
  mix.delay = 0.05 * rng.next_double();
  mix.delay_polls = 1 + static_cast<std::uint32_t>(rng.next_bounded(3));
  plan.set_default_link(mix);
}

// ---------------------------------------------------------------------------
// Single-machine engine: every mode x thread count x batch width.

TEST(HybridSingle, PlaneExactAcrossModesThreadsAndWidths) {
  const Graph g = Graph::build(generate_uniform(600, 3000, 11));
  // Widths straddling the 64-bit word boundary, plus singleton.
  for (const std::size_t width : {std::size_t{1}, std::size_t{63},
                                  std::size_t{64}, std::size_t{65}}) {
    const auto queries = make_queries(g, width);
    const QueryBitRows want = reference_plane(g, queries);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      for (const TraversalDirection mode : kAllModes) {
        QueryBitRows got;
        const auto r = msbfs_batch(g, queries, threads, dir(mode), &got);
        expect_planes_equal(
            got, want,
            "width=" + std::to_string(width) + " threads=" +
                std::to_string(threads) + " mode=" + to_string(mode));
        ASSERT_EQ(r.visited.size(), width);
      }
    }
  }
}

TEST(HybridSingle, FullWidth512Batch) {
  const Graph g = Graph::build(generate_uniform(220, 1400, 29));
  const auto queries = make_queries(g, 512);
  const QueryBitRows want = reference_plane(g, queries);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const TraversalDirection mode : kAllModes) {
      QueryBitRows got;
      const auto r = msbfs_batch(g, queries, threads, dir(mode), &got);
      expect_planes_equal(got, want,
                          std::string("512-wide threads=") +
                              std::to_string(threads) + " mode=" +
                              to_string(mode));
      ASSERT_EQ(r.visited.size(), queries.size());
    }
  }
}

TEST(HybridSingle, VisitedCountsAgreeAcrossModes) {
  const Graph g = Graph::build(generate_uniform(500, 4000, 17));
  const auto queries = make_queries(g, 64);
  const auto push = msbfs_batch(g, queries, 1, dir(TraversalDirection::kPush));
  const auto pull = msbfs_batch(g, queries, 1, dir(TraversalDirection::kPull));
  const auto hyb =
      msbfs_batch(g, queries, 1, dir(TraversalDirection::kHybrid));
  EXPECT_EQ(push.visited, pull.visited);
  EXPECT_EQ(push.visited, hyb.visited);
  EXPECT_EQ(push.levels, pull.levels);
  EXPECT_EQ(push.levels, hyb.levels);
}

TEST(HybridSingle, HybridDegradesToPushWithoutInEdges) {
  GraphBuildOptions opts;
  opts.build_in_edges = false;
  const Graph g = Graph::build(generate_uniform(300, 2400, 7), opts);
  ASSERT_FALSE(g.has_in_edges());
  const auto queries = make_queries(g, 32);
  QueryBitRows got;
  const auto r = msbfs_batch(g, queries, 1,
                             dir(TraversalDirection::kHybrid), &got);
  // Correct answers, and every level recorded as push: the heuristic must
  // never pick pull without a CSC to pull from.
  const Graph g_in = Graph::build(generate_uniform(300, 2400, 7));
  expect_planes_equal(got, reference_plane(g_in, queries),
                      "hybrid without in-edges");
  for (const auto& lt : r.level_trace) {
    EXPECT_EQ(lt.pull_machines, 0u) << "level " << lt.level;
    EXPECT_EQ(lt.push_machines, 1u) << "level " << lt.level;
  }
}

TEST(HybridSingle, ForcedModesRecordedInLevelTrace) {
  const Graph g = Graph::build(generate_uniform(400, 3200, 23));
  const auto queries = make_queries(g, 64);
  const auto push = msbfs_batch(g, queries, 1, dir(TraversalDirection::kPush));
  for (const auto& lt : push.level_trace) {
    EXPECT_EQ(lt.push_machines, 1u);
    EXPECT_EQ(lt.pull_machines, 0u);
  }
  const auto pull = msbfs_batch(g, queries, 1, dir(TraversalDirection::kPull));
  for (const auto& lt : pull.level_trace) {
    EXPECT_EQ(lt.push_machines, 0u);
    EXPECT_EQ(lt.pull_machines, 1u);
  }
  // Scout counts are the heuristic's input and must be populated either way
  // (level 0 carries the seeds' out-degrees).
  ASSERT_FALSE(push.level_trace.empty());
  EXPECT_EQ(push.level_trace[0].scout_edges, pull.level_trace[0].scout_edges);
}

// ---------------------------------------------------------------------------
// Distributed engine: modes x machines x threads, clean links.

TEST(HybridDistributed, PlaneExactAcrossModesMachinesThreads) {
  for (const PartitionId machines : {PartitionId{1}, PartitionId{3}}) {
    const Bed bed = make_bed(240, 1600, 31, machines);
    for (const std::size_t width :
         {std::size_t{1}, std::size_t{64}, std::size_t{65}}) {
      const auto queries = make_queries(bed.g, width);
      const QueryBitRows want = reference_plane(bed.g, queries);
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        for (const TraversalDirection mode : kAllModes) {
          Cluster cluster(machines);
          cluster.set_compute_threads(threads);
          QueryBitRows got;
          run_distributed_msbfs(cluster, bed.shards, bed.part, queries,
                                dir(mode), &got);
          expect_planes_equal(
              got, want,
              "machines=" + std::to_string(machines) + " width=" +
                  std::to_string(width) + " threads=" +
                  std::to_string(threads) + " mode=" + to_string(mode));
        }
      }
    }
  }
}

TEST(HybridDistributed, PerPartitionDecisionsRecorded) {
  const Bed bed = make_bed(300, 2400, 13, 3);
  const auto queries = make_queries(bed.g, 64);
  Cluster cluster(3);
  const auto r = run_distributed_msbfs(cluster, bed.shards, bed.part,
                                       queries,
                                       dir(TraversalDirection::kPull));
  for (const auto& lt : r.level_trace) {
    EXPECT_EQ(lt.pull_machines, 3u) << "level " << lt.level;
    EXPECT_EQ(lt.push_machines, 0u) << "level " << lt.level;
  }
}

// ---------------------------------------------------------------------------
// Chaos: probabilistic link faults under every mode.

class HybridChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridChaos, PlaneExactUnderLinkFaults) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  const auto n = static_cast<VertexId>(64 + rng.next_bounded(200));
  const auto m = static_cast<EdgeIndex>(
      1 + rng.next_bounded(static_cast<std::uint64_t>(n) * 5));
  const auto machines = static_cast<PartitionId>(2 + rng.next_bounded(3));
  const Bed bed = make_bed(n, m, rng.next(), machines);
  const auto queries = make_queries(bed.g, 1 + rng.next_bounded(64));
  const QueryBitRows want = reference_plane(bed.g, queries);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const TraversalDirection mode : kAllModes) {
      Cluster cluster(machines);
      cluster.set_compute_threads(threads);
      FaultPlan plan(seed);
      add_link_mix(plan, seed);
      cluster.fabric().install_fault_plan(
          std::make_shared<FaultPlan>(std::move(plan)));
      QueryBitRows got;
      run_distributed_msbfs(cluster, bed.shards, bed.part, queries,
                            dir(mode), &got);
      expect_planes_equal(got, want,
                          "chaos seed=" + std::to_string(seed) +
                              " threads=" + std::to_string(threads) +
                              " mode=" + to_string(mode));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridChaos,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---------------------------------------------------------------------------
// Recovery: crash at every superstep of the run, every mode. The replay
// must reproduce the fault-free plane AND the fault-free simulated
// makespan exactly — in pull/hybrid mode that additionally pins the
// direction heuristic's hysteresis state across the checkpoint/restore
// cut (it is part of the checkpoint payload).

class HybridRecovery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridRecovery, CrashAtEverySuperstepEveryMode) {
  const std::uint64_t seed = GetParam();
  const Bed bed = make_bed(150, 900, seed * 101 + 3, 3);
  const auto queries = make_queries(bed.g, 48);
  const QueryBitRows want = reference_plane(bed.g, queries);

  for (const TraversalDirection mode : kAllModes) {
    // Fault-free probe: reference sim time and the superstep count that
    // bounds the crash sweep.
    Cluster probe(bed.machines);
    QueryBitRows probe_plane;
    const auto clean = run_distributed_msbfs(probe, bed.shards, bed.part,
                                             queries, dir(mode),
                                             &probe_plane);
    expect_planes_equal(probe_plane, want,
                        std::string("probe mode=") + to_string(mode));
    const std::uint64_t steps = probe.telemetry().supersteps.size();
    ASSERT_GT(steps, 0u);

    for (std::uint64_t s = 1; s <= steps; ++s) {
      const auto victim =
          static_cast<PartitionId>((s + seed) % bed.machines);
      SCOPED_TRACE(std::string("mode=") + to_string(mode) + " crash " +
                   std::to_string(victim) + "@" + std::to_string(s));
      Cluster cluster(bed.machines);
      FaultPlan plan(seed);
      plan.add_crash(victim, s);
      cluster.fabric().install_fault_plan(
          std::make_shared<FaultPlan>(std::move(plan)));
      cluster.set_recovery(RecoveryOptions{});
      QueryBitRows got;
      const auto r = run_distributed_msbfs(cluster, bed.shards, bed.part,
                                           queries, dir(mode), &got);
      expect_planes_equal(got, want, "crashed run");
      EXPECT_EQ(cluster.recovery_stats().crashes, 1u)
          << "scheduled crash must fire exactly once";
      EXPECT_DOUBLE_EQ(r.sim_seconds, clean.sim_seconds)
          << "deterministic replay must reproduce the fault-free schedule";
      EXPECT_EQ(r.visited, clean.visited);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridRecovery,
                         ::testing::Range<std::uint64_t>(1, 4));

}  // namespace
}  // namespace cgraph
