// Differential suite for the reachability index tier (DESIGN.md §13).
//
// The index is a three-verdict oracle: kUnreachable must never contradict
// an actual path, kReachable must never invent one, and kUnknown defers
// to the MS-BFS engines. Soundness is checked the only way that matters —
// against serial BFS ground truth over randomized DAGs and cyclic graphs,
// across label counts, index modes, hop bounds, and seeds — and then
// end-to-end through the query service under clean, chaos, and crash
// conditions (the index is immutable read-only state, so recovery replay
// must leave its fingerprint bit-identical). The constrained-reach
// regression pins the routing rule: label-constrained queries never get an
// index answer.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "algo/constrained_reach.hpp"
#include "gen/arrivals.hpp"
#include "gen/random_graphs.hpp"
#include "graph/shard.hpp"
#include "index/reach_index.hpp"
#include "net/fault.hpp"
#include "obs/event_tracer.hpp"
#include "query/bfs.hpp"
#include "query/service.hpp"
#include "util/rng.hpp"

namespace cgraph {
namespace {

/// Random graph; `dag` orients every edge low -> high, which guarantees
/// acyclicity (every vertex is its own SCC).
Graph make_graph(VertexId n, EdgeIndex m, std::uint64_t seed, bool dag) {
  EdgeList edges = generate_uniform(n, m, seed);
  if (dag) {
    for (Edge& e : edges.edges()) {
      if (e.src > e.dst) std::swap(e.src, e.dst);
    }
    edges.remove_self_loops();
    edges.sort_and_dedup();
  }
  return Graph::build(std::move(edges), n);
}

/// Serial ground truth: every vertex within k hops of `source`.
std::vector<char> reach_set(const Graph& g, VertexId source, Depth k) {
  const auto depth = bfs_levels(g, source, k);
  std::vector<char> reached(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    reached[v] = depth[v] != kUnvisitedDepth ? 1 : 0;
  }
  return reached;
}

// ---------------------------------------------------------------------------
// Construction units: SCC condensation and hand-checkable verdicts.

TEST(IndexScc, CycleCollapsesAndOrderIsReverseTopological) {
  // 0 -> 1 -> 2 -> 0 is one SCC; 2 -> 3 -> 4 hangs off it.
  EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  e.add(2, 3);
  e.add(3, 4);
  const Graph g = Graph::build(std::move(e), 5);
  const SccCondensation scc = condense(g);

  EXPECT_EQ(scc.num_components, 3u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
  EXPECT_EQ(scc.component_size[scc.component[0]], 3u);
  // Reverse topological ids: every DAG edge goes to a smaller id, so a
  // successor's component id is strictly below its predecessor's.
  EXPECT_LT(scc.component[3], scc.component[0]);
  EXPECT_LT(scc.component[4], scc.component[3]);
  EXPECT_EQ(scc.num_dag_edges(), 2u);
  for (VertexId c = 0; c < scc.num_components; ++c) {
    for (const VertexId d : scc.dag_out(c)) EXPECT_LT(d, c);
  }
}

TEST(IndexUnit, ChainVerdictsPerMode) {
  EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 3);
  const Graph g = Graph::build(std::move(e), 4);

  IndexOptions io;
  io.num_gates = 8;  // enough gates to cover every component

  io.mode = IndexMode::kFull;
  const ReachIndex full = ReachIndex::build(g, io);
  EXPECT_EQ(full.query(0, 3), IndexVerdict::kReachable);
  EXPECT_EQ(full.query(3, 0), IndexVerdict::kUnreachable);
  // 0 reaches 3 globally, so no negative proof exists; a positive one
  // would need a path-length bound the gates don't carry -> unknown.
  EXPECT_EQ(full.query(0, 3, /*k=*/2), IndexVerdict::kUnknown);
  // ... but a global negative holds for every bound.
  EXPECT_EQ(full.query(3, 0, /*k=*/2), IndexVerdict::kUnreachable);
  // Zero-hop self-reachability holds for every k.
  EXPECT_EQ(full.query(2, 2, /*k=*/0), IndexVerdict::kReachable);

  io.mode = IndexMode::kGrail;
  const ReachIndex grail = ReachIndex::build(g, io);
  EXPECT_EQ(grail.query(0, 3), IndexVerdict::kUnknown);  // no positive side
  EXPECT_EQ(grail.query(3, 0), IndexVerdict::kUnreachable);

  io.mode = IndexMode::kGates;
  const ReachIndex gates = ReachIndex::build(g, io);
  EXPECT_EQ(gates.query(0, 3), IndexVerdict::kReachable);
  // The reverse-topological order filter rides along in every mode.
  EXPECT_EQ(gates.query(3, 0), IndexVerdict::kUnreachable);

  io.mode = IndexMode::kOff;
  const ReachIndex off = ReachIndex::build(g, io);
  EXPECT_EQ(off.query(0, 3), IndexVerdict::kUnknown);
  EXPECT_EQ(off.query(3, 0), IndexVerdict::kUnknown);
  EXPECT_EQ(ReachIndex().query(0, 3), IndexVerdict::kUnknown);
}

// Regression: s == t is a structural truth (every vertex reaches itself
// in zero hops), so a *point* probe must answer kReachable up front — for
// any k >= 0, in every mode including kOff, on a default-constructed
// index, and on a stale one. Constrained queries keep their routing
// invariant: the index has no constraint knowledge, so even the identity
// pair stays kUnknown through the constrained entry point.
TEST(IndexUnit, SelfReachableUpFrontInEveryMode) {
  EdgeList e;
  e.add(0, 1);
  const Graph g = Graph::build(std::move(e), 3);

  for (const IndexMode mode : {IndexMode::kOff, IndexMode::kGrail,
                               IndexMode::kGates, IndexMode::kFull}) {
    IndexOptions io;
    io.mode = mode;
    const ReachIndex index = ReachIndex::build(g, io);
    for (const Depth k : {Depth{0}, Depth{1}, kUnvisitedDepth}) {
      EXPECT_EQ(index.query(2, 2, k), IndexVerdict::kReachable)
          << "mode=" << to_string(mode) << " k=" << unsigned{k}
          << " (isolated vertex: no labels/gates needed)";
    }
    EXPECT_EQ(index.query(2, 2, kUnvisitedDepth, /*constrained=*/true),
              IndexVerdict::kUnknown)
        << "mode=" << to_string(mode);
  }
  // Default-constructed (never built) index: identity still holds.
  EXPECT_EQ(ReachIndex().query(1, 1), IndexVerdict::kReachable);
  EXPECT_EQ(ReachIndex().query(1, 1, 0), IndexVerdict::kReachable);
  // A stale index (superseded build epoch) must shed every conclusive
  // verdict except the identity, which no mutation can falsify.
  const ReachIndex stale = ReachIndex::build(g, {});
  stale.observe_epoch(7);
  ASSERT_TRUE(stale.stale());
  EXPECT_EQ(stale.query(0, 1), IndexVerdict::kUnknown);
  EXPECT_EQ(stale.query(1, 1, 0), IndexVerdict::kReachable);
}

TEST(IndexUnit, SameSccReachableOnlyUnbounded) {
  EdgeList e;
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 3);
  e.add(3, 0);
  const Graph g = Graph::build(std::move(e), 4);
  const ReachIndex index = ReachIndex::build(g);
  EXPECT_EQ(index.query(0, 2), IndexVerdict::kReachable);
  // Same SCC but the cycle distance may exceed a finite bound: unknown.
  EXPECT_EQ(index.query(0, 2, /*k=*/1), IndexVerdict::kUnknown);
  EXPECT_EQ(index.query(0, 0, /*k=*/1), IndexVerdict::kReachable);
}

TEST(IndexUnit, ModeParseRoundTrip) {
  for (const IndexMode mode : {IndexMode::kOff, IndexMode::kGrail,
                               IndexMode::kGates, IndexMode::kFull}) {
    const auto parsed = parse_index_mode(to_string(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(parse_index_mode("fancy").has_value());
  EXPECT_FALSE(parse_index_mode("").has_value());
}

// ---------------------------------------------------------------------------
// The core differential sweep: verdicts vs serial BFS ground truth over
// random DAGs and cyclic graphs x 12 seeds x label counts {1, 2, 5} x
// modes x {bounded, unbounded} hop bounds.

TEST(IndexDifferential, VerdictsSoundOnRandomGraphs) {
  const IndexMode kModes[] = {IndexMode::kGrail, IndexMode::kGates,
                              IndexMode::kFull};
  std::uint64_t conclusive = 0;
  std::uint64_t positive = 0;
  std::uint64_t negative = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    for (const bool dag : {true, false}) {
      const Graph g = make_graph(400, 1600, seed, dag);
      for (const std::uint32_t labels : {1u, 2u, 5u}) {
        for (const IndexMode mode : kModes) {
          SCOPED_TRACE("seed=" + std::to_string(seed) +
                       " dag=" + std::to_string(dag) +
                       " labels=" + std::to_string(labels) + " mode=" +
                       to_string(mode));
          IndexOptions io;
          io.mode = mode;
          io.num_labels = labels;
          io.seed = seed * 77 + labels;
          const ReachIndex index = ReachIndex::build(g, io);
          Xoshiro256 rng(seed * 1315423911ULL + labels);
          for (int si = 0; si < 4; ++si) {
            const auto s = static_cast<VertexId>(
                rng.next_bounded(g.num_vertices()));
            for (const Depth k : {Depth{3}, kUnvisitedDepth}) {
              const auto truth = reach_set(g, s, k);
              for (VertexId t = 0; t < g.num_vertices(); t += 7) {
                const IndexVerdict verdict = index.query(s, t, k);
                if (verdict == IndexVerdict::kReachable) {
                  ++conclusive, ++positive;
                  EXPECT_TRUE(truth[t])
                      << "false REACHABLE " << s << " -> " << t << " k="
                      << unsigned{k};
                } else if (verdict == IndexVerdict::kUnreachable) {
                  ++conclusive, ++negative;
                  EXPECT_FALSE(truth[t])
                      << "false UNREACHABLE " << s << " -> " << t << " k="
                      << unsigned{k};
                }
              }
            }
          }
        }
      }
    }
  }
  // The sweep must not be vacuous: both verdict kinds have to fire.
  EXPECT_GT(positive, 0u);
  EXPECT_GT(negative, 0u);
  EXPECT_GT(conclusive, 1000u);
}

TEST(IndexDifferential, BoundedQueriesNeverGetPositiveVerdicts) {
  const Graph g = make_graph(500, 2500, 3, /*dag=*/false);
  const ReachIndex index = ReachIndex::build(g);
  for (VertexId s = 0; s < g.num_vertices(); s += 17) {
    for (VertexId t = 0; t < g.num_vertices(); t += 13) {
      if (s == t) continue;
      EXPECT_NE(index.query(s, t, /*k=*/5), IndexVerdict::kReachable)
          << s << " -> " << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism: the seed is the only randomness source, so rebuilds are
// bit-identical (fingerprint-equal) and seeds shuffle the labels.

TEST(IndexDeterminism, FingerprintPinsRebuilds) {
  const Graph g = make_graph(600, 3000, 9, /*dag=*/false);
  IndexOptions io;
  io.seed = 1234;
  const ReachIndex a = ReachIndex::build(g, io);
  const ReachIndex b = ReachIndex::build(g, io);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_GT(a.memory_bytes(), 0u);
  EXPECT_GT(a.stats().build_sim_seconds, 0.0);

  io.seed = 4321;
  const ReachIndex c = ReachIndex::build(g, io);
  EXPECT_NE(a.fingerprint(), c.fingerprint());

  io.seed = 1234;
  io.mode = IndexMode::kGrail;
  const ReachIndex d = ReachIndex::build(g, io);
  EXPECT_NE(a.fingerprint(), d.fingerprint());
}

TEST(IndexDeterminism, ProbeCostIsDeterministicAndTiny) {
  const Graph g = make_graph(600, 3000, 9, /*dag=*/false);
  const ReachIndex index = ReachIndex::build(g);
  EXPECT_GT(index.probe_sim_seconds(), 0.0);
  EXPECT_LT(index.probe_sim_seconds(), 1e-6);
  EXPECT_EQ(index.probe_sim_seconds(), index.probe_sim_seconds());
}

// ---------------------------------------------------------------------------
// Constrained routing regression: label-constrained queries are routed
// around the index by construction — the verdict is always kUnknown and
// distances are identical with and without an index installed.

TEST(IndexConstrained, ConstrainedQueriesRoutedAroundIndex) {
  EdgeList edges = generate_uniform(300, 1800, 21);
  assign_random_weights(edges, 0.5f, 5.0f, 22);
  const Graph g = Graph::build(std::move(edges), 300);
  const ReachIndex index = ReachIndex::build(g);

  // Even the trivially reachable probe (source -> source) must come back
  // unknown through the constrained entry point.
  EXPECT_EQ(index.query(5, 5, kUnvisitedDepth, /*constrained=*/true),
            IndexVerdict::kUnknown);

  const auto with = constrained_reach(g, 5, 4, 8.0, &index);
  const auto without = constrained_reach(g, 5, 4, 8.0);
  EXPECT_EQ(with.index_verdict, IndexVerdict::kUnknown);
  EXPECT_EQ(without.index_verdict, IndexVerdict::kUnknown);
  EXPECT_EQ(with.admitted, without.admitted);
  EXPECT_EQ(with.hop_reachable, without.hop_reachable);
  ASSERT_EQ(with.distance.size(), without.distance.size());
  for (VertexId v = 0; v < with.distance.size(); ++v) {
    EXPECT_EQ(with.distance[v], without.distance[v]) << "vertex " << v;
  }

  const PartitionId machines = 3;
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);
  Cluster cluster(machines);
  const auto dist =
      run_constrained_reach(cluster, shards, part, 5, 4, 8.0, &index);
  EXPECT_EQ(dist.index_verdict, IndexVerdict::kUnknown);
  EXPECT_EQ(dist.admitted, with.admitted);
}

// ---------------------------------------------------------------------------
// Service integration: point queries through the admission bypass lane,
// differentially verified against serial BFS under clean, chaos, and
// crash conditions. The index is read-only state: its fingerprint must be
// bit-identical before and after every run, crash-recovery replay
// included.

TEST(IndexService, PointAnswersExactUnderCleanChaosCrash) {
  const PartitionId machines = 3;
  const Graph g = make_graph(700, 4200, 31, /*dag=*/false);
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);
  const ReachIndex index = ReachIndex::build(g);
  const std::uint64_t fingerprint_before = index.fingerprint();

  PoissonArrivalParams ap;
  ap.rate_qps = 2000;
  ap.count = 80;
  ap.k = 3;
  ap.seed = 5;
  ap.point_fraction = 0.5;  // point_k stays unbounded (the default)
  const auto arrivals = make_poisson_arrivals(g, ap);
  std::size_t point_count = 0;
  for (const TimedQuery& tq : arrivals) {
    if (tq.query.is_point()) ++point_count;
  }
  ASSERT_GT(point_count, 10u);
  ASSERT_LT(point_count, arrivals.size());

  enum class Mode { kClean, kChaos, kCrash };
  for (const Mode mode : {Mode::kClean, Mode::kChaos, Mode::kCrash}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " threads=" + std::to_string(threads));
      Cluster cluster(machines);
      if (mode == Mode::kChaos) {
        Xoshiro256 rng(17 * 0x9e3779b97f4a7c15ULL + 1);
        FaultPlan plan(17);
        LinkFaultSpec mix;
        mix.drop = 0.05 + 0.10 * rng.next_double();
        mix.duplicate = 0.08 * rng.next_double();
        mix.reorder = 0.08 * rng.next_double();
        plan.set_default_link(mix);
        cluster.fabric().install_fault_plan(
            std::make_shared<FaultPlan>(std::move(plan)));
      } else if (mode == Mode::kCrash) {
        FaultPlan plan(23);
        plan.add_crash(1, 3);
        cluster.fabric().install_fault_plan(
            std::make_shared<FaultPlan>(std::move(plan)));
        cluster.set_recovery(RecoveryOptions{});
      }

      obs::MetricsRegistry registry;
      ServiceOptions opts;
      opts.scheduler.batch_width = 16;
      opts.scheduler.threads = threads;
      opts.scheduler.metrics = &registry;
      opts.queue_cap = 0;  // nothing shed: the whole stream is answered
      opts.linger_seconds = 5e-4;
      opts.index = &index;
      const auto run =
          run_query_service(cluster, shards, part, arrivals, opts);

      EXPECT_TRUE(run.stats.identities_hold());
      EXPECT_EQ(run.stats.submitted, arrivals.size());
      EXPECT_EQ(run.stats.shed, 0u);
      EXPECT_EQ(run.stats.expired, 0u);
      // Every point query was probed: conclusive probes bypassed the
      // queue, inconclusive ones fell back to a traversal slot.
      EXPECT_EQ(run.stats.index_answered + run.stats.index_misses,
                point_count);
      EXPECT_EQ(run.stats.index_misses, run.stats.index_fallbacks);
      EXPECT_EQ(run.stats.completed + run.stats.index_answered,
                arrivals.size());

      std::uint64_t answered_seen = 0;
      for (const ServiceQueryRecord& rec : run.queries) {
        const KHopQuery& q = arrivals[rec.id].query;
        if (!q.is_point()) {
          EXPECT_EQ(rec.outcome, ServiceOutcome::kCompleted);
          EXPECT_EQ(rec.index_verdict, IndexVerdict::kUnknown);
          continue;
        }
        // Ground truth for the point answer (point_k is unbounded).
        const auto truth = reach_set(g, q.source, q.k);
        ASSERT_NE(rec.reachable, -1) << "unresolved point query " << rec.id;
        EXPECT_EQ(rec.reachable == 1, truth[q.target] != 0)
            << "query " << rec.id << ": " << q.source << " -> " << q.target;
        if (rec.outcome == ServiceOutcome::kIndexAnswered) {
          ++answered_seen;
          EXPECT_NE(rec.index_verdict, IndexVerdict::kUnknown);
          EXPECT_EQ(rec.batch_index, ServiceQueryRecord::kNoBatch);
          EXPECT_EQ(rec.execute_sim_seconds, index.probe_sim_seconds());
        } else {
          EXPECT_EQ(rec.outcome, ServiceOutcome::kCompleted);
          EXPECT_EQ(rec.index_verdict, IndexVerdict::kUnknown);
        }
      }
      EXPECT_EQ(answered_seen, run.stats.index_answered);
      // Read-only state: untouched by the run, crash replay included.
      EXPECT_EQ(index.fingerprint(), fingerprint_before);
    }
  }
}

TEST(IndexService, ProbesAreTracedAndMetricsPublished) {
  const PartitionId machines = 2;
  const Graph g = make_graph(300, 1500, 41, /*dag=*/false);
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);
  const ReachIndex index = ReachIndex::build(g);

  PoissonArrivalParams ap;
  ap.rate_qps = 1000;
  ap.count = 30;
  ap.k = 2;
  ap.seed = 7;
  ap.point_fraction = 1.0;  // all point queries
  const auto arrivals = make_poisson_arrivals(g, ap);

  Cluster cluster(machines);
  obs::EventTracer tracer;
  obs::MetricsRegistry registry;
  ServiceRunResult run;
  {
    obs::EventTracer::Scope scope(tracer);
    ServiceOptions opts;
    opts.scheduler.metrics = &registry;
    opts.queue_cap = 0;
    opts.index = &index;
    run = run_query_service(cluster, shards, part, arrivals, opts);
  }
  EXPECT_TRUE(run.stats.identities_hold());

  std::uint64_t probe_events = 0;
  for (const obs::TraceEvent& ev : tracer.snapshot()) {
    if (ev.phase != obs::TraceEventPhase::kIndexProbe) continue;
    ++probe_events;
    EXPECT_EQ(ev.machine, obs::TraceEvent::kAdmissionTrack);
    EXPECT_GE(ev.a, 0.0);
    EXPECT_LE(ev.a, 2.0);
    EXPECT_EQ(ev.b, index.probe_sim_seconds());
  }
  EXPECT_EQ(probe_events, arrivals.size());

  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("cgraph_index_hit_total"), std::string::npos);
  EXPECT_NE(prom.find("cgraph_index_miss_total"), std::string::npos);
  EXPECT_NE(prom.find("cgraph_index_fallback_total"), std::string::npos);
  EXPECT_NE(prom.find("cgraph_index_build_seconds"), std::string::npos);
  EXPECT_NE(prom.find("cgraph_index_memory_bytes"), std::string::npos);
}

}  // namespace
}  // namespace cgraph
