// Differential suite for streaming mutations with snapshot-isolated
// queries (DESIGN.md §15). The core invariant: a distributed run over
// shards carrying uncompacted delta events at snapshot epoch E must be
// bit-identical to the same run over a frozen graph built by serially
// applying the first E trace batches — for every seed, insert/delete mix,
// thread count, fault plan, and crash schedule. Planes are compared (via
// the engines' visited_out), not just visited counts, so a vertex gained
// in one view and lost in another cannot cancel and hide a divergence.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/gas.hpp"
#include "engine/pagerank.hpp"
#include "gen/mutation_trace.hpp"
#include "gen/random_graphs.hpp"
#include "graph/delta.hpp"
#include "graph/shard.hpp"
#include "index/reach_index.hpp"
#include "net/fault.hpp"
#include "query/bfs.hpp"
#include "query/distributed_khop.hpp"
#include "query/msbfs.hpp"
#include "util/rng.hpp"

namespace cgraph {
namespace {

std::vector<KHopQuery> make_queries(const Graph& g, std::size_t count) {
  std::vector<KHopQuery> qs;
  qs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    qs.push_back({static_cast<QueryId>(i),
                  static_cast<VertexId>((i * 37 + 5) % g.num_vertices()),
                  static_cast<Depth>(i % 6)});
  }
  return qs;
}

/// Serial ground truth: BFS levels on the frozen graph at the snapshot.
QueryBitRows reference_plane(const Graph& g,
                             std::span<const KHopQuery> queries) {
  QueryBitRows plane(g.num_vertices(), queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto depths = bfs_levels(g, queries[q].source, queries[q].k);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (depths[v] != kUnvisitedDepth) plane.set(v, q);
    }
  }
  return plane;
}

void expect_planes_equal(const QueryBitRows& got, const QueryBitRows& want,
                         const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.words_per_row(), want.words_per_row()) << what;
  for (std::size_t v = 0; v < got.rows(); ++v) {
    const Word* a = got.row(v);
    const Word* b = want.row(v);
    for (std::size_t w = 0; w < got.words_per_row(); ++w) {
      ASSERT_EQ(a[w], b[w]) << what << ": plane mismatch at row " << v
                            << " word " << w;
    }
  }
}

struct Bed {
  Graph g;
  PartitionId machines;
  RangePartition part;
  std::vector<SubgraphShard> shards;
};

Bed make_bed(VertexId n, EdgeIndex m, std::uint64_t seed,
             PartitionId machines) {
  Bed bed;
  bed.g = Graph::build(generate_uniform(n, m, seed));
  bed.machines = machines;
  bed.part = RangePartition::balanced_by_edges(bed.g, machines);
  bed.shards = build_shards(bed.g, bed.part);
  return bed;
}

/// Frozen view at `upto` epochs: the serial reference applied to the base
/// edge list, rebuilt at the base vertex count (mutations never add
/// vertices).
Graph frozen_at(const Bed& bed, const MutationTrace& trace,
                std::size_t upto) {
  return Graph::build(apply_mutation_trace(bed.g, trace, upto),
                      bed.g.num_vertices());
}

MutationTrace make_trace(const Bed& bed, std::uint64_t seed,
                         double delete_fraction) {
  MutationTraceOptions topt;
  topt.seed = seed;
  topt.num_epochs = 3;
  topt.ops_per_epoch = 24;
  topt.delete_fraction = delete_fraction;
  return generate_mutation_trace(bed.g, topt);
}

void apply_whole_trace(Bed& bed, const MutationTrace& trace) {
  for (std::size_t e = 0; e < trace.epochs.size(); ++e) {
    apply_trace_epoch(std::span(bed.shards), trace, e);
  }
}

/// Same probabilistic link-fault mix as the chaos suite.
void add_link_mix(FaultPlan& plan, std::uint64_t seed) {
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  LinkFaultSpec mix;
  mix.drop = 0.05 + 0.15 * rng.next_double();
  mix.duplicate = 0.10 * rng.next_double();
  mix.reorder = 0.10 * rng.next_double();
  mix.delay = 0.05 * rng.next_double();
  mix.delay_polls = 1 + static_cast<std::uint32_t>(rng.next_bounded(3));
  plan.set_default_link(mix);
}

const double kDeleteMixes[] = {0.0, 0.35};  // insert-only, insert+delete

// ---------------------------------------------------------------------------
// DeltaEdgeSet unit semantics: last-event-<=-E-wins visibility.

TEST(DeltaEdgeSet, InsertVisibleOnlyFromItsEpoch) {
  DeltaEdgeSet d;
  d.reset({10, 20});
  d.add_event(12, 77, /*epoch=*/2, /*insert=*/true, /*in_base=*/false);
  std::vector<VertexId> at1, at2;
  d.for_each_extra(12, 1, [&](VertexId t) { at1.push_back(t); });
  d.for_each_extra(12, 2, [&](VertexId t) { at2.push_back(t); });
  EXPECT_TRUE(at1.empty());
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_EQ(at2[0], 77u);
  EXPECT_FALSE(d.has_deletes(12));
  EXPECT_FALSE(d.edge_deleted(12, 77, 2));
}

TEST(DeltaEdgeSet, TombstoneThenReinsertOfBaseEdge) {
  DeltaEdgeSet d;
  d.reset({0, 8});
  d.add_event(3, 5, /*epoch=*/1, /*insert=*/false, /*in_base=*/true);
  d.add_event(3, 5, /*epoch=*/3, /*insert=*/true, /*in_base=*/true);
  EXPECT_TRUE(d.has_deletes(3));
  EXPECT_FALSE(d.edge_deleted(3, 5, 0));  // before the delete: base wins
  EXPECT_TRUE(d.edge_deleted(3, 5, 1));
  EXPECT_TRUE(d.edge_deleted(3, 5, 2));
  EXPECT_FALSE(d.edge_deleted(3, 5, 3));  // reinserted
  // in_base events must never surface as extras (base + extras stays
  // duplicate-free).
  std::vector<VertexId> extras;
  d.for_each_extra(3, 3, [&](VertexId t) { extras.push_back(t); });
  EXPECT_TRUE(extras.empty());
}

TEST(DeltaEdgeSet, NonBaseInsertThenDeleteDisappears) {
  DeltaEdgeSet d;
  d.reset({0, 4});
  d.add_event(1, 9, /*epoch=*/1, /*insert=*/true, /*in_base=*/false);
  d.add_event(1, 9, /*epoch=*/2, /*insert=*/false, /*in_base=*/false);
  EXPECT_EQ(d.extras_sorted(1, 1), std::vector<VertexId>{9});
  EXPECT_TRUE(d.extras_sorted(1, 2).empty());
}

TEST(DeltaEdgeSet, ExtrasSortedIsSortedUnique) {
  DeltaEdgeSet d;
  d.reset({0, 2});
  d.add_event(0, 7, 1, true, false);
  d.add_event(0, 3, 1, true, false);
  d.add_event(0, 5, 2, true, false);
  const std::vector<VertexId> want{3, 5, 7};
  EXPECT_EQ(d.extras_sorted(0, 2), want);
}

TEST(DeltaEdgeSet, FingerprintTracksVisibleContent) {
  DeltaEdgeSet a, b;
  a.reset({0, 4});
  b.reset({0, 4});
  a.add_event(1, 2, 1, true, false);
  b.add_event(1, 2, 1, true, false);
  EXPECT_EQ(a.fingerprint(1), b.fingerprint(1));
  b.add_event(1, 3, 2, true, false);
  EXPECT_EQ(a.fingerprint(1), b.fingerprint(1))
      << "a later epoch's event must not change an earlier snapshot's hash";
  EXPECT_NE(a.fingerprint(2), b.fingerprint(2));
}

// ---------------------------------------------------------------------------
// Shard-level merged scans and compaction.

TEST(ShardMutation, MergedScanMatchesFrozenRebuildPerVertex) {
  Bed bed = make_bed(120, 700, 5, 3);
  const MutationTrace trace = make_trace(bed, 17, 0.35);
  apply_whole_trace(bed, trace);
  for (std::size_t upto = 0; upto <= trace.epochs.size(); ++upto) {
    const Graph frozen = frozen_at(bed, trace, upto);
    for (const SubgraphShard& shard : bed.shards) {
      for (VertexId v = shard.local_range().begin;
           v < shard.local_range().end; ++v) {
        std::vector<VertexId> got;
        shard.for_each_out_neighbor_at(
            v, static_cast<Epoch>(upto),
            [&](VertexId t) { got.push_back(t); });
        const auto want = frozen.out_neighbors(v);
        ASSERT_EQ(got.size(), want.size()) << "v=" << v << " E=" << upto;
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i], want[i])
              << "v=" << v << " E=" << upto << " i=" << i
              << " (merged scan must match the rebuilt CSR in order)";
        }
      }
    }
  }
}

TEST(ShardMutation, CompactPreservesViewAndClearsDeltas) {
  Bed bed = make_bed(100, 600, 7, 2);
  const MutationTrace trace = make_trace(bed, 23, 0.35);
  apply_whole_trace(bed, trace);
  const Epoch head = current_epoch(std::span<const SubgraphShard>(
      bed.shards.data(), bed.shards.size()));

  std::vector<std::vector<VertexId>> before(bed.g.num_vertices());
  for (const SubgraphShard& shard : bed.shards) {
    for (VertexId v = shard.local_range().begin;
         v < shard.local_range().end; ++v) {
      shard.for_each_out_neighbor_at(
          v, head, [&](VertexId t) { before[v].push_back(t); });
    }
  }
  for (SubgraphShard& shard : bed.shards) {
    ASSERT_TRUE(shard.has_mutations());
    shard.compact();
    EXPECT_FALSE(shard.has_mutations());
    EXPECT_EQ(shard.epoch(), head) << "compaction must not move the epoch";
  }
  for (const SubgraphShard& shard : bed.shards) {
    for (VertexId v = shard.local_range().begin;
         v < shard.local_range().end; ++v) {
      std::vector<VertexId> after;
      shard.for_each_out_neighbor_at(
          v, head, [&](VertexId t) { after.push_back(t); });
      ASSERT_EQ(after, before[v]) << "v=" << v;
    }
  }
}

// ---------------------------------------------------------------------------
// The differential sweep: 12 seeds x {insert-only, insert+delete} x
// {clean at every epoch, chaos, crash-at-every-superstep} x {1, 4}
// threads, all bit-exact against the serial reference.

class MutationDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(MutationDifferential, CleanRunsExactAtEverySnapshotEpoch) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  const auto n = static_cast<VertexId>(90 + rng.next_bounded(120));
  const auto m = static_cast<EdgeIndex>(
      n * 3 + rng.next_bounded(static_cast<std::uint64_t>(n) * 2));
  const auto machines = static_cast<PartitionId>(2 + rng.next_bounded(3));
  for (const double delete_fraction : kDeleteMixes) {
    Bed bed = make_bed(n, m, rng.next(), machines);
    const MutationTrace trace = make_trace(bed, seed * 31 + 1,
                                           delete_fraction);
    apply_whole_trace(bed, trace);
    const auto queries = make_queries(bed.g, 32);
    for (std::size_t upto = 0; upto <= trace.epochs.size(); ++upto) {
      const Graph frozen = frozen_at(bed, trace, upto);
      const QueryBitRows want = reference_plane(frozen, queries);
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        Cluster cluster(machines);
        cluster.set_compute_threads(threads);
        QueryBitRows got;
        const auto r = run_distributed_msbfs(
            cluster, bed.shards, bed.part, queries, {}, &got,
            static_cast<Epoch>(upto));
        expect_planes_equal(
            got, want,
            "seed=" + std::to_string(seed) + " del=" +
                std::to_string(delete_fraction) + " E=" +
                std::to_string(upto) + " threads=" +
                std::to_string(threads));
        // The task-queue engine reads the same snapshot.
        Cluster kcluster(machines);
        kcluster.set_compute_threads(threads);
        const auto k = run_distributed_khop(kcluster, bed.shards, bed.part,
                                            queries,
                                            static_cast<Epoch>(upto));
        EXPECT_EQ(k.visited, r.visited)
            << "khop vs msbfs at E=" << upto;
      }
    }
  }
}

TEST_P(MutationDifferential, ChaosLinksStayExactAtHeadEpoch) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed * 977 + 13);
  const auto n = static_cast<VertexId>(80 + rng.next_bounded(100));
  const auto m = static_cast<EdgeIndex>(
      n * 2 + rng.next_bounded(static_cast<std::uint64_t>(n) * 3));
  const auto machines = static_cast<PartitionId>(2 + rng.next_bounded(3));
  for (const double delete_fraction : kDeleteMixes) {
    Bed bed = make_bed(n, m, rng.next(), machines);
    const MutationTrace trace = make_trace(bed, seed * 37 + 2,
                                           delete_fraction);
    apply_whole_trace(bed, trace);
    const auto queries = make_queries(bed.g, 32);
    const Graph frozen = frozen_at(bed, trace, trace.epochs.size());
    const QueryBitRows want = reference_plane(frozen, queries);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      Cluster cluster(machines);
      cluster.set_compute_threads(threads);
      FaultPlan plan(seed);
      add_link_mix(plan, seed);
      cluster.fabric().install_fault_plan(
          std::make_shared<FaultPlan>(std::move(plan)));
      QueryBitRows got;
      run_distributed_msbfs(cluster, bed.shards, bed.part, queries, {},
                            &got);
      expect_planes_equal(got, want,
                          "chaos seed=" + std::to_string(seed) + " del=" +
                              std::to_string(delete_fraction) +
                              " threads=" + std::to_string(threads));
    }
  }
}

TEST_P(MutationDifferential, CrashAtEverySuperstepReplaysExactly) {
  const std::uint64_t seed = GetParam();
  const auto machines = static_cast<PartitionId>(2 + seed % 3);
  for (const double delete_fraction : kDeleteMixes) {
    Bed bed = make_bed(110, 650, seed * 101 + 3, machines);
    const MutationTrace trace = make_trace(bed, seed * 41 + 3,
                                           delete_fraction);
    apply_whole_trace(bed, trace);
    const auto queries = make_queries(bed.g, 24);
    const Graph frozen = frozen_at(bed, trace, trace.epochs.size());
    const QueryBitRows want = reference_plane(frozen, queries);

    // Fault-free probe: reference sim time + superstep count. The
    // checkpoint delta tail (epoch + mutation fingerprint) rides in every
    // blob, so each crash replay re-validates the snapshot it resumes.
    Cluster probe(machines);
    QueryBitRows probe_plane;
    const auto clean = run_distributed_msbfs(probe, bed.shards, bed.part,
                                             queries, {}, &probe_plane);
    expect_planes_equal(probe_plane, want, "probe");
    const std::uint64_t steps = probe.telemetry().supersteps.size();
    ASSERT_GT(steps, 0u);

    for (std::uint64_t s = 1; s <= steps; ++s) {
      const auto victim = static_cast<PartitionId>((s + seed) % machines);
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE("del=" + std::to_string(delete_fraction) + " crash " +
                     std::to_string(victim) + "@" + std::to_string(s) +
                     " threads=" + std::to_string(threads));
        Cluster cluster(machines);
        cluster.set_compute_threads(threads);
        FaultPlan plan(seed);
        plan.add_crash(victim, s);
        cluster.fabric().install_fault_plan(
            std::make_shared<FaultPlan>(std::move(plan)));
        cluster.set_recovery(RecoveryOptions{});
        QueryBitRows got;
        const auto r = run_distributed_msbfs(cluster, bed.shards, bed.part,
                                             queries, {}, &got);
        expect_planes_equal(got, want, "crashed run");
        EXPECT_EQ(cluster.recovery_stats().crashes, 1u);
        EXPECT_DOUBLE_EQ(r.sim_seconds, clean.sim_seconds)
            << "replay must reproduce the fault-free schedule";
        EXPECT_EQ(r.visited, clean.visited);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationDifferential,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Snapshot isolation: a batch pinned to epoch E must not observe ops a
// writer lands after the batch was admitted.

TEST(SnapshotIsolation, PinnedBatchIgnoresLaterEpochs) {
  Bed bed = make_bed(140, 800, 9, 3);
  const MutationTrace trace = make_trace(bed, 29, 0.35);
  const auto queries = make_queries(bed.g, 32);

  apply_trace_epoch(std::span(bed.shards), trace, 0);
  apply_trace_epoch(std::span(bed.shards), trace, 1);
  const Epoch pinned = current_epoch(std::span<const SubgraphShard>(
      bed.shards.data(), bed.shards.size()));
  ASSERT_EQ(pinned, 2u);

  Cluster c1(bed.machines);
  QueryBitRows before;
  run_distributed_msbfs(c1, bed.shards, bed.part, queries, {}, &before,
                        pinned);

  // Writer proceeds: epoch 3's ops land while the "in-flight" snapshot
  // stays pinned at 2.
  apply_trace_epoch(std::span(bed.shards), trace, 2);

  Cluster c2(bed.machines);
  QueryBitRows pinned_after;
  run_distributed_msbfs(c2, bed.shards, bed.part, queries, {},
                        &pinned_after, pinned);
  expect_planes_equal(pinned_after, before,
                      "pinned snapshot changed under a concurrent writer");
  expect_planes_equal(pinned_after,
                      reference_plane(frozen_at(bed, trace, 2), queries),
                      "pinned snapshot vs serial reference");

  // And the head view sees everything.
  Cluster c3(bed.machines);
  QueryBitRows head;
  run_distributed_msbfs(c3, bed.shards, bed.part, queries, {}, &head);
  expect_planes_equal(head,
                      reference_plane(frozen_at(bed, trace, 3), queries),
                      "head snapshot vs serial reference");
}

TEST(SnapshotIsolation, CompactionIsInvisibleToQueries) {
  Bed bed = make_bed(130, 750, 11, 3);
  const MutationTrace trace = make_trace(bed, 43, 0.35);
  apply_whole_trace(bed, trace);
  const auto queries = make_queries(bed.g, 32);

  Cluster c1(bed.machines);
  QueryBitRows streamed;
  const auto r1 = run_distributed_msbfs(c1, bed.shards, bed.part, queries,
                                        {}, &streamed);
  for (SubgraphShard& shard : bed.shards) shard.compact();
  Cluster c2(bed.machines);
  QueryBitRows compacted;
  const auto r2 = run_distributed_msbfs(c2, bed.shards, bed.part, queries,
                                        {}, &compacted);
  expect_planes_equal(compacted, streamed,
                      "compaction changed a query answer");
  EXPECT_EQ(r1.visited, r2.visited);
  EXPECT_EQ(r1.levels, r2.levels);
}

// ---------------------------------------------------------------------------
// GAS on a mutating graph: gather folds the merged parent lists in the
// same globally sorted order a compacted rebuild would produce, and
// scatter divides by the live out-degree — so PageRank values are
// bit-identical across the delta view, the compacted view, and shards
// rebuilt from the serial reference.

TEST(MutationGas, PageRankBitExactAcrossViews) {
  Bed bed = make_bed(150, 900, 13, 3);
  const MutationTrace trace = make_trace(bed, 47, 0.35);
  apply_whole_trace(bed, trace);

  const Graph frozen = frozen_at(bed, trace, trace.epochs.size());
  const auto frozen_shards = build_shards(frozen, bed.part);

  Cluster c1(bed.machines), c2(bed.machines), c3(bed.machines);
  const PageRankProgram pr;
  const GasResult streamed = run_gas(c1, bed.shards, bed.part, pr, 5);
  const GasResult reference =
      run_gas(c2, frozen_shards, bed.part, pr, 5);
  ASSERT_EQ(streamed.values.size(), reference.values.size());
  for (std::size_t v = 0; v < streamed.values.size(); ++v) {
    ASSERT_EQ(streamed.values[v], reference.values[v])
        << "pagerank diverged from the frozen rebuild at vertex " << v;
  }

  for (SubgraphShard& shard : bed.shards) shard.compact();
  const GasResult compacted = run_gas(c3, bed.shards, bed.part, pr, 5);
  for (std::size_t v = 0; v < streamed.values.size(); ++v) {
    ASSERT_EQ(compacted.values[v], streamed.values[v])
        << "compaction changed a pagerank value at vertex " << v;
  }
}

// ---------------------------------------------------------------------------
// Index staleness: once the shards' epoch passes the index's build epoch,
// a conclusive verdict would be a lie — every point probe must degrade to
// kUnknown (forcing the traversal fallback) until a rebuild republishes.

TEST(MutationIndex, SupersededEpochIsNeverConclusive) {
  const Graph g = Graph::build(generate_uniform(300, 2000, 51));
  const ReachIndex index = ReachIndex::build(g, {});
  ASSERT_EQ(index.built_epoch(), 0u);

  // Find a conclusively-answered pair while fresh.
  Xoshiro256 rng(7);
  VertexId s = 0, t = 0;
  IndexVerdict fresh = IndexVerdict::kUnknown;
  for (int i = 0; i < 4096 && fresh == IndexVerdict::kUnknown; ++i) {
    s = static_cast<VertexId>(rng.next_bounded(g.num_vertices()));
    t = static_cast<VertexId>(rng.next_bounded(g.num_vertices()));
    if (s == t) continue;
    fresh = index.query(s, t);
  }
  ASSERT_NE(fresh, IndexVerdict::kUnknown);
  EXPECT_FALSE(index.stale());

  // The service's admission handshake observes a newer shard epoch.
  index.observe_epoch(1);
  EXPECT_TRUE(index.stale());
  EXPECT_EQ(index.query(s, t), IndexVerdict::kUnknown)
      << "a superseded index must never answer conclusively";
  // Identity probes stay structural truths: s reaches s at any epoch.
  EXPECT_EQ(index.query(s, s), IndexVerdict::kReachable);
  EXPECT_EQ(index.query(s, s, 0), IndexVerdict::kReachable);
  // Constrained queries stay unconditionally unknown, stale or not.
  EXPECT_EQ(index.query(s, s, kUnvisitedDepth, /*constrained=*/true),
            IndexVerdict::kUnknown);

  // A rebuild republishing at the observed epoch restores service.
  ReachIndex rebuilt = ReachIndex::build(g, {});
  rebuilt.set_built_epoch(1);
  EXPECT_FALSE(rebuilt.stale());
  EXPECT_EQ(rebuilt.query(s, t), fresh);
}

}  // namespace
}  // namespace cgraph
