// Tests for response-time metrics and the figure reporters.
#include <gtest/gtest.h>

#include <fstream>

#include "metrics/reporter.hpp"
#include "metrics/response.hpp"
#include "util/stats.hpp"

namespace cgraph {
namespace {

// Degenerate inputs must return defined values — 0 for empty, the sample
// itself for a single element — never NaN and never a crash: a service run
// where every query was shed still has to print its stats block.
TEST(ResponseTimeSeries, EmptySeriesReturnsZeroNotNaN) {
  ResponseTimeSeries s("empty");
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 0.0);
}

TEST(ResponseTimeSeries, SingleSampleIsEveryStatistic) {
  ResponseTimeSeries s("one");
  s.add(0.42);
  EXPECT_DOUBLE_EQ(s.mean(), 0.42);
  EXPECT_DOUBLE_EQ(s.min(), 0.42);
  EXPECT_DOUBLE_EQ(s.max(), 0.42);
  EXPECT_DOUBLE_EQ(s.percentile(1), 0.42);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.42);
  EXPECT_DOUBLE_EQ(s.percentile(100), 0.42);
}

TEST(Percentile, EmptyAndSingleInputEdgeCases) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 50.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile({7.5}, 100.0), 7.5);
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(one, 90.0), 3.0);
  const std::vector<double> none;
  EXPECT_DOUBLE_EQ(percentile_sorted(none, 90.0), 0.0);
}

TEST(ResponseTimeSeries, BasicStats) {
  ResponseTimeSeries s("cgraph");
  s.add_all({0.1, 0.3, 0.2, 0.4});
  EXPECT_EQ(s.label(), "cgraph");
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.25);
  EXPECT_DOUBLE_EQ(s.min(), 0.1);
  EXPECT_DOUBLE_EQ(s.max(), 0.4);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.25);
}

TEST(ResponseTimeSeries, SortedAscending) {
  ResponseTimeSeries s;
  s.add_all({3, 1, 2});
  EXPECT_EQ(s.sorted(), (std::vector<double>{1, 2, 3}));
}

TEST(ResponseTimeSeries, FractionWithinThreshold) {
  ResponseTimeSeries s;
  s.add_all({0.1, 0.2, 0.5, 1.5, 3.0});
  EXPECT_DOUBLE_EQ(s.fraction_within(0.2), 0.4);
  EXPECT_DOUBLE_EQ(s.fraction_within(2.0), 0.8);
  EXPECT_DOUBLE_EQ(s.fraction_within(10.0), 1.0);
  EXPECT_DOUBLE_EQ(s.fraction_within(0.01), 0.0);
}

TEST(ResponseTimeSeries, FractionWithinEmptyIsZero) {
  ResponseTimeSeries s;
  EXPECT_DOUBLE_EQ(s.fraction_within(1.0), 0.0);
}

TEST(ResponseTimeSeries, BoxplotSummary) {
  ResponseTimeSeries s;
  s.add_all({1, 2, 3, 4, 5});
  const BoxplotSummary b = s.boxplot_summary();
  EXPECT_DOUBLE_EQ(b.median, 3);
  EXPECT_DOUBLE_EQ(b.mean, 3);
  EXPECT_EQ(b.count, 5u);
}

TEST(Reporter, PrintsWithoutCrashing) {
  // Reporters write to stdout; this exercises every path for smoke safety.
  ::testing::internal::CaptureStdout();
  Reporter rep("unit test figure");
  rep.note("a note");
  ResponseTimeSeries a("sys-a"), b("sys-b");
  for (int i = 0; i < 50; ++i) {
    a.add(0.01 * i);
    b.add(0.02 * i);
  }
  rep.print_sorted_series({a, b}, 10);
  rep.print_boxplots({a, b});
  rep.print_histograms({a}, 0.1, 0.5);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("unit test figure"), std::string::npos);
  EXPECT_NE(out.find("sys-a"), std::string::npos);
  EXPECT_NE(out.find("cum"), std::string::npos);
}

TEST(Reporter, CsvWrittenWhenEnvSet) {
  const std::string dir = ::testing::TempDir();
  setenv("CGRAPH_CSV_DIR", dir.c_str(), 1);
  ResponseTimeSeries s("csvtest");
  s.add_all({0.5, 0.25});
  Reporter::maybe_write_csv(s, "exp");
  unsetenv("CGRAPH_CSV_DIR");
  std::ifstream in(dir + "/exp_csvtest.csv");
  ASSERT_TRUE(in.good());
  std::string header, row1;
  std::getline(in, header);
  std::getline(in, row1);
  EXPECT_EQ(header, "rank,seconds");
  EXPECT_EQ(row1, "1,0.25");
}

}  // namespace
}  // namespace cgraph
