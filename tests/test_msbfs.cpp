// Correctness tests for the bit-parallel engines: single-machine and
// distributed results must equal the serial BFS reference for every query,
// every k, every machine count (property sweep).
#include <gtest/gtest.h>

#include <tuple>

#include "gen/rmat.hpp"
#include "graph/shard.hpp"
#include "query/bfs.hpp"
#include "query/msbfs.hpp"
#include "util/bitops.hpp"

namespace cgraph {
namespace {

Graph make_test_graph(unsigned scale, double edge_factor,
                      std::uint64_t seed) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  return Graph::build(generate_rmat(p), VertexId{1} << scale);
}

std::vector<KHopQuery> spread_queries(const Graph& g, std::size_t count,
                                      Depth k) {
  std::vector<KHopQuery> qs;
  for (std::size_t i = 0; i < count; ++i) {
    qs.push_back({static_cast<QueryId>(i),
                  static_cast<VertexId>((i * 37) % g.num_vertices()), k});
  }
  return qs;
}

TEST(MsBfsSingle, MatchesSerialReference) {
  const Graph g = make_test_graph(9, 6, 11);
  const auto queries = spread_queries(g, 20, 3);
  const MsBfsBatchResult r = msbfs_batch(g, queries);
  ASSERT_EQ(r.visited.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r.visited[i],
              khop_reach_count(g, queries[i].source, queries[i].k))
        << "query " << i;
  }
}

TEST(MsBfsSingle, MixedDepthsInOneBatch) {
  const Graph g = make_test_graph(8, 4, 3);
  std::vector<KHopQuery> queries;
  for (Depth k = 1; k <= 6; ++k) {
    queries.push_back({static_cast<QueryId>(k), static_cast<VertexId>(k * 17),
                       k});
  }
  const MsBfsBatchResult r = msbfs_batch(g, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r.visited[i],
              khop_reach_count(g, queries[i].source, queries[i].k));
    EXPECT_LE(r.levels[i], queries[i].k);
  }
}

TEST(MsBfsSingle, UnboundedBfsReachesComponent) {
  const Graph g = make_test_graph(8, 8, 5);
  const KHopQuery q{0, 0, kUnvisitedDepth};
  const MsBfsBatchResult r = msbfs_batch(g, std::span(&q, 1));
  const auto d = bfs_levels(g, 0);
  std::uint64_t expected = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (d[v] != kUnvisitedDepth) ++expected;
  }
  EXPECT_EQ(r.visited[0], expected);
}

TEST(MsBfsSingle, DuplicateSourcesAgree) {
  const Graph g = make_test_graph(8, 4, 9);
  std::vector<KHopQuery> queries{{0, 42, 3}, {1, 42, 3}, {2, 42, 3}};
  const MsBfsBatchResult r = msbfs_batch(g, queries);
  EXPECT_EQ(r.visited[0], r.visited[1]);
  EXPECT_EQ(r.visited[1], r.visited[2]);
}

TEST(MsBfsSingle, SharedScanCheaperThanIndependent) {
  // The §3.5 claim: a batch of Q queries scans far fewer edges than Q
  // independent traversals when subgraphs overlap. Direction is pinned to
  // push so edges_scanned means the same thing in both measurements (pull
  // levels report parents examined, a different unit).
  DirectionOptions push;
  push.mode = TraversalDirection::kPush;
  const Graph g = make_test_graph(10, 10, 21);
  const auto queries = spread_queries(g, 64, 3);
  const MsBfsBatchResult batch =
      msbfs_batch(g, queries, default_compute_threads(), push);
  std::uint64_t independent_edges = 0;
  for (const auto& q : queries) {
    const MsBfsBatchResult solo =
        msbfs_batch(g, std::span(&q, 1), default_compute_threads(), push);
    independent_edges += solo.edges_scanned;
  }
  EXPECT_LT(batch.edges_scanned, independent_edges / 4);
}

TEST(MsBfsSingle, CompletionTimesMonotoneInLevels) {
  const Graph g = make_test_graph(9, 6, 13);
  std::vector<KHopQuery> queries{{0, 1, 1}, {1, 1, 5}};
  const MsBfsBatchResult r = msbfs_batch(g, queries);
  EXPECT_LE(r.levels[0], r.levels[1]);
  EXPECT_LE(r.completion_wall_seconds[0], r.completion_wall_seconds[1]);
}

// ---- Distributed engine: sweep (machines, k) against the reference. ----

class MsBfsDistributed
    : public ::testing::TestWithParam<std::tuple<PartitionId, Depth>> {};

TEST_P(MsBfsDistributed, MatchesSerialReference) {
  const auto [machines, k] = GetParam();
  const Graph g = make_test_graph(9, 6, 17);
  const auto part = RangePartition::balanced_by_edges(g, machines);
  const auto shards = build_shards(g, part);
  Cluster cluster(machines);

  const auto queries = spread_queries(g, 16, k);
  const MsBfsBatchResult r =
      run_distributed_msbfs(cluster, shards, part, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r.visited[i],
              khop_reach_count(g, queries[i].source, queries[i].k))
        << "machines=" << machines << " k=" << int(k) << " query=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MsBfsDistributed,
    ::testing::Combine(::testing::Values<PartitionId>(1, 2, 3, 5, 9),
                       ::testing::Values<Depth>(1, 2, 3, 6)));

TEST(MsBfsDistributedOne, AgreesWithSingleMachineEngine) {
  const Graph g = make_test_graph(9, 8, 23);
  const auto part = RangePartition::balanced_by_edges(g, 4);
  const auto shards = build_shards(g, part);
  Cluster cluster(4);
  const auto queries = spread_queries(g, 32, 3);
  const MsBfsBatchResult dist =
      run_distributed_msbfs(cluster, shards, part, queries);
  const MsBfsBatchResult single = msbfs_batch(g, queries);
  EXPECT_EQ(dist.visited, single.visited);
  EXPECT_EQ(dist.levels, single.levels);
}

TEST(MsBfsDistributedOne, SimTimePopulated) {
  const Graph g = make_test_graph(8, 6, 29);
  const auto part = RangePartition::balanced_by_edges(g, 3);
  const auto shards = build_shards(g, part);
  Cluster cluster(3);
  const auto queries = spread_queries(g, 8, 3);
  const MsBfsBatchResult r =
      run_distributed_msbfs(cluster, shards, part, queries);
  EXPECT_GT(r.sim_seconds, 0.0);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_LE(r.completion_sim_seconds[i], r.sim_seconds + 1e-12);
  }
}

TEST(MsBfsDistributedOne, FrontierBytesReported) {
  const Graph g = make_test_graph(8, 4, 31);
  const auto part = RangePartition::balanced_by_edges(g, 2);
  const auto shards = build_shards(g, part);
  Cluster cluster(2);
  const auto queries = spread_queries(g, 64, 2);
  const MsBfsBatchResult r =
      run_distributed_msbfs(cluster, shards, part, queries);
  // 3 planes x 1 word x V vertices across all machines.
  EXPECT_EQ(r.frontier_bytes, 3u * sizeof(Word) * g.num_vertices());
}

// ---- Multi-source queries (the paper's Fig. 7 "10 sources per query"
// protocol): union reachability in one bit column. ----

std::uint64_t union_reach_count(const Graph& g,
                                std::span<const VertexId> sources, Depth k) {
  std::vector<char> reached(g.num_vertices(), 0);
  for (VertexId s : sources) {
    const auto depth = bfs_levels(g, s, k);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (depth[v] != kUnvisitedDepth) reached[v] = 1;
    }
  }
  std::uint64_t count = 0;
  std::vector<char> is_source(g.num_vertices(), 0);
  for (VertexId s : sources) is_source[s] = 1;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (reached[v] && !is_source[v]) ++count;
  }
  return count;
}

TEST(MsBfsMultiSource, UnionReachabilityMatchesReference) {
  const Graph g = make_test_graph(9, 5, 37);
  std::vector<MultiKHopQuery> queries;
  for (QueryId i = 0; i < 8; ++i) {
    MultiKHopQuery q;
    q.id = i;
    q.k = 3;
    for (std::size_t s = 0; s < 10; ++s) {  // paper: 10 sources per query
      q.sources.push_back(
          static_cast<VertexId>((i * 97 + s * 13) % g.num_vertices()));
    }
    queries.push_back(std::move(q));
  }
  const MsBfsBatchResult r = msbfs_batch(g, std::span<const MultiKHopQuery>(queries));
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r.visited[i],
              union_reach_count(g, queries[i].sources, queries[i].k))
        << "query " << i;
  }
}

TEST(MsBfsMultiSource, DistributedMatchesSingleMachine) {
  const Graph g = make_test_graph(9, 6, 41);
  const auto part = RangePartition::balanced_by_edges(g, 3);
  const auto shards = build_shards(g, part);
  Cluster cluster(3);
  std::vector<MultiKHopQuery> queries;
  for (QueryId i = 0; i < 6; ++i) {
    MultiKHopQuery q;
    q.id = i;
    q.k = static_cast<Depth>(1 + i % 3);
    for (std::size_t s = 0; s < 4; ++s) {
      q.sources.push_back(
          static_cast<VertexId>((i * 31 + s * 111) % g.num_vertices()));
    }
    queries.push_back(std::move(q));
  }
  const auto dist = run_distributed_msbfs(
      cluster, shards, part, std::span<const MultiKHopQuery>(queries));
  const auto single =
      msbfs_batch(g, std::span<const MultiKHopQuery>(queries));
  EXPECT_EQ(dist.visited, single.visited);
}

TEST(MsBfsMultiSource, DuplicateSourcesDeduplicated) {
  const Graph g = make_test_graph(8, 4, 43);
  MultiKHopQuery q;
  q.sources = {7, 7, 7};
  q.k = 2;
  const auto multi =
      msbfs_batch(g, std::span<const MultiKHopQuery>(&q, 1));
  const KHopQuery single{0, 7, 2};
  const auto ref = msbfs_batch(g, std::span(&single, 1));
  EXPECT_EQ(multi.visited[0], ref.visited[0]);
}

TEST(MsBfsMultiSource, SingleSourceEquivalence) {
  const Graph g = make_test_graph(8, 5, 47);
  MultiKHopQuery mq;
  mq.sources = {42};
  mq.k = 3;
  const KHopQuery sq{0, 42, 3};
  const auto a = msbfs_batch(g, std::span<const MultiKHopQuery>(&mq, 1));
  const auto b = msbfs_batch(g, std::span(&sq, 1));
  EXPECT_EQ(a.visited, b.visited);
  EXPECT_EQ(a.levels, b.levels);
}

TEST(MsBfsMultiSourceDeathTest, EmptySourcesAbort) {
  const Graph g = make_test_graph(6, 2, 1);
  MultiKHopQuery q;  // no sources
  EXPECT_DEATH(msbfs_batch(g, std::span<const MultiKHopQuery>(&q, 1)),
               "at least one source");
}

TEST(MsBfsSingleDeathTest, OversizedBatchAborts) {
  const Graph g = make_test_graph(6, 2, 1);
  std::vector<KHopQuery> queries(513, KHopQuery{0, 0, 1});
  EXPECT_DEATH(msbfs_batch(g, queries), "exceeds bit-parallel capacity");
}

}  // namespace
}  // namespace cgraph
