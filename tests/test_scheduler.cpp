// Tests for the concurrent query scheduler: batching, queue-wait stacking,
// per-query results, memory-pressure model, workload generation.
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/rmat.hpp"
#include "graph/shard.hpp"
#include "query/bfs.hpp"
#include "query/scheduler.hpp"

namespace cgraph {
namespace {

struct Fixture {
  Graph graph;
  RangePartition partition;
  std::vector<SubgraphShard> shards;
  Cluster cluster;

  explicit Fixture(PartitionId machines, unsigned scale = 9,
                   std::uint64_t seed = 61)
      : graph([&] {
          RmatParams p;
          p.scale = scale;
          p.edge_factor = 6;
          p.seed = seed;
          return Graph::build(generate_rmat(p), VertexId{1} << scale);
        }()),
        partition(RangePartition::balanced_by_edges(graph, machines)),
        shards(build_shards(graph, partition)),
        cluster(machines) {}
};

TEST(Scheduler, ResultsMatchReferencePerQuery) {
  Fixture f(2);
  const auto queries = make_random_queries(f.graph, 20, 3, 7);
  const auto run = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                          queries);
  ASSERT_EQ(run.queries.size(), 20u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(run.queries[i].id, queries[i].id);
    EXPECT_EQ(run.queries[i].visited,
              khop_reach_count(f.graph, queries[i].source, queries[i].k));
  }
}

// Batch-width boundaries: a degenerate width of 1 (every query is its own
// batch, the bit planes are 1 bit wide), exactly one machine word (64 —
// the seam where a second word would start), and more queries than the
// graph has vertices. Each must agree with the serial reference per query.
TEST(Scheduler, BatchWidthOneMatchesReference) {
  Fixture f(2, /*scale=*/7);
  const auto queries = make_random_queries(f.graph, 5, 3, 17);
  SchedulerOptions opts;
  opts.batch_width = 1;
  const auto run = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                          queries, opts);
  EXPECT_EQ(run.batches, queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(run.queries[i].visited,
              khop_reach_count(f.graph, queries[i].source, queries[i].k))
        << "query " << i;
  }
}

TEST(Scheduler, BatchWidthExactlyOneWordMatchesReference) {
  Fixture f(3, /*scale=*/8);
  const auto queries = make_random_queries(f.graph, 64, 3, 19);
  SchedulerOptions opts;
  opts.batch_width = 64;  // one full word per row, zero slack bits
  const auto run = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                          queries, opts);
  EXPECT_EQ(run.batches, 1u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(run.queries[i].visited,
              khop_reach_count(f.graph, queries[i].source, queries[i].k))
        << "query " << i;
  }
}

TEST(Scheduler, MoreQueriesThanVerticesMatchesReference) {
  // A tiny graph (2^5 vertex-id space) hammered by 3x more queries than
  // vertices: sources repeat, batches span the whole graph, and both the
  // bit-parallel and queue engines must still answer every query exactly.
  Fixture f(2, /*scale=*/5);
  ASSERT_LT(f.graph.num_vertices(), 96u);
  const auto queries = make_random_queries(f.graph, 96, 4, 23);
  for (const bool bit_parallel : {true, false}) {
    SchedulerOptions opts;
    opts.batch_width = 48;
    opts.use_bit_parallel = bit_parallel;
    const auto run = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                            queries, opts);
    ASSERT_EQ(run.queries.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(run.queries[i].visited,
                khop_reach_count(f.graph, queries[i].source, queries[i].k))
          << (bit_parallel ? "bit-parallel" : "queue") << " query " << i;
    }
  }
}

TEST(Scheduler, LaterBatchesWaitLonger) {
  Fixture f(2);
  const auto queries = make_random_queries(f.graph, 96, 3, 9);
  SchedulerOptions opts;
  opts.batch_width = 32;  // 3 batches
  const auto run = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                          queries, opts);
  EXPECT_EQ(run.batches, 3u);
  // Min response within batch b+1 must exceed the max response achievable
  // at the start of batch b+1 (its queue wait), which itself is >= max
  // completion of batch b's first query.
  double batch0_min = 1e9, batch2_min = 1e9;
  for (std::size_t i = 0; i < 32; ++i) {
    batch0_min = std::min(batch0_min, run.queries[i].sim_seconds);
  }
  for (std::size_t i = 64; i < 96; ++i) {
    batch2_min = std::min(batch2_min, run.queries[i].sim_seconds);
  }
  EXPECT_GT(batch2_min, batch0_min);
}

TEST(Scheduler, SingleBatchNoQueueWait) {
  Fixture f(1);
  const auto queries = make_random_queries(f.graph, 8, 2, 11);
  SchedulerOptions opts;
  opts.batch_width = 64;
  const auto run = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                          queries, opts);
  EXPECT_EQ(run.batches, 1u);
  for (const auto& q : run.queries) {
    EXPECT_LE(q.sim_seconds, run.total_sim_seconds + 1e-12);
  }
}

TEST(Scheduler, QueueEngineProducesSameVisitedCounts) {
  Fixture f(2);
  const auto queries = make_random_queries(f.graph, 16, 3, 13);
  SchedulerOptions bits, queue;
  queue.use_bit_parallel = false;
  const auto r1 = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                         queries, bits);
  const auto r2 = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                         queries, queue);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(r1.queries[i].visited, r2.queries[i].visited);
  }
}

TEST(Scheduler, MemoryPressureSlowsSimTime) {
  Fixture f(2);
  const auto queries = make_random_queries(f.graph, 64, 3, 17);
  SchedulerOptions unlimited;
  SchedulerOptions tight;
  tight.memory_budget_bytes = 1;  // everything overshoots
  tight.memory_penalty = 10.0;
  const auto fast = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                           queries, unlimited);
  const auto slow = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                           queries, tight);
  EXPECT_GT(slow.total_sim_seconds, fast.total_sim_seconds * 2);
  EXPECT_EQ(fast.queries[0].visited, slow.queries[0].visited);
}

TEST(Scheduler, PeakMemoryGrowsWithQueryCount) {
  Fixture f(1);
  SchedulerOptions opts;
  opts.batch_width = 16;
  const auto few = run_concurrent_queries(
      f.cluster, f.shards, f.partition,
      make_random_queries(f.graph, 16, 3, 19), opts);
  const auto many = run_concurrent_queries(
      f.cluster, f.shards, f.partition,
      make_random_queries(f.graph, 128, 3, 19), opts);
  EXPECT_GT(many.peak_memory_bytes, few.peak_memory_bytes);
}

TEST(MakeRandomQueries, RespectsMinDegreeAndDeterminism) {
  Fixture f(1);
  const auto a = make_random_queries(f.graph, 50, 3, 23, /*min_degree=*/1);
  const auto b = make_random_queries(f.graph, 50, 3, 23, /*min_degree=*/1);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_GE(f.graph.out_degree(a[i].source), 1u);
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].k, 3);
  }
}

TEST(Scheduler, DegreeSortedPolicyPreservesResults) {
  Fixture f(2);
  const auto queries = make_random_queries(f.graph, 48, 3, 31);
  SchedulerOptions fifo;
  SchedulerOptions sorted;
  sorted.policy = BatchPolicy::kDegreeSorted;
  sorted.degree_of = [&](VertexId v) { return f.graph.out_degree(v); };
  sorted.batch_width = 16;
  fifo.batch_width = 16;
  const auto a = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                        queries, fifo);
  const auto b = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                        queries, sorted);
  // Answers identical and reported in submission order either way.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].id, b.queries[i].id);
    EXPECT_EQ(a.queries[i].visited, b.queries[i].visited);
  }
}

TEST(Scheduler, DegreeSortedWithoutLookupFallsBackToFifo) {
  Fixture f(1);
  const auto queries = make_random_queries(f.graph, 8, 2, 33);
  SchedulerOptions opts;
  opts.policy = BatchPolicy::kDegreeSorted;  // degree_of left unset
  const auto run = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                          queries, opts);
  EXPECT_EQ(run.queries.size(), 8u);
}

// Regression (silent-degradation bug): kDegreeSorted without a degree_of
// lookup used to run FIFO while the telemetry still claimed degree-sorted.
// The *effective* policy must be recorded in RunTelemetry and every
// BatchTrace so the fallback is observable.
TEST(Scheduler, EffectivePolicyReportedOnFallback) {
  Fixture f(1);
  const auto queries = make_random_queries(f.graph, 24, 2, 35);

  SchedulerOptions broken;
  broken.policy = BatchPolicy::kDegreeSorted;  // no degree_of: degrades
  broken.batch_width = 8;
  EXPECT_EQ(effective_batch_policy(broken), BatchPolicy::kFifo);
  const auto fallback = run_concurrent_queries(f.cluster, f.shards,
                                               f.partition, queries, broken);
  EXPECT_EQ(fallback.telemetry.effective_policy, "fifo");
  ASSERT_EQ(fallback.telemetry.batches.size(), 3u);
  for (const auto& bt : fallback.telemetry.batches) {
    EXPECT_EQ(bt.policy, "fifo");
  }

  SchedulerOptions sorted = broken;
  sorted.degree_of = [&](VertexId v) { return f.graph.out_degree(v); };
  EXPECT_EQ(effective_batch_policy(sorted), BatchPolicy::kDegreeSorted);
  const auto real = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                           queries, sorted);
  EXPECT_EQ(real.telemetry.effective_policy, "degree-sorted");
  for (const auto& bt : real.telemetry.batches) {
    EXPECT_EQ(bt.policy, "degree-sorted");
  }

  SchedulerOptions fifo;
  EXPECT_EQ(effective_batch_policy(fifo), BatchPolicy::kFifo);
  const auto plain = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                            queries, fifo);
  EXPECT_EQ(plain.telemetry.effective_policy, "fifo");
}

// Pins two ordering contracts of the degree-sorted path with a count that
// is NOT a multiple of batch_width (subspan boundaries exercise the
// order[] mapping) and many duplicate-degree roots (exercises the
// stable_sort tie rule):
//   (a) results come back in submission order via order[];
//   (b) within the sorted sequence, equal-degree queries keep submission
//       order (std::stable_sort), pinned through telemetry.queries.
TEST(Scheduler, DegreeSortedOrderMappingAndStableTies) {
  Fixture f(2, /*scale=*/6);
  // 21 queries, width 8 -> batches of 8/8/5. Duplicate roots guarantee
  // duplicate degrees.
  auto queries = make_random_queries(f.graph, 7, 3, 37);
  const std::size_t distinct = queries.size();
  for (std::size_t i = 0; i < 2 * distinct; ++i) {
    KHopQuery q = queries[i % distinct];
    q.id = static_cast<QueryId>(queries.size());
    queries.push_back(q);
  }
  ASSERT_EQ(queries.size(), 21u);

  SchedulerOptions opts;
  opts.policy = BatchPolicy::kDegreeSorted;
  opts.degree_of = [&](VertexId v) { return f.graph.out_degree(v); };
  opts.batch_width = 8;
  const auto run = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                          queries, opts);

  // (a) submission order out, exact answers regardless of execution order.
  ASSERT_EQ(run.queries.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(run.queries[i].id, queries[i].id) << "slot " << i;
    EXPECT_EQ(run.queries[i].visited,
              khop_reach_count(f.graph, queries[i].source, queries[i].k))
        << "slot " << i;
  }

  // (b) telemetry.queries is appended in execution order; it must equal
  // the stable sort of submission indices by descending degree.
  std::vector<std::size_t> expect(queries.size());
  for (std::size_t i = 0; i < expect.size(); ++i) expect[i] = i;
  std::stable_sort(expect.begin(), expect.end(),
                   [&](std::size_t a, std::size_t b) {
                     return f.graph.out_degree(queries[a].source) >
                            f.graph.out_degree(queries[b].source);
                   });
  ASSERT_EQ(run.telemetry.queries.size(), queries.size());
  for (std::size_t slot = 0; slot < expect.size(); ++slot) {
    EXPECT_EQ(run.telemetry.queries[slot].id, queries[expect[slot]].id)
        << "execution slot " << slot;
    EXPECT_EQ(run.telemetry.queries[slot].batch_index, slot / 8)
        << "execution slot " << slot;
  }
}

TEST(Scheduler, TotalEdgeWorkReported) {
  Fixture f(2);
  const auto queries = make_random_queries(f.graph, 8, 3, 29);
  const auto run = run_concurrent_queries(f.cluster, f.shards, f.partition,
                                          queries);
  EXPECT_GT(run.total_edges_scanned, 0u);
}

}  // namespace
}  // namespace cgraph
