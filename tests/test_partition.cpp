// Unit and property tests for range-based partitioning (paper §3.1).
#include <gtest/gtest.h>

#include "gen/rmat.hpp"
#include "graph/partition.hpp"

namespace cgraph {
namespace {

Graph star_plus_chain() {
  // Vertex 0 has out-degree 8 (a hub); 9..14 form a light chain.
  EdgeList el;
  for (VertexId t = 1; t <= 8; ++t) el.add(0, t);
  for (VertexId v = 9; v < 14; ++v) el.add(v, v + 1);
  return Graph::build(std::move(el), 15);
}

TEST(RangePartition, ByVerticesEvenSplit) {
  const auto part = RangePartition::balanced_by_vertices(10, 3);
  ASSERT_EQ(part.num_partitions(), 3u);
  EXPECT_EQ(part.range(0), (VertexRange{0, 4}));
  EXPECT_EQ(part.range(1), (VertexRange{4, 7}));
  EXPECT_EQ(part.range(2), (VertexRange{7, 10}));
}

TEST(RangePartition, RangesAreContiguousAndCovering) {
  const Graph g = star_plus_chain();
  for (PartitionId p : {1u, 2u, 3u, 5u}) {
    const auto part = RangePartition::balanced_by_edges(g, p);
    ASSERT_EQ(part.num_partitions(), p);
    EXPECT_EQ(part.range(0).begin, 0u);
    EXPECT_EQ(part.range(p - 1).end, g.num_vertices());
    for (PartitionId i = 0; i + 1 < p; ++i) {
      EXPECT_EQ(part.range(i).end, part.range(i + 1).begin);
    }
  }
}

TEST(RangePartition, OwnerMatchesRanges) {
  const Graph g = star_plus_chain();
  const auto part = RangePartition::balanced_by_edges(g, 4);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const PartitionId p = part.owner(v);
    EXPECT_TRUE(part.range(p).contains(v)) << "vertex " << v;
  }
}

TEST(RangePartition, SinglePartitionOwnsEverything) {
  const Graph g = star_plus_chain();
  const auto part = RangePartition::balanced_by_edges(g, 1);
  EXPECT_EQ(part.range(0), (VertexRange{0, g.num_vertices()}));
  EXPECT_EQ(part.owner(14), 0u);
}

TEST(RangePartition, MorePartitionsThanVertices) {
  EdgeList el;
  el.add(0, 1);
  const Graph g = Graph::build(std::move(el), 2);
  const auto part = RangePartition::balanced_by_edges(g, 5);
  EXPECT_EQ(part.num_partitions(), 5u);
  EXPECT_EQ(part.range(4).end, 2u);
  // Every vertex still has exactly one owner.
  EXPECT_TRUE(part.range(part.owner(0)).contains(0));
  EXPECT_TRUE(part.range(part.owner(1)).contains(1));
}

// Property sweep: edge balance on skewed R-MAT graphs stays reasonable for
// realistic partition counts (the paper balances partitions by edges).
class PartitionBalance : public ::testing::TestWithParam<PartitionId> {};

TEST_P(PartitionBalance, EdgeBalancedWithinFactorTwo) {
  RmatParams params;
  params.scale = 12;
  params.edge_factor = 8;
  params.seed = 99;
  const Graph g = Graph::build(generate_rmat(params),
                               VertexId{1} << params.scale);
  const auto part = RangePartition::balanced_by_edges(g, GetParam());
  // max/mean <= 2 is a loose bound; typical values are ~1.02.
  EXPECT_LE(part.edge_balance(g), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Machines, PartitionBalance,
                         ::testing::Values(2, 3, 4, 6, 8, 9, 16));

TEST(RangePartition, VertexBalancedHandlesRemainder) {
  const auto part = RangePartition::balanced_by_vertices(7, 3);
  EXPECT_EQ(part.range(0).size(), 3u);
  EXPECT_EQ(part.range(1).size(), 2u);
  EXPECT_EQ(part.range(2).size(), 2u);
}

}  // namespace
}  // namespace cgraph
