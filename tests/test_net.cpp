// Unit tests for serialization, mailboxes, the fabric, and the cost model.
#include <gtest/gtest.h>

#include <limits>

#include "net/cost_model.hpp"
#include "net/fabric.hpp"
#include "net/fault.hpp"
#include "net/mailbox.hpp"
#include "net/serialize.hpp"

namespace cgraph {
namespace {

TEST(Serialize, PodRoundTrip) {
  PacketWriter w;
  w.write<std::uint32_t>(42);
  w.write<double>(3.5);
  w.write<std::uint8_t>(7);
  const Packet p = w.take();
  PacketReader r(p);
  EXPECT_EQ(r.read<std::uint32_t>(), 42u);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.5);
  EXPECT_EQ(r.read<std::uint8_t>(), 7);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, SpanRoundTrip) {
  PacketWriter w;
  const std::vector<std::uint32_t> v{1, 2, 3, 4, 5};
  w.write_span(std::span<const std::uint32_t>(v));
  const Packet p = w.take();
  PacketReader r(p);
  EXPECT_EQ(r.read_vector<std::uint32_t>(), v);
}

TEST(Serialize, EmptySpan) {
  PacketWriter w;
  w.write_span(std::span<const int>{});
  const Packet p = w.take();
  PacketReader r(p);
  EXPECT_TRUE(r.read_vector<int>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, WriterReusableAfterTake) {
  PacketWriter w;
  w.write<int>(1);
  (void)w.take();
  EXPECT_TRUE(w.empty());
  w.write<int>(2);
  const Packet p = w.take();
  PacketReader r(p);
  EXPECT_EQ(r.read<int>(), 2);
}

TEST(SerializeDeathTest, UnderflowAborts) {
  PacketWriter w;
  w.write<std::uint16_t>(1);
  const Packet p = w.take();
  PacketReader r(p);
  EXPECT_DEATH(r.read<std::uint64_t>(), "packet underflow");
}

TEST(SerializeDeathTest, VectorUnderflowAborts) {
  PacketWriter w;
  w.write<std::uint64_t>(1000);  // claims 1000 elements, provides none
  const Packet p = w.take();
  PacketReader r(p);
  EXPECT_DEATH(r.read_vector<std::uint64_t>(), "packet underflow");
}

TEST(Mailbox, AsyncDeliveryImmediate) {
  Mailbox mb;
  PacketWriter w;
  w.write<int>(5);
  mb.push_now({0, 1, w.take()});
  EXPECT_FALSE(mb.empty_now());
  auto msgs = mb.drain_now();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].from, 0u);
  EXPECT_EQ(msgs[0].tag, 1u);
  EXPECT_TRUE(mb.empty_now());
}

TEST(Mailbox, SuperstepStagingByParity) {
  Mailbox mb;
  mb.push_superstep({0, 1, {}}, /*superstep=*/0);
  mb.push_superstep({0, 2, {}}, /*superstep=*/1);
  auto s0 = mb.drain_superstep(0);
  ASSERT_EQ(s0.size(), 1u);
  EXPECT_EQ(s0[0].tag, 1u);
  auto s1 = mb.drain_superstep(1);
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_EQ(s1[0].tag, 2u);
  EXPECT_TRUE(mb.drain_superstep(0).empty());
}

TEST(Fabric, RoutesAndCounts) {
  Fabric fabric(3);
  PacketWriter w;
  w.write<std::uint64_t>(99);
  fabric.send_now(0, 2, 7, w.take());
  EXPECT_EQ(fabric.total_packets(), 1u);
  EXPECT_EQ(fabric.total_bytes(), sizeof(std::uint64_t));
  auto msgs = fabric.mailbox(2).drain_now();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].from, 0u);
  EXPECT_TRUE(fabric.mailbox(0).drain_now().empty());
  EXPECT_TRUE(fabric.mailbox(1).drain_now().empty());
}

TEST(Fabric, ResetCountersZeroes) {
  Fabric fabric(2);
  fabric.send_now(0, 1, 0, Packet(16));
  fabric.reset_counters();
  EXPECT_EQ(fabric.total_packets(), 0u);
  EXPECT_EQ(fabric.total_bytes(), 0u);
}

TEST(CostModel, ComputeAndCommCharges) {
  CostModel cm;
  cm.ns_per_edge = 2.0;
  cm.ns_per_vertex = 10.0;
  cm.ns_per_byte = 1.0;
  cm.ns_per_packet = 1000.0;
  EXPECT_DOUBLE_EQ(cm.compute_ns(100, 10), 300.0);
  EXPECT_DOUBLE_EQ(cm.comm_ns(2, 500), 2500.0);
}

// Checkpoint support: a DedupFilter must round-trip through its packet
// serialization with the exactly-once semantics intact — same watermark,
// same pending (gap) window, same suppressed count.
TEST(DedupFilter, SerializeRoundTripPreservesSemantics) {
  DedupFilter f;
  EXPECT_TRUE(f.accept(0, 0));
  EXPECT_TRUE(f.accept(0, 1));
  EXPECT_TRUE(f.accept(0, 3));  // gap at 2: 3 held pending
  EXPECT_TRUE(f.accept(5, 0));  // independent sender window
  f.count_suppressed();
  f.count_suppressed();

  PacketWriter w;
  f.serialize(w);
  const Packet p = w.take();
  DedupFilter g;
  PacketReader r(p);
  g.deserialize(r);
  EXPECT_TRUE(r.exhausted());

  EXPECT_EQ(g.suppressed(), 2u);
  EXPECT_FALSE(g.accept(0, 0));  // below the restored watermark
  EXPECT_FALSE(g.accept(0, 1));
  EXPECT_FALSE(g.accept(0, 3));  // still in the restored pending window
  EXPECT_TRUE(g.accept(0, 2));   // fills the gap, watermark jumps past 3
  EXPECT_FALSE(g.accept(0, 2));
  EXPECT_TRUE(g.accept(0, 4));
  EXPECT_FALSE(g.accept(5, 0));
  EXPECT_TRUE(g.accept(5, 1));
}

// Watermark saturation: with the watermark at the top of the sequence
// space, the contiguous-prefix advance probes watermark + 1, which wraps
// to 0 — the loop must terminate (0 can never be pending: any seq <=
// watermark is rejected before insertion) and later traffic must still be
// rejected as already-seen, not re-accepted through the wrapped window.
TEST(DedupFilter, WatermarkAtMaxSequenceDoesNotWrap) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  // Craft a restored window just below saturation via the checkpoint
  // format (reaching it organically would take 2^64 accepts).
  PacketWriter w;
  w.write<std::uint64_t>(0);     // suppressed
  w.write<std::uint64_t>(1);     // one sender window
  w.write<PartitionId>(3);       // sender id
  w.write<std::uint8_t>(1);      // has_watermark
  w.write<std::uint64_t>(kMax - 1);
  w.write<std::uint64_t>(0);     // no pending seqs
  const Packet p = w.take();
  DedupFilter f;
  PacketReader r(p);
  f.deserialize(r);

  EXPECT_TRUE(f.accept(3, kMax));   // saturates the watermark
  EXPECT_FALSE(f.accept(3, kMax));  // exactly-once still holds at the top
  EXPECT_FALSE(f.accept(3, 0));     // wrapped probe must not have re-opened
  EXPECT_FALSE(f.accept(3, kMax - 1));
  EXPECT_TRUE(f.accept(4, 0)) << "other senders unaffected by saturation";
}

// Crash-recovery support: restore_links rewinds per-link sequence/attempt
// counters to the snapshot and purges in-flight mailboxes, so a replayed
// superstep re-issues the original sequence numbers instead of continuing
// from the crashed run's counters.
TEST(Fabric, LinkSnapshotRestoreRewindsSequencesAndPurgesMailboxes) {
  Fabric fabric(2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(fabric.send_superstep(0, 1, 7, Packet(8), 0));
  }
  EXPECT_EQ(fabric.mailbox(1).drain_superstep(0).size(), 3u);
  const Fabric::LinkSnapshot snap = fabric.snapshot_links();

  // Post-snapshot traffic that a crash would strand in flight.
  EXPECT_TRUE(fabric.send_superstep(0, 1, 7, Packet(8), 1));
  EXPECT_TRUE(fabric.send_superstep(1, 0, 7, Packet(8), 1));

  fabric.restore_links(snap);
  EXPECT_TRUE(fabric.mailbox(1).drain_superstep(1).empty())
      << "in-flight packets die with the crash";
  EXPECT_TRUE(fabric.mailbox(0).drain_superstep(1).empty());

  // The replay re-issues the sequence numbers the crashed attempt used.
  EXPECT_TRUE(fabric.send_superstep(0, 1, 7, Packet(8), 1));
  const auto replayed = fabric.mailbox(1).drain_superstep(1);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].seq, 3u);

  const Fabric::LinkSnapshot again = fabric.snapshot_links();
  ASSERT_EQ(again.seqs.size(), snap.seqs.size());
  for (std::size_t i = 0; i < snap.seqs.size(); ++i) {
    // Only link 0->1 moved (by the one replayed send).
    const std::uint64_t expected_delta = again.seqs[i] - snap.seqs[i];
    EXPECT_LE(expected_delta, 1u);
  }
}

TEST(SimClock, SetNanosRewindsForRestore) {
  SimClock clock;
  clock.advance_to(100.0);
  clock.set_nanos(40.0);  // restores go backwards; advance_to never does
  EXPECT_DOUBLE_EQ(clock.nanos(), 40.0);
  clock.advance_to(50.0);
  EXPECT_DOUBLE_EQ(clock.nanos(), 50.0);
}

TEST(SimClock, ChargesAccumulateAndAdvance) {
  CostModel cm;
  SimClock clock;
  clock.charge_compute(cm, 1000, 0);
  const double t1 = clock.nanos();
  EXPECT_GT(t1, 0);
  clock.advance_to(t1 - 5);  // never goes backwards
  EXPECT_DOUBLE_EQ(clock.nanos(), t1);
  clock.advance_to(t1 + 5);
  EXPECT_DOUBLE_EQ(clock.nanos(), t1 + 5);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.nanos(), 0);
}

}  // namespace
}  // namespace cgraph
