// Unit tests for serialization, mailboxes, the fabric, and the cost model.
#include <gtest/gtest.h>

#include "net/cost_model.hpp"
#include "net/fabric.hpp"
#include "net/mailbox.hpp"
#include "net/serialize.hpp"

namespace cgraph {
namespace {

TEST(Serialize, PodRoundTrip) {
  PacketWriter w;
  w.write<std::uint32_t>(42);
  w.write<double>(3.5);
  w.write<std::uint8_t>(7);
  const Packet p = w.take();
  PacketReader r(p);
  EXPECT_EQ(r.read<std::uint32_t>(), 42u);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.5);
  EXPECT_EQ(r.read<std::uint8_t>(), 7);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, SpanRoundTrip) {
  PacketWriter w;
  const std::vector<std::uint32_t> v{1, 2, 3, 4, 5};
  w.write_span(std::span<const std::uint32_t>(v));
  const Packet p = w.take();
  PacketReader r(p);
  EXPECT_EQ(r.read_vector<std::uint32_t>(), v);
}

TEST(Serialize, EmptySpan) {
  PacketWriter w;
  w.write_span(std::span<const int>{});
  const Packet p = w.take();
  PacketReader r(p);
  EXPECT_TRUE(r.read_vector<int>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, WriterReusableAfterTake) {
  PacketWriter w;
  w.write<int>(1);
  (void)w.take();
  EXPECT_TRUE(w.empty());
  w.write<int>(2);
  const Packet p = w.take();
  PacketReader r(p);
  EXPECT_EQ(r.read<int>(), 2);
}

TEST(SerializeDeathTest, UnderflowAborts) {
  PacketWriter w;
  w.write<std::uint16_t>(1);
  const Packet p = w.take();
  PacketReader r(p);
  EXPECT_DEATH(r.read<std::uint64_t>(), "packet underflow");
}

TEST(SerializeDeathTest, VectorUnderflowAborts) {
  PacketWriter w;
  w.write<std::uint64_t>(1000);  // claims 1000 elements, provides none
  const Packet p = w.take();
  PacketReader r(p);
  EXPECT_DEATH(r.read_vector<std::uint64_t>(), "packet underflow");
}

TEST(Mailbox, AsyncDeliveryImmediate) {
  Mailbox mb;
  PacketWriter w;
  w.write<int>(5);
  mb.push_now({0, 1, w.take()});
  EXPECT_FALSE(mb.empty_now());
  auto msgs = mb.drain_now();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].from, 0u);
  EXPECT_EQ(msgs[0].tag, 1u);
  EXPECT_TRUE(mb.empty_now());
}

TEST(Mailbox, SuperstepStagingByParity) {
  Mailbox mb;
  mb.push_superstep({0, 1, {}}, /*superstep=*/0);
  mb.push_superstep({0, 2, {}}, /*superstep=*/1);
  auto s0 = mb.drain_superstep(0);
  ASSERT_EQ(s0.size(), 1u);
  EXPECT_EQ(s0[0].tag, 1u);
  auto s1 = mb.drain_superstep(1);
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_EQ(s1[0].tag, 2u);
  EXPECT_TRUE(mb.drain_superstep(0).empty());
}

TEST(Fabric, RoutesAndCounts) {
  Fabric fabric(3);
  PacketWriter w;
  w.write<std::uint64_t>(99);
  fabric.send_now(0, 2, 7, w.take());
  EXPECT_EQ(fabric.total_packets(), 1u);
  EXPECT_EQ(fabric.total_bytes(), sizeof(std::uint64_t));
  auto msgs = fabric.mailbox(2).drain_now();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].from, 0u);
  EXPECT_TRUE(fabric.mailbox(0).drain_now().empty());
  EXPECT_TRUE(fabric.mailbox(1).drain_now().empty());
}

TEST(Fabric, ResetCountersZeroes) {
  Fabric fabric(2);
  fabric.send_now(0, 1, 0, Packet(16));
  fabric.reset_counters();
  EXPECT_EQ(fabric.total_packets(), 0u);
  EXPECT_EQ(fabric.total_bytes(), 0u);
}

TEST(CostModel, ComputeAndCommCharges) {
  CostModel cm;
  cm.ns_per_edge = 2.0;
  cm.ns_per_vertex = 10.0;
  cm.ns_per_byte = 1.0;
  cm.ns_per_packet = 1000.0;
  EXPECT_DOUBLE_EQ(cm.compute_ns(100, 10), 300.0);
  EXPECT_DOUBLE_EQ(cm.comm_ns(2, 500), 2500.0);
}

TEST(SimClock, ChargesAccumulateAndAdvance) {
  CostModel cm;
  SimClock clock;
  clock.charge_compute(cm, 1000, 0);
  const double t1 = clock.nanos();
  EXPECT_GT(t1, 0);
  clock.advance_to(t1 - 5);  // never goes backwards
  EXPECT_DOUBLE_EQ(clock.nanos(), t1);
  clock.advance_to(t1 + 5);
  EXPECT_DOUBLE_EQ(clock.nanos(), t1 + 5);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.nanos(), 0);
}

}  // namespace
}  // namespace cgraph
